"""E17/E18/E19 — SMP extension: TLB-shootdown strategies at 2/4/8 CPUs.

The paper defers SMP (§9 footnote); these experiments cross four
shootdown strategies (broadcast, targeted, lazy deferral per
arXiv 2401.15558, mmap-reuse flush skipping per arXiv 2409.10946)
against fixed-affinity multiprogram mmap/munmap churn.  Expected
shape: broadcast pays one IPI round per flush, targeted pays none
(fixed affinity), lazy defers and drains at context switch, and
mmap-reuse additionally skips munmap flushes by pooling the region.
"""

from conftest import run_spec


def _assert_smp_shape(result):
    rows = result.measured["rows"]
    broadcast, targeted = rows["broadcast"], rows["targeted"]
    lazy, reuse = rows["lazy"], rows["mmap_reuse"]
    # Broadcast IPIs every remote on every flush; targeted never needs to.
    assert broadcast["ipi_sent"] > 0
    assert targeted["ipi_sent"] == 0
    assert broadcast["shootdown_cycles"] > targeted["shootdown_cycles"]
    # Lazy converts eager IPIs into deferred work drained at ctxsw.
    assert lazy["ipi_sent"] <= broadcast["ipi_sent"]
    assert lazy["shootdown_deferred"] > 0
    assert lazy["shootdown_drained"] > 0
    # Mmap-reuse pools the munmapped region and revives it flush-free.
    assert reuse["reuse_pool_hit"] > 0
    assert reuse["flush_skipped_reuse"] > 0
    assert reuse["total_cycles"] < broadcast["total_cycles"]


def test_shootdown_2_cpus(benchmark, record_report):
    result = run_spec(benchmark, "E17")
    record_report(result)
    assert result.shape_holds
    _assert_smp_shape(result)


def test_shootdown_4_cpus(benchmark, record_report):
    result = run_spec(benchmark, "E18")
    record_report(result)
    assert result.shape_holds
    _assert_smp_shape(result)
    assert result.measured["n_cpus"] == 4


def test_shootdown_8_cpus(benchmark, record_report):
    result = run_spec(benchmark, "E19")
    record_report(result)
    assert result.shape_holds
    _assert_smp_shape(result)
    # More remote CPUs -> more broadcast IPI traffic per flush.
    assert result.measured["broadcast_ipis"] > 0
