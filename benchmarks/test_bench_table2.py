"""E6 — Table 2: lazy VSID flushing and the tunable range flush.

Paper: mmap latency 3240 -> 41 us on the 603@133 and 2733 -> 33 us on
the 604@185 (~80x), with pipe bandwidth and latencies also improving.
"""

from conftest import run_spec


def test_table2_lazy_flushing(benchmark, record_report):
    result = run_spec(benchmark, "E6")
    record_report(result)
    assert result.shape_holds
    # The ~80x mmap improvements (we require at least 40x).
    assert result.measured["mmap_improvement_603"] > 40
    assert result.measured["mmap_improvement_604"] > 40
    rows = result.measured["rows"]
    # Lazy flushing must not hurt pipe bandwidth (paper: +5 MB/s).
    assert (
        rows["603 133MHz (lazy)"]["pipe_bw"]
        >= rows["603 133MHz"]["pipe_bw"] * 0.98
    )
