"""E10 — §9: idle-task page clearing.

Paper: clearing through the cache made the compile ~2x slower; clearing
cache-inhibited without keeping the pages changed nothing; clearing
cache-inhibited onto the pre-cleared list made the system "much faster".
"""

from conftest import run_spec


def test_idle_page_clearing(benchmark, record_report):
    result = run_spec(benchmark, "E10")
    record_report(result)
    assert result.shape_holds
    # Cached clearing hurts (direction of the paper's 2x).
    assert result.measured["pollution_cached_ratio"] > 1.05
    # The uncached no-list control is a wash.
    assert 0.97 < result.measured["pollution_uncached_nolist_ratio"] < 1.03
    # Uncached clearing onto the list wins the compile.
    assert result.measured["compile_uncached_list_ratio"] < 0.97
