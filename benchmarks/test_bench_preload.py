"""E15 — §10.2 (future work): cache preloads in the switch path.

The paper conjectures "significant gains with intelligent use of cache
preloads in context switching and interrupt entry code"; the ablation
measures a cache-cold context switch with and without dcbt-style
preloads of the switch path's data.
"""

from conftest import run_spec


def test_cache_preload_ablation(benchmark, record_report):
    result = run_spec(benchmark, "E15")
    record_report(result)
    assert result.shape_holds
    assert result.measured["ctxsw8_ratio"] < 0.99
