"""E7 — §7: idle-task reclaim of zombie hash-table entries.

Paper: without reclaim the table fills with valid-but-dead PTEs and the
evict-to-reload ratio exceeds 90%; with the idle-task reclaim it falls
to ~30%, live usage grows, and the hash hit rate reaches 98%.
"""

from conftest import run_spec


def test_idle_zombie_reclaim(benchmark, record_report):
    result = run_spec(benchmark, "E7")
    record_report(result)
    assert result.shape_holds
    # The table really fills without reclaim ("very quickly the entire
    # hash table fills up").
    assert result.measured["valid_before"] > 0.85 * 16384
    # Reclaim collapses the evict ratio.
    assert (
        result.measured["evict_ratio_after"]
        < 0.5 * result.measured["evict_ratio_before"]
    )
    assert result.measured["zombies_reclaimed"] > 1000
