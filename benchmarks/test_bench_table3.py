"""E11 — Table 3: Linux/PPC against Rhapsody, MkLinux and AIX.

Paper (133MHz 604): optimized Linux/PPC wins every point — null syscall
2 us vs 11-19, context switch 6 us vs 24-64, pipe latency 28 us vs
89-235, pipe bandwidth 52 MB/s vs 9-36.
"""

from conftest import run_spec


def test_table3_os_comparison(benchmark, record_report):
    result = run_spec(benchmark, "E11")
    record_report(result)
    assert result.shape_holds
    rows = result.measured
    linux = rows["Linux/PPC"]
    # The microkernels lose big on switches and IPC (paper: 10x+).
    for mach in ("Rhapsody 5.0", "MkLinux"):
        assert rows[mach]["ctxsw_us"] > 5 * linux["ctxsw_us"]
        assert rows[mach]["pipe_lat_us"] > 4 * linux["pipe_lat_us"]
        assert rows[mach]["pipe_bw"] < 0.4 * linux["pipe_bw"]
    # AIX is competitive but behind (paper: ~2-5x on latency points).
    assert rows["AIX"]["null_us"] > 3 * linux["null_us"]
    assert rows["AIX"]["ctxsw_us"] > 2 * linux["ctxsw_us"]
