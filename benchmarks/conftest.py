"""Shared helpers for the benchmark suite.

Every benchmark executes one spec from :mod:`repro.analysis.specs`
through the engine exactly once (``benchmark.pedantic`` with one round
— the experiments are deterministic simulations, so statistical
repetition only wastes time), asserts the paper's qualitative shape,
and archives the human-readable report under ``benchmarks/reports/``
for EXPERIMENTS.md.

Each run also happens under the flight recorder's cycle profiler (zero
perturbation, see ``repro.obs``), so ``record_report`` can write a
machine-readable ``reports/<id>.json`` record next to the text report
and keep the repo-root ``BENCH_results.json`` aggregate current.  The
result cache is deliberately not consulted: a benchmark that returned
a cached result would time nothing and observe nothing.
"""

from __future__ import annotations

import pathlib
import time
from typing import Dict

import pytest

from repro import obs
from repro.analysis import engine, specs
from repro.obs import metrics

REPORTS_DIR = pathlib.Path(__file__).parent / "reports"
REPO_ROOT = pathlib.Path(__file__).parent.parent
BENCH_RESULTS = REPO_ROOT / "BENCH_results.json"

#: Wall seconds per experiment, accumulated across the session and
#: written into BENCH_results.json's (nondeterministic) timings section.
_TIMINGS: Dict[str, float] = {}


@pytest.fixture(scope="session")
def report_dir() -> pathlib.Path:
    REPORTS_DIR.mkdir(exist_ok=True)
    return REPORTS_DIR


@pytest.fixture(autouse=True)
def _observe_experiments():
    """Profile every Simulator the benchmark's experiment boots."""
    obs.enable_global_observability(profile=True)
    try:
        yield
    finally:
        obs.disable_global_observability()


@pytest.fixture
def record_report(report_dir):
    """Save an experiment's report (text + JSON) and echo it."""

    def _record(result):
        path = report_dir / f"{result.experiment}.txt"
        body = result.report
        if result.notes:
            body += f"\n  notes: {result.notes}"
        body += f"\n  shape_holds: {result.shape_holds}\n"
        path.write_text(body)
        observed = obs.drain_global_observed()
        record = metrics.experiment_record(
            result, observed, spec=specs.SPECS[result.experiment]
        )
        metrics.write_experiment_record(record, report_dir)
        metrics.write_bench_results(
            report_dir, BENCH_RESULTS, timings=dict(_TIMINGS)
        )
        print()
        print(body)
        return result

    return _record


def run_spec(benchmark, experiment_id: str):
    """Execute one spec through the engine under pytest-benchmark."""
    spec = specs.SPECS[experiment_id]
    start = time.monotonic()
    result = benchmark.pedantic(
        engine.execute, args=(spec,), rounds=1, iterations=1
    )
    _TIMINGS[experiment_id] = time.monotonic() - start
    return result
