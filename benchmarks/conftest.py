"""Shared helpers for the benchmark suite.

Every benchmark runs one experiment from
:mod:`repro.analysis.experiments` exactly once (``benchmark.pedantic``
with one round — the experiments are deterministic simulations, so
statistical repetition only wastes time), asserts the paper's
qualitative shape, and archives the human-readable report under
``benchmarks/reports/`` for EXPERIMENTS.md.

Each run also happens under the flight recorder's cycle profiler (zero
perturbation, see ``repro.obs``), so ``record_report`` can write a
machine-readable ``reports/<id>.json`` record next to the text report
and keep the repo-root ``BENCH_results.json`` aggregate current.
"""

from __future__ import annotations

import pathlib

import pytest

from repro import obs
from repro.obs import metrics

REPORTS_DIR = pathlib.Path(__file__).parent / "reports"
REPO_ROOT = pathlib.Path(__file__).parent.parent
BENCH_RESULTS = REPO_ROOT / "BENCH_results.json"


@pytest.fixture(scope="session")
def report_dir() -> pathlib.Path:
    REPORTS_DIR.mkdir(exist_ok=True)
    return REPORTS_DIR


@pytest.fixture(autouse=True)
def _observe_experiments():
    """Profile every Simulator the benchmark's experiment boots."""
    obs.enable_global_observability(profile=True)
    try:
        yield
    finally:
        obs.disable_global_observability()


@pytest.fixture
def record_report(report_dir):
    """Save an experiment's report (text + JSON) and echo it."""

    def _record(result):
        path = report_dir / f"{result.experiment}.txt"
        body = result.report
        if result.notes:
            body += f"\n  notes: {result.notes}"
        body += f"\n  shape_holds: {result.shape_holds}\n"
        path.write_text(body)
        observed = obs.drain_global_observed()
        record = metrics.experiment_record(result, observed)
        metrics.write_experiment_record(record, report_dir)
        metrics.write_bench_results(report_dir, BENCH_RESULTS)
        print()
        print(body)
        return result

    return _record


def run_once(benchmark, fn, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, kwargs=kwargs, rounds=1, iterations=1)
