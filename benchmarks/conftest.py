"""Shared helpers for the benchmark suite.

Every benchmark runs one experiment from
:mod:`repro.analysis.experiments` exactly once (``benchmark.pedantic``
with one round — the experiments are deterministic simulations, so
statistical repetition only wastes time), asserts the paper's
qualitative shape, and archives the human-readable report under
``benchmarks/reports/`` for EXPERIMENTS.md.
"""

from __future__ import annotations

import pathlib

import pytest

REPORTS_DIR = pathlib.Path(__file__).parent / "reports"


@pytest.fixture(scope="session")
def report_dir() -> pathlib.Path:
    REPORTS_DIR.mkdir(exist_ok=True)
    return REPORTS_DIR


@pytest.fixture
def record_report(report_dir):
    """Save an experiment's report and echo it to the terminal."""

    def _record(result):
        path = report_dir / f"{result.experiment}.txt"
        body = result.report
        if result.notes:
            body += f"\n  notes: {result.notes}"
        body += f"\n  shape_holds: {result.shape_holds}\n"
        path.write_text(body)
        print()
        print(body)
        return result

    return _record


def run_once(benchmark, fn, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, kwargs=kwargs, rounds=1, iterations=1)
