"""E4 — §6.1: hand-scheduled assembly miss handlers vs the C handlers.

Paper: context switch -33%, communication latencies -15%, user
wall-clock -15%.
"""

from conftest import run_spec


def test_fast_reload_handlers(benchmark, record_report):
    result = run_spec(benchmark, "E4")
    record_report(result)
    assert result.shape_holds
    assert result.measured["ctxsw_ratio"] < 0.8
    assert result.measured["pipe_latency_ratio"] < 0.92
    assert result.measured["compile_ratio"] < 1.0
