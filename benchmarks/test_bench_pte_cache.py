"""E9 — §8: cache misuse on page tables.

Paper: the worst-case refill path makes 34 memory accesses and can
create up to 18 new cache entries; uncaching the page tables removes
that pollution.
"""

from conftest import run_spec


def test_page_table_cache_pollution(benchmark, record_report):
    result = run_spec(benchmark, "E9")
    record_report(result)
    assert result.shape_holds
    assert 30 <= result.measured["worst_case_refs"] <= 36
    assert 1 <= result.measured["new_cache_lines_per_refill"] <= 18
    assert (
        result.measured["storm_uncached_misses"]
        < result.measured["storm_cached_misses"]
    )
