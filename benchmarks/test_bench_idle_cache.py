"""E14 — §10.1 (future work): running the idle task cache-inhibited.

The paper conjectures that uncaching (or locking the cache against) the
idle task avoids evicting useful entries "just to speed up the idle
task".  The ablation compares the cached-clearing idle task with and
without ``idle_uncached``.
"""

from conftest import run_spec


def test_uncached_idle_task_ablation(benchmark, record_report):
    result = run_spec(benchmark, "E14")
    record_report(result)
    assert result.shape_holds
    assert result.measured["busy_ratio"] < 1.0
