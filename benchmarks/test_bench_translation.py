"""E1 — Figure 1: the PowerPC hash-table translation datapath."""

from conftest import run_spec


def test_figure1_translation_datapath(benchmark, record_report):
    result = run_spec(benchmark, "E1")
    record_report(result)
    assert result.shape_holds
    assert result.measured["va_bits"] <= 52
    assert result.measured["segment"] == 3
