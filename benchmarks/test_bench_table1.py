"""E5/E13 — Table 1 and §6.2: removing the hash table on the 603.

Paper's Table 1: the 180MHz 603 with direct PTE-tree reloads keeps pace
with the 185/200MHz 604s despite half the TLB and cache; the compile
improves ~5% over the htab-emulation 603.
"""

from conftest import run_spec


def test_table1_lmbench_summary(benchmark, record_report):
    result = run_spec(benchmark, "E5")
    record_report(result)
    assert result.shape_holds
    rows = result.measured
    m603 = rows["603 180MHz (no htab)"]
    m604 = rows["604 185MHz"]
    # The headline: the no-htab 603 keeps pace with the 604.
    assert m603["pipe_bw"] >= 0.75 * m604["pipe_bw"]
    assert m603["reread"] >= 0.75 * m604["reread"]


def test_no_htab_compile(benchmark, record_report):
    result = run_spec(benchmark, "E13")
    record_report(result)
    assert result.shape_holds
    # Removing the hash table must help, in the paper's ~5% band
    # (we accept 0.85..1.0).
    assert 0.85 <= result.measured["compile_ratio"] < 1.0
