"""E3 — §5.2: hash-table occupancy vs the VSID scatter constant.

Paper: 37% use with the naive VSIDs, 57% with the tuned non-power-of-two
constant, 75% after removing kernel PTEs from the table.
"""

from conftest import run_spec


def test_vsid_scatter_occupancy(benchmark, record_report):
    result = run_spec(benchmark, "E3")
    record_report(result)
    assert result.shape_holds
    values = list(result.measured.values())
    # Power-of-two aliasing must cost at least 25 points of occupancy
    # against the tuned constant (paper: 37% vs 57%+).
    assert values[2] - values[0] > 0.25
