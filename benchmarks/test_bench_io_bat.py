"""E12 — §5.1: BAT-mapping the I/O space.

Paper: "Using the BAT registers to map the I/O space did not improve
these measures significantly" — I/O TLB entries are too rarely live.
"""

from conftest import run_spec


def test_io_bat_no_significant_gain(benchmark, record_report):
    result = run_spec(benchmark, "E12")
    record_report(result)
    assert result.shape_holds
    assert 0.95 < result.measured["cycle_ratio"] < 1.02
