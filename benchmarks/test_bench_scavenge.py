"""E16 — §7's rejected design: on-demand zombie scavenging.

"Performance would also be inconsistent if we had to occasionally scan
the hash table and invalidate zombie PTEs when we needed more space" —
the reason the reclaim moved into the idle task.  The ablation measures
per-access latency under both designs on an eviction-pressured table:
the means are similar, but the on-demand design's worst case spikes by
an order of magnitude.
"""

from conftest import run_spec


def test_on_demand_scavenge_is_inconsistent(benchmark, record_report):
    result = run_spec(benchmark, "E16")
    record_report(result)
    assert result.shape_holds
    assert result.measured["demand_worst"] > 3 * result.measured["idle_worst"]
    assert result.measured["scavenge_bursts"] > 0
