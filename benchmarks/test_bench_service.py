"""E20/E21 — request-level telemetry: open-loop SLO and capacity curves.

Extension beyond the paper: the §7 zombie economics measured
request-side.  A seeded open-loop arrival schedule drives per-request
exec churn (one short-lived mm context per request under the lazy
kernel) across the 2-CPU executive; latency clocks start at the
*scheduled* arrival, so saturation lands in the percentiles instead of
stretching the schedule (coordinated omission).  Expected shape: every
request completes, percentiles are ordered, zombies accrue under every
lazy strategy (deepest under mmap-reuse, which skips munmap flushes),
and the capacity ladder crosses a p99 knee where throughput saturates
below the offered load.
"""

from conftest import run_spec


def test_service_slo_at_knee(benchmark, record_report):
    result = run_spec(benchmark, "E20")
    record_report(result)
    assert result.shape_holds
    rows = result.measured["rows"]
    broadcast, reuse = rows["broadcast"], rows["mmap_reuse"]
    for row in (broadcast, reuse):
        # Open loop: the offered schedule was fully served ...
        assert row["completed"] == row["requests"]
        slo = row["slo"]
        # ... and the tail is a real distribution, not a constant.
        assert slo["latency_p50_us"] <= slo["latency_p99_us"]
        assert slo["latency_p99_us"] <= slo["latency_p999_us"]
        # Per-request exec churn leaves zombie entries behind.
        assert row["zombie_peak"] > 0
    # Skipped munmap flushes deepen the zombie backlog.
    assert reuse["zombie_peak"] > broadcast["zombie_peak"]


def test_service_capacity_curves(benchmark, record_report):
    result = run_spec(benchmark, "E21")
    record_report(result)
    assert result.shape_holds
    doc = result.measured["capacity"]
    assert doc["loads"] == sorted(doc["loads"])
    for curve in doc["curves"]:
        base, top = curve["points"][0], curve["points"][-1]
        # The knee: the open-loop tail explodes past capacity while
        # the completion rate stops tracking the offered rate.
        assert top["latency_p99_us"] > 3 * base["latency_p99_us"]
        assert top["throughput_per_s"] < top["offered_per_s"]
        assert top["zombie_peak"] > base["zombie_peak"]
