"""E8 — §7: the tunable range-flush cutoff.

Paper: with a 20-page cutoff, mmap latency improves ~80x "at no cost to
the TLB hit rate".
"""

from conftest import run_spec


def test_range_flush_cutoff_sweep(benchmark, record_report):
    result = run_spec(benchmark, "E8")
    record_report(result)
    assert result.shape_holds
    assert result.measured["improvement"] > 40
    # "No more or fewer TLB misses occurred with the tunable parameter."
    assert (
        result.measured["misses_cutoff20"]
        <= result.measured["misses_search"] * 1.10
    )
