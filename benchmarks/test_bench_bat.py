"""E2 — §5.1: BAT-mapping the kernel (kernel compile).

Paper: TLB misses 219M -> 197M (-10%), hash misses 1M -> 813k (-20%),
kernel TLB slots ~1/3 of the TLB -> at most 4, compile 10 -> 8 minutes.
"""

from conftest import run_spec


def test_bat_kernel_mapping(benchmark, record_report):
    result = run_spec(benchmark, "E2")
    record_report(result)
    assert result.shape_holds
    # The TLB-miss reduction is in the paper's band (we allow down to
    # -30%: the simulated kernel footprint is relatively larger).
    assert 0.65 <= result.measured["tlb_ratio"] <= 0.99
    # The kernel's TLB footprint collapses to the paper's "<= 4 slots".
    assert result.measured["kernel_tlb_slots_after"] <= 4
