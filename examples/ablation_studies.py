#!/usr/bin/env python3
"""The §10 future-work and rejected-design ablations.

Three studies the paper discusses but never ships:

* E14 — running the idle task cache-inhibited (§10.1);
* E15 — dcbt cache preloads in the context-switch path (§10.2);
* E16 — the *rejected* on-demand zombie scavenge (§7's zombie-list
  design, abandoned because "performance would also be inconsistent").

Run:  python examples/ablation_studies.py
"""

from repro.analysis import engine, specs


def main():
    for experiment_id in ("E14", "E15", "E16"):
        result = engine.execute(specs.SPECS[experiment_id])
        print(result.report)
        print(f"  shape_holds: {result.shape_holds}")
        print()
    print("E16 is the paper's §7 design discussion made measurable: the")
    print("on-demand scavenger matches the idle-task reclaimer on MEAN")
    print("latency but spikes an order of magnitude on the worst case —")
    print("the 'inconsistent performance' that pushed the work into the")
    print("idle task and gave the paper its title.")


if __name__ == "__main__":
    main()
