#!/usr/bin/env python3
"""The title experiment: optimizing the idle task (§7 + §9).

Runs the multiprogramming mix with and without the idle-task zombie
reclaim, then the page-clearing policy ladder, printing the hash-table
health metrics the paper reports (evict ratio, live/zombie occupancy)
and the compile-time effect of each clearing policy.

This is the longest-running example (~1 minute).

Run:  python examples/idle_task_study.py
"""

from repro import IdlePageClearPolicy, KernelConfig, M604_185, boot
from repro.analysis.tables import format_table
from repro.workloads.kbuild import CACHE_RESIDENT, kernel_compile
from repro.workloads.mixes import multiprogram_mix


def zombie_study():
    print("=== §7: idle-task zombie reclaim (multiprogramming mix) ===")
    rows = []
    for label, reclaim in (("no reclaim", False), ("idle reclaim", True)):
        config = KernelConfig.optimized().with_changes(
            idle_zombie_reclaim=reclaim
        )
        result = multiprogram_mix(
            boot(M604_185, config),
            rounds=100, churn_every=6, think_cycles=120000, label=label,
        )
        rows.append([
            label,
            int(result.valid_entries),
            int(result.live_entries),
            int(result.zombie_entries),
            f"{result.evict_ratio:.2f}",
            f"{result.htab_hit_rate:.2f}",
            result.zombies_reclaimed,
        ])
    print(format_table(
        ["config", "valid PTEs", "live", "zombie", "evict/reload",
         "htab hit", "reclaimed"],
        rows,
    ))
    print("paper: evict ratio >90% -> ~30%; the full 16384-slot table")
    print("fills with zombies without reclaim\n")


def clearing_study():
    print("=== §9: idle-task page clearing (scaled kernel compile) ===")
    rows = []
    baseline = None
    for policy in (
        IdlePageClearPolicy.OFF,
        IdlePageClearPolicy.CACHED_LIST,
        IdlePageClearPolicy.UNCACHED_NO_LIST,
        IdlePageClearPolicy.UNCACHED_LIST,
    ):
        config = KernelConfig.optimized().with_changes(
            idle_page_clear=policy
        )
        result = kernel_compile(
            boot(M604_185, config), units=4, profile=CACHE_RESIDENT,
            label=policy.value,
        )
        if baseline is None:
            baseline = result.wall_ms
        rows.append([
            policy.value,
            f"{result.wall_ms:.1f}",
            f"{result.wall_ms / baseline:.3f}x",
            result.pages_precleared,
            result.precleared_used,
        ])
    print(format_table(
        ["policy", "compile ms", "vs OFF", "pages precleared", "used"],
        rows,
    ))
    print("paper: cached clearing made the compile ~2x slower; uncached")
    print("without the list changed nothing; uncached + list was faster")


def main():
    zombie_study()
    clearing_study()


if __name__ == "__main__":
    main()
