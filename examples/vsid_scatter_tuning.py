#!/usr/bin/env python3
"""§5.2's tuning session, replayed: find the VSID scatter constant.

Sweeps scatter constants the way the authors did ("adjusting the
constant until hot-spots disappeared"), printing the hash-table
occupancy and hot-spot metrics for each.  Powers of two alias in the low
hash bits; small odd constants spread perfectly.

Run:  python examples/vsid_scatter_tuning.py   (~1 minute)
"""

from repro.analysis.sweep import ascii_bars, sweep_vsid_scatter


def main():
    # Constants below 12 would alias neighbouring PIDs' segments and are
    # rejected by the allocator; the sweep starts at 16 (the shift-style
    # naive choice) and includes the paper-era odd candidates.
    constants = [16, 32, 64, 256, 1024, 2048, 13, 37, 113, 897]
    points = sweep_vsid_scatter(constants)
    points.sort(key=lambda point: point.occupancy)

    print("hash-table occupancy by VSID scatter constant")
    print("(same insert load for every constant; higher is better)\n")
    labels = [
        f"pid*{point.constant:<5}{'pow2' if point.is_power_of_two else '    '}"
        for point in points
    ]
    print(ascii_bars(labels, [point.occupancy for point in points]))
    print()
    print(f"{'constant':>10}{'occupancy':>11}{'evicts':>9}"
          f"{'hot-spot':>10}{'entropy':>9}")
    for point in sorted(points, key=lambda p: p.constant):
        print(f"{point.constant:>10}{point.occupancy:>10.1%}"
              f"{point.evicts:>9}{point.hot_spot_ratio:>10.2f}"
              f"{point.entropy:>9.3f}")
    print()
    best = max(points, key=lambda point: point.occupancy)
    print(f"best constant in this sweep: {best.constant} "
          f"({best.occupancy:.0%} occupancy)")
    print("paper: 'multiplying the process id by a small non-power-of-two")
    print("constant proved to be necessary to scatter PTEs'")


if __name__ == "__main__":
    main()
