#!/usr/bin/env python3
"""§7 in action: why mmap() latency fell from 3240 us to 41 us.

Sweeps the flush strategy and the range-flush cutoff on the lat_mmap
workload and prints the paper's headline numbers next to ours, plus the
hash-table zombie accounting that makes the lazy strategy work.

Run:  python examples/mmap_flush_tuning.py
"""

from repro import KernelConfig, M603_133, M604_185, VsidPolicy, boot
from repro.analysis.tables import format_table
from repro.workloads.lmbench import mmap_latency


def measure(spec, config):
    sim = boot(spec, config)
    latency = mmap_latency(sim)
    live, zombie = sim.kernel.htab_zombie_stats()
    return latency, sim.machine.monitor["vsid_bump"], zombie


def main():
    lazy = KernelConfig.optimized()
    search = lazy.with_changes(
        lazy_vsid_flush=False, vsid_policy=VsidPolicy.PID_SCATTER
    )

    rows = []
    for spec, paper_search, paper_lazy in (
        (M603_133, 3240, 41),
        (M604_185, 2733, 33),
    ):
        search_us, _, _ = measure(spec, search)
        lazy_us, bumps, zombies = measure(spec, lazy)
        rows.append([
            spec.name,
            search_us,
            paper_search,
            lazy_us,
            paper_lazy,
            f"{search_us / lazy_us:.0f}x",
            bumps,
            zombies,
        ])

    print(format_table(
        ["machine", "search us", "(paper)", "lazy us", "(paper)",
         "improvement", "VSID bumps", "zombie PTEs left"],
        rows,
        title="lat_mmap, 4 MB file region (paper: ~80x improvement)",
    ))
    print()
    print("The lazy kernel never searches the hash table: it gives the")
    print("process fresh VSIDs (one bump per mmap+munmap pair) and leaves")
    print("the old PTEs behind as zombies for the idle task to reclaim.")

    print()
    print("Cutoff sweep on the 604 (small flushes still use the search):")
    sweep_rows = []
    for cutoff in (1, 5, 20, 100):
        config = lazy.with_changes(range_flush_cutoff=cutoff)
        latency, bumps, _ = measure(M604_185, config)
        sweep_rows.append([f"{cutoff} pages", latency, bumps])
    print(format_table(["cutoff", "lat_mmap us", "VSID bumps"], sweep_rows))


if __name__ == "__main__":
    main()
