#!/usr/bin/env python3
"""Quickstart: boot a simulated PowerPC system and watch the MMU work.

Boots two kernels on the same 185 MHz 604 machine model — the paper's
optimized Linux/PPC and the original unoptimized kernel — runs the same
small program on each, and prints where the cycles went.

Run:  python examples/quickstart.py
"""

from repro import KernelConfig, M604_185, boot
from repro.params import PAGE_SIZE


def program(task):
    """A small process: touch a working set, make syscalls, use a pipe."""
    yield ("getpid",)
    # Fault in and revisit a 16-page working set.
    for page in range(16):
        yield ("touch", 0x10000000 + page * PAGE_SIZE, 8, True)
    for _ in range(10):
        for page in range(16):
            yield ("touch", 0x10000000 + page * PAGE_SIZE, 8, False)
    # Map, use, and unmap a 64-page region (a §7-sized range flush).
    addr = yield ("mmap", 64 * PAGE_SIZE, None, None)
    for page in range(0, 64, 4):
        yield ("touch", addr + page * PAGE_SIZE, 4, True)
    yield ("munmap", addr, 64 * PAGE_SIZE)
    # Talk to ourselves through a pipe.
    pipe = yield ("pipe",)
    for _ in range(20):
        yield ("pipe_write", pipe, 64, 0x10000000)
        yield ("pipe_read", pipe, 64, 0x10000000)
    yield ("exit", 0)


def run(label, config):
    sim = boot(M604_185, config)
    task = sim.kernel.spawn("demo", text_pages=8, data_pages=80)
    sim.executive.add(task, program(task))
    sim.run()

    counters = sim.counters()
    print(f"--- {label} on {sim.spec.name} ---")
    print(f"  wall clock          {sim.elapsed_us():10.1f} us")
    print(f"  TLB misses          {counters.get('itlb_miss', 0) + counters.get('dtlb_miss', 0):10d}")
    print(f"  hash-table reloads  {counters.get('htab_reload', 0):10d}")
    print(f"  page faults         {counters.get('page_fault_minor', 0):10d}")
    print(f"  BAT translations    {counters.get('bat_translation', 0):10d}")
    print("  cycle breakdown:")
    for category, cycles in sorted(
        sim.breakdown().items(), key=lambda item: -item[1]
    )[:6]:
        print(f"    {category:<16} {cycles:10d}")
    print()
    return sim.elapsed_us()


def main():
    optimized = run("optimized Linux/PPC", KernelConfig.optimized())
    unoptimized = run("unoptimized Linux/PPC", KernelConfig.unoptimized())
    print(f"speedup from the paper's optimizations: "
          f"{unoptimized / optimized:.2f}x")


if __name__ == "__main__":
    main()
