#!/usr/bin/env python3
"""Figure 1, live: follow one address through the PowerPC MMU.

Decomposes an effective address into its architected fields, computes
both hash functions, then performs the translation on a booted machine
three times — through the page-fault path, the hardware hash walk, and
the TLB — printing what the hardware did at each step.

Run:  python examples/figure1_walkthrough.py
"""

from repro import KernelConfig, M604_185, boot
from repro.hw.addr import decompose_ea, make_virtual_address
from repro.hw.hashtable import primary_hash, secondary_hash


def main():
    sim = boot(M604_185, KernelConfig.optimized())
    kernel = sim.kernel
    task = kernel.spawn("fig1", data_pages=8)
    kernel.switch_to(task)

    ea = 0x10002ABC  # data segment, page 2, offset 0xABC
    fields = decompose_ea(ea)
    vsid = task.mm.user_vsids[fields.segment]
    va = make_virtual_address(vsid, ea)

    print("32-Bit Effective Address")
    print(f"  EA = 0x{ea:08x}")
    print(f"    segment register #   {fields.segment}  (4 bits)")
    print(f"    page index           0x{fields.page_index:04x}  (16 bits)")
    print(f"    byte offset          0x{fields.offset:03x}  (12 bits)")
    print()
    print("Segment registers")
    print(f"    SR[{fields.segment}] holds VSID 0x{vsid:06x}  (24 bits)")
    print()
    print("52-Bit Virtual Address")
    print(f"    VA = 0x{va.value:013x}")
    print()
    print("Hashed page table")
    h1 = primary_hash(vsid, fields.page_index)
    h2 = secondary_hash(vsid, fields.page_index)
    groups = sim.machine.htab.groups
    print(f"    primary hash   0x{h1:05x} -> PTEG {h1 & (groups - 1)}")
    print(f"    secondary hash 0x{h2:05x} -> PTEG {h2 & (groups - 1)}")
    print()

    for attempt in range(1, 4):
        snapshot = sim.machine.monitor.snapshot()
        start = sim.machine.clock.snapshot()
        result = sim.machine.translate(ea, write=(attempt == 1))
        cycles = sim.machine.clock.since(start)
        events = sim.machine.monitor.delta(snapshot)
        print(f"translation #{attempt}: path={result.path:<8} "
              f"PA=0x{result.pa:08x}  {cycles} cycles  events={events}")
        if attempt == 1:
            # Drop the TLB entry so attempt 2 exercises the hardware walk.
            sim.machine.invalidate_tlbs()

    print()
    print("#1 faulted the page in (software refill through the Linux PTE")
    print("tree), #2 hit the hash table via the 604's hardware walk, and")
    print("#3 hit the TLB — the three levels of Figure 1.")


if __name__ == "__main__":
    main()
