#!/usr/bin/env python3
"""Reproduce the paper's three LmBench tables in one run.

Prints Table 1 (hash table vs direct reloads on the 603), Table 2 (lazy
range flushing), and Table 3 (Linux/PPC vs the other operating systems),
with the paper's numbers alongside for comparison.

This runs every LmBench point on twelve booted systems (~1-2 minutes).

Run:  python examples/lmbench_comparison.py
"""

from repro.analysis import experiments


def main():
    for runner, header in (
        (experiments.run_e5, "TABLE 1"),
        (experiments.run_e6, "TABLE 2"),
        (experiments.run_e11, "TABLE 3"),
    ):
        result = runner()
        print(f"===== {header}: {result.title} =====")
        print(result.report)
        print(f"  paper shape holds: {result.shape_holds}")
        if result.notes:
            print(f"  note: {result.notes}")
        print()


if __name__ == "__main__":
    main()
