#!/usr/bin/env python3
"""Reproduce the paper's three LmBench tables in one run.

Prints Table 1 (hash table vs direct reloads on the 603), Table 2 (lazy
range flushing), and Table 3 (Linux/PPC vs the other operating systems),
with the paper's numbers alongside for comparison.

This runs every LmBench point on twelve booted systems (~1-2 minutes).

Run:  python examples/lmbench_comparison.py
"""

from repro.analysis import engine, specs


def main():
    for experiment_id, header in (
        ("E5", "TABLE 1"),
        ("E6", "TABLE 2"),
        ("E11", "TABLE 3"),
    ):
        result = engine.execute(specs.SPECS[experiment_id])
        print(f"===== {header}: {result.title} =====")
        print(result.report)
        print(f"  paper shape holds: {result.shape_holds}")
        if result.notes:
            print(f"  note: {result.notes}")
        print()


if __name__ == "__main__":
    main()
