"""§5.1's per-process framebuffer BAT (the sketched ioremap mechanism)."""

import pytest

from repro.errors import SyscallError
from repro.kernel.config import KernelConfig
from repro.kernel.kernel import IO_BASE_EA, USER_IO_BAT_SLOT, USER_IO_WINDOW
from repro.params import M604_185
from repro.sim.simulator import Simulator


@pytest.fixture
def sim():
    return Simulator(M604_185, KernelConfig.optimized())


def ioremapped_task(sim, name="x", offset=0, size=2 * 1024 * 1024):
    task = sim.kernel.spawn(name, data_pages=8)
    sim.kernel.switch_to(task)
    ea = sim.kernel.sys_ioremap_bat(task, offset, size)
    return task, ea


class TestMapping:
    def test_window_translates_through_bat(self, sim):
        _task, ea = ioremapped_task(sim)
        result = sim.machine.translate(ea + 0x4000)
        assert result.path == "bat"
        assert result.pa == IO_BASE_EA + 0x4000

    def test_window_is_cache_inhibited(self, sim):
        _task, ea = ioremapped_task(sim)
        before = sim.machine.dcache.stats.bypasses
        sim.machine.data_access(ea, write=True)
        assert sim.machine.dcache.stats.bypasses == before + 1

    def test_no_tlb_entries_used(self, sim):
        _task, ea = ioremapped_task(sim)
        for page in range(16):
            sim.machine.data_access(ea + page * 4096, write=True)
        assert len(sim.machine.dtlb) == 0

    def test_offset_mapping(self, sim):
        _task, ea = ioremapped_task(sim, offset=2 * 1024 * 1024)
        result = sim.machine.translate(ea)
        assert result.pa == IO_BASE_EA + 2 * 1024 * 1024

    def test_rejects_unaligned_or_oversized(self, sim):
        task = sim.kernel.spawn("bad")
        sim.kernel.switch_to(task)
        with pytest.raises(SyscallError):
            sim.kernel.sys_ioremap_bat(task, 1024, 2 * 1024 * 1024)
        with pytest.raises(SyscallError):
            sim.kernel.sys_ioremap_bat(task, 0, 64 * 1024 * 1024)


class TestPerProcessSwitching:
    def test_bat_switched_with_the_process(self, sim):
        kernel = sim.kernel
        xserver, ea = ioremapped_task(sim, "xserver", offset=0)
        other = kernel.spawn("other", data_pages=4)
        kernel.switch_to(other)
        # The other process has no window: DBAT[2] is clear.
        assert sim.machine.bats.dbats[USER_IO_BAT_SLOT].valid is False
        kernel.switch_to(xserver)
        assert sim.machine.translate(ea).path == "bat"

    def test_two_processes_different_windows(self, sim):
        kernel = sim.kernel
        first, ea1 = ioremapped_task(sim, "a", offset=0)
        second, _ = ioremapped_task(
            sim, "b", offset=4 * 1024 * 1024, size=4 * 1024 * 1024
        )
        kernel.switch_to(first)
        assert sim.machine.translate(ea1).pa == IO_BASE_EA
        kernel.switch_to(second)
        assert (
            sim.machine.translate(USER_IO_WINDOW).pa
            == IO_BASE_EA + 4 * 1024 * 1024
        )

    def test_exec_drops_the_window(self, sim):
        kernel = sim.kernel
        task, _ = ioremapped_task(sim)
        kernel.sys_exec(task, "fresh")
        assert task.mm.io_bat is None
        assert sim.machine.bats.dbats[USER_IO_BAT_SLOT].valid is False
