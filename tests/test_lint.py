"""Tests for ``repro.lint`` — the domain-aware static analysis.

Three tiers:

* fixture pairs — for every rule, a violating snippet caught at the
  right line and a clean snippet that passes;
* mutation tests — delete a taxonomy entry / event-registry name /
  suite registration from a *copy* of the real package and assert the
  closure rules fire (proving the gates are live, not vacuous);
* self-clean — the shipped package lints clean, which is what CI gates.
"""

import json
import re
import shutil
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.lint import LintEngine, Baseline, KNOWN_RULE_IDS, rule_catalog
from repro.lint.cli import default_root, find_baseline
from repro.lint.engine import ALL_RULES
from repro.lint.pragmas import parse_pragmas


def build_tree(tmp_path, files):
    """Write ``{rel: source}`` under a package dir named ``repro``."""
    root = tmp_path / "repro"
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return root


def run_lint(tmp_path, files, rules=None):
    return LintEngine(build_tree(tmp_path, files), lint_rules=rules).run()


def single_rule(rule_id):
    (rule,) = [r for r in ALL_RULES if r.id == rule_id]
    return [rule]


def findings_for(result, rule_id):
    return [f for f in result.findings if f.rule == rule_id]


# -- determinism rules -------------------------------------------------------


class TestUnseededRandom:
    def test_global_generator_flagged(self, tmp_path):
        result = run_lint(tmp_path, {"kernel/a.py": """\
            import random
            x = random.randint(0, 5)
        """}, rules=single_rule("unseeded-random"))
        (finding,) = result.findings
        assert finding.rule == "unseeded-random"
        assert (finding.path, finding.line) == ("kernel/a.py", 2)

    def test_from_import_flagged(self, tmp_path):
        result = run_lint(tmp_path, {"sim/a.py": """\
            from random import shuffle
        """}, rules=single_rule("unseeded-random"))
        assert [f.line for f in result.findings] == [1]

    def test_unseeded_constructor_flagged(self, tmp_path):
        result = run_lint(tmp_path, {"hw/a.py": """\
            import random
            rng = random.Random()
        """}, rules=single_rule("unseeded-random"))
        assert [f.line for f in result.findings] == [2]

    def test_seeded_rng_clean(self, tmp_path):
        result = run_lint(tmp_path, {"kernel/a.py": """\
            import random
            rng = random.Random(42)
            x = rng.randint(0, 5)
        """}, rules=single_rule("unseeded-random"))
        assert result.findings == []

    def test_outside_simulated_layers_exempt(self, tmp_path):
        result = run_lint(tmp_path, {"lint/a.py": """\
            import random
            x = random.random()
        """}, rules=single_rule("unseeded-random"))
        assert result.findings == []


class TestWallClock:
    def test_time_time_flagged(self, tmp_path):
        result = run_lint(tmp_path, {"kernel/a.py": """\
            import time
            t = time.time()
        """}, rules=single_rule("wall-clock"))
        (finding,) = result.findings
        assert (finding.rule, finding.line) == ("wall-clock", 2)

    def test_from_time_import_flagged(self, tmp_path):
        result = run_lint(tmp_path, {"sim/a.py": """\
            from time import monotonic
        """}, rules=single_rule("wall-clock"))
        assert [f.line for f in result.findings] == [1]

    def test_datetime_now_flagged(self, tmp_path):
        result = run_lint(tmp_path, {"workloads/a.py": """\
            import datetime
            t = datetime.datetime.now()
        """}, rules=single_rule("wall-clock"))
        assert [f.line for f in result.findings] == [2]

    def test_check_layer_may_report_wall_time(self, tmp_path):
        result = run_lint(tmp_path, {"check/runner.py": """\
            import time
            started = time.monotonic()
        """}, rules=single_rule("wall-clock"))
        assert result.findings == []


class TestSetIteration:
    def test_set_literal_iteration_flagged(self, tmp_path):
        result = run_lint(tmp_path, {"kernel/a.py": """\
            for x in {1, 2, 3}:
                print(x)
        """}, rules=single_rule("set-iteration"))
        (finding,) = result.findings
        assert (finding.rule, finding.line) == ("set-iteration", 1)

    def test_known_set_local_flagged(self, tmp_path):
        result = run_lint(tmp_path, {"kernel/a.py": """\
            def f(items):
                pending = set(items)
                out = []
                for x in pending:
                    out.append(x)
                return out
        """}, rules=single_rule("set-iteration"))
        assert [f.line for f in result.findings] == [4]

    def test_known_set_self_attr_flagged(self, tmp_path):
        result = run_lint(tmp_path, {"kernel/a.py": """\
            class K:
                def __init__(self):
                    self.live = set()

                def drain(self):
                    return [x for x in self.live]
        """}, rules=single_rule("set-iteration"))
        assert [f.line for f in result.findings] == [6]

    def test_sorted_iteration_clean(self, tmp_path):
        result = run_lint(tmp_path, {"kernel/a.py": """\
            def f(items):
                pending = set(items)
                return [x for x in sorted(pending)]
        """}, rules=single_rule("set-iteration"))
        assert result.findings == []

    def test_reassigned_to_list_clean(self, tmp_path):
        result = run_lint(tmp_path, {"kernel/a.py": """\
            def f(items):
                pending = set(items)
                pending = sorted(pending)
                for x in pending:
                    print(x)
        """}, rules=single_rule("set-iteration"))
        assert result.findings == []


# -- layering ----------------------------------------------------------------


class TestLayering:
    def test_hw_importing_kernel_flagged(self, tmp_path):
        result = run_lint(tmp_path, {"hw/a.py": """\
            from repro.kernel.kernel import Kernel
        """}, rules=single_rule("layering"))
        (finding,) = result.findings
        assert (finding.rule, finding.line) == ("layering", 1)
        assert "kernel" in finding.message

    def test_relative_import_resolved(self, tmp_path):
        result = run_lint(tmp_path, {"hw/a.py": """\
            from ..obs import events
        """}, rules=single_rule("layering"))
        assert [f.rule for f in result.findings] == ["layering"]

    def test_kernel_importing_sim_flagged(self, tmp_path):
        result = run_lint(tmp_path, {"kernel/a.py": """\
            import repro.sim.process
        """}, rules=single_rule("layering"))
        assert [f.line for f in result.findings] == [1]

    def test_kernel_importing_hw_clean(self, tmp_path):
        result = run_lint(tmp_path, {"kernel/a.py": """\
            from repro.hw.clock import CycleLedger
        """}, rules=single_rule("layering"))
        assert result.findings == []

    def test_only_cli_imports_lint(self, tmp_path):
        result = run_lint(tmp_path, {
            "obs/a.py": "from repro.lint import LintEngine\n",
            "__main__.py": "from repro.lint import cli\n",
        }, rules=single_rule("layering"))
        assert [f.path for f in result.findings] == ["obs/a.py"]


# -- deleted shims -----------------------------------------------------------


class TestShimImport:
    def test_sim_clock_shim_flagged(self, tmp_path):
        result = run_lint(tmp_path, {"analysis/a.py": """\
            import repro.sim.clock
        """}, rules=single_rule("no-shim-import"))
        (finding,) = result.findings
        assert (finding.rule, finding.line) == ("no-shim-import", 1)
        assert "repro.hw.clock" in finding.message

    def test_experiments_shim_from_import_flagged(self, tmp_path):
        result = run_lint(tmp_path, {"obs/a.py": """\
            from repro.analysis.experiments import SPECS
        """}, rules=single_rule("no-shim-import"))
        (finding,) = result.findings
        assert "repro.analysis.specs" in finding.message

    def test_canonical_imports_clean(self, tmp_path):
        result = run_lint(tmp_path, {"analysis/a.py": """\
            from repro.hw.clock import CycleLedger
            from repro.analysis import specs
            from repro.sim.process import Executive
        """}, rules=single_rule("no-shim-import"))
        assert result.findings == []


# -- zero perturbation -------------------------------------------------------


class TestZeroPerturbation:
    def test_foreign_attribute_write_flagged(self, tmp_path):
        result = run_lint(tmp_path, {"obs/a.py": """\
            def attach(machine, tracer):
                machine.tracer = tracer
        """}, rules=single_rule("zero-perturbation"))
        (finding,) = result.findings
        assert (finding.rule, finding.line) == ("zero-perturbation", 2)

    def test_augmented_write_flagged(self, tmp_path):
        result = run_lint(tmp_path, {"check/a.py": """\
            def bump(kernel):
                kernel.epoch += 1
        """}, rules=single_rule("zero-perturbation"))
        assert [f.line for f in result.findings] == [2]

    def test_self_state_clean(self, tmp_path):
        result = run_lint(tmp_path, {"obs/a.py": """\
            class Sampler:
                def __init__(self):
                    self.samples = []
        """}, rules=single_rule("zero-perturbation"))
        assert result.findings == []

    def test_module_singleton_owned_not_foreign(self, tmp_path):
        result = run_lint(tmp_path, {"obs/a.py": """\
            class _State:
                active = False

            _GLOBAL = _State()

            def enable():
                _GLOBAL.active = True
        """}, rules=single_rule("zero-perturbation"))
        assert result.findings == []

    def test_simulation_layers_exempt(self, tmp_path):
        result = run_lint(tmp_path, {"kernel/a.py": """\
            def wire(machine, kernel):
                machine.kernel = kernel
        """}, rules=single_rule("zero-perturbation"))
        assert result.findings == []


# -- hook discipline ---------------------------------------------------------


class TestHookGuard:
    def test_unguarded_hook_call_flagged(self, tmp_path):
        result = run_lint(tmp_path, {"hw/a.py": """\
            def fire(self):
                self.tracer.instant("ctxsw", "kernel")
        """}, rules=single_rule("hook-guard"))
        (finding,) = result.findings
        assert (finding.rule, finding.line) == ("hook-guard", 2)

    def test_if_guard_clean(self, tmp_path):
        result = run_lint(tmp_path, {"kernel/a.py": """\
            def fire(machine):
                if machine.tracer is not None:
                    machine.tracer.instant("ctxsw", "kernel")
        """}, rules=single_rule("hook-guard"))
        assert result.findings == []

    def test_and_chain_guard_clean(self, tmp_path):
        result = run_lint(tmp_path, {"kernel/a.py": """\
            def fire(machine, ok):
                if ok and machine.sanitizer is not None:
                    machine.sanitizer.on_flush()
        """}, rules=single_rule("hook-guard"))
        assert result.findings == []

    def test_wrong_guard_still_flagged(self, tmp_path):
        result = run_lint(tmp_path, {"kernel/a.py": """\
            def fire(machine, other):
                if other.tracer is not None:
                    machine.tracer.instant("ctxsw", "kernel")
        """}, rules=single_rule("hook-guard"))
        assert [f.line for f in result.findings] == [3]


# -- error discipline --------------------------------------------------------


class TestErrorDiscipline:
    def test_bare_except_flagged(self, tmp_path):
        result = run_lint(tmp_path, {"kernel/a.py": """\
            try:
                x = 1
            except:
                pass
        """}, rules=single_rule("error-discipline"))
        (finding,) = result.findings
        assert (finding.rule, finding.line) == ("error-discipline", 3)

    def test_blind_except_without_reraise_flagged(self, tmp_path):
        result = run_lint(tmp_path, {"analysis/a.py": """\
            try:
                x = 1
            except Exception:
                x = 2
        """}, rules=single_rule("error-discipline"))
        assert [f.line for f in result.findings] == [3]

    def test_blind_except_with_reraise_clean(self, tmp_path):
        result = run_lint(tmp_path, {"kernel/a.py": """\
            try:
                x = 1
            except Exception:
                raise
        """}, rules=single_rule("error-discipline"))
        assert result.findings == []

    def test_specific_except_clean(self, tmp_path):
        result = run_lint(tmp_path, {"kernel/a.py": """\
            try:
                x = 1
            except ValueError:
                x = 2
        """}, rules=single_rule("error-discipline"))
        assert result.findings == []


# -- closure rules (fixture trees) -------------------------------------------


TAXONOMY_FILES = {
    "obs/profiler.py": """\
        PATH_CATEGORIES = {
            "mem": "memory",
            "flush": "mmu",
        }
    """,
    "kernel/a.py": """\
        def work(kernel):
            kernel.machine.clock.add(5, "mem")
            kernel.machine.clock.add(9, "flush")
    """,
}


class TestLedgerTaxonomy:
    def test_registered_charges_clean(self, tmp_path):
        result = run_lint(tmp_path, dict(TAXONOMY_FILES),
                          rules=single_rule("ledger-taxonomy"))
        assert result.findings == []

    def test_unregistered_category_flagged(self, tmp_path):
        files = dict(TAXONOMY_FILES)
        files["kernel/b.py"] = """\
            def extra(ledger):
                ledger.add(3, "bogus")
        """
        result = run_lint(tmp_path, files,
                          rules=single_rule("ledger-taxonomy"))
        (finding,) = result.findings
        assert (finding.path, finding.line) == ("kernel/b.py", 2)
        assert "'bogus'" in finding.message

    def test_category_keyword_checked(self, tmp_path):
        files = dict(TAXONOMY_FILES)
        files["kernel/b.py"] = """\
            def extra(machine):
                machine.clear_page(7, category="bogus")
        """
        result = run_lint(tmp_path, files,
                          rules=single_rule("ledger-taxonomy"))
        assert [f.path for f in result.findings] == ["kernel/b.py"]

    def test_unused_taxonomy_entry_flagged(self, tmp_path):
        files = dict(TAXONOMY_FILES)
        files["obs/profiler.py"] = """\
            PATH_CATEGORIES = {
                "mem": "memory",
                "flush": "mmu",
                "orphan": "never charged",
            }
        """
        result = run_lint(tmp_path, files,
                          rules=single_rule("ledger-taxonomy"))
        (finding,) = result.findings
        assert finding.path == "obs/profiler.py"
        assert "'orphan'" in finding.message


EVENT_FILES = {
    "obs/events.py": """\
        EVENT_NAMES = {
            "ctxsw": "context switch",
            "syscall:*": "syscall entry",
            "tlb_miss": "tlb miss",
        }
        DEFAULT_MONITOR_EVENTS = frozenset({"tlb_miss"})
    """,
    "kernel/a.py": """\
        def publish(machine, name):
            machine.tracer.instant("ctxsw", "kernel")
            machine.tracer.instant(f"syscall:{name}", "kernel")
            machine.monitor.count("tlb_miss")
    """,
}


class TestEventRegistry:
    def test_registered_events_clean(self, tmp_path):
        result = run_lint(tmp_path, dict(EVENT_FILES),
                          rules=single_rule("event-registry"))
        assert result.findings == []

    def test_unregistered_event_flagged(self, tmp_path):
        files = dict(EVENT_FILES)
        files["kernel/b.py"] = """\
            def publish(tracer):
                tracer.instant("mystery", "kernel")
        """
        result = run_lint(tmp_path, files,
                          rules=single_rule("event-registry"))
        (finding,) = result.findings
        assert (finding.path, finding.line) == ("kernel/b.py", 2)
        assert "'mystery'" in finding.message

    def test_fstring_without_wildcard_flagged(self, tmp_path):
        files = dict(EVENT_FILES)
        files["kernel/b.py"] = """\
            def publish(tracer, name):
                tracer.instant(f"irq:{name}", "kernel")
        """
        result = run_lint(tmp_path, files,
                          rules=single_rule("event-registry"))
        assert ["irq:" in f.message for f in result.findings] == [True]

    def test_monitor_filter_must_be_registered(self, tmp_path):
        files = dict(EVENT_FILES)
        files["obs/events.py"] = """\
            EVENT_NAMES = {
                "ctxsw": "context switch",
                "syscall:*": "syscall entry",
                "tlb_miss": "tlb miss",
            }
            DEFAULT_MONITOR_EVENTS = frozenset({"tlb_miss", "ghost"})
        """
        result = run_lint(tmp_path, files,
                          rules=single_rule("event-registry"))
        (finding,) = result.findings
        assert finding.path == "obs/events.py"
        assert "'ghost'" in finding.message


class TestInvariantRegistration:
    def test_registered_suite_clean(self, tmp_path):
        result = run_lint(tmp_path, {"check/invariants.py": """\
            def check_tlbs(kernel, record):
                pass

            def full_sweep(kernel, record):
                check_tlbs(kernel, record)
        """}, rules=single_rule("invariant-registration"))
        assert result.findings == []

    def test_unregistered_invariant_flagged(self, tmp_path):
        result = run_lint(tmp_path, {"check/invariants.py": """\
            def check_tlbs(kernel, record):
                pass

            def check_htab(kernel, record):
                pass

            def full_sweep(kernel, record):
                check_tlbs(kernel, record)
        """}, rules=single_rule("invariant-registration"))
        (finding,) = result.findings
        assert (finding.rule, finding.line) == ("invariant-registration", 4)
        assert "check_htab" in finding.message


ANALYTICS_FILES = {
    "obs/profiler.py": """\
        PATH_CATEGORIES = {
            "mem": "memory",
            "flush": "mmu",
        }
    """,
    "obs/events.py": """\
        EVENT_NAMES = {
            "ctxsw": "context switch",
            "syscall:*": "syscall entry",
        }
    """,
    "obs/analytics.py": """\
        CATEGORY_SPANS = {
            "memory": ("ctxsw",),
            "mmu": (),
            "other": (),
        }
        INSTANT_EVENTS = ("syscall:*",)
    """,
}


class TestAnalyticsCoverage:
    def test_fully_consumed_registries_clean(self, tmp_path):
        result = run_lint(tmp_path, dict(ANALYTICS_FILES),
                          rules=single_rule("analytics-coverage"))
        assert result.findings == []

    def test_missing_consumer_module_flagged(self, tmp_path):
        files = dict(ANALYTICS_FILES)
        del files["obs/analytics.py"]
        result = run_lint(tmp_path, files,
                          rules=single_rule("analytics-coverage"))
        (finding,) = result.findings
        assert "obs/analytics.py" in finding.message

    def test_unconsumed_path_category_flagged(self, tmp_path):
        files = dict(ANALYTICS_FILES)
        files["obs/profiler.py"] = """\
            PATH_CATEGORIES = {
                "mem": "memory",
                "flush": "mmu",
                "dark": "unplotted",
            }
        """
        result = run_lint(tmp_path, files,
                          rules=single_rule("analytics-coverage"))
        (finding,) = result.findings
        assert finding.path == "obs/profiler.py"
        assert "'unplotted'" in finding.message

    def test_unconsumed_fallback_category_flagged(self, tmp_path):
        files = dict(ANALYTICS_FILES)
        files["obs/analytics.py"] = """\
            CATEGORY_SPANS = {
                "memory": ("ctxsw",),
                "mmu": (),
            }
            INSTANT_EVENTS = ("syscall:*",)
        """
        result = run_lint(tmp_path, files,
                          rules=single_rule("analytics-coverage"))
        (finding,) = result.findings
        assert "'other'" in finding.message

    def test_unconsumed_event_flagged(self, tmp_path):
        files = dict(ANALYTICS_FILES)
        files["obs/events.py"] = """\
            EVENT_NAMES = {
                "ctxsw": "context switch",
                "syscall:*": "syscall entry",
                "ghost": "recorded, never derived",
            }
        """
        result = run_lint(tmp_path, files,
                          rules=single_rule("analytics-coverage"))
        (finding,) = result.findings
        assert finding.path == "obs/events.py"
        assert "'ghost'" in finding.message

    def test_wildcard_satisfied_by_prefixed_literal(self, tmp_path):
        files = dict(ANALYTICS_FILES)
        files["obs/analytics.py"] = """\
            CATEGORY_SPANS = {
                "memory": ("ctxsw",),
                "mmu": (),
                "other": (),
            }
            INSTANT_EVENTS = ("syscall:fork",)
        """
        result = run_lint(tmp_path, files,
                          rules=single_rule("analytics-coverage"))
        assert result.findings == []

    def test_no_registries_no_findings(self, tmp_path):
        result = run_lint(tmp_path, {"kernel/a.py": "x = 1\n"},
                          rules=single_rule("analytics-coverage"))
        assert result.findings == []


OBSERVATORY_FILES = {
    "obs/metrics.py": """\
        RECORD_REQUIRED = ("id", "total_cycles", "attribution")
    """,
    "obs/history.py": """\
        RECORD_FIELDS = ("total_cycles", "attribution")
        HEADLINE_FIELDS = ("top_category", "tlb_miss")
    """,
    "obs/trend.py": """\
        MOVER_CATEGORIES = ("memory", "mmu", "other")
        HEADLINE_COLUMNS = ("top_category",)
    """,
    "obs/profiler.py": """\
        PATH_CATEGORIES = {
            "mem": "memory",
            "flush": "mmu",
        }
    """,
    "obs/events.py": """\
        EVENT_NAMES = {
            "hw-walk": "hardware walk span",
            "syscall:*": "syscall entry",
        }
    """,
    "obs/flame.py": """\
        SPAN_CATEGORY = {
            "hw-walk": "memory",
            "syscall:fork": "other",
        }
    """,
    "obs/hostprof.py": """\
        KERNEL_GROUPS = (
            ("repro/obs/metrics.py", "metrics"),
            ("repro/obs/", "obs"),
        )
    """,
    "obs/report.py": """\
        CAPACITY_COLUMNS = ("offered_per_s", "latency_p99_us")
    """,
    "analysis/capacity.py": """\
        CAPACITY_POINT_FIELDS = (
            "offered_per_s",
            "throughput_per_s",
            "latency_p99_us",
        )
    """,
}


class TestObservatoryClosure:
    def test_synced_registries_clean(self, tmp_path):
        result = run_lint(tmp_path, dict(OBSERVATORY_FILES),
                          rules=single_rule("observatory-closure"))
        assert result.findings == []

    def test_ledger_field_outside_record_schema_flagged(self, tmp_path):
        files = dict(OBSERVATORY_FILES)
        files["obs/history.py"] = """\
            RECORD_FIELDS = ("total_cycles", "wall_seconds")
            HEADLINE_FIELDS = ("top_category", "tlb_miss")
        """
        result = run_lint(tmp_path, files,
                          rules=single_rule("observatory-closure"))
        (finding,) = result.findings
        assert finding.path == "obs/history.py"
        assert "'wall_seconds'" in finding.message

    def test_unregistered_mover_category_flagged(self, tmp_path):
        files = dict(OBSERVATORY_FILES)
        files["obs/trend.py"] = """\
            MOVER_CATEGORIES = ("memory", "unplotted")
            HEADLINE_COLUMNS = ("top_category",)
        """
        result = run_lint(tmp_path, files,
                          rules=single_rule("observatory-closure"))
        (finding,) = result.findings
        assert finding.path == "obs/trend.py"
        assert "'unplotted'" in finding.message

    def test_unrecorded_headline_column_flagged(self, tmp_path):
        files = dict(OBSERVATORY_FILES)
        files["obs/trend.py"] = """\
            MOVER_CATEGORIES = ("memory",)
            HEADLINE_COLUMNS = ("top_category", "reload_p42")
        """
        result = run_lint(tmp_path, files,
                          rules=single_rule("observatory-closure"))
        (finding,) = result.findings
        assert "'reload_p42'" in finding.message
        assert "HEADLINE_FIELDS" in finding.message

    def test_unrecorded_capacity_column_flagged(self, tmp_path):
        files = dict(OBSERVATORY_FILES)
        files["obs/report.py"] = """\
            CAPACITY_COLUMNS = ("offered_per_s", "zombie_peak")
        """
        result = run_lint(tmp_path, files,
                          rules=single_rule("observatory-closure"))
        (finding,) = result.findings
        assert finding.path == "obs/report.py"
        assert "'zombie_peak'" in finding.message
        assert "CAPACITY_POINT_FIELDS" in finding.message

    def test_nonliteral_capacity_columns_flagged(self, tmp_path):
        files = dict(OBSERVATORY_FILES)
        files["obs/report.py"] = """\
            CAPACITY_COLUMNS = tuple(["offered_per_s"])
        """
        result = run_lint(tmp_path, files,
                          rules=single_rule("observatory-closure"))
        (finding,) = result.findings
        assert finding.path == "obs/report.py"
        assert "literal tuple" in finding.message

    def test_nonliteral_capacity_fields_flagged(self, tmp_path):
        files = dict(OBSERVATORY_FILES)
        files["analysis/capacity.py"] = """\
            _BASE = ["offered_per_s"]
            CAPACITY_POINT_FIELDS = tuple(_BASE)
        """
        result = run_lint(tmp_path, files,
                          rules=single_rule("observatory-closure"))
        (finding,) = result.findings
        assert finding.path == "analysis/capacity.py"
        assert "literal tuple" in finding.message

    def test_capacity_module_absent_is_clean(self, tmp_path):
        # The dashboard can exist before the sweep driver does; the
        # subset check only engages once both registries are present.
        files = dict(OBSERVATORY_FILES)
        del files["analysis/capacity.py"]
        result = run_lint(tmp_path, files,
                          rules=single_rule("observatory-closure"))
        assert result.findings == []

    def test_unregistered_flame_span_flagged(self, tmp_path):
        files = dict(OBSERVATORY_FILES)
        files["obs/flame.py"] = """\
            SPAN_CATEGORY = {
                "ghost-span": "memory",
            }
        """
        result = run_lint(tmp_path, files,
                          rules=single_rule("observatory-closure"))
        (finding,) = result.findings
        assert finding.path == "obs/flame.py"
        assert "'ghost-span'" in finding.message

    def test_wildcard_satisfies_flame_span(self, tmp_path):
        files = dict(OBSERVATORY_FILES)
        files["obs/flame.py"] = """\
            SPAN_CATEGORY = {
                "syscall:pipe": "other",
            }
        """
        result = run_lint(tmp_path, files,
                          rules=single_rule("observatory-closure"))
        assert result.findings == []

    def test_unregistered_flame_category_flagged(self, tmp_path):
        files = dict(OBSERVATORY_FILES)
        files["obs/flame.py"] = """\
            SPAN_CATEGORY = {
                "hw-walk": "unplotted",
            }
        """
        result = run_lint(tmp_path, files,
                          rules=single_rule("observatory-closure"))
        (finding,) = result.findings
        assert "'unplotted'" in finding.message

    def test_stale_hostprof_path_flagged(self, tmp_path):
        files = dict(OBSERVATORY_FILES)
        files["obs/hostprof.py"] = """\
            KERNEL_GROUPS = (
                ("repro/obs/metrics.py", "metrics"),
                ("repro/hw/tlb2.py", "tlb"),
            )
        """
        result = run_lint(tmp_path, files,
                          rules=single_rule("observatory-closure"))
        (finding,) = result.findings
        assert finding.path == "obs/hostprof.py"
        assert "'repro/hw/tlb2.py'" in finding.message

    def test_non_literal_registry_flagged(self, tmp_path):
        files = dict(OBSERVATORY_FILES)
        files["obs/history.py"] = """\
            RECORD_FIELDS = tuple(["total_cycles"])
            HEADLINE_FIELDS = ("top_category", "tlb_miss")
        """
        result = run_lint(tmp_path, files,
                          rules=single_rule("observatory-closure"))
        assert any(
            "RECORD_FIELDS" in f.message and "literal" in f.message
            for f in result.findings
        )

    def test_no_observatory_files_no_findings(self, tmp_path):
        result = run_lint(tmp_path, {"kernel/a.py": "x = 1\n"},
                          rules=single_rule("observatory-closure"))
        assert result.findings == []


# -- pragmas and baseline ----------------------------------------------------


REGISTRY_SPECS = {
    "analysis/specs.py": """\
        SPECS = {
            "E1": "spec one",
            "E2": "spec two",
        }
    """,
}

REGISTRY_BENCH = """\
from conftest import run_spec


def test_e1(benchmark):
    run_spec(benchmark, "E1")


def test_e2(benchmark):
    run_spec(benchmark, "E2")
"""

REGISTRY_DOC = """\
| Exp | Paper result | Reproduction status |
|---|---|---|
| E1 (Fig 1) | something | holds |
| E2 (§5.1) | something else | holds |
"""


def build_repo(tmp_path, files=None, bench=REGISTRY_BENCH,
               doc=REGISTRY_DOC):
    """A package tree with benchmarks/ and EXPERIMENTS.md beside it."""
    root = build_tree(tmp_path, files or dict(REGISTRY_SPECS))
    bench_dir = tmp_path / "benchmarks"
    bench_dir.mkdir(exist_ok=True)
    (bench_dir / "test_bench_a.py").write_text(bench)
    (tmp_path / "EXPERIMENTS.md").write_text(doc)
    return root


class TestExperimentRegistry:
    def test_consumed_and_documented_clean(self, tmp_path):
        root = build_repo(tmp_path)
        result = LintEngine(
            root, lint_rules=single_rule("experiment-registry")
        ).run()
        assert result.findings == []

    def test_missing_bench_consumer_flagged(self, tmp_path):
        bench = REGISTRY_BENCH.replace(
            'def test_e2(benchmark):\n    run_spec(benchmark, "E2")\n', ""
        )
        root = build_repo(tmp_path, bench=bench)
        result = LintEngine(
            root, lint_rules=single_rule("experiment-registry")
        ).run()
        (finding,) = result.findings
        assert finding.path == "analysis/specs.py"
        assert "'E2'" in finding.message
        assert "consumer" in finding.message

    def test_missing_doc_row_flagged(self, tmp_path):
        doc = "\n".join(
            line for line in REGISTRY_DOC.splitlines()
            if not line.startswith("| E2")
        )
        root = build_repo(tmp_path, doc=doc)
        result = LintEngine(
            root, lint_rules=single_rule("experiment-registry")
        ).run()
        (finding,) = result.findings
        assert "'E2'" in finding.message
        assert "EXPERIMENTS.md" in finding.message

    def test_stale_doc_row_flagged(self, tmp_path):
        doc = REGISTRY_DOC + "| E9 (§8) | ghost | gone |\n"
        root = build_repo(tmp_path, doc=doc)
        result = LintEngine(
            root, lint_rules=single_rule("experiment-registry")
        ).run()
        (finding,) = result.findings
        assert "'E9'" in finding.message
        assert "stale" in finding.message

    def test_bare_package_skipped(self, tmp_path):
        # No benchmarks/ or EXPERIMENTS.md anywhere above the package:
        # the rule has nothing to close over and must stay silent
        # (mutation tests lint exactly such copies).
        result = run_lint(tmp_path, dict(REGISTRY_SPECS),
                          rules=single_rule("experiment-registry"))
        assert result.findings == []


class TestPragmas:
    def test_trailing_pragma_suppresses(self, tmp_path):
        result = run_lint(tmp_path, {"kernel/a.py": """\
            try:
                x = 1
            except:  # repro-lint: disable=error-discipline -- test stub
                pass
        """}, rules=single_rule("error-discipline"))
        assert result.findings == []
        assert result.pragma_suppressed == 1

    def test_comment_line_pragma_covers_next_code_line(self, tmp_path):
        result = run_lint(tmp_path, {"obs/a.py": """\
            def attach(machine, tracer):
                # repro-lint: disable=zero-perturbation -- attach point
                machine.tracer = tracer
        """}, rules=single_rule("zero-perturbation"))
        assert result.findings == []
        assert result.pragma_suppressed == 1

    def test_pragma_without_justification_flagged(self, tmp_path):
        result = run_lint(tmp_path, {"kernel/a.py": """\
            x = 1  # repro-lint: disable=wall-clock
        """})
        (finding,) = findings_for(result, "pragma-hygiene")
        assert "justification" in finding.message

    def test_pragma_naming_unknown_rule_flagged(self, tmp_path):
        result = run_lint(tmp_path, {"kernel/a.py": """\
            x = 1  # repro-lint: disable=no-such-rule -- oops
        """})
        (finding,) = findings_for(result, "pragma-hygiene")
        assert "no-such-rule" in finding.message

    def test_docstring_mention_is_not_a_pragma(self, tmp_path):
        result = run_lint(tmp_path, {"kernel/a.py": '''\
            """Mentions # repro-lint: disable=wall-clock in prose."""
            import time
            t = time.time()
        '''}, rules=single_rule("wall-clock"))
        assert [f.rule for f in result.findings] == ["wall-clock"]
        assert result.pragma_suppressed == 0

    def test_disable_file_suppresses_whole_file(self, tmp_path):
        pragmas = parse_pragmas(
            ["# repro-lint: disable-file=wall-clock -- fixture"],
            KNOWN_RULE_IDS,
        )
        assert pragmas.suppresses("wall-clock", 99)
        assert not pragmas.suppresses("layering", 99)
        assert pragmas.problems == []


class TestBaseline:
    def test_round_trip_silences_findings(self, tmp_path):
        files = {"kernel/a.py": "import time\nt = time.time()\n"}
        root = build_tree(tmp_path, files)
        first = LintEngine(root).run()
        assert len(first.findings) == 1

        baseline_path = tmp_path / "lint-baseline.json"
        Baseline.write(baseline_path, first.findings)
        second = LintEngine(
            root, baseline=Baseline.load(baseline_path)
        ).run()
        assert second.findings == []
        assert len(second.baselined) == 1

    def test_baseline_matches_across_line_moves(self, tmp_path):
        files = {"kernel/a.py": "import time\nt = time.time()\n"}
        root = build_tree(tmp_path, files)
        baseline_path = tmp_path / "lint-baseline.json"
        Baseline.write(baseline_path, LintEngine(root).run().findings)

        # Shift the violation down; the fingerprint is line-independent.
        (root / "kernel/a.py").write_text(
            "import time\n\n\nt = time.time()\n"
        )
        moved = LintEngine(
            root, baseline=Baseline.load(baseline_path)
        ).run()
        assert moved.findings == []
        assert len(moved.baselined) == 1

    def test_missing_baseline_is_empty(self, tmp_path):
        baseline = Baseline.load(tmp_path / "does-not-exist.json")
        result = run_lint(tmp_path, {"kernel/a.py": "x = 1\n"})
        assert result.findings == []
        assert not any(baseline.matches(f) for f in result.findings)


# -- mutation tests on the real tree -----------------------------------------


def mutated_package(tmp_path, mutate):
    """Copy the installed package, apply ``mutate(root)``, return root."""
    root = tmp_path / "repro"
    shutil.copytree(default_root(), root,
                    ignore=shutil.ignore_patterns("__pycache__"))
    mutate(root)
    return root


def mutated_repo(tmp_path, mutate):
    """Like :func:`mutated_package`, with the repo files the
    experiment-registry closure reads (benchmarks/, EXPERIMENTS.md)
    copied alongside at ``root.parents[1]``."""
    root = tmp_path / "src" / "repro"
    shutil.copytree(default_root(), root,
                    ignore=shutil.ignore_patterns("__pycache__"))
    repo = default_root().parents[1]
    shutil.copytree(repo / "benchmarks", tmp_path / "benchmarks",
                    ignore=shutil.ignore_patterns("__pycache__", "reports"))
    shutil.copy(repo / "EXPERIMENTS.md", tmp_path / "EXPERIMENTS.md")
    mutate(root)
    return root


class TestMutations:
    def test_clean_copy_is_clean(self, tmp_path):
        root = mutated_package(tmp_path, lambda _root: None)
        assert LintEngine(root).run().findings == []

    def test_deleting_taxonomy_entry_fires(self, tmp_path):
        def mutate(root):
            path = root / "obs/profiler.py"
            source = path.read_text()
            mutated = re.sub(r'\s*"flush": .*\n', "\n", source, count=1)
            assert mutated != source
            path.write_text(mutated)

        result = LintEngine(mutated_package(tmp_path, mutate)).run()
        rules = {f.rule for f in result.findings}
        # The trend/flame registries consume the category, so the
        # observatory pass flags the orphaned consumers too.
        assert rules == {"ledger-taxonomy", "observatory-closure"}
        assert any("'flush'" in f.message for f in result.findings)

    def test_deleting_event_registry_entry_fires(self, tmp_path):
        def mutate(root):
            path = root / "obs/events.py"
            source = path.read_text()
            mutated = re.sub(r'\s*"vsid-bump": .*\n', "\n", source,
                             count=1)
            assert mutated != source
            path.write_text(mutated)

        result = LintEngine(mutated_package(tmp_path, mutate)).run()
        rules = {f.rule for f in result.findings}
        # The flamegraph span table references the event, so the
        # observatory pass flags the orphaned SPAN_CATEGORY key too.
        assert rules == {"event-registry", "observatory-closure"}
        assert any("'vsid-bump'" in f.message for f in result.findings)

    def test_deleting_bench_consumer_fires(self, tmp_path):
        def mutate(root):
            (root.parents[1] / "benchmarks"
             / "test_bench_range_flush.py").unlink()

        result = LintEngine(mutated_repo(tmp_path, mutate)).run()
        rules = {f.rule for f in result.findings}
        assert rules == {"experiment-registry"}
        assert any(
            "'E8'" in f.message and "consumer" in f.message
            for f in result.findings
        )

    def test_deleting_experiments_md_row_fires(self, tmp_path):
        def mutate(root):
            path = root.parents[1] / "EXPERIMENTS.md"
            source = path.read_text()
            mutated = re.sub(r"\n\| E8 [^\n]*\n", "\n", source, count=1)
            assert mutated != source
            path.write_text(mutated)

        result = LintEngine(mutated_repo(tmp_path, mutate)).run()
        rules = {f.rule for f in result.findings}
        assert rules == {"experiment-registry"}
        assert any(
            "'E8'" in f.message and "EXPERIMENTS.md" in f.message
            for f in result.findings
        )

    def test_adding_event_without_derivation_fires(self, tmp_path):
        def mutate(root):
            path = root / "obs/events.py"
            source = path.read_text()
            mutated = source.replace(
                '"ctxsw":',
                '"ghost-span": "a span nobody derives",\n    "ctxsw":',
                1,
            )
            assert mutated != source
            path.write_text(mutated)

        result = LintEngine(mutated_package(tmp_path, mutate)).run()
        rules = {f.rule for f in result.findings}
        assert rules == {"analytics-coverage"}
        assert any("'ghost-span'" in f.message for f in result.findings)

    def test_deleting_analytics_literal_fires(self, tmp_path):
        def mutate(root):
            path = root / "obs/analytics.py"
            source = path.read_text()
            mutated = re.sub(r'\s*"pipe-create",\n', "\n", source, count=1)
            assert mutated != source
            path.write_text(mutated)

        result = LintEngine(mutated_package(tmp_path, mutate)).run()
        rules = {f.rule for f in result.findings}
        assert rules == {"analytics-coverage"}
        assert any("'pipe-create'" in f.message for f in result.findings)

    def test_adding_unknown_ledger_field_fires(self, tmp_path):
        def mutate(root):
            path = root / "obs/history.py"
            source = path.read_text()
            mutated = source.replace(
                'RECORD_FIELDS = ("total_cycles",',
                'RECORD_FIELDS = ("total_cycles", "wall_hint",',
                1,
            )
            assert mutated != source
            path.write_text(mutated)

        result = LintEngine(mutated_package(tmp_path, mutate)).run()
        rules = {f.rule for f in result.findings}
        assert rules == {"observatory-closure"}
        assert any(
            "'wall_hint'" in f.message and "RECORD_REQUIRED" in f.message
            for f in result.findings
        )

    def test_renaming_flame_span_fires(self, tmp_path):
        def mutate(root):
            path = root / "obs/flame.py"
            source = path.read_text()
            mutated = source.replace('"hw-walk":', '"hw-walk-x":', 1)
            assert mutated != source
            path.write_text(mutated)

        result = LintEngine(mutated_package(tmp_path, mutate)).run()
        rules = {f.rule for f in result.findings}
        assert rules == {"observatory-closure"}
        assert any(
            "'hw-walk-x'" in f.message and "EVENT_NAMES" in f.message
            for f in result.findings
        )

    def test_breaking_hostprof_path_fires(self, tmp_path):
        def mutate(root):
            path = root / "obs/hostprof.py"
            source = path.read_text()
            mutated = source.replace(
                '"repro/hw/tlb.py"', '"repro/hw/tlb_legacy.py"', 1
            )
            assert mutated != source
            path.write_text(mutated)

        result = LintEngine(mutated_package(tmp_path, mutate)).run()
        rules = {f.rule for f in result.findings}
        assert rules == {"observatory-closure"}
        assert any(
            "'repro/hw/tlb_legacy.py'" in f.message
            for f in result.findings
        )

    def test_adding_taxonomy_value_without_derivation_fires(self, tmp_path):
        def mutate(root):
            path = root / "obs/profiler.py"
            source = path.read_text()
            mutated = source.replace(
                "PATH_CATEGORIES: Dict[str, str] = {",
                'PATH_CATEGORIES: Dict[str, str] = {\n'
                '    "ghost-raw": "ghost-cat",',
                1,
            )
            assert mutated != source
            path.write_text(mutated)

        result = LintEngine(mutated_package(tmp_path, mutate)).run()
        # The unconsumed value trips the analytics closure; the unused
        # key additionally trips the ledger-taxonomy closure.
        rules = {f.rule for f in result.findings}
        assert "analytics-coverage" in rules
        assert rules <= {"analytics-coverage", "ledger-taxonomy"}
        assert any(
            f.rule == "analytics-coverage" and "'ghost-cat'" in f.message
            for f in result.findings
        )

    def test_deleting_suite_registration_fires(self, tmp_path):
        def mutate(root):
            path = root / "check/invariants.py"
            source = path.read_text()
            mutated = re.sub(
                r"\n\s*check_segments\(kernel, record\)\n", "\n",
                source, count=1,
            )
            assert mutated != source
            path.write_text(mutated)

        result = LintEngine(mutated_package(tmp_path, mutate)).run()
        rules = {f.rule for f in result.findings}
        assert rules == {"invariant-registration"}
        assert any("check_segments" in f.message for f in result.findings)


class TestGeometryLiteral:
    def test_divmod_by_eight_on_slot_index_flagged(self, tmp_path):
        result = run_lint(tmp_path, {"kernel/a.py": """\
            def addr(flat):
                group, slot = divmod(flat, 8)
                return group, slot
        """}, rules=single_rule("geometry-literal"))
        (finding,) = result.findings
        assert (finding.rule, finding.line) == ("geometry-literal", 2)
        assert "PTE_BYTES or PTES_PER_GROUP" in finding.message

    def test_page_index_mask_literal_flagged(self, tmp_path):
        result = run_lint(tmp_path, {"hw/a.py": """\
            def page_index(ea):
                return (ea >> 12) & 0xFFFF
        """}, rules=single_rule("geometry-literal"))
        assert [f.line for f in result.findings] == [2]
        assert "PAGE_INDEX_MASK" in result.findings[0].message

    def test_segment_shift_literal_flagged(self, tmp_path):
        result = run_lint(tmp_path, {"check/a.py": """\
            def segment(ea):
                return ea >> 28
        """}, rules=single_rule("geometry-literal"))
        assert [f.line for f in result.findings] == [2]

    def test_scan_cursor_wrap_literal_flagged(self, tmp_path):
        result = run_lint(tmp_path, {"kernel/a.py": """\
            def advance(position):
                return (position + 512) % 16384
        """}, rules=single_rule("geometry-literal"))
        assert [f.line for f in result.findings] == [2]
        assert "HTAB_PTE_SLOTS" in result.findings[0].message

    def test_named_constant_clean(self, tmp_path):
        result = run_lint(tmp_path, {"kernel/a.py": """\
            from repro.params import PTES_PER_GROUP

            def addr(flat):
                return divmod(flat, PTES_PER_GROUP)
        """}, rules=single_rule("geometry-literal"))
        assert result.findings == []

    def test_nongeometry_operand_clean(self, tmp_path):
        """``retries % 8`` has no address-domain identifier: not flagged."""
        result = run_lint(tmp_path, {"kernel/a.py": """\
            def backoff(retries):
                return retries % 8
        """}, rules=single_rule("geometry-literal"))
        assert result.findings == []

    def test_params_layer_exempt(self, tmp_path):
        """Top-level modules (layer of params.py) may hold raw geometry."""
        result = run_lint(tmp_path, {"params.py": """\
            def derived(page_index):
                return page_index & 0xFFFF
        """}, rules=single_rule("geometry-literal"))
        assert result.findings == []


# -- self-clean and CLI ------------------------------------------------------


def run_cli(*argv):
    return subprocess.run(
        [sys.executable, "-m", "repro", "lint", *argv],
        capture_output=True, text=True,
    )


class TestSelfClean:
    def test_repo_lints_clean(self):
        """The acceptance gate: the shipped tree has zero findings."""
        root = default_root()
        baseline = Baseline.load(find_baseline(root))
        result = LintEngine(root, baseline=baseline).run()
        assert result.findings == []
        assert result.files_scanned > 50

    def test_committed_baseline_is_empty(self):
        baseline_path = find_baseline(default_root())
        if not baseline_path.exists():
            pytest.skip("no committed baseline")
        doc = json.loads(baseline_path.read_text())
        assert doc["findings"] == []


class TestCli:
    def test_exit_zero_and_json_shape(self):
        proc = run_cli("--json")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        record = json.loads(proc.stdout)
        assert record["ok"] is True
        assert record["findings"] == []
        assert record["files_scanned"] > 50

    def test_list_rules_covers_catalog(self):
        proc = run_cli("--list-rules")
        assert proc.returncode == 0
        for entry in rule_catalog():
            assert entry["id"] in proc.stdout

    def test_nonzero_exit_on_findings(self, tmp_path):
        root = build_tree(tmp_path, {
            "kernel/a.py": "import time\nt = time.time()\n",
        })
        proc = run_cli("--root", str(root), "--no-baseline")
        assert proc.returncode == 1
        assert "[wall-clock]" in proc.stdout

    def test_path_scoping_filters_findings(self, tmp_path):
        root = build_tree(tmp_path, {
            "kernel/a.py": "import time\nt = time.time()\n",
            "sim/b.py": "import time\nt = time.time()\n",
        })
        proc = run_cli("--root", str(root), "--no-baseline",
                       str(root / "kernel"))
        assert proc.returncode == 1
        assert "kernel/a.py" in proc.stdout
        assert "sim/b.py" not in proc.stdout

    def test_unknown_path_is_usage_error(self):
        proc = run_cli("no/such/path.py")
        assert proc.returncode == 2

    def test_write_baseline_then_clean(self, tmp_path):
        root = build_tree(tmp_path, {
            "kernel/a.py": "import time\nt = time.time()\n",
        })
        baseline = tmp_path / "baseline.json"
        wrote = run_cli("--root", str(root), "--baseline", str(baseline),
                        "--write-baseline")
        assert wrote.returncode == 0
        assert json.loads(baseline.read_text())["findings"]
        clean = run_cli("--root", str(root), "--baseline", str(baseline))
        assert clean.returncode == 0


@pytest.mark.skipif(shutil.which("mypy") is None,
                    reason="mypy not installed")
def test_mypy_clean_over_lint_package():
    """CI installs mypy; locally this runs only where mypy exists."""
    repo_root = find_baseline(default_root()).parent
    proc = subprocess.run(
        [shutil.which("mypy"), "src/repro"],
        capture_output=True, text=True, cwd=repo_root,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
