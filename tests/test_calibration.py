"""Calibration guards: the LmBench points stay in their paper bands.

The cost model is calibrated once in ``repro/params.py``; these tests
pin the headline numbers to generous bands around the paper's values so
that a refactor that silently breaks the calibration fails loudly here
rather than in the benchmark shapes.
"""

import pytest

from repro.kernel.config import KernelConfig
from repro.params import M604_133, M604_185
from repro.sim.simulator import boot
from repro.workloads.lmbench import (
    context_switch,
    null_syscall,
    pipe_bandwidth,
    pipe_latency,
    process_start,
)

OPT = KernelConfig.optimized()
UNOPT = KernelConfig.unoptimized()


class TestOptimized133:
    """Table 3's Linux/PPC column: 2 / 6 / 28 us, 52 MB/s."""

    def test_null_syscall(self):
        assert 1.2 <= null_syscall(boot(M604_133, OPT)) <= 3.5

    def test_context_switch(self):
        assert 2.0 <= context_switch(boot(M604_133, OPT)) <= 10.0

    def test_pipe_latency(self):
        assert 18.0 <= pipe_latency(boot(M604_133, OPT)) <= 40.0

    def test_pipe_bandwidth(self):
        assert 40.0 <= pipe_bandwidth(boot(M604_133, OPT)) <= 80.0


class TestUnoptimized133:
    """Table 3's unoptimized column: 18 / 28 / 78 us, 36 MB/s."""

    def test_null_syscall(self):
        assert 12.0 <= null_syscall(boot(M604_133, UNOPT)) <= 24.0

    def test_context_switch(self):
        assert 18.0 <= context_switch(boot(M604_133, UNOPT)) <= 40.0

    def test_pipe_latency(self):
        assert 55.0 <= pipe_latency(boot(M604_133, UNOPT)) <= 110.0

    def test_pipe_bandwidth(self):
        assert 20.0 <= pipe_bandwidth(boot(M604_133, UNOPT)) <= 45.0


class TestOptimized185:
    """Table 1's 604 column: ~4 us ctxsw, ~21 us pipe, ~88 MB/s."""

    def test_context_switch(self):
        assert 1.5 <= context_switch(boot(M604_185, OPT)) <= 7.0

    def test_pipe_latency(self):
        assert 13.0 <= pipe_latency(boot(M604_185, OPT)) <= 30.0

    def test_pipe_bandwidth(self):
        assert 65.0 <= pipe_bandwidth(boot(M604_185, OPT)) <= 115.0

    def test_process_start_ms(self):
        assert 0.8 <= process_start(boot(M604_185, OPT)) <= 2.5


class TestRatios:
    """The optimized/unoptimized ratios the paper's story rests on."""

    def test_null_syscall_ratio(self):
        optimized = null_syscall(boot(M604_133, OPT))
        unoptimized = null_syscall(boot(M604_133, UNOPT))
        assert 5.0 <= unoptimized / optimized <= 14.0  # paper: 9x

    def test_context_switch_ratio(self):
        optimized = context_switch(boot(M604_133, OPT))
        unoptimized = context_switch(boot(M604_133, UNOPT))
        assert 2.5 <= unoptimized / optimized <= 10.0  # paper: 4.7x
