"""Hash-table PTE encoding: the architected two-word format."""

import pytest
from hypothesis import given, strategies as st

from repro.hw.pte import (
    API_SHIFT,
    HashPte,
    PP_RO,
    PP_RW,
    WIMG_CACHE_INHIBIT,
    pte_api,
)
from repro.params import VSID_MASK


class TestApi:
    def test_api_is_top_six_bits_of_page_index(self):
        assert pte_api(0x0000) == 0
        assert pte_api(0xFFFF) == 0x3F
        assert pte_api(1 << API_SHIFT) == 1

    def test_low_bits_do_not_affect_api(self):
        assert pte_api(0x03FF) == 0
        assert pte_api(0x0400) == 1


class TestPackUnpack:
    def test_valid_bit_is_msb_of_word0(self):
        pte = HashPte(vsid=0, page_index=0, rpn=0, valid=True)
        word0, _ = pte.pack()
        assert word0 >> 31 == 1
        pte.valid = False
        word0, _ = pte.pack()
        assert word0 >> 31 == 0

    def test_known_encoding(self):
        pte = HashPte(
            vsid=0x123456,
            page_index=0x0400,
            rpn=0xABCDE,
            valid=True,
            secondary=True,
            referenced=True,
            changed=False,
            wimg=WIMG_CACHE_INHIBIT,
            pp=PP_RW,
        )
        word0, word1 = pte.pack()
        assert word0 == (1 << 31) | (0x123456 << 7) | (1 << 6) | 0x01
        assert word1 == (0xABCDE << 12) | (1 << 8) | (WIMG_CACHE_INHIBIT << 3) | PP_RW

    @given(
        st.integers(0, VSID_MASK),
        st.integers(0, 0xFFFF),
        st.integers(0, 0xFFFFF),
        st.booleans(),
        st.booleans(),
        st.booleans(),
        st.booleans(),
        st.integers(0, 0xF),
        st.sampled_from([PP_RW, PP_RO]),
    )
    def test_roundtrip(
        self, vsid, page_index, rpn, valid, secondary, referenced, changed,
        wimg, pp,
    ):
        pte = HashPte(
            vsid=vsid,
            page_index=page_index,
            rpn=rpn,
            valid=valid,
            secondary=secondary,
            referenced=referenced,
            changed=changed,
            wimg=wimg,
            pp=pp,
        )
        word0, word1 = pte.pack()
        low_bits = page_index & ((1 << API_SHIFT) - 1)
        decoded = HashPte.unpack(word0, word1, low_page_bits=low_bits)
        assert decoded == pte


class TestMatching:
    def test_matches_requires_all_fields(self):
        pte = HashPte(vsid=5, page_index=0x1234, rpn=1)
        assert pte.matches(5, 0x1234, secondary=False)
        assert not pte.matches(6, 0x1234, secondary=False)
        assert not pte.matches(5, 0x1235, secondary=False)
        assert not pte.matches(5, 0x1234, secondary=True)

    def test_invalid_pte_never_matches(self):
        pte = HashPte(vsid=5, page_index=0x1234, rpn=1, valid=False)
        assert not pte.matches(5, 0x1234, secondary=False)

    def test_cache_inhibited_property(self):
        assert HashPte(vsid=0, page_index=0, rpn=0,
                       wimg=WIMG_CACHE_INHIBIT).cache_inhibited
        assert not HashPte(vsid=0, page_index=0, rpn=0).cache_inhibited
