"""Histogram and statistics helpers."""

import pytest

from repro.perf.histogram import Histogram, miss_histogram, occupancy_histogram
from repro.perf.stats import RunStats, geometric_mean, summarize
from repro.hw.hashtable import HashedPageTable
from repro.hw.pte import HashPte


class TestHistogram:
    def test_empty(self):
        histogram = Histogram([])
        assert histogram.total == 0
        assert histogram.nonzero_fraction() == 0.0
        assert histogram.hot_spot_ratio() == 0.0

    def test_uniform_distribution_metrics(self):
        histogram = Histogram([5] * 16)
        assert histogram.nonzero_fraction() == 1.0
        assert histogram.hot_spot_ratio() == pytest.approx(1.0)
        assert histogram.entropy_efficiency() == pytest.approx(1.0)

    def test_hot_spot_detected(self):
        histogram = Histogram([100] + [1] * 15)
        assert histogram.hot_spot_ratio() > 10
        assert histogram.entropy_efficiency() < 0.5
        assert histogram.top_share(0.05) > 0.8

    def test_max_load(self):
        assert Histogram([1, 9, 3]).max_load() == 9

    def test_from_hashtable(self):
        htab = HashedPageTable(groups=64)
        htab.insert(HashPte(vsid=1, page_index=2, rpn=3))
        occupancy = occupancy_histogram(htab)
        assert occupancy.total == 1
        htab.search(9, 9)
        misses = miss_histogram(htab)
        assert misses.total == 1


class TestStats:
    def test_summarize_basic(self):
        stats = summarize([1.0, 2.0, 3.0, 4.0])
        assert stats.n == 4
        assert stats.mean == 2.5
        assert stats.median == 2.5
        assert stats.minimum == 1.0 and stats.maximum == 4.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_sporadic_outlier_dropped(self):
        values = [10.0] * 10 + [1000.0]
        kept = summarize(values, drop_sporadic=True)
        assert kept.maximum == 10.0
        raw = summarize(values, drop_sporadic=False)
        assert raw.maximum == 1000.0

    def test_cv(self):
        assert summarize([5.0, 5.0]).cv == 0.0

    def test_geometric_mean(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, -1.0])
