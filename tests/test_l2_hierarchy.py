"""The shared L2 behind both L1s — the §9 substrate."""

import pytest

from repro.hw.access import AccessKind
from repro.hw.machine import MachineModel
from repro.hw.tlb import TlbEntry
from repro.params import M603_180, M604_185


def machine_with_mapping():
    machine = MachineModel(M604_185)
    machine.segments.write(1, 0x42)
    machine.dtlb.insert(TlbEntry(vsid=0x42, page_index=0x10, ppn=7))
    machine.itlb.insert(TlbEntry(vsid=0x42, page_index=0x10, ppn=7))
    return machine


class TestSharedL2:
    def test_l2_shared_between_instruction_and_data(self):
        machine = machine_with_mapping()
        # Data access pulls the line into L1d AND L2.
        machine.data_access(0x10010000)
        # An instruction fetch of the same physical line misses L1i but
        # hits the shared L2.
        cost = machine.instruction_fetch(0x10010000)
        assert cost == machine.spec.l2_hit_cycles

    def test_l2_hit_cheaper_than_memory(self):
        spec = M604_185
        assert spec.l2_hit_cycles < spec.mem_cycles

    def test_603_has_smaller_l2(self):
        assert M603_180.l2_bytes < M604_185.l2_bytes

    def test_eviction_from_l1_survives_in_l2(self):
        machine = machine_with_mapping()
        machine.data_access(0x10010000)
        # Push the line out of the 2-way... (4-way, 256-set) L1 by
        # touching aliasing lines: same set every 8 KB.
        for alias in range(1, 6):
            machine.dcache.access((7 << 12) + alias * 8192)
        assert not machine.dcache.contains(7 << 12)
        assert machine.l2.contains(7 << 12)
        # Re-access: L2 hit, not a memory fill.
        cost = machine.dcache.access(7 << 12)
        assert cost == machine.spec.l2_hit_cycles

    def test_flushing_l2_forces_memory_fill(self):
        machine = machine_with_mapping()
        machine.data_access(0x10010000)
        machine.dcache.flush_all()
        machine.l2.flush_all()
        cost = machine.dcache.access(7 << 12)
        assert cost >= machine.spec.mem_cycles
