"""Regression tests for the idle-reclaim geometry bug.

The original ``IdleTask._reclaim_chunk`` (and the on-demand scavenge
twin in ``reload.py``) hard-coded ``8`` for two *different* quantities:
the size of a PTE in bytes and the number of PTE slots per group.  At
the architected default geometry the two coincide and the bug is
invisible; as soon as the hash table runs a different ``ptes_per_group``
the scan charged cache accesses at the wrong physical addresses
(``divmod(flat, 8)`` instead of the table's real group size) and the
scan cursor wrapped at ``HTAB_PTE_SLOTS`` instead of the table's actual
slot count, leaving part of the table permanently unscanned.

These tests run a non-default geometry and fail on the old code.
"""

from repro.hw.pte import HashPte
from repro.kernel.config import KernelConfig
from repro.kernel.idle import RECLAIM_CHUNK_SLOTS
from repro.params import HTAB_PTE_SLOTS, M604_185, PTE_BYTES
from repro.sim.simulator import Simulator


def _booted(ptes_per_group: int) -> Simulator:
    config = KernelConfig.optimized()
    return Simulator(M604_185, config, htab_ptes_per_group=ptes_per_group)


def test_scan_probes_real_pte_addresses_at_nondefault_geometry():
    """The reclaim scan must stream the table's actual byte layout.

    With 16 PTEs per group, slot ``flat`` lives at byte offset
    ``flat * PTE_BYTES`` exactly as with 8 — the flat slot index already
    linearizes the groups.  The old ``divmod(flat, 8)`` address
    computation scattered probes across *twice* the window (group
    strides of 16 slots re-derived with 8), touching lines beyond the
    scanned window and skipping lines inside it.
    """
    sim = _booted(ptes_per_group=16)
    machine = sim.machine
    dcache = machine.dcache
    base = machine.walker.htab_base_pa
    line = dcache.line_size
    slots_per_line = line // PTE_BYTES

    dcache.flush_all()
    sim.kernel.idle_task._scan_position = 0
    sim.kernel.idle_task._reclaim_chunk()

    window_bytes = RECLAIM_CHUNK_SLOTS * PTE_BYTES
    for flat in range(0, RECLAIM_CHUNK_SLOTS, slots_per_line):
        assert dcache.contains(base + flat * PTE_BYTES), (
            f"slot {flat}: line not probed"
        )
    touched_beyond = [
        offset
        for offset in range(window_bytes, 2 * window_bytes, line)
        if dcache.contains(base + offset)
    ]
    assert not touched_beyond, (
        f"scan strayed beyond its window: offsets {touched_beyond}"
    )


def test_scan_cursor_wraps_at_actual_table_size():
    """The cursor wraps at ``htab.slots``, not the default constant.

    A 16-PTE-per-group table at the default group count has twice the
    slots of the architected default; the old ``% HTAB_PTE_SLOTS`` wrap
    made the scan cursor snap back to the low half of the table, so the
    upper half was never scanned and its zombies never reclaimed.
    """
    sim = _booted(ptes_per_group=16)
    idle = sim.kernel.idle_task
    slots = sim.machine.htab.slots
    assert slots == 2 * HTAB_PTE_SLOTS

    start = HTAB_PTE_SLOTS + 1024  # in the upper half the old wrap lost
    idle._scan_position = start
    idle._reclaim_chunk()
    assert idle._scan_position == start + RECLAIM_CHUNK_SLOTS


def test_zombie_in_upper_half_is_reclaimed_at_nondefault_geometry():
    """A dead VSID's PTE in the upper half of the bigger table dies."""
    sim = _booted(ptes_per_group=16)
    machine = sim.machine
    htab = machine.htab
    idle = sim.kernel.idle_task

    dead_vsid = 0x00ABCDE
    assert not sim.kernel.vsid_allocator.is_live(dead_vsid)
    machine.htab.insert(HashPte(vsid=dead_vsid, page_index=0x31, rpn=7))
    flats = [
        flat
        for flat, _group, _slot in _valid_flats(htab)
        if htab.pte_at(*divmod(flat, htab.ptes_per_group)).vsid == dead_vsid
    ]
    assert flats, "test PTE did not land in the table"
    target = flats[0]

    before = machine.monitor.snapshot().get("zombie_reclaimed", 0)
    idle._scan_position = target - (target % RECLAIM_CHUNK_SLOTS)
    idle._reclaim_chunk()
    after = machine.monitor.snapshot().get("zombie_reclaimed", 0)
    assert after == before + 1
    assert not htab.pte_at(*divmod(target, htab.ptes_per_group)).valid


def _valid_flats(htab):
    for group, slot, _pte in htab.iter_valid():
        yield group * htab.ptes_per_group + slot, group, slot
