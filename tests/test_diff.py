"""Tests for ``repro.obs.diff`` — structural run/variant comparison.

Units over hand-built structures (flatten, diff_flat ordering, doc
matching) plus a real variant split: one observed E12 run divided
under its declared config variants and diffed label-against-label.
"""

from __future__ import annotations

import pytest

from repro.analysis import engine
from repro.obs import diff as obs_diff
from repro.obs import session as obs_session


class TestFlatten:
    def test_nested_paths(self):
        flat = obs_diff.flatten({"a": {"b": 1, "c": [10, 20]}, "d": "x"})
        assert flat == {"a.b": 1, "a.c.0": 10, "a.c.1": 20, "d": "x"}

    def test_empty_containers_vanish(self):
        assert obs_diff.flatten({"a": {}, "b": []}) == {}

    def test_scalar_root(self):
        assert obs_diff.flatten(5, "leaf") == {"leaf": 5}


class TestDiffFlat:
    def test_equal_and_changed(self):
        out = obs_diff.diff_flat(
            {"x": 1, "y": 2, "gone": 0},
            {"x": 1, "y": 4, "new": 9},
        )
        assert out["equal"] == 1
        assert out["only_a"] == ["gone"]
        assert out["only_b"] == ["new"]
        (entry,) = out["changed"]
        assert entry == {"key": "y", "a": 2, "b": 4, "delta": 2,
                         "ratio": 2.0}

    def test_bool_is_not_int(self):
        out = obs_diff.diff_flat({"flag": True}, {"flag": 1})
        assert out["equal"] == 0
        assert [e["key"] for e in out["changed"]] == ["flag"]

    def test_int_float_equality_is_equal(self):
        out = obs_diff.diff_flat({"x": 0}, {"x": 0.0})
        assert out["equal"] == 1

    def test_zero_base_has_no_ratio(self):
        (entry,) = obs_diff.diff_flat({"x": 0}, {"x": 5})["changed"]
        assert entry["delta"] == 5
        assert "ratio" not in entry

    def test_ordering_biggest_relative_move_first(self):
        out = obs_diff.diff_flat(
            {"small": 100, "big": 10, "text": "a"},
            {"small": 101, "big": 30, "text": "b"},
        )
        assert [e["key"] for e in out["changed"]] == [
            "text", "big", "small",
        ]


class TestDiffRecords:
    def test_provenance_keys_ignored(self):
        out = obs_diff.diff_records(
            {"id": "E1", "source": "here", "schema_version": 3},
            {"id": "E1", "source": "there", "schema_version": 2},
        )
        assert out["changed"] == []
        assert out["equal"] == 1


class TestDiffDocs:
    def test_matched_by_id_in_numeric_order(self):
        doc_a = {"experiments": [
            {"id": "E2", "x": 1}, {"id": "E10", "x": 5},
        ]}
        doc_b = {"experiments": [
            {"id": "E2", "x": 2}, {"id": "E11", "x": 5},
        ]}
        out = obs_diff.diff_docs(doc_a, doc_b)
        assert list(out) == ["E2", "E10", "E11"]
        assert out["E2"]["changed"][0]["key"] == "x"
        assert out["E10"]["only_a"] == ["<entire record>"]
        assert out["E11"]["only_b"] == ["<entire record>"]


class TestVariantSplit:
    def test_observed_handles_group_under_labels(self):
        spec = engine.spec_for("E12")
        run = obs_session.run_observed("E12")
        groups, unmatched = obs_diff.variant_observations(
            spec, run.observed
        )
        assert set(groups) == {v.label for v in spec.variants}
        assert all(handles for handles in groups.values())
        assert len(unmatched) + sum(
            len(h) for h in groups.values()
        ) == len(run.observed)

    def test_variant_diff_ranks_counter_movement(self):
        spec = engine.spec_for("E12")
        run = obs_session.run_observed("E12")
        labels = [v.label for v in spec.variants]
        diff = obs_diff.diff_variant_labels(
            spec, run.observed, labels[0], labels[1]
        )
        assert diff["equal"] > 0
        changed_keys = {entry["key"] for entry in diff["changed"]}
        # The I/O BAT variant moves the bat_translation drift counter.
        assert "counters.bat_translation" in changed_keys

    def test_unknown_label_raises_with_known_labels(self):
        spec = engine.spec_for("E12")
        run = obs_session.run_observed("E12")
        with pytest.raises(KeyError, match="no recorder handles"):
            obs_diff.diff_variant_labels(
                spec, run.observed, "nope", spec.variants[0].label
            )


class TestRenderDiff:
    def test_prose_shape_and_limit(self):
        diff = obs_diff.diff_flat(
            {f"k{i:02d}": i for i in range(40)},
            {f"k{i:02d}": i + 1 for i in range(40)},
        )
        text = obs_diff.render_diff(diff, "A", "B", limit=5)
        assert text.splitlines()[0] == "diff: A  ->  B"
        assert "40 changed" in text
        assert "... 35 more changed leaves" in text

    def test_unmatched_note(self):
        diff = obs_diff.diff_flat({}, {})
        diff["unmatched_simulators"] = 2
        text = obs_diff.render_diff(diff, "A", "B")
        assert "2 simulator(s) matched no declared variant" in text
