"""The idle task: zombie reclaim and page clearing (§7, §9)."""

import pytest

from repro.errors import ConfigError
from repro.kernel.config import IdlePageClearPolicy, KernelConfig
from repro.params import M604_185, PAGE_SIZE
from repro.sim.simulator import Simulator


def boot_idle(**changes):
    config = KernelConfig.optimized().with_changes(**changes)
    return Simulator(M604_185, config)


def make_zombies(sim, pages=30):
    """Touch pages then bump the context, leaving zombies in the htab."""
    kernel = sim.kernel
    task = kernel.spawn("z", data_pages=pages + 2)
    kernel.switch_to(task)
    for page in range(pages):
        kernel.user_access(task, 0x10000000 + page * PAGE_SIZE, 1, True)
    kernel.flush.flush_mm(task.mm)
    return task


class TestWindowDiscipline:
    def test_idle_consumes_roughly_the_window(self):
        sim = boot_idle()
        consumed = sim.kernel.run_idle(50000)
        assert consumed >= 50000
        # Overshoot is bounded by one work unit.
        assert consumed < 50000 + 20000

    def test_idle_spins_when_nothing_to_do(self):
        sim = boot_idle(
            idle_zombie_reclaim=False,
            idle_page_clear=IdlePageClearPolicy.OFF,
        )
        sim.kernel.run_idle(10000)
        assert sim.machine.clock.category("idle_spin") > 0


class TestZombieReclaim:
    def test_reclaim_clears_zombies(self):
        sim = boot_idle()
        make_zombies(sim, pages=30)
        _live, zombies_before = sim.kernel.htab_zombie_stats()
        assert zombies_before > 0
        # Enough idle to sweep the whole table.
        sim.kernel.run_idle(3_000_000)
        _live, zombies_after = sim.kernel.htab_zombie_stats()
        assert zombies_after == 0
        assert sim.machine.monitor["zombie_reclaimed"] == zombies_before

    def test_reclaim_never_touches_live_entries(self):
        sim = boot_idle()
        kernel = sim.kernel
        task = kernel.spawn("live", data_pages=10)
        kernel.switch_to(task)
        for page in range(8):
            kernel.user_access(task, 0x10000000 + page * PAGE_SIZE, 1, True)
        live_before, _ = kernel.htab_zombie_stats()
        kernel.run_idle(3_000_000)
        live_after, _ = kernel.htab_zombie_stats()
        assert live_after == live_before

    def test_empty_scan_counts_as_idle_spin(self):
        # A reclaim pass over a table with nothing to reclaim is not
        # "work": the loop must fall through to spinning so the window
        # is accounted as idle time (the scan used to report work
        # unconditionally, keeping the spin path unreachable).
        sim = boot_idle(idle_page_clear=IdlePageClearPolicy.OFF)
        sim.kernel.run_idle(100000)
        assert sim.machine.clock.category("idle_spin") > 0

    def test_reclaim_disabled_leaves_zombies(self):
        sim = boot_idle(idle_zombie_reclaim=False,
                        idle_page_clear=IdlePageClearPolicy.OFF)
        make_zombies(sim, pages=10)
        sim.kernel.run_idle(1_000_000)
        _live, zombies = sim.kernel.htab_zombie_stats()
        assert zombies > 0


class TestPageClearing:
    def test_uncached_list_stocks_pages(self):
        sim = boot_idle(idle_zombie_reclaim=False)
        sim.kernel.run_idle(200000)
        assert sim.kernel.palloc.precleared_count() > 0
        assert sim.machine.monitor["pages_precleared"] > 0

    def test_uncached_clearing_leaves_cache_alone(self):
        sim = boot_idle(idle_zombie_reclaim=False)
        resident_before = len(sim.machine.dcache)
        sim.kernel.run_idle(200000)
        assert len(sim.machine.dcache) <= resident_before + 2

    def test_cached_clearing_fills_cache(self):
        sim = boot_idle(
            idle_zombie_reclaim=False,
            idle_page_clear=IdlePageClearPolicy.CACHED_LIST,
        )
        sim.kernel.run_idle(500000)
        assert sim.machine.dcache.occupancy() > 0.5

    def test_no_list_policy_keeps_free_list_intact(self):
        sim = boot_idle(
            idle_zombie_reclaim=False,
            idle_page_clear=IdlePageClearPolicy.UNCACHED_NO_LIST,
        )
        free_before = sim.kernel.palloc.free_count()
        sim.kernel.run_idle(200000)
        assert sim.kernel.palloc.precleared_count() == 0
        assert sim.kernel.palloc.free_count() == free_before

    def test_off_policy_clears_nothing(self):
        sim = boot_idle(
            idle_zombie_reclaim=False,
            idle_page_clear=IdlePageClearPolicy.OFF,
        )
        sim.kernel.run_idle(200000)
        assert sim.kernel.idle_task.pages_cleared == 0


class TestPreclearTarget:
    """§9's stock is unbounded by default; idle_preclear_target caps it."""

    def test_bounded_stock_stops_at_target(self):
        sim = boot_idle(idle_zombie_reclaim=False, idle_preclear_target=4)
        sim.kernel.run_idle(500000)
        assert sim.kernel.palloc.precleared_count() == 4

    def test_target_zero_disables_stocking(self):
        sim = boot_idle(idle_zombie_reclaim=False, idle_preclear_target=0)
        sim.kernel.run_idle(200000)
        assert sim.kernel.palloc.precleared_count() == 0
        assert sim.kernel.idle_task.pages_cleared == 0

    def test_unbounded_default_keeps_clearing(self):
        sim = boot_idle(idle_zombie_reclaim=False)
        sim.kernel.run_idle(500000)
        assert sim.kernel.palloc.precleared_count() > 4

    def test_negative_target_rejected(self):
        with pytest.raises(ConfigError):
            KernelConfig(idle_preclear_target=-1)


class TestAccounting:
    def test_idle_work_charged_to_idle_categories(self):
        sim = boot_idle()
        make_zombies(sim)
        sim.kernel.run_idle(100000)
        breakdown = sim.breakdown()
        assert (
            breakdown.get("idle_reclaim", 0)
            + breakdown.get("idle_clear", 0)
            + breakdown.get("idle_spin", 0)
        ) > 0
