"""Machine specs and architected constants."""

import pytest

from repro import params
from repro.params import (
    ALL_MACHINES,
    M603_133,
    M603_180,
    M604_185,
    M604_200,
    machine_by_name,
)


class TestArchitectedConstants:
    def test_page_geometry(self):
        assert params.PAGE_SIZE == 4096
        assert 1 << params.PAGE_SHIFT == params.PAGE_SIZE
        assert params.LINES_PER_PAGE == 128

    def test_segment_geometry(self):
        assert params.NUM_SEGMENT_REGISTERS == 16
        assert params.SEGMENT_SIZE * 16 == 1 << 32

    def test_htab_geometry_matches_paper(self):
        # §7: "600-700 out of 16384".
        assert params.HTAB_PTE_SLOTS == 16384
        assert params.HTAB_GROUPS * params.PTES_PER_GROUP == 16384

    def test_paper_stated_costs(self):
        assert params.C603_MISS_INVOKE_CYCLES == 32
        assert params.C604_HW_WALK_MAX_CYCLES == 120
        assert params.C604_HASH_MISS_INVOKE_CYCLES == 91
        assert params.LINUX_PTE_TREE_LOADS == 3
        assert params.FLUSH_SEARCH_REFS_PER_PTE == 16
        assert params.DEFAULT_RANGE_FLUSH_CUTOFF == 20

    def test_ram_is_32mb(self):
        assert params.RAM_BYTES == 32 * 1024 * 1024
        assert params.RAM_PAGES == 8192


class TestMachineSpecs:
    def test_tlb_totals_match_paper(self):
        # §5.1: "The PowerPC 603 TLB has 128 entries and the 604 has 256".
        assert M603_180.itlb_entries + M603_180.dtlb_entries == 128
        assert M604_185.itlb_entries + M604_185.dtlb_entries == 256

    def test_604_has_double_cache(self):
        # §6.2: "two times larger L1 cache and TLB in the 604".
        assert M604_185.icache_bytes == 2 * M603_180.icache_bytes

    def test_walk_style(self):
        assert not M603_180.hardware_tablewalk
        assert M604_185.hardware_tablewalk

    def test_cycle_time_conversions(self):
        assert M603_133.cycles_to_us(133) == pytest.approx(1.0)
        assert M603_133.us_to_cycles(2.0) == 266

    def test_mem_cycles_scale_with_clock(self):
        assert M603_180.mem_cycles > M603_133.mem_cycles
        assert M603_180.word_cycles > M603_133.word_cycles

    def test_604_200_has_faster_memory(self):
        # §6.2: "significantly faster main memory and a better board".
        assert M604_200.mem_line_fill_ns < M604_185.mem_line_fill_ns

    def test_machine_by_name(self):
        assert machine_by_name("604 185MHz") is M604_185
        with pytest.raises(KeyError):
            machine_by_name("486 66MHz")

    def test_all_machines_frozen(self):
        for spec in ALL_MACHINES:
            with pytest.raises(Exception):
                spec.clock_mhz = 999
