"""Tests for ``repro.obs.report`` and the ``repro report`` CLI.

The dashboard's contract is byte determinism: the renderer is a pure
function of the bench doc, and the CLI builds that doc without the
wall-clock timings section — so repeated invocations, cached or not,
serial or parallel, must produce identical files.
"""

from __future__ import annotations

import json
import subprocess
import sys

from repro.obs import history, report, trend
from repro.obs.metrics import BENCH_SCHEMA


def fixture_doc():
    derived = {
        "total_cycles": 1000,
        "machines": ["604e/200"],
        "simulators": 1,
        "attribution": {
            "cycles": {"user-compute": 600, "tlb-reload": 400},
            "shares": {"user-compute": 0.6, "tlb-reload": 0.4},
            "top": "user-compute",
        },
        "counters": {"tlb_miss": 12},
        "spans": {},
        "categories": {
            "tlb-reload": {"count": 4, "total_cycles": 400, "mean": 100.0,
                           "max": 130, "p50": 90, "p90": 120, "p99": 130},
        },
        "reload": {"count": 4, "total_cycles": 400, "mean": 100.0,
                   "max": 130, "p50": 90, "p90": 120, "p99": 130},
        "timeline": {
            "samplers": 1, "samples": 3, "every_us": 500.0,
            "live": {"min": 1, "max": 5, "mean": 3.0, "final": 5},
            "zombie": {"min": 0, "max": 2, "mean": 1.0, "final": 0},
            "occupancy": {"min": 0.1, "max": 0.5, "mean": 0.3,
                          "final": 0.5},
            "series": {"us": [0.0, 500.0, 1000.0],
                       "live": [1, 3, 5], "zombie": [2, 1, 0]},
        },
        "histograms": {
            "occupancy": {"buckets": 4, "total": 6, "nonzero_fraction": 0.5,
                          "max_load": 4, "hot_spot_ratio": 2.67,
                          "top_share": 0.667, "entropy_efficiency": 0.46,
                          "bars": [0, 4, 2, 0]},
            "miss": {"buckets": 4, "total": 0, "nonzero_fraction": 0.0,
                     "max_load": 0, "hot_spot_ratio": 0.0,
                     "top_share": 0.0, "entropy_efficiency": 1.0,
                     "bars": [0, 0, 0, 0]},
        },
    }
    record = {
        "id": "E5",
        "title": "reload path comparison",
        "machines": ["604e/200"],
        "total_cycles": 1000,
        "shape_holds": True,
        "measured": {"ratio": 2.5},
        "paper": {"ratio": 2.4},
        "attribution": {"user-compute": 600, "tlb-reload": 400},
        "derived": derived,
        "notes": "fixture",
    }
    return {
        "schema_version": BENCH_SCHEMA,
        "source": "test fixture",
        "experiments": [record],
        "summary": {"experiments": 1, "shapes_holding": 1,
                    "total_cycles": 1000},
    }


class TestRenderReport:
    def test_renderer_is_deterministic(self):
        doc = fixture_doc()
        assert report.render_report(doc) == report.render_report(doc)

    def test_self_contained_html(self):
        html = report.render_report(fixture_doc())
        assert html.startswith("<!DOCTYPE html>")
        assert html.endswith("</body></html>\n")
        # Inline assets only: no external references of any kind.
        assert "http" not in html
        assert "<script" not in html

    def test_sections_present(self):
        html = report.render_report(fixture_doc())
        assert 'id="E5"' in html
        assert "paper Table 1" in html
        assert "shape holds" in html
        assert "<svg" in html
        assert "<polyline" in html
        assert "reload path (Table 1)" in html
        assert "entropy efficiency" in html

    def test_empty_histogram_omitted(self):
        html = report.render_report(fixture_doc())
        # The miss histogram has total 0 and must not render a section.
        assert "miss histogram" not in html

    def test_custom_title_escaped(self):
        html = report.render_report(fixture_doc(), title="<tricks>")
        assert "<title>&lt;tricks&gt;</title>" in html

    def test_shape_broken_badge(self):
        doc = fixture_doc()
        doc["experiments"][0]["shape_holds"] = False
        doc["summary"]["shapes_holding"] = 0
        assert "shape broken" in report.render_report(doc)


def fixture_ledger(path):
    """A two-entry ledger derived from the fixture doc (one mover)."""
    first = fixture_doc()
    second = fixture_doc()
    record = second["experiments"][0]
    record["total_cycles"] = 900
    record["attribution"] = {"user-compute": 600, "tlb-reload": 300}
    second["summary"]["total_cycles"] = 900
    history.append_entry(
        path, history.entry_from_doc(first, label="PR6", sha="aaa111")
    )
    history.append_entry(
        path, history.entry_from_doc(second, label="PR7", sha="bbb222")
    )
    return history.load_history(path)


class TestTrendSection:
    def test_trend_section_rendered(self, tmp_path):
        entries = fixture_ledger(tmp_path / "h.jsonl")
        html = report.render_report(
            fixture_doc(), trend=trend.trend_doc(entries)
        )
        assert '<h2 id="trend">perf trajectory' in html
        assert "PR6" in html and "PR7" in html
        # The E5 delta (-100 cycles) lands in the latest-step table.
        assert "100" in html
        assert "tlb-reload" in html

    def test_without_trend_no_section(self):
        assert '<h2 id="trend">' not in report.render_report(fixture_doc())

    def test_trend_render_is_deterministic(self, tmp_path):
        entries = fixture_ledger(tmp_path / "h.jsonl")
        doc = trend.trend_doc(entries)
        assert report.render_report(fixture_doc(), trend=doc) == \
            report.render_report(fixture_doc(), trend=doc)

    def test_trend_html_stays_self_contained(self, tmp_path):
        entries = fixture_ledger(tmp_path / "h.jsonl")
        html = report.render_report(
            fixture_doc(), trend=trend.trend_doc(entries)
        )
        assert "http" not in html
        assert "<script" not in html


def fixture_capacity():
    """A two-strategy, two-point capacity doc (no simulation needed)."""
    from repro.analysis.capacity import (
        CAPACITY_POINT_FIELDS,
        CAPACITY_SCHEMA,
    )

    def point(offered, p99, zombies):
        values = {
            "offered_per_s": offered,
            "throughput_per_s": min(offered, 4_000.0),
            "completed": 40,
            "latency_p50_us": p99 / 10,
            "latency_p90_us": p99 / 2,
            "latency_p99_us": p99,
            "latency_p999_us": p99 * 1.1,
            "queue_wait_p99_us": p99 / 3,
            "queue_depth_max": 4,
            "mmu_cycles_per_request": 900.0,
            "zombie_peak": zombies,
            "zombie_mean": zombies / 2,
            "zombie_queue_correlation": 0.4,
        }
        assert set(values) == set(CAPACITY_POINT_FIELDS)
        return values

    return {
        "schema": CAPACITY_SCHEMA,
        "machine": "604 185MHz",
        "n_cpus": 2,
        "requests": 40,
        "seed": 20,
        "schedule": "exponential",
        "workers_per_cpu": 3,
        "loads": [2_000, 12_000],
        "curves": [
            {"strategy": "broadcast",
             "points": [point(2_000, 300.0, 12),
                        point(12_000, 9_000.0, 150)]},
            {"strategy": "mmap_reuse",
             "points": [point(2_000, 290.0, 40),
                        point(12_000, 8_800.0, 460)]},
        ],
    }


class TestCapacitySection:
    def test_capacity_section_rendered(self):
        html = report.render_report(
            fixture_doc(), capacity=fixture_capacity()
        )
        assert 'id="capacity"' in html
        assert "broadcast" in html and "mmap_reuse" in html
        assert "scheduled" in html  # the open-loop note

    def test_every_column_has_a_header(self):
        html = report.render_report(
            fixture_doc(), capacity=fixture_capacity()
        )
        for column in report.CAPACITY_COLUMNS:
            title = report._CAPACITY_TITLES[column]
            assert title in html or title.replace("↔", "&harr;") in html

    def test_capacity_report_is_deterministic(self):
        capacity = fixture_capacity()
        assert report.render_report(fixture_doc(), capacity=capacity) == \
            report.render_report(fixture_doc(), capacity=capacity)

    def test_capacity_html_stays_self_contained(self):
        html = report.render_report(
            fixture_doc(), capacity=fixture_capacity()
        )
        assert "http" not in html
        assert "<script" not in html

    def test_empty_capacity_doc_renders_nothing(self):
        html = report.render_report(
            fixture_doc(), capacity={"curves": []}
        )
        assert 'id="capacity"' not in html


def run_cli(*argv):
    return subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        capture_output=True, text=True,
    )


class TestReportCli:
    def test_from_doc_is_byte_deterministic(self, tmp_path):
        doc_path = tmp_path / "bench.json"
        doc_path.write_text(json.dumps(fixture_doc()))
        outs = []
        for name in ("a.html", "b.html"):
            out = tmp_path / name
            proc = run_cli("report", "--from", str(doc_path),
                           "--out", str(out))
            assert proc.returncode == 0, proc.stdout + proc.stderr
            outs.append(out.read_bytes())
        assert outs[0] == outs[1]

    def test_run_ids_byte_identical_across_jobs(self, tmp_path):
        outs = []
        for name, jobs in (("serial.html", "1"), ("parallel.html", "2")):
            out = tmp_path / name
            proc = run_cli("report", "E1", "E12", "--jobs", jobs,
                           "--out", str(out))
            assert proc.returncode == 0, proc.stdout + proc.stderr
            outs.append(out.read_bytes())
        assert outs[0] == outs[1]
        assert b'id="E1"' in outs[0]
        assert b'id="E12"' in outs[0]

    def test_history_report_is_byte_deterministic(self, tmp_path):
        ledger = tmp_path / "h.jsonl"
        fixture_ledger(ledger)
        doc_path = tmp_path / "bench.json"
        doc_path.write_text(json.dumps(fixture_doc()))
        outs = []
        for name in ("a.html", "b.html"):
            out = tmp_path / name
            proc = run_cli("report", "--from", str(doc_path),
                           "--history", str(ledger), "--out", str(out))
            assert proc.returncode == 0, proc.stdout + proc.stderr
            outs.append(out.read_bytes())
        assert outs[0] == outs[1]
        assert b'id="trend"' in outs[0]

    def test_history_report_identical_across_jobs(self, tmp_path):
        ledger = tmp_path / "h.jsonl"
        fixture_ledger(ledger)
        outs = []
        for name, jobs in (("serial.html", "1"), ("parallel.html", "2")):
            out = tmp_path / name
            proc = run_cli("report", "E1", "E12", "--jobs", jobs,
                           "--history", str(ledger), "--out", str(out))
            assert proc.returncode == 0, proc.stdout + proc.stderr
            outs.append(out.read_bytes())
        assert outs[0] == outs[1]
        assert b'id="trend"' in outs[0]

    def test_corrupt_history_is_an_error(self, tmp_path):
        ledger = tmp_path / "h.jsonl"
        ledger.write_text("{not json\n")
        doc_path = tmp_path / "bench.json"
        doc_path.write_text(json.dumps(fixture_doc()))
        proc = run_cli("report", "--from", str(doc_path),
                       "--history", str(ledger),
                       "--out", str(tmp_path / "x.html"))
        assert proc.returncode != 0

    def test_invalid_doc_is_an_error(self, tmp_path):
        doc_path = tmp_path / "bench.json"
        doc_path.write_text(json.dumps({"schema_version": 2,
                                        "experiments": []}))
        proc = run_cli("report", "--from", str(doc_path),
                       "--out", str(tmp_path / "x.html"))
        assert proc.returncode != 0

    def test_capacity_report_is_byte_deterministic(self, tmp_path):
        cap_path = tmp_path / "capacity.json"
        cap_path.write_text(json.dumps(fixture_capacity()))
        doc_path = tmp_path / "bench.json"
        doc_path.write_text(json.dumps(fixture_doc()))
        outs = []
        for name in ("a.html", "b.html"):
            out = tmp_path / name
            proc = run_cli("report", "--from", str(doc_path),
                           "--capacity", str(cap_path), "--out", str(out))
            assert proc.returncode == 0, proc.stdout + proc.stderr
            outs.append(out.read_bytes())
        assert outs[0] == outs[1]
        assert b'id="capacity"' in outs[0]

    def test_corrupt_capacity_doc_is_an_error(self, tmp_path):
        cap_path = tmp_path / "capacity.json"
        cap_path.write_text(json.dumps({"schema": 99}))
        doc_path = tmp_path / "bench.json"
        doc_path.write_text(json.dumps(fixture_doc()))
        proc = run_cli("report", "--from", str(doc_path),
                       "--capacity", str(cap_path),
                       "--out", str(tmp_path / "x.html"))
        assert proc.returncode != 0


class TestCapacityCli:
    def test_sweep_prints_table_and_writes_doc(self, tmp_path):
        out = tmp_path / "capacity.json"
        proc = run_cli("capacity", "--requests", "16",
                       "--loads", "2000", "12000", "--out", str(out))
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "p99 knee" in proc.stdout
        assert "broadcast" in proc.stdout and "mmap_reuse" in proc.stdout
        doc = json.loads(out.read_text())
        from repro.analysis.capacity import validate_capacity_doc

        assert validate_capacity_doc(doc) == {"curves": 2, "points": 4}

    def test_sweep_output_is_byte_deterministic(self, tmp_path):
        outs = []
        for _round in range(2):
            proc = run_cli("capacity", "--requests", "16",
                           "--loads", "2000", "12000", "--json")
            assert proc.returncode == 0, proc.stdout + proc.stderr
            outs.append(proc.stdout)
        assert outs[0] == outs[1]

    def test_bad_ladder_is_an_error(self):
        proc = run_cli("capacity", "--requests", "8",
                       "--loads", "9000", "1000")
        assert proc.returncode == 2
        assert "monotone" in proc.stderr

    def test_unknown_strategy_is_an_error(self):
        proc = run_cli("capacity", "--requests", "8",
                       "--strategies", "smoke-signals")
        assert proc.returncode == 2
        assert "unknown strategy" in proc.stderr
