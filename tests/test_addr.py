"""Address arithmetic: the Figure-1 field splits."""

import pytest
from hypothesis import given, strategies as st

from repro.hw.addr import (
    EA_MASK,
    decompose_ea,
    ea_offset,
    ea_page_index,
    ea_segment,
    make_ea,
    make_virtual_address,
    page_of,
    physical_address,
)
from repro.params import PAGE_SIZE, VSID_MASK

eas = st.integers(min_value=0, max_value=EA_MASK)


class TestFieldSplits:
    def test_segment_is_top_four_bits(self):
        assert ea_segment(0x00000000) == 0
        assert ea_segment(0xF0000000) == 15
        assert ea_segment(0xC0000000) == 12
        assert ea_segment(0x3FFFFFFF) == 3

    def test_page_index_is_middle_sixteen_bits(self):
        assert ea_page_index(0x00000000) == 0
        assert ea_page_index(0x0FFFF000) == 0xFFFF
        assert ea_page_index(0x30012ABC) == 0x0012

    def test_offset_is_low_twelve_bits(self):
        assert ea_offset(0x12345FFF) == 0xFFF
        assert ea_offset(0x12345000) == 0
        assert ea_offset(0x30012ABC) == 0xABC

    def test_page_of_combines_segment_and_index(self):
        assert page_of(0x00001000) == 1
        assert page_of(0xC0000000) == 0xC0000
        assert page_of(0xFFFFFFFF) == 0xFFFFF

    @given(eas)
    def test_fields_reassemble_to_original(self, ea):
        fields = decompose_ea(ea)
        assert fields.value == ea

    @given(eas)
    def test_fields_are_in_range(self, ea):
        fields = decompose_ea(ea)
        assert 0 <= fields.segment < 16
        assert 0 <= fields.page_index < 1 << 16
        assert 0 <= fields.offset < PAGE_SIZE


class TestMakeEa:
    def test_compose(self):
        assert make_ea(3, 0x12, 0xABC) == 0x30012ABC

    def test_rejects_bad_segment(self):
        with pytest.raises(ValueError):
            make_ea(16, 0, 0)

    def test_rejects_bad_page_index(self):
        with pytest.raises(ValueError):
            make_ea(0, 0x10000, 0)

    def test_rejects_bad_offset(self):
        with pytest.raises(ValueError):
            make_ea(0, 0, PAGE_SIZE)

    @given(
        st.integers(0, 15),
        st.integers(0, 0xFFFF),
        st.integers(0, PAGE_SIZE - 1),
    )
    def test_roundtrip(self, segment, page_index, offset):
        ea = make_ea(segment, page_index, offset)
        assert ea_segment(ea) == segment
        assert ea_page_index(ea) == page_index
        assert ea_offset(ea) == offset


class TestVirtualAddress:
    def test_52_bit_value(self):
        va = make_virtual_address(0x123456, 0x30012ABC)
        assert va.value == 0x1234560012ABC
        assert va.value.bit_length() <= 52

    def test_virtual_page_concatenation(self):
        va = make_virtual_address(0x000001, 0x00001000)
        assert va.virtual_page == (1 << 16) | 1

    def test_rejects_oversized_vsid(self):
        with pytest.raises(ValueError):
            make_virtual_address(VSID_MASK + 1, 0)

    @given(st.integers(0, VSID_MASK), eas)
    def test_offset_preserved(self, vsid, ea):
        va = make_virtual_address(vsid, ea)
        assert va.offset == ea_offset(ea)
        assert va.vsid == vsid


class TestPhysicalAddress:
    def test_compose(self):
        assert physical_address(0x12345, 0xABC) == 0x12345ABC

    def test_offset_masked(self):
        assert physical_address(1, 0x1FFF) == 0x1FFF

    @given(st.integers(0, 0xFFFFF), st.integers(0, PAGE_SIZE - 1))
    def test_fields(self, ppn, offset):
        pa = physical_address(ppn, offset)
        assert pa >> 12 == ppn
        assert pa & 0xFFF == offset
