"""Table rendering and the experiment registry."""

import pytest

from repro.analysis import experiments
from repro.analysis.tables import format_table, ratio_line


class TestFormatTable:
    def test_basic_layout(self):
        text = format_table(
            ["name", "value"], [["a", 1.5], ["bb", 123.456]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert "1.50" in text
        assert "123" in text

    def test_none_renders_dash(self):
        text = format_table(["x"], [[None]])
        assert "-" in text.splitlines()[-1]

    def test_ratio_line(self):
        line = ratio_line("metric", 50.0, 100.0, "us")
        assert "0.50x" in line


class TestRegistry:
    def test_all_sixteen_experiments_registered(self):
        assert sorted(experiments.REGISTRY) == sorted(
            f"E{i}" for i in range(1, 17)
        )

    def test_sort_key_orders_numerically(self):
        ordered = sorted(
            experiments.REGISTRY, key=experiments._experiment_sort_key
        )
        assert ordered[0] == "E1"
        assert ordered[-1] == "E16"

    def test_e1_runs_and_reports(self):
        result = experiments.run_e1()
        assert result.experiment == "E1"
        assert result.shape_holds
        assert "Figure 1" in result.report
        assert result.measured["va_bits"] <= 52

    def test_e1_custom_address(self):
        result = experiments.run_e1(ea=0xC0000ABC, vsid=1)
        assert result.measured["segment"] == 12
        assert result.measured["offset"] == 0xABC

    def test_run_all_subset(self):
        results = experiments.run_all(ids=["E1"])
        assert len(results) == 1
        assert results[0].experiment == "E1"
