"""Table rendering and the experiment registry."""

import pytest

from repro.analysis import engine, specs
from repro.analysis.spec import experiment_sort_key
from repro.analysis.tables import format_table, ratio_line


class TestFormatTable:
    def test_basic_layout(self):
        text = format_table(
            ["name", "value"], [["a", 1.5], ["bb", 123.456]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert "1.50" in text
        assert "123" in text

    def test_none_renders_dash(self):
        text = format_table(["x"], [[None]])
        assert "-" in text.splitlines()[-1]

    def test_ratio_line(self):
        line = ratio_line("metric", 50.0, 100.0, "us")
        assert "0.50x" in line


class TestRegistry:
    def test_all_twenty_one_experiments_registered(self):
        assert sorted(specs.SPECS) == sorted(
            f"E{i}" for i in range(1, 22)
        )

    def test_sort_key_orders_numerically(self):
        ordered = sorted(specs.SPECS, key=experiment_sort_key)
        assert ordered[0] == "E1"
        assert ordered[-1] == "E21"

    def test_e1_runs_and_reports(self):
        result = engine.execute(specs.SPECS["E1"])
        assert result.experiment == "E1"
        assert result.shape_holds
        assert "Figure 1" in result.report
        assert result.measured["va_bits"] <= 52

    def test_e1_custom_address(self):
        result = engine.execute(
            specs.SPECS["E1"], {"ea": 0xC0000ABC, "vsid": 1}
        )
        assert result.measured["segment"] == 12
        assert result.measured["offset"] == 0xABC

    def test_run_ids_subset(self):
        run = engine.run_ids(["E1"], use_cache=False)
        assert len(run.results) == 1
        assert run.results[0].experiment == "E1"
