"""The architected hashed page table (§3, §5.2, §7)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError
from repro.hw.hashtable import (
    HashedPageTable,
    primary_hash,
    secondary_hash,
)
from repro.hw.pte import HashPte
from repro.params import PTES_PER_GROUP


def pte(vsid, page_index, rpn=1):
    return HashPte(vsid=vsid, page_index=page_index, rpn=rpn)


class TestHashFunction:
    def test_primary_hash_vectors(self):
        # hash = (VSID mod 2^19) xor page_index
        assert primary_hash(0, 0) == 0
        assert primary_hash(0x7FFFF, 0) == 0x7FFFF
        assert primary_hash(0x80000, 0) == 0  # bit 19 does not participate
        assert primary_hash(0x12345, 0x6789) == 0x12345 ^ 0x6789

    def test_secondary_is_ones_complement(self):
        for vsid, page in [(0, 0), (0x123, 0x456), (0x7FFFF, 0xFFFF)]:
            assert secondary_hash(vsid, page) == (
                (~primary_hash(vsid, page)) & 0x7FFFF
            )

    @given(st.integers(0, 0xFFFFFF), st.integers(0, 0xFFFF))
    def test_hash_fits_19_bits(self, vsid, page):
        assert 0 <= primary_hash(vsid, page) < 1 << 19
        assert 0 <= secondary_hash(vsid, page) < 1 << 19


class TestConstruction:
    def test_power_of_two_groups_required(self):
        with pytest.raises(ConfigError):
            HashedPageTable(groups=100)

    def test_slots(self):
        htab = HashedPageTable(groups=64)
        assert htab.slots == 64 * PTES_PER_GROUP


class TestSearchInsert:
    def test_search_empty_misses(self):
        htab = HashedPageTable(groups=64)
        result = htab.search(1, 0x10)
        assert not result.found
        assert result.mem_refs == 2 * PTES_PER_GROUP  # both buckets

    def test_insert_then_search(self):
        htab = HashedPageTable(groups=64)
        htab.insert(pte(1, 0x10, rpn=42))
        result = htab.search(1, 0x10)
        assert result.found and result.pte.rpn == 42

    def test_search_counts_histogram_on_miss(self):
        htab = HashedPageTable(groups=64)
        group = htab.group_index(1, 0x10, secondary=False)
        htab.search(1, 0x10)
        assert htab.bucket_miss_histogram[group] == 1

    def test_insert_prefers_invalid_slot(self):
        htab = HashedPageTable(groups=64)
        event = htab.insert(pte(1, 0x10))
        assert not event["evicted"]

    def test_overflow_to_secondary_bucket(self):
        htab = HashedPageTable(groups=64)
        # Fill the primary bucket with 8 conflicting entries.
        base_vsid = 5
        inserted = []
        count = 0
        page = 0
        target_group = htab.group_index(base_vsid, 0, secondary=False)
        while count < PTES_PER_GROUP + 1 and page < 0x10000:
            if htab.group_index(base_vsid, page, secondary=False) == target_group:
                htab.insert(pte(base_vsid, page))
                inserted.append(page)
                count += 1
            page += 1
        # The ninth conflicting entry must have gone to its secondary
        # bucket, and still be findable.
        assert htab.insert_secondary >= 1
        for page in inserted:
            assert htab.search(base_vsid, page).found

    def test_evict_when_both_buckets_full(self):
        htab = HashedPageTable(groups=2)  # tiny: 16 slots
        for page in range(40):
            htab.insert(pte(1, page))
        assert htab.evicts > 0
        assert htab.valid_entries() <= htab.slots

    def test_probe_callback_invoked_per_slot(self):
        htab = HashedPageTable(groups=64)
        probes = []
        htab.search(1, 0x10, probe=lambda g, s: probes.append((g, s)))
        assert len(probes) == 16


class TestInvalidate:
    def test_invalidate_entry(self):
        htab = HashedPageTable(groups=64)
        htab.insert(pte(1, 0x10))
        event = htab.invalidate_entry(1, 0x10)
        assert event["found"]
        assert not htab.search(1, 0x10).found

    def test_invalidate_missing_costs_full_search(self):
        htab = HashedPageTable(groups=64)
        event = htab.invalidate_entry(1, 0x10)
        assert not event["found"]
        assert event["mem_refs"] == 16  # the paper's worst case

    def test_invalidate_all(self):
        htab = HashedPageTable(groups=64)
        for page in range(20):
            htab.insert(pte(1, page))
        cleared = htab.invalidate_all()
        assert cleared == 20
        assert htab.valid_entries() == 0


class TestScanAndStats:
    def test_scan_slots_wraps(self):
        htab = HashedPageTable(groups=2)
        slots = list(htab.scan_slots(start=htab.slots - 2, count=4))
        indices = [flat for flat, _ in slots]
        assert indices == [htab.slots - 2, htab.slots - 1, 0, 1]

    def test_invalidate_slot(self):
        htab = HashedPageTable(groups=64)
        htab.insert(pte(1, 0x10))
        flat = next(
            flat for flat, entry in htab.scan_slots(0, htab.slots)
            if entry is not None
        )
        htab.invalidate_slot(flat)
        assert htab.valid_entries() == 0

    def test_live_and_zombie_split(self):
        htab = HashedPageTable(groups=64)
        htab.insert(pte(1, 0x10))
        htab.insert(pte(2, 0x11))
        live, zombie = htab.live_and_zombie_counts(lambda vsid: vsid == 1)
        assert (live, zombie) == (1, 1)

    def test_evict_ratio_and_hit_rate(self):
        htab = HashedPageTable(groups=64)
        assert htab.evict_ratio() == 0.0
        htab.insert(pte(1, 0x10))
        htab.search(1, 0x10)
        htab.search(1, 0x11)
        assert htab.search_hit_rate() == 0.5

    def test_bucket_load_histogram(self):
        htab = HashedPageTable(groups=64)
        htab.insert(pte(1, 0x10))
        histogram = htab.bucket_load_histogram()
        assert sum(histogram) == 1

    def test_reset_stats(self):
        htab = HashedPageTable(groups=64)
        htab.search(1, 0)
        htab.reset_stats()
        assert htab.searches == 0
        assert sum(htab.bucket_miss_histogram) == 0


class TestProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(1, 8), st.integers(0, 1023)),
            min_size=1,
            max_size=120,
            unique=True,
        )
    )
    def test_inserted_entries_findable_until_evicted(self, mappings):
        htab = HashedPageTable(groups=32)
        evicted = set()
        for vsid, page in mappings:
            event = htab.insert(pte(vsid, page))
            if event["evicted"] and event["victim"] is not None:
                evicted.add((event["victim"].vsid, event["victim"].page_index))
            evicted.discard((vsid, page))
        for vsid, page in mappings:
            if (vsid, page) not in evicted:
                assert htab.search(vsid, page).found

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 0xFFFF), min_size=1, max_size=64,
                    unique=True))
    def test_valid_count_matches_inserts_without_eviction(self, pages):
        htab = HashedPageTable(groups=512)
        for page in pages:
            htab.insert(pte(3, page))
        if htab.evicts == 0:
            assert htab.valid_entries() == len(pages)
