"""The hash-table reloader and the rejected scavenge design."""

import pytest

from repro.hw.pte import PP_RO, PP_RW
from repro.kernel.config import KernelConfig
from repro.kernel.pagetable import LinuxPte
from repro.kernel.reload import hash_pte_from_linux
from repro.params import M604_185, PAGE_SIZE
from repro.sim.simulator import Simulator


class TestPteTranslation:
    def test_writable_maps_to_pp_rw(self):
        pte = hash_pte_from_linux(1, 2, LinuxPte(pfn=3, writable=True))
        assert pte.pp == PP_RW and pte.rpn == 3 and pte.valid

    def test_readonly_maps_to_pp_ro(self):
        pte = hash_pte_from_linux(1, 2, LinuxPte(pfn=3, writable=False))
        assert pte.pp == PP_RO

    def test_dirty_sets_changed(self):
        pte = hash_pte_from_linux(1, 2, LinuxPte(pfn=3, dirty=True))
        assert pte.changed

    def test_cache_inhibit_propagates(self):
        pte = hash_pte_from_linux(
            1, 2, LinuxPte(pfn=3, cache_inhibited=True)
        )
        assert pte.cache_inhibited


class TestInstall:
    def test_install_counts_reload(self):
        sim = Simulator(M604_185, KernelConfig.optimized())
        cycles = sim.kernel.reloader.install(5, 9, LinuxPte(pfn=7))
        assert cycles > 0
        assert sim.machine.monitor["htab_reload"] == 1
        assert sim.machine.htab.search(5, 9).found


class TestOnDemandScavenge:
    def _saturated_sim(self):
        config = KernelConfig.optimized().with_changes(
            idle_zombie_reclaim=False, on_demand_scavenge=True
        )
        sim = Simulator(M604_185, config)
        kernel = sim.kernel
        task = kernel.spawn("churn", data_pages=100)
        kernel.switch_to(task)
        htab = sim.machine.htab
        while htab.evicts == 0:
            for page in range(0, 96, 2):
                kernel.user_access(
                    task, 0x10000000 + page * PAGE_SIZE, 1, True
                )
            kernel.flush.flush_mm(task.mm)
        return sim

    def test_evict_triggers_scavenge_burst(self):
        sim = self._saturated_sim()
        assert sim.machine.monitor["scavenge_burst"] >= 1
        assert sim.kernel.reloader.scavenge_bursts >= 1
        assert sim.machine.monitor["zombie_reclaimed"] > 0

    def test_scavenge_charged_to_its_own_category(self):
        sim = self._saturated_sim()
        assert sim.breakdown().get("scavenge", 0) > 0

    def test_scavenge_disabled_by_default(self):
        sim = Simulator(M604_185, KernelConfig.optimized())
        assert not sim.config.on_demand_scavenge
