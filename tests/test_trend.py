"""Tests for the per-PR trend analytics (``obs/trend.py``)."""

import json

import pytest

from repro import __main__ as cli
from repro.obs import baseline, history, metrics, trend


def bench_record(exp_id, cycles, attribution, shape=True):
    top = max(attribution, key=attribution.get)
    return {
        "id": exp_id,
        "title": f"experiment {exp_id}",
        "machine": "prototype",
        "machines": ["prototype"],
        "simulators": 1,
        "total_cycles": cycles,
        "shape_holds": shape,
        "measured": {"cycles": cycles},
        "paper": {"claim": "qualitative"},
        "attribution": dict(attribution),
        "derived": {
            "attribution": {
                "top": top,
                "shares": {top: round(attribution[top] / cycles, 4)},
            },
            "reload": {"p99": 42},
            "counters": {"tlb_miss": 7},
        },
    }


def ledger_entry(records, timings, label, sha=None):
    doc = metrics.bench_doc(records, timings=timings)
    return history.entry_from_doc(doc, label=label, sha=sha)


@pytest.fixture()
def entries():
    """A synthetic three-entry ledger: a win, an addition, a flip."""
    first = ledger_entry(
        [
            bench_record("E1", 1000, {"tlb-reload": 600, "user-compute": 400}),
            bench_record("E2", 2000, {"user-compute": 2000}),
        ],
        {"E1": 1.0, "E2": 2.0},
        label="PR5", sha="aaaa111",
    )
    second = ledger_entry(
        [
            bench_record("E1", 800, {"tlb-reload": 400, "user-compute": 400}),
            bench_record("E2", 2000, {"user-compute": 2000}),
            bench_record("E3", 500, {"flush": 500}),
        ],
        {"E1": 0.9, "E2": 2.0, "E3": 0.5},
        label="PR6", sha="bbbb222",
    )
    third = ledger_entry(
        [
            bench_record("E1", 800, {"tlb-reload": 400, "user-compute": 400}),
            bench_record("E2", 2200, {"user-compute": 2200}, shape=False),
            bench_record("E3", 500, {"flush": 500}),
        ],
        {"E1": 0.9, "E2": 2.1, "E3": 0.5},
        label="PR7", sha="cccc333",
    )
    return [first, second, third]


class TestStep:
    def test_exact_cycle_deltas(self, entries):
        change = trend.step(entries[0], entries[1])
        e1 = change["experiments"]["E1"]["cycles"]
        assert e1 == {"old": 1000, "new": 800, "delta": -200, "ratio": 0.8}
        assert change["experiments"]["E2"]["cycles"]["delta"] == 0
        assert change["movers"] == [{"id": "E1", "delta": -200}]
        assert change["summary"]["changed"] == 1
        assert change["summary"]["shared"] == 2
        assert change["summary"]["added"] == ["E3"]
        assert change["summary"]["removed"] == []
        assert change["summary"]["total_cycles"] == {
            "old": 3000, "new": 2800,
        }

    def test_category_movers_sum_attributions(self, entries):
        change = trend.step(entries[0], entries[1])
        # Only the shared experiments count; E3's flush cycles do not.
        assert change["category_movers"] == [
            {"category": "tlb-reload", "old": 600, "new": 400, "delta": -200},
        ]

    def test_movers_ranked_by_magnitude_then_id(self, entries):
        change = trend.step(entries[1], entries[2])
        assert change["movers"] == [{"id": "E2", "delta": 200}]

    def test_shape_flip_recorded(self, entries):
        change = trend.step(entries[1], entries[2])
        assert change["experiments"]["E2"]["shape"] == {
            "old": True, "new": False,
        }

    def test_wall_banded_through_policy(self, entries):
        change = trend.step(entries[0], entries[1])
        wall = change["experiments"]["E1"]["wall"]
        assert wall["status"] == "within-band"
        assert wall["kind"] == "ratio"
        assert wall["ratio"] == 0.9

    def test_wall_outside_band_with_tight_policy(self, entries):
        tight = {
            "schema_version": baseline.POLICY_SCHEMA,
            "rules": [{"prefix": "timings.", "kind": "ratio",
                       "max_ratio": 1.01, "severity": "warn"}],
            "default": {"kind": "exact", "severity": "fail"},
        }
        change = trend.step(entries[0], entries[1], policy=tight)
        assert change["experiments"]["E1"]["wall"]["status"] == "outside-band"

    def test_missing_wall_reported(self, entries):
        stripped = dict(entries[0])
        stripped["wall"] = {}
        change = trend.step(stripped, entries[1])
        assert change["experiments"]["E1"]["wall"]["status"] == "missing"

    def test_headline_columns_carried(self, entries):
        change = trend.step(entries[0], entries[1])
        headline = change["experiments"]["E1"]["headline"]
        assert set(headline) == set(trend.HEADLINE_COLUMNS)
        assert headline["top_category"] == {
            "old": "tlb-reload", "new": "tlb-reload",
        }

    def test_identical_entries_have_no_movers(self, entries):
        change = trend.step(entries[0], entries[0])
        assert change["movers"] == []
        assert change["category_movers"] == []
        assert change["summary"]["changed"] == 0


class TestTrendDoc:
    def test_doc_shape(self, entries):
        doc = trend.trend_doc(entries)
        assert [entry["name"] for entry in doc["entries"]] == \
            ["PR5", "PR6", "PR7"]
        assert len(doc["steps"]) == 2
        assert doc["series_window"] == 3
        assert doc["series"]["E1"] == [1000, 800, 800]
        assert doc["series"]["E3"] == [None, 500, 500]
        assert doc["series"]["__total__"] == [3000, 3300, 3500]

    def test_empty_ledger_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            trend.trend_doc([])

    def test_names_fall_back_to_sha_then_index(self, entries):
        anonymous = dict(entries[0])
        anonymous["label"] = None
        doc = trend.trend_doc([anonymous])
        assert doc["entries"][0]["name"] == "aaaa111"
        anonymous = dict(anonymous)
        anonymous["git"] = {"sha": None, "parent": None}
        doc = trend.trend_doc([anonymous])
        assert doc["entries"][0]["name"] == "#1"

    def test_doc_is_deterministic(self, entries):
        assert trend.trend_doc(entries) == trend.trend_doc(entries)


class TestSparkline:
    def test_empty_and_gap_handling(self):
        assert trend.sparkline([]) == ""
        assert trend.sparkline([None, None]) == ""
        assert trend.sparkline([1, None, 1]) == "▁ ▁"

    def test_constant_series_renders_low_tick(self):
        assert trend.sparkline([5, 5, 5]) == "▁▁▁"

    def test_extremes_map_to_first_and_last_tick(self):
        line = trend.sparkline([0, 100])
        assert line[0] == trend._TICKS[0]
        assert line[-1] == trend._TICKS[-1]


class TestRenderTrend:
    def test_render_is_byte_deterministic(self, entries):
        doc = trend.trend_doc(entries)
        assert trend.render_trend(doc) == trend.render_trend(doc)

    def test_render_mentions_movers_and_flips(self, entries):
        text = trend.render_trend(trend.trend_doc(entries))
        assert "BENCH history: 3 entries" in text
        assert "PR5 -> PR6:" in text
        assert "added E3" in text
        assert "-200" in text
        assert "tlb-reload" in text
        assert "SHAPE FLIP E2: True -> False" in text

    def test_render_flags_identical_runs(self, entries):
        doc = trend.trend_doc([entries[0], entries[0]])
        assert "bit-identical" in trend.render_trend(doc)


class TestCli:
    def write_doc(self, tmp_path, name, cycles):
        doc = metrics.bench_doc(
            [bench_record("E1", cycles,
                          {"tlb-reload": cycles // 2,
                           "user-compute": cycles - cycles // 2})],
            timings={"E1": 1.0},
        )
        path = tmp_path / name
        path.write_text(metrics.dumps(doc))
        return path

    def test_append_then_trend_round_trip(self, tmp_path, capsys):
        ledger = tmp_path / "BENCH_history.jsonl"
        for name, cycles, label in (
            ("old.json", 1000, "PR6"), ("new.json", 800, "PR7"),
        ):
            results = self.write_doc(tmp_path, name, cycles)
            assert cli.main([
                "bench", "append", str(results),
                "--history", str(ledger),
                "--label", label, "--sha", f"sha-{label}",
                "--parent", "sha-parent",
            ]) == 0
        out = capsys.readouterr().out
        assert "entry 1" in out and "entry 2" in out

        assert cli.main(["trend", "--history", str(ledger)]) == 0
        text = capsys.readouterr().out
        assert "BENCH history: 2 entries" in text
        assert "PR6 -> PR7:" in text
        assert "-200" in text

        assert cli.main(["trend", "--history", str(ledger),
                         "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert [entry["name"] for entry in doc["entries"]] == \
            ["PR6", "PR7"]
        (change,) = doc["steps"]
        assert change["experiments"]["E1"]["cycles"]["delta"] == -200

    def test_append_with_verdict(self, tmp_path, capsys):
        ledger = tmp_path / "BENCH_history.jsonl"
        results = self.write_doc(tmp_path, "r.json", 1000)
        verdict = tmp_path / "verdict.json"
        verdict.write_text(json.dumps(
            {"ok": True, "regressions": 0, "warnings": 1}
        ))
        assert cli.main([
            "bench", "append", str(results), "--history", str(ledger),
            "--sha", "abc", "--parent", "def",
            "--verdict", str(verdict),
        ]) == 0
        capsys.readouterr()
        (entry,) = history.load_history(ledger)
        assert entry["verdict"] == {
            "ok": True, "regressions": 0, "warnings": 1,
        }

    def test_append_rejects_bad_results(self, tmp_path, capsys):
        ledger = tmp_path / "BENCH_history.jsonl"
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema_version": 1}))
        assert cli.main(["bench", "append", str(bad),
                         "--history", str(ledger)]) == 2
        assert "bench append:" in capsys.readouterr().err
        assert not ledger.exists()

    def test_trend_missing_ledger_is_an_error(self, tmp_path, capsys):
        assert cli.main(["trend", "--history",
                         str(tmp_path / "absent.jsonl")]) == 2
        assert "trend:" in capsys.readouterr().err
