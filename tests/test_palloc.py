"""The physical page allocator and §9's pre-cleared list."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import KernelPanic, OutOfMemoryError
from repro.hw.machine import MachineModel
from repro.kernel.palloc import PageAllocator
from repro.params import M604_185


def make_palloc(first=100, last=199):
    machine = MachineModel(M604_185)
    return PageAllocator(machine, first_pfn=first, last_pfn=last), machine


class TestBasicAllocation:
    def test_alloc_unique_frames(self):
        palloc, _ = make_palloc()
        frames = {palloc.alloc_frame() for _ in range(100)}
        assert len(frames) == 100
        assert frames == set(range(100, 200))

    def test_exhaustion_raises(self):
        palloc, _ = make_palloc(100, 101)
        palloc.alloc_frame()
        palloc.alloc_frame()
        with pytest.raises(OutOfMemoryError):
            palloc.alloc_frame()

    def test_free_then_realloc(self):
        palloc, _ = make_palloc(100, 100)
        pfn = palloc.alloc_frame()
        palloc.free_page(pfn)
        assert palloc.alloc_frame() == pfn

    def test_double_free_panics(self):
        palloc, _ = make_palloc()
        pfn = palloc.alloc_frame()
        palloc.free_page(pfn)
        with pytest.raises(KernelPanic):
            palloc.free_page(pfn)

    def test_empty_range_panics(self):
        machine = MachineModel(M604_185)
        with pytest.raises(KernelPanic):
            PageAllocator(machine, first_pfn=10, last_pfn=5)

    def test_counters(self):
        palloc, _ = make_palloc()
        assert palloc.free_count() == 100
        palloc.alloc_frame()
        assert palloc.free_count() == 99
        assert palloc.allocated_count() == 1


class TestZeroedAllocation:
    def test_inline_clear_charges_cycles_through_cache(self):
        palloc, machine = make_palloc()
        before = machine.clock.total
        palloc.get_free_page(zeroed=True)
        assert machine.clock.total - before > 128 * 8  # per-line work
        assert palloc.inline_clears == 1
        assert machine.dcache.stats.misses > 0

    def test_unzeroed_page_is_cheap(self):
        palloc, machine = make_palloc()
        before = machine.clock.total
        palloc.get_free_page(zeroed=False)
        assert machine.clock.total - before < 100
        assert palloc.inline_clears == 0

    def test_precleared_page_short_circuits(self):
        palloc, machine = make_palloc()
        pfn = palloc.pop_free_for_preclear()
        palloc.clear_page(pfn, inhibited=True, category="idle_clear")
        palloc.push_precleared(pfn)
        before_misses = machine.dcache.stats.misses
        got = palloc.get_free_page(zeroed=True)
        assert got == pfn
        assert palloc.precleared_hits == 1
        assert machine.dcache.stats.misses == before_misses
        assert machine.monitor["precleared_page_used"] == 1

    def test_precleared_pages_reclaimed_when_free_list_dry(self):
        palloc, _ = make_palloc(100, 101)
        pfn = palloc.pop_free_for_preclear()
        palloc.push_precleared(pfn)
        first = palloc.get_free_page(zeroed=False)
        second = palloc.get_free_page(zeroed=False)
        assert {first, second} == {100, 101}

    def test_uncached_clear_does_not_pollute(self):
        palloc, machine = make_palloc()
        pfn = palloc.pop_free_for_preclear()
        palloc.clear_page(pfn, inhibited=True, category="idle_clear")
        assert machine.dcache.stats.bypasses == 128
        assert len(machine.dcache) == 0

    def test_cached_clear_pollutes(self):
        palloc, machine = make_palloc()
        pfn = palloc.pop_free_for_preclear()
        palloc.clear_page(pfn, inhibited=False, category="idle_clear")
        assert len(machine.dcache) > 0

    def test_return_uncleared_puts_page_back(self):
        palloc, _ = make_palloc(100, 100)
        pfn = palloc.pop_free_for_preclear()
        assert palloc.free_count() == 0
        palloc.return_uncleared(pfn)
        assert palloc.free_count() == 1

    def test_pop_free_for_preclear_empty(self):
        palloc, _ = make_palloc(100, 100)
        palloc.alloc_frame()
        assert palloc.pop_free_for_preclear() is None


class TestProperties:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.booleans(), min_size=1, max_size=120))
    def test_never_double_allocates(self, plan):
        palloc, _ = make_palloc(0, 49)
        live = set()
        for should_alloc in plan:
            if should_alloc or not live:
                try:
                    pfn = palloc.alloc_frame()
                except OutOfMemoryError:
                    continue
                assert pfn not in live
                live.add(pfn)
            else:
                pfn = live.pop()
                palloc.free_page(pfn)
        assert palloc.allocated_count() == len(live)
