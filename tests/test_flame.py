"""Flamegraph export tests (``obs/flame.py``).

Two layers: synthetic rings (exact span trees, hand-checkable
weights) and real traced runs (exports validate, are deterministic,
and perturb nothing).
"""

from __future__ import annotations

import json

import pytest

from repro import __main__ as cli
from repro.kernel.config import KernelConfig
from repro.obs import flame
from repro.obs.events import PH_COMPLETE
from repro.params import M604_185
from repro.sim.simulator import Simulator

from tests.test_obs import drive


class FakeTracer:
    """The two attributes the exporters read: ``events`` and ``label``."""

    def __init__(self, spans, label="fake"):
        # spans: (name, category, start, end, tid)
        self.events = [
            (start, end - start, PH_COMPLETE, category, name, tid, None)
            for name, category, start, end, tid in spans
        ]
        self.label = label


NESTED = [
    ("hw-walk", "mmu", 10, 30, 1),
    ("outer", "kernel", 0, 100, 1),
    ("inner", "kernel", 40, 90, 1),
    ("leaf", "kernel", 45, 50, 1),
]


class TestSpanForest:
    def test_containment_nests(self):
        forest = flame.span_forest(FakeTracer(NESTED))
        (root,) = forest[1]
        assert root.name == "outer"
        assert [child.name for child in root.children] == \
            ["hw-walk", "inner"]
        (leaf,) = root.children[1].children
        assert leaf.name == "leaf"
        assert root.self_cycles == 100 - 20 - 50
        assert root.children[1].self_cycles == 50 - 5

    def test_partial_overlap_becomes_sibling(self):
        forest = flame.span_forest(FakeTracer([
            ("a", "k", 0, 100, 1),
            ("b", "k", 50, 150, 1),
        ]))
        assert [span.name for span in forest[1]] == ["a", "b"]
        assert all(not span.children for span in forest[1])

    def test_lanes_are_independent(self):
        forest = flame.span_forest(FakeTracer([
            ("a", "k", 0, 100, 1),
            ("b", "k", 10, 20, 2),
        ]))
        assert [span.name for span in forest[1]] == ["a"]
        assert [span.name for span in forest[2]] == ["b"]

    def test_non_span_events_ignored(self):
        tracer = FakeTracer([("a", "k", 0, 10, 1)])
        tracer.events.append((5, None, "i", "monitor", "tick", 1, None))
        forest = flame.span_forest(tracer)
        assert [span.name for span in forest[1]] == ["a"]


class TestFolded:
    def test_weights_are_self_cycles(self):
        lines = flame.folded([FakeTracer(NESTED)])
        assert lines == [
            "fake/task1;outer [kernel] 30",
            "fake/task1;outer [kernel];hw-walk [tlb-reload] 20",
            "fake/task1;outer [kernel];inner [kernel] 45",
            "fake/task1;outer [kernel];inner [kernel];leaf [kernel] 5",
        ]

    def test_identical_stacks_merge(self):
        lines = flame.folded([FakeTracer([
            ("a", "k", 0, 10, 1),
            ("a", "k", 20, 35, 1),
        ])])
        assert lines == ["fake/task1;a [k] 25"]

    def test_span_category_tags_frames(self):
        (line,) = flame.folded([FakeTracer([("sw-refill", "mmu", 0, 7, 1)])])
        assert line == "fake/task1;sw-refill [tlb-reload] 7"


class TestSpeedscope:
    def test_document_balances(self):
        doc = flame.speedscope([FakeTracer(NESTED)], name="unit")
        counts = flame.validate_speedscope(doc)
        assert counts == {"frames": 4, "profiles": 1, "events": 8}
        assert doc["name"] == "unit"
        (profile,) = doc["profiles"]
        assert profile["name"] == "fake/task1"
        assert profile["startValue"] == 0
        assert profile["endValue"] == 100

    def test_overlapping_siblings_stay_monotonic(self):
        doc = flame.speedscope([FakeTracer([
            ("a", "k", 0, 100, 1),
            ("b", "k", 90, 150, 1),
        ])])
        counts = flame.validate_speedscope(doc)
        assert counts["events"] == 4

    def test_validator_rejects_malformed(self):
        with pytest.raises(ValueError, match="profiles"):
            flame.validate_speedscope({})
        good = flame.speedscope([FakeTracer(NESTED)])
        unbalanced = json.loads(json.dumps(good))
        unbalanced["profiles"][0]["events"].pop()
        with pytest.raises(ValueError, match="left open"):
            flame.validate_speedscope(unbalanced)
        backwards = json.loads(json.dumps(good))
        backwards["profiles"][0]["events"][-1]["at"] = -1
        with pytest.raises(ValueError, match="backwards"):
            flame.validate_speedscope(backwards)
        stray = json.loads(json.dumps(good))
        stray["profiles"][0]["events"][0]["frame"] = 99
        with pytest.raises(ValueError, match="out of range"):
            flame.validate_speedscope(stray)


class TestCriticalPath:
    def test_follows_heaviest_chain(self):
        path = flame.critical_path([FakeTracer(NESTED)])
        assert [record["name"] for record in path] == \
            ["outer", "inner", "leaf"]
        assert path[0]["share_of_parent"] == 1.0
        assert path[1]["share_of_parent"] == 0.5
        assert path[1]["self_cycles"] == 45

    def test_empty_forest(self):
        assert flame.critical_path([FakeTracer([])]) == []
        assert "no spans" in flame.render_critical_path([])

    def test_render_mentions_every_level(self):
        text = flame.render_critical_path(
            flame.critical_path([FakeTracer(NESTED)])
        )
        for name in ("outer", "inner", "leaf"):
            assert name in text


def traced_sim():
    return drive(Simulator(M604_185, KernelConfig.optimized(), trace=True))


class TestRealRuns:
    def test_folded_matches_span_tree(self):
        tracer = traced_sim().obs.tracer
        lines = flame.folded([tracer])
        assert lines
        exported = sum(int(line.rsplit(" ", 1)[1]) for line in lines)
        positive_self = sum(
            max(span.self_cycles, 0)
            for roots in flame.span_forest(tracer).values()
            for root in roots
            for span in _walk(root)
        )
        assert exported == positive_self > 0

    def test_exports_are_deterministic(self):
        first = traced_sim().obs.tracer
        second = traced_sim().obs.tracer
        assert flame.folded([first]) == flame.folded([second])
        assert flame.speedscope([first]) == flame.speedscope([second])

    def test_speedscope_validates_and_roundtrips(self):
        doc = flame.speedscope([traced_sim().obs.tracer])
        counts = flame.validate_speedscope(doc)
        assert counts["events"] > 0
        assert flame.validate_speedscope(json.loads(json.dumps(doc))) \
            == counts

    def test_tracing_and_export_perturb_nothing(self):
        bare = drive(Simulator(M604_185, KernelConfig.optimized()))
        traced = traced_sim()
        flame.folded([traced.obs.tracer])
        flame.speedscope([traced.obs.tracer])
        assert traced.cycles == bare.cycles
        assert traced.counters() == bare.counters()
        assert traced.breakdown() == bare.breakdown()


def _walk(span):
    yield span
    for child in span.children:
        yield from _walk(child)


class TestCli:
    def test_trace_writes_flame_exports(self, tmp_path, capsys):
        folded_path = tmp_path / "e1.folded"
        speedscope_path = tmp_path / "e1.speedscope.json"
        assert cli.main([
            "trace", "e1",
            "--out", str(tmp_path / "e1.trace.json"),
            "--folded", str(folded_path),
            "--speedscope", str(speedscope_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "critical path" in out
        lines = folded_path.read_text().splitlines()
        assert lines
        for line in lines:
            stack, weight = line.rsplit(" ", 1)
            assert ";" in stack and int(weight) > 0
        doc = json.loads(speedscope_path.read_text())
        assert flame.validate_speedscope(doc)["events"] > 0

    def test_trace_exports_are_byte_identical(self, tmp_path, capsys):
        paths = []
        for tag in ("one", "two"):
            folded_path = tmp_path / f"{tag}.folded"
            assert cli.main([
                "trace", "e1", "--out", str(tmp_path / f"{tag}.trace.json"),
                "--folded", str(folded_path),
            ]) == 0
            paths.append(folded_path)
        assert paths[0].read_bytes() == paths[1].read_bytes()
