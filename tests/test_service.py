"""The open-loop service workload: arrivals, SLO, capacity, parity.

Covers the request-level telemetry subsystem end to end:

* the seeded arrival generator is deterministic and mean-preserving
  across schedule kinds;
* a service run completes its offered schedule, keeps coherent
  open-loop timestamps, and reproduces byte-identically from the seed;
* the ``sleep_until`` executive action runs straight through past
  deadlines (the open-loop contract);
* the capacity sweep document validates, renders deterministically,
  and rejects malformed ladders;
* an E20 run under the flight recorder is bit-identical to an
  untraced one (zero perturbation at service scale);
* the sampler's per-VSID occupancy detail stays bounded however many
  thousand contexts a run churns.
"""

import random

import pytest

from repro import obs
from repro.analysis import engine, specs
from repro.analysis.capacity import (
    CAPACITY_POINT_FIELDS,
    capacity_sweep,
    knee_load,
    render_capacity,
    strategy_variant,
    validate_capacity_doc,
)
from repro.hw.hashtable import HashedPageTable
from repro.hw.pte import HashPte
from repro.kernel.config import KernelConfig, ShootdownStrategy
from repro.obs.sampler import VSID_TOP_K
from repro.params import M604_185
from repro.sim.simulator import boot
from repro.workloads.service import (
    SCHEDULE_KINDS,
    arrival_gaps,
    arrival_schedule,
    service_run,
)


class TestArrivalGenerator:
    @pytest.mark.parametrize("kind", SCHEDULE_KINDS)
    def test_deterministic_from_seed(self, kind):
        first = arrival_schedule(kind, 20, 200, 1000.0, 2)
        second = arrival_schedule(kind, 20, 200, 1000.0, 2)
        assert first == second

    @pytest.mark.parametrize("kind", SCHEDULE_KINDS)
    def test_mean_gap_respected(self, kind):
        gaps = arrival_gaps(kind, random.Random(7), 4000, 1000.0)
        mean = sum(gaps) / len(gaps)
        assert 0.8 * 1000.0 < mean < 1.2 * 1000.0

    def test_seed_changes_schedule(self):
        assert arrival_schedule("exponential", 1, 50, 1000.0, 2) != \
            arrival_schedule("exponential", 2, 50, 1000.0, 2)

    def test_round_robin_deal(self):
        per_cpu = arrival_schedule("uniform", 3, 10, 500.0, 4)
        assert [len(cpu) for cpu in per_cpu] == [3, 3, 2, 2]
        # Deadlines are cumulative, so each CPU's list ascends.
        for deadlines in per_cpu:
            assert deadlines == sorted(deadlines)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown schedule kind"):
            arrival_gaps("poissonish", random.Random(0), 4, 100.0)

    def test_burst_alternates_trains_and_silences(self):
        gaps = arrival_gaps("burst", random.Random(5), 16, 800.0)
        short = gaps[0]
        # Three tight arrivals, then a long restorative silence.
        assert gaps[1] == short and gaps[2] == short
        assert gaps[3] > 4 * short


def _boot_service():
    return boot(
        M604_185,
        KernelConfig.optimized().with_changes(
            shootdown_strategy=ShootdownStrategy.MMAP_REUSE
        ),
        n_cpus=2,
    )


class TestServiceRun:
    def test_offered_schedule_fully_served(self):
        run = service_run(_boot_service(), 40, 6_000, seed=20)
        summary = run.summary()
        assert summary["completed"] == summary["requests"] == 40
        for record in run.records:
            # Open-loop invariant: arrival never precedes its schedule,
            # and the life-cycle timestamps are ordered on one clock.
            assert record.arrived >= record.scheduled
            assert record.scheduled <= record.arrived <= record.dispatched
            assert record.dispatched <= record.completed
            assert record.latency >= record.queue_wait

    def test_summary_has_capacity_fields(self):
        summary = service_run(_boot_service(), 20, 4_000, seed=20).summary()
        flat = dict(summary)
        flat.update(summary["slo"])
        for field in CAPACITY_POINT_FIELDS:
            assert field in flat

    def test_run_is_deterministic(self):
        first = service_run(_boot_service(), 30, 6_000, seed=20)
        second = service_run(_boot_service(), 30, 6_000, seed=20)
        assert first.summary() == second.summary()
        assert first.latencies_us() == second.latencies_us()
        assert first.queue_depth_timeline() == second.queue_depth_timeline()

    def test_zombies_accrue_under_exec_churn(self):
        run = service_run(_boot_service(), 40, 6_000, seed=20)
        summary = run.summary()
        assert summary["zombie_peak"] > 0
        assert summary["mmu_cycles_total"] > 0

    def test_burst_schedule_has_worse_tail(self):
        smooth = service_run(
            _boot_service(), 40, 4_000, schedule="uniform", seed=20
        ).summary()
        bursty = service_run(
            _boot_service(), 40, 4_000, schedule="burst", seed=20
        ).summary()
        assert bursty["slo"]["latency_p99_us"] > \
            smooth["slo"]["latency_p99_us"]


class TestSleepUntil:
    def test_past_deadline_runs_through(self):
        sim = boot(M604_185, KernelConfig.optimized())
        trail = []

        def gen(task):
            clock = sim.machine.clock
            yield ("compute", 5_000)
            # A deadline already behind the clock must not block.
            yield ("sleep_until", 100)
            trail.append(clock.total)
            yield ("sleep_until", clock.total + 10_000)
            trail.append(clock.total)
            yield ("exit", 0)

        sim.executive.spawn("deadline", gen)
        sim.run()
        assert len(trail) == 2
        # The future deadline actually slept; the past one did not.
        assert trail[1] >= trail[0] + 10_000


class TestCapacitySweep:
    @pytest.fixture(scope="class")
    def doc(self):
        return capacity_sweep(
            loads=(2_000, 12_000), requests=24, seed=20
        )

    def test_validates_and_counts(self, doc):
        assert validate_capacity_doc(doc) == {"curves": 2, "points": 4}

    def test_points_carry_all_fields(self, doc):
        for curve in doc["curves"]:
            for point in curve["points"]:
                assert set(point) == set(CAPACITY_POINT_FIELDS)

    def test_render_is_deterministic(self, doc):
        text = render_capacity(doc)
        assert text == render_capacity(doc)
        assert "p99 knee" in text
        for curve in doc["curves"]:
            assert curve["strategy"] in text

    def test_sweep_is_deterministic(self, doc):
        again = capacity_sweep(loads=(2_000, 12_000), requests=24, seed=20)
        assert again == doc

    def test_knee_detected_past_saturation(self, doc):
        for curve in doc["curves"]:
            assert knee_load(curve) == 12_000

    def test_non_monotone_ladder_rejected(self):
        with pytest.raises(ValueError, match="monotone"):
            capacity_sweep(loads=(6_000, 2_000), requests=8)
        with pytest.raises(ValueError, match="distinct"):
            capacity_sweep(loads=(2_000, 2_000), requests=8)

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            strategy_variant("carrier-pigeon")

    def test_validation_rejects_mutations(self, doc):
        import copy

        broken = copy.deepcopy(doc)
        del broken["curves"][0]["points"][0]["zombie_peak"]
        with pytest.raises(ValueError, match="zombie_peak"):
            validate_capacity_doc(broken)
        reladdered = copy.deepcopy(doc)
        reladdered["loads"] = list(reversed(reladdered["loads"]))
        with pytest.raises(ValueError, match="monotone"):
            validate_capacity_doc(reladdered)
        wrong_schema = copy.deepcopy(doc)
        wrong_schema["schema"] = 99
        with pytest.raises(ValueError, match="schema"):
            validate_capacity_doc(wrong_schema)


class TestServiceParity:
    def test_e20_traced_bit_identical(self):
        spec = specs.SPECS["E20"]
        obs.enable_global_observability(profile=True)
        try:
            bare = engine.execute(spec)
            baseline = [
                (o.machine.spec.name, o.machine.clock.total, o.counters())
                for o in obs.drain_global_observed()
            ]
        finally:
            obs.disable_global_observability()
        obs.enable_global_observability(profile=True, trace=True,
                                        sample_every_us=500)
        try:
            traced = engine.execute(spec)
            watched = [
                (o.machine.spec.name, o.machine.clock.total, o.counters())
                for o in obs.drain_global_observed()
            ]
        finally:
            obs.disable_global_observability()
        assert bare.measured == traced.measured
        assert baseline == watched

    def test_e20_byte_identical_across_jobs(self):
        from repro.obs import metrics

        serial = engine.run_ids(["E20"], jobs=1, use_cache=False)
        fanned = engine.run_ids(["E20"], jobs=2, use_cache=False)
        assert metrics.dumps(
            [engine.result_record(r) for r in serial.results]
        ) == metrics.dumps(
            [engine.result_record(r) for r in fanned.results]
        )

    def test_e20_cache_round_trip_identical(self, tmp_path):
        from repro.analysis.cache import ResultCache
        from repro.obs import metrics

        cache = ResultCache(root=tmp_path)
        cold, _wall, hit_cold = engine.run_cached(
            specs.SPECS["E20"], cache=cache
        )
        warm, _wall, hit_warm = engine.run_cached(
            specs.SPECS["E20"], cache=cache
        )
        assert (hit_cold, hit_warm) == (False, True)
        assert metrics.dumps(engine.result_record(cold)) == \
            metrics.dumps(engine.result_record(warm))


class TestSamplerScale:
    def test_top_vsid_loads_bounded_at_thousands_of_vsids(self):
        htab = HashedPageTable()
        # Scattered page indices: a structured vsid ^ page pattern can
        # collapse onto a few buckets and evict, distorting populations.
        rng = random.Random(42)
        for vsid in range(1_200):
            htab.insert(
                HashPte(vsid=vsid, page_index=rng.randrange(1 << 16),
                        rpn=1)
            )
        # Give a few VSIDs extra weight so the top-K pick is exercised.
        for vsid in range(4):
            for page in range(1, 5):
                htab.insert(
                    HashPte(vsid=vsid, page_index=page, rpn=1)
                )
        assert htab.evicts == 0
        detail = htab.top_vsid_loads(8, lambda vsid: vsid % 2 == 0)
        assert len(detail["top"]) == 8
        # The heavy VSIDs rank first, count-descending.
        counts = [entry["entries"] for entry in detail["top"]]
        assert counts == sorted(counts, reverse=True)
        assert counts[0] == 5
        # The remainder is one aggregate bucket, not a per-VSID map,
        # and the fold conserves the table's population exactly.
        assert detail["rest"]["vsids"] >= 1_000
        live, zombie = htab.live_and_zombie_counts(
            lambda vsid: vsid % 2 == 0
        )
        assert sum(counts) + detail["rest"]["entries"] == live + zombie
        assert detail["rest"]["zombie_entries"] <= detail["rest"]["entries"]

    def test_top_vsid_tie_break_is_deterministic(self):
        htab = HashedPageTable()
        for vsid in (9, 3, 7, 1):
            htab.insert(HashPte(vsid=vsid, page_index=vsid, rpn=1))
        detail = htab.top_vsid_loads(2, lambda vsid: True)
        assert [entry["vsid"] for entry in detail["top"]] == [1, 3]

    def test_sampled_service_run_keeps_ticks_bounded(self):
        sim = boot(
            M604_185,
            KernelConfig.optimized().with_changes(
                shootdown_strategy=ShootdownStrategy.MMAP_REUSE
            ),
            n_cpus=2,
            sample_every_us=200,
        )
        service_run(sim, 30, 6_000, seed=20)
        samples = sim.obs.sampler.samples
        assert samples, "sampler never ticked"
        for sample in samples:
            vsids = sample["htab"]["vsids"]
            assert len(vsids["top"]) <= VSID_TOP_K
            assert set(vsids["rest"]) == {
                "vsids", "entries", "zombie_entries"
            }
