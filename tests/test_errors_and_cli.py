"""The exception hierarchy and the command-line front end."""

import pytest

from repro import __main__ as cli
from repro.errors import (
    ConfigError,
    KernelPanic,
    OutOfMemoryError,
    ProtectionFault,
    ReproError,
    SegmentFault,
    SyscallError,
    TranslationError,
)


class TestErrorHierarchy:
    def test_everything_derives_from_repro_error(self):
        for exc_type in (
            ConfigError,
            KernelPanic,
            OutOfMemoryError,
            ProtectionFault,
            SegmentFault,
            SyscallError,
            TranslationError,
        ):
            assert issubclass(exc_type, ReproError)

    def test_faults_derive_from_translation_error(self):
        assert issubclass(SegmentFault, TranslationError)
        assert issubclass(ProtectionFault, TranslationError)

    def test_translation_error_formats_address(self):
        error = TranslationError(0xDEADBEEF)
        assert "0xdeadbeef" in str(error)
        assert error.ea == 0xDEADBEEF

    def test_syscall_error_names_the_call(self):
        error = SyscallError("mmap", "bad length")
        assert error.syscall == "mmap"
        assert "mmap" in str(error)


class TestCli:
    def test_list(self, capsys):
        assert cli.main(["list"]) == 0
        out = capsys.readouterr().out
        assert "E1" in out and "E16" in out

    def test_machines(self, capsys):
        assert cli.main(["machines"]) == 0
        out = capsys.readouterr().out
        assert "604 185MHz" in out and "hardware" in out

    def test_run_e1(self, capsys):
        assert cli.main(["run", "e1"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out
        assert "shape_holds: True" in out

    def test_run_unknown_experiment(self, capsys):
        assert cli.main(["run", "E99"]) == 2

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            cli.main([])
