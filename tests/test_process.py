"""The executive: generator bodies, blocking, waking, and marks."""

import pytest

from repro.errors import KernelPanic, SyscallError
from repro.kernel.config import KernelConfig
from repro.kernel.task import TaskState
from repro.params import M604_185, PAGE_SIZE
from repro.sim.simulator import Simulator


@pytest.fixture
def sim():
    return Simulator(M604_185, KernelConfig.optimized())


class TestBasicActions:
    def test_getpid_result_delivered(self, sim):
        seen = []

        def factory(task):
            def body(t):
                pid = yield ("getpid",)
                seen.append(pid)

            return body(task)

        task = sim.executive.spawn("p", factory)
        sim.run()
        assert seen == [task.pid]

    def test_touch_and_compute(self, sim):
        def factory(task):
            def body(t):
                cycles = yield ("touch", 0x10000000, 4, True)
                assert cycles > 0
                yield ("compute", 1000)

            return body(task)

        sim.executive.spawn("p", factory)
        sim.run()
        assert sim.breakdown()["user_compute"] >= 1000

    def test_mark_records_timestamps(self, sim):
        def factory(task):
            def body(t):
                yield ("mark", "a")
                yield ("compute", 500)
                yield ("mark", "b")

            return body(task)

        sim.executive.spawn("p", factory)
        sim.run()
        deltas = sim.executive.mark_deltas("a", "b")
        assert len(deltas) == 1 and deltas[0] >= 500

    def test_body_exits_implicitly_on_return(self, sim):
        def factory(task):
            def body(t):
                yield ("getpid",)

            return body(task)

        task = sim.executive.spawn("p", factory)
        sim.run()
        assert task.state is TaskState.EXITED

    def test_explicit_exit_code(self, sim):
        def factory(task):
            def body(t):
                yield ("exit", 3)

            return body(task)

        task = sim.executive.spawn("p", factory)
        sim.run()
        assert task.exit_code == 3

    def test_unknown_action_raises(self, sim):
        def factory(task):
            def body(t):
                yield ("frobnicate",)

            return body(task)

        sim.executive.spawn("p", factory)
        with pytest.raises(SyscallError):
            sim.run()

    def test_duplicate_body_rejected(self, sim):
        task = sim.kernel.spawn("p")

        def body(t):
            yield ("getpid",)

        sim.executive.add(task, body(task))
        with pytest.raises(KernelPanic):
            sim.executive.add(task, body(task))


class TestBlockingAndWaking:
    def test_pipe_ping_pong(self, sim):
        kernel = sim.kernel
        ping = kernel.pipes.create().ident
        pong = kernel.pipes.create().ident
        log = []

        def client_factory(task):
            def body(t):
                for index in range(3):
                    yield ("pipe_write", ping, 1, 0x10000000)
                    yield ("pipe_read", pong, 1, 0x10000000)
                    log.append(("client", index))

            return body(task)

        def server_factory(task):
            def body(t):
                for index in range(3):
                    yield ("pipe_read", ping, 1, 0x10000000)
                    yield ("pipe_write", pong, 1, 0x10000000)
                    log.append(("server", index))

            return body(task)

        sim.executive.spawn("client", client_factory)
        sim.executive.spawn("server", server_factory)
        sim.run()
        assert len(log) == 6

    def test_sleep_advances_clock(self, sim):
        def factory(task):
            def body(t):
                before = sim.machine.clock.total
                yield ("sleep", 100000)
                assert sim.machine.clock.total >= before + 100000

            return body(task)

        sim.executive.spawn("sleeper", factory)
        sim.run()

    def test_deadlock_detected(self, sim):
        pipe = sim.kernel.pipes.create().ident

        def factory(task):
            def body(t):
                yield ("pipe_read", pipe, 1, 0x10000000)

            return body(task)

        sim.executive.spawn("stuck", factory)
        with pytest.raises(KernelPanic, match="deadlock"):
            sim.run()

    def test_dispatch_limit_guards_runaway(self, sim):
        def factory(task):
            def body(t):
                while True:
                    yield ("compute", 1)

            return body(task)

        sim.executive.spawn("loop", factory)
        with pytest.raises(KernelPanic, match="dispatch limit"):
            sim.run(max_dispatches=100)

    def test_idle_runs_while_everyone_sleeps(self, sim):
        def factory(task):
            def body(t):
                yield ("sleep", 200000)

            return body(task)

        sim.executive.spawn("sleeper", factory)
        sim.run()
        breakdown = sim.breakdown()
        idle = (
            breakdown.get("idle_reclaim", 0)
            + breakdown.get("idle_clear", 0)
            + breakdown.get("idle_spin", 0)
            + breakdown.get("io_wait", 0)
        )
        assert idle > 0


class TestForkExecWait:
    def test_fork_runs_child_body(self, sim):
        log = []

        def child_factory(child):
            def body(t):
                yield ("compute", 10)
                log.append("child ran")
                yield ("exit", 0)

            return body(child)

        def parent_factory(task):
            def body(t):
                child = yield ("fork", child_factory)
                yield ("waitpid", child)
                log.append("parent resumed")

            return body(task)

        sim.executive.spawn("parent", parent_factory)
        sim.run()
        assert log == ["child ran", "parent resumed"]

    def test_waitpid_on_already_dead_child(self, sim):
        def child_factory(child):
            def body(t):
                yield ("exit", 9)

            return body(child)

        results = []

        def parent_factory(task):
            def body(t):
                child = yield ("fork", child_factory)
                yield ("yield",)  # let the child run and die first
                code = yield ("waitpid", child)
                results.append(code)

            return body(task)

        sim.executive.spawn("parent", parent_factory)
        sim.run()
        assert results == [9]

    def test_exec_action(self, sim):
        def factory(task):
            def body(t):
                yield ("exec", "newimage", {"text_pages": 4})
                assert t.name == "newimage"

            return body(task)

        sim.executive.spawn("p", factory)
        sim.run()

    def test_fork_without_body_factory(self, sim):
        """fork(None): the child exists but never runs (parent reaps it)."""

        def parent_factory(task):
            def body(t):
                child = yield ("fork", None)
                assert child.pid != t.pid
                sim.kernel.sys_exit(child)

            return body(task)

        sim.executive.spawn("parent", parent_factory)
        sim.run()


class TestMemoryActions:
    def test_mmap_munmap_brk_actions(self, sim):
        def factory(task):
            def body(t):
                addr = yield ("mmap", 8 * PAGE_SIZE, None, None)
                yield ("touch", addr, 2, True)
                yield ("munmap", addr, 8 * PAGE_SIZE)
                new_break = yield ("brk", 2)
                assert new_break > 0

            return body(task)

        sim.executive.spawn("p", factory)
        sim.run()

    def test_read_file_sleeps_on_cold_pages(self, sim):
        sim.kernel.fs.create("cold.dat", 4 * PAGE_SIZE)
        waits = []

        def factory(task):
            def body(t):
                before = sim.machine.clock.total
                count = yield ("read_file", "cold.dat", 0, PAGE_SIZE,
                               0x10000000)
                waits.append(sim.machine.clock.total - before)
                assert count == PAGE_SIZE

            return body(task)

        sim.executive.spawn("p", factory, data_pages=8)
        sim.run()
        # The cold read includes the disk wait.
        assert waits[0] > sim.spec.us_to_cycles(50)
