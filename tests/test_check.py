"""The shadow-MMU coherence sanitizer (``repro.check``).

Three layers of coverage:

* clean workloads produce zero violations (the sanitizer has no false
  positives on the §7/§9 designs it understands, zombies included);
* seeded corruption IS detected (the sanitizer has teeth);
* a hypothesis property test drives random interleavings of the kernel
  lifecycle operations — mmap/munmap/touch/fork/exit/VSID bump/idle
  reclaim/context switch — and requires full coherence throughout.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import check
from repro.hw.tlb import TlbEntry
from repro.kernel.config import KernelConfig, VsidPolicy
from repro.params import M604_185, PAGE_SIZE
from repro.sim.simulator import Simulator


def lazy_config():
    return KernelConfig.optimized()


def search_config():
    return KernelConfig.optimized().with_changes(
        lazy_vsid_flush=False, vsid_policy=VsidPolicy.PID_SCATTER
    )


def boot_checked(config=None):
    return Simulator(
        M604_185, config if config is not None else lazy_config(),
        sanitize=True,
    )


def assert_clean(sim):
    sim.sanitizer.sweep(stable=True)
    assert sim.sanitizer.reporter.total == 0, sim.sanitizer.reporter.summary()


class TestCleanWorkloads:
    def test_basic_lifecycle_has_no_violations(self):
        sim = boot_checked()
        kernel = sim.kernel
        task = kernel.spawn("t", data_pages=8)
        kernel.switch_to(task)
        addr = kernel.sys_mmap(task, 30 * PAGE_SIZE)
        for page in range(30):
            kernel.user_access(task, addr + page * PAGE_SIZE, 1, True)
        kernel.flush.flush_range(task.mm, addr, addr + 30 * PAGE_SIZE)
        child = kernel.sys_fork(task)
        kernel.switch_to(child)
        kernel.user_access(child, addr, 1, True)
        kernel.run_idle(500000)
        kernel.sys_exit(child)
        assert sim.sanitizer.translations_checked > 0
        assert_clean(sim)

    def test_zombie_entries_are_not_violations(self):
        # The defining §7 state: valid-but-dead entries rotting in the
        # TLB and hash table.  The sanitizer must understand they are
        # unreachable, not flag them.
        sim = boot_checked()
        kernel = sim.kernel
        task = kernel.spawn("z", data_pages=34)
        kernel.switch_to(task)
        for page in range(30):
            kernel.user_access(task, 0x10000000 + page * PAGE_SIZE, 1, True)
        kernel.flush.flush_mm(task.mm)
        _live, zombies = kernel.htab_zombie_stats()
        assert zombies > 0
        assert_clean(sim)

    def test_global_flush_checks_pass(self):
        sim = boot_checked()
        kernel = sim.kernel
        task = kernel.spawn("g", data_pages=8)
        kernel.switch_to(task)
        addr = kernel.sys_mmap(task, 4 * PAGE_SIZE)
        kernel.user_access(task, addr, 1, True)
        kernel.flush.flush_everything()
        kernel.user_access(task, addr, 1, False)
        assert_clean(sim)


class TestDetection:
    def _mapped_entry(self, sim):
        kernel = sim.kernel
        task = kernel.spawn("v", data_pages=4)
        kernel.switch_to(task)
        addr = kernel.sys_mmap(task, PAGE_SIZE)
        kernel.user_access(task, addr, 1, True)
        vsid = task.mm.user_vsids[(addr >> 28) & 0xF]
        page_index = (addr >> 12) & 0xFFFF
        return task, addr, vsid, page_index

    def test_sweep_catches_corrupt_tlb_entry(self):
        sim = boot_checked()
        task, addr, vsid, page_index = self._mapped_entry(sim)
        good = task.mm.resident[addr]
        sim.machine.dtlb.insert(
            TlbEntry(vsid=vsid, page_index=page_index, ppn=good + 1)
        )
        assert sim.sanitizer.sweep(stable=True) > 0
        counts = sim.sanitizer.reporter.counts_by_invariant("default")
        assert counts.get("stale-tlb-entry", 0) >= 1

    def test_translation_path_catches_corrupt_tlb_entry(self):
        sim = boot_checked()
        task, addr, vsid, page_index = self._mapped_entry(sim)
        good = task.mm.resident[addr]
        sim.machine.dtlb.insert(
            TlbEntry(vsid=vsid, page_index=page_index, ppn=good + 1)
        )
        before = sim.sanitizer.reporter.total
        sim.kernel.user_access(task, addr, 1, False)
        assert sim.sanitizer.reporter.total > before
        counts = sim.sanitizer.reporter.counts_by_invariant("default")
        assert counts.get("stale-translation", 0) >= 1

    def test_sweep_catches_dirty_precleared_page(self):
        sim = boot_checked()
        kernel = sim.kernel
        kernel.run_idle(200000)
        pages = kernel.palloc.precleared_pages()
        assert pages
        # Scribble on a stocked page through the real translated-write
        # path: the shadow sees the write and the next sweep must flag
        # the page as no longer zero.
        sim.machine.translate(kernel.kernel_ea_for_frame(pages[0]),
                              write=True)
        assert sim.sanitizer.sweep(stable=True) > 0
        counts = sim.sanitizer.reporter.counts_by_invariant("default")
        assert counts.get("precleared-dirty", 0) >= 1


class TestGlobalAttach:
    def test_global_enable_attaches_to_new_simulators(self):
        reporter = check.enable_global_sanitizer(sweep_every=1000)
        try:
            sim = Simulator(M604_185, lazy_config())
            assert sim.sanitizer is not None
            assert sim.sanitizer.reporter is reporter
            assert check.drain_global_sanitizers() == [sim.sanitizer]
        finally:
            check.disable_global_sanitizer()
        assert Simulator(M604_185, lazy_config()).sanitizer is None

    def test_reporter_contexts(self):
        reporter = check.ViolationReporter()
        reporter.begin_context("E1")
        reporter.record("stale-tlb-entry", "one")
        reporter.end_context()
        reporter.record("stale-htab-entry", "two")
        assert reporter.total == 2
        assert reporter.count("E1") == 1
        assert reporter.contexts() == ["E1", "default"]
        assert "stale-tlb-entry" in reporter.summary()


# -- the property test: random lifecycle interleavings stay coherent -------

N_OPS = 8


def run_ops(sim, ops):
    """Interpret an op stream against the kernel, with validity guards."""
    kernel = sim.kernel
    tasks = []
    mappings = {}
    for op, arg in ops:
        current = kernel.current_task
        if op == 0 and len(tasks) < 5:  # spawn + run
            task = kernel.spawn(f"p{len(tasks)}", data_pages=4)
            tasks.append(task)
            kernel.switch_to(task)
        elif op == 1 and tasks:  # context switch
            kernel.switch_to(tasks[arg % len(tasks)])
        elif op == 2 and current is not None:  # mmap + touch
            pages = (arg % 8) + 1
            addr = kernel.sys_mmap(current, pages * PAGE_SIZE)
            for page in range(pages):
                kernel.user_access(
                    current, addr + page * PAGE_SIZE, 1, True
                )
            mappings.setdefault(current.pid, []).append((addr, pages))
        elif op == 3 and current is not None:  # munmap
            regions = mappings.get(current.pid)
            if regions:
                addr, pages = regions.pop(arg % len(regions))
                kernel.sys_munmap(current, addr, pages * PAGE_SIZE)
        elif op == 4 and current is not None and len(tasks) < 5:  # fork
            tasks.append(kernel.sys_fork(current))
        elif op == 5 and current is not None:  # whole-context flush
            kernel.flush.flush_mm(current.mm)
        elif op == 6:  # idle window: reclaim + preclear
            kernel.run_idle(20000 + (arg % 8) * 10000)
        elif op == 7 and tasks:  # exit
            task = tasks.pop(arg % len(tasks))
            mappings.pop(task.pid, None)
            kernel.sys_exit(task)


@pytest.mark.parametrize("make_config", [lazy_config, search_config])
@settings(max_examples=30)
@given(ops=st.lists(
    st.tuples(st.integers(0, N_OPS - 1), st.integers(0, 30)),
    max_size=25,
))
def test_random_interleavings_stay_coherent(make_config, ops):
    sim = boot_checked(make_config())
    run_ops(sim, ops)
    assert_clean(sim)
