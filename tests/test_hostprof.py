"""Host-time profiler tests (``obs/hostprof.py``).

Host seconds are nondeterministic by nature, so the tests pin the
deterministic parts: the path-to-group mapping, the folding of pstats
rows into the breakdown document, and the rendering — plus one real
``profile --host`` smoke through the CLI.
"""

from __future__ import annotations

from repro import __main__ as cli
from repro.obs import hostprof


class FakeStats:
    """The one attribute ``breakdown_from_stats`` reads."""

    def __init__(self, rows):
        self.stats = rows


def row(tt, nc=1):
    return (nc, nc, tt, tt, {})


class TestGroupFor:
    def test_specific_file_beats_package(self):
        assert hostprof.group_for("/x/src/repro/hw/tlb.py") == "hw.tlb"
        assert hostprof.group_for("/x/src/repro/hw/bats.py") == "hw.other"

    def test_windows_separators_normalized(self):
        assert hostprof.group_for("C:\\x\\repro\\hw\\cache.py") == "hw.cache"

    def test_unmatched_falls_back(self):
        assert hostprof.group_for("/usr/lib/python3.11/json/decoder.py") \
            == hostprof.OTHER_GROUP
        assert hostprof.group_for("~") == hostprof.OTHER_GROUP

    def test_every_group_fragment_resolves_uniquely(self):
        # First match wins, so a fragment must not be shadowed by an
        # earlier, more general one.
        for index, (fragment, group) in enumerate(hostprof.KERNEL_GROUPS):
            assert hostprof.group_for(f"/x/{fragment}tail.py"
                                      if fragment.endswith("/")
                                      else f"/x/{fragment}") == group, fragment


class TestBreakdown:
    def test_rows_fold_into_groups(self):
        stats = FakeStats({
            ("/x/repro/hw/tlb.py", 10, "lookup"): row(2.0, 100),
            ("/x/repro/hw/tlb.py", 20, "insert"): row(1.0, 50),
            ("/x/repro/kernel/reload.py", 5, "refill"): row(1.0, 10),
        })
        doc = hostprof.breakdown_from_stats(stats, ["E1"], {"E1": True})
        assert doc["host_seconds"] == 4.0
        assert doc["calls"] == 160
        assert list(doc["groups"]) == ["hw.tlb", "kernel.reload"]
        tlb = doc["groups"]["hw.tlb"]
        assert tlb["seconds"] == 3.0
        assert tlb["share"] == 0.75
        assert [f["function"] for f in tlb["functions"]] == [
            "lookup (tlb.py:10)", "insert (tlb.py:20)",
        ]

    def test_functions_capped_at_five(self):
        stats = FakeStats({
            ("/x/repro/hw/tlb.py", line, f"f{line}"): row(1.0)
            for line in range(8)
        })
        doc = hostprof.breakdown_from_stats(stats, ["E1"], {"E1": True})
        assert len(doc["groups"]["hw.tlb"]["functions"]) == 5

    def test_empty_stats(self):
        doc = hostprof.breakdown_from_stats(FakeStats({}), ["E1"],
                                            {"E1": True})
        assert doc["host_seconds"] == 0.0
        assert doc["groups"] == {}

    def test_render_reports_broken_shapes(self):
        stats = FakeStats({("/x/repro/sim/simulator.py", 1, "run"): row(0.5)})
        doc = hostprof.breakdown_from_stats(
            stats, ["E1", "E2"], {"E1": True, "E2": False}
        )
        text = hostprof.render_host_profile(doc)
        assert "sim" in text
        assert "SHAPE BROKEN under profiling: E2" in text

    def test_render_clean_shapes_silent(self):
        doc = hostprof.breakdown_from_stats(FakeStats({}), ["E1"],
                                            {"E1": True})
        assert "SHAPE" not in hostprof.render_host_profile(doc)


class TestCli:
    def test_profile_host_smoke(self, capsys):
        assert cli.main(["profile", "e1", "--host"]) == 0
        out = capsys.readouterr().out
        assert "host-time profile" in out
        assert "E1" in out
        assert "SHAPE BROKEN" not in out
