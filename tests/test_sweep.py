"""The tuning-sweep instruments."""

import pytest

from repro.analysis.sweep import (
    CutoffPoint,
    ScatterPoint,
    ascii_bars,
    sweep_flush_cutoff,
    sweep_vsid_scatter,
)


class TestScatterSweep:
    def test_small_sweep_orders_pow2_below_odd(self):
        points = sweep_vsid_scatter(
            [2048, 37], processes=10, pages_per_process=200
        )
        by_constant = {point.constant: point for point in points}
        assert by_constant[2048].occupancy < by_constant[37].occupancy
        assert by_constant[2048].evicts > by_constant[37].evicts

    def test_power_of_two_detection(self):
        assert ScatterPoint(16, 0, 0, 0, 0).is_power_of_two
        assert not ScatterPoint(37, 0, 0, 0, 0).is_power_of_two

    def test_hot_spot_worse_for_pow2(self):
        points = sweep_vsid_scatter(
            [2048, 13], processes=10, pages_per_process=200
        )
        by_constant = {point.constant: point for point in points}
        assert (
            by_constant[2048].hot_spot_ratio >= by_constant[13].hot_spot_ratio
        )

    def test_small_constants_rejected(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            sweep_vsid_scatter([7], processes=2, pages_per_process=20)


class TestCutoffSweep:
    def test_lazy_beats_search(self):
        points = sweep_flush_cutoff(
            [None, 20], region_bytes=1024 * 1024
        )
        search, tuned = points
        assert search.cutoff is None and tuned.cutoff == 20
        assert tuned.mmap_us < search.mmap_us / 10

    def test_points_preserve_requested_order(self):
        cutoffs = [50, 5, None]
        points = sweep_flush_cutoff(cutoffs, region_bytes=256 * 1024)
        assert [point.cutoff for point in points] == cutoffs
        assert all(point.mmap_us > 0 for point in points)

    def test_sweep_is_deterministic(self):
        first = sweep_flush_cutoff([10], region_bytes=256 * 1024)
        second = sweep_flush_cutoff([10], region_bytes=256 * 1024)
        assert first == second

    def test_cutoff_below_region_switches_to_lazy_flush(self):
        # The region is 256 pages.  A cutoff below that lazily
        # reallocates the VSID on unmap (cheap, O(1)); a cutoff above
        # it range-flushes every page, which at this region size costs
        # about what full search-flushing does.
        lazy, ranged = sweep_flush_cutoff(
            [20, 10**6], region_bytes=1024 * 1024
        )
        assert lazy.mmap_us < ranged.mmap_us / 10

    def test_latency_nondecreasing_in_cutoff(self):
        # Raising the cutoff can only move regions from the lazy path
        # to the per-page range-flush path, never the reverse.
        cutoffs = [1, 20, 200, 10**6]
        points = sweep_flush_cutoff(cutoffs, region_bytes=1024 * 1024)
        latencies = [point.mmap_us for point in points]
        assert latencies == sorted(latencies)


class TestAsciiBars:
    def test_bars_scale_to_peak(self):
        text = ascii_bars(["a", "bb"], [1.0, 2.0], width=10)
        lines = text.splitlines()
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10

    def test_empty(self):
        assert ascii_bars([], []) == ""
