"""Linux two-level page tables."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import KernelPanic
from repro.kernel.pagetable import (
    LinuxPte,
    TwoLevelPageTable,
    check_page_aligned,
    page_base,
    pages_spanned,
    pgd_index,
    pte_index,
)


def make_table():
    counter = itertools.count(100)
    return TwoLevelPageTable(alloc_frame=lambda: next(counter))


class TestIndexing:
    def test_pgd_index_top_ten_bits(self):
        assert pgd_index(0) == 0
        assert pgd_index(0xFFFFFFFF) == 1023
        assert pgd_index(0x00400000) == 1

    def test_pte_index_middle_ten_bits(self):
        assert pte_index(0) == 0
        assert pte_index(0x003FF000) == 1023
        assert pte_index(0x00001000) == 1


class TestLookupSet:
    def test_lookup_empty(self):
        table = make_table()
        result = table.lookup(0x10000000)
        assert result.pte is None
        assert len(result.load_addresses) == 1  # only the pgd entry

    def test_set_then_lookup(self):
        table = make_table()
        table.set_pte(0x10000000, LinuxPte(pfn=7))
        result = table.lookup(0x10000000)
        assert result.pte.pfn == 7
        assert len(result.load_addresses) == 2

    def test_lookup_addresses_live_in_table_frames(self):
        table = make_table()
        table.set_pte(0x10000000, LinuxPte(pfn=7))
        result = table.lookup(0x10000000)
        frames = {address >> 12 for address in result.load_addresses}
        assert frames <= set(table.table_frames)

    def test_middle_pages_allocated_lazily(self):
        table = make_table()
        assert len(table.table_frames) == 1  # just the pgd
        table.set_pte(0x10000000, LinuxPte(pfn=7))
        assert len(table.table_frames) == 2
        table.set_pte(0x10001000, LinuxPte(pfn=8))
        assert len(table.table_frames) == 2  # same pte page

    def test_clear_pte(self):
        table = make_table()
        table.set_pte(0x10000000, LinuxPte(pfn=7))
        cleared = table.clear_pte(0x10000000)
        assert cleared.pfn == 7
        assert table.lookup(0x10000000).pte is None

    def test_clear_missing_pte(self):
        assert make_table().clear_pte(0x10000000) is None


class TestIteration:
    def test_mapped_pages_sorted(self):
        table = make_table()
        for ea in (0x30000000, 0x10000000, 0x10001000):
            table.set_pte(ea, LinuxPte(pfn=1))
        pages = [ea for ea, _ in table.mapped_pages()]
        assert pages == [0x10000000, 0x10001000, 0x30000000]

    def test_mapped_range_bounds(self):
        table = make_table()
        for page in range(5):
            table.set_pte(0x10000000 + page * 4096, LinuxPte(pfn=page))
        inside = list(table.mapped_range(0x10001000, 0x10003000))
        assert [ea for ea, _ in inside] == [0x10001000, 0x10002000]

    def test_mapped_range_empty(self):
        assert list(make_table().mapped_range(0, 0)) == []

    def test_non_present_excluded(self):
        table = make_table()
        table.set_pte(0x10000000, LinuxPte(pfn=1, present=False))
        assert table.count_mapped() == 0

    def test_release_frames(self):
        table = make_table()
        table.set_pte(0x10000000, LinuxPte(pfn=1))
        freed = []
        count = table.release_frames(freed.append)
        assert count == 2
        assert len(freed) == 2
        assert table.count_mapped() == 0


class TestHelpers:
    def test_page_base(self):
        assert page_base(0x12345FFF) == 0x12345000

    def test_pages_spanned(self):
        assert pages_spanned(0, 0) == 0
        assert pages_spanned(0, 1) == 1
        assert pages_spanned(0, 4096) == 1
        assert pages_spanned(0, 4097) == 2
        assert pages_spanned(4095, 2) == 2

    def test_check_page_aligned(self):
        check_page_aligned(0x1000, "ok")
        with pytest.raises(KernelPanic):
            check_page_aligned(0x1001, "bad")

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(0, (1 << 20) - 1), min_size=1, max_size=60,
                    unique=True))
    def test_set_lookup_roundtrip_property(self, pages):
        table = make_table()
        for page in pages:
            table.set_pte(page << 12, LinuxPte(pfn=page & 0xFFFFF))
        for page in pages:
            assert table.lookup(page << 12).pte.pfn == page & 0xFFFFF
        assert table.count_mapped() == len(pages)
