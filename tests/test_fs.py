"""The file layer and page cache."""

import pytest

from repro.errors import SyscallError
from repro.kernel.config import KernelConfig
from repro.params import M604_185, PAGE_SIZE
from repro.sim.simulator import Simulator


@pytest.fixture
def sim():
    return Simulator(M604_185, KernelConfig.optimized())


@pytest.fixture
def task(sim):
    task = sim.kernel.spawn("reader", data_pages=20)
    sim.kernel.switch_to(task)
    return task


class TestNamespace:
    def test_create_and_lookup(self, sim):
        file = sim.kernel.fs.create("data", 10000)
        assert sim.kernel.fs.lookup("data") is file
        assert file.pages == 3

    def test_duplicate_create_raises(self, sim):
        sim.kernel.fs.create("data", 100)
        with pytest.raises(SyscallError):
            sim.kernel.fs.create("data", 100)

    def test_bad_size_raises(self, sim):
        with pytest.raises(SyscallError):
            sim.kernel.fs.create("data", 0)

    def test_missing_lookup_raises(self, sim):
        with pytest.raises(SyscallError):
            sim.kernel.fs.lookup("nope")


class TestPageCache:
    def test_cold_page_costs_disk_wait(self, sim):
        fs = sim.kernel.fs
        file = fs.create("data", PAGE_SIZE * 4)
        pfn, wait = fs.page_frame(file, 0)
        assert wait > 0
        assert fs.disk_reads == 1
        assert sim.kernel.palloc.is_allocated(pfn)

    def test_warm_page_is_free(self, sim):
        fs = sim.kernel.fs
        file = fs.create("data", PAGE_SIZE * 4)
        first, _ = fs.page_frame(file, 0)
        second, wait = fs.page_frame(file, 0)
        assert second == first and wait == 0
        assert fs.cache_hits == 1

    def test_read_past_eof_raises(self, sim):
        fs = sim.kernel.fs
        file = fs.create("data", PAGE_SIZE)
        with pytest.raises(SyscallError):
            fs.page_frame(file, 5)

    def test_prefault_loads_everything(self, sim):
        fs = sim.kernel.fs
        fs.create("data", PAGE_SIZE * 4)
        loaded = fs.prefault("data")
        assert loaded == 4
        assert fs.prefault("data") == 0  # idempotent

    def test_evict_file_releases_frames(self, sim):
        fs = sim.kernel.fs
        fs.create("data", PAGE_SIZE * 4)
        fs.prefault("data")
        free_before = sim.kernel.palloc.free_count()
        dropped = fs.evict_file("data")
        assert dropped == 4
        assert sim.kernel.palloc.free_count() == free_before + 4


class TestReadPath:
    def test_read_copies_and_reports_waits(self, sim, task):
        fs = sim.kernel.fs
        fs.create("data", PAGE_SIZE * 4)
        count, wait = fs.read(task, "data", 0, PAGE_SIZE * 2,
                              user_buffer=0x10000000)
        assert count == PAGE_SIZE * 2
        assert wait > 0  # cold
        count, wait = fs.read(task, "data", 0, PAGE_SIZE * 2,
                              user_buffer=0x10000000)
        assert wait == 0  # warm

    def test_read_truncated_at_eof(self, sim, task):
        fs = sim.kernel.fs
        fs.create("data", 5000)
        count, _ = fs.read(task, "data", 4000, 9999, user_buffer=0x10000000)
        assert count == 1000

    def test_read_past_eof_returns_zero(self, sim, task):
        fs = sim.kernel.fs
        fs.create("data", 100)
        count, wait = fs.read(task, "data", 200, 10)
        assert (count, wait) == (0, 0)

    def test_read_without_buffer_still_streams_source(self, sim, task):
        fs = sim.kernel.fs
        fs.create("data", PAGE_SIZE)
        fs.prefault("data")
        misses_before = sim.machine.dcache.stats.misses
        fs.read(task, "data", 0, PAGE_SIZE)
        assert sim.machine.dcache.stats.misses > misses_before

    def test_sys_read_file_charges_syscall(self, sim, task):
        sim.kernel.fs.create("data", PAGE_SIZE)
        sim.kernel.sys_read_file(task, "data", 0, 100, 0x10000000)
        assert sim.machine.monitor["syscall"] >= 1
