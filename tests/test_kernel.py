"""The kernel facade: process lifecycle and memory syscalls."""

import pytest

from repro.errors import KernelPanic, SyscallError
from repro.hw.access import AccessKind
from repro.kernel.config import KernelConfig, VsidPolicy
from repro.kernel.kernel import (
    IO_BASE_EA,
    KERNEL_IMAGE_PAGES,
    USER_MMAP_BASE,
)
from repro.params import KERNELBASE, M604_185, PAGE_SIZE
from repro.sim.simulator import Simulator


@pytest.fixture
def sim():
    return Simulator(M604_185, KernelConfig.optimized())


@pytest.fixture
def sim_unopt():
    return Simulator(M604_185, KernelConfig.unoptimized())


@pytest.fixture
def task(sim):
    task = sim.kernel.spawn("main", text_pages=8, data_pages=16)
    sim.kernel.switch_to(task)
    return task


class TestBoot:
    def test_kernel_vsids_loaded(self, sim):
        snapshot = sim.machine.segments.snapshot()
        assert all(snapshot[i] != 0 for i in range(12, 16))

    def test_bat_map_covers_direct_map(self, sim):
        result = sim.machine.translate(KERNELBASE + 0x1234)
        assert result.path == "bat"
        assert result.pa == 0x1234

    def test_no_bat_map_when_disabled(self, sim_unopt):
        result = sim_unopt.machine.translate(KERNELBASE + 0x1234)
        assert result.path != "bat"
        assert result.pa == 0x1234  # still translates via kernel PTEs

    def test_io_space_cache_inhibited(self, sim):
        task = sim.kernel.spawn("io")
        sim.kernel.switch_to(task)
        result = sim.machine.translate(IO_BASE_EA + 0x2000)
        assert result.cache_inhibited

    def test_allocator_excludes_kernel_image_and_htab(self, sim):
        palloc = sim.kernel.palloc
        assert palloc.first_pfn == KERNEL_IMAGE_PAGES
        assert palloc.last_pfn == (sim.machine.htab_base_pa >> 12) - 1

    def test_kernel_footprint_touch(self, sim):
        sim.kernel.touch_kernel("read")
        assert (
            sim.machine.icache.stats.hits
            + sim.machine.icache.stats.misses
        ) > 0


class TestSpawnExit:
    def test_spawn_builds_standard_vmas(self, sim):
        task = sim.kernel.spawn("p", text_pages=4, data_pages=8,
                                stack_pages=2)
        names = {vma.name for vma in task.mm.vmas}
        assert names == {"text", "data", "stack"}
        text = next(v for v in task.mm.vmas if v.name == "text")
        assert not text.writable and text.file == "bin:p"

    def test_exit_releases_everything(self, sim, task):
        kernel = sim.kernel
        for page in range(4):
            kernel.user_access(task, 0x10000000 + page * PAGE_SIZE, 1, True)
        allocated_before = kernel.palloc.allocated_count()
        kernel.sys_exit(task)
        # Anonymous frames and page-table frames both returned.
        assert kernel.palloc.allocated_count() < allocated_before
        assert task.pid not in kernel.tasks
        assert kernel.current_task is None

    def test_exit_retires_vsids(self, sim, task):
        vsids = list(task.mm.user_vsids)
        sim.kernel.sys_exit(task)
        assert not any(sim.kernel.vsid_allocator.is_live(v) for v in vsids)

    def test_exit_wakes_waiters(self, sim, task):
        from repro.kernel.task import TaskState

        waiter = sim.kernel.spawn("waiter")
        waiter.state = TaskState.SLEEPING
        sim.kernel.exit_waiters.setdefault(task.pid, []).append(waiter)
        sim.kernel.sys_exit(task)
        assert waiter.state is TaskState.READY


class TestFork:
    def test_fork_copies_address_space(self, sim, task):
        kernel = sim.kernel
        kernel.user_access(task, 0x10000000, 4, True)
        child = kernel.sys_fork(task)
        assert child.pid != task.pid
        assert 0x10000000 in child.mm.resident
        # Anonymous pages are copied to new frames.
        assert child.mm.resident[0x10000000] != task.mm.resident[0x10000000]

    def test_fork_shares_text(self, sim, task):
        kernel = sim.kernel
        kernel.user_access(task, 0x01000000, 2, False,
                           kind=AccessKind.INSTRUCTION)
        child = kernel.sys_fork(task)
        assert child.mm.resident[0x01000000] == task.mm.resident[0x01000000]

    def test_fork_gives_child_fresh_vsids(self, sim, task):
        child = sim.kernel.sys_fork(task)
        assert set(child.mm.user_vsids).isdisjoint(task.mm.user_vsids)

    def test_child_is_independent(self, sim, task):
        kernel = sim.kernel
        kernel.user_access(task, 0x10000000, 1, True)
        child = kernel.sys_fork(task)
        kernel.switch_to(child)
        kernel.user_access(child, 0x10001000, 1, True)
        assert 0x10001000 not in task.mm.resident


class TestExec:
    def test_exec_replaces_address_space(self, sim, task):
        kernel = sim.kernel
        kernel.user_access(task, 0x10000000, 1, True)
        old_frames = set(task.mm.resident.values())
        kernel.sys_exec(task, "other", text_pages=4, data_pages=4)
        assert task.mm.resident == {}
        assert task.name == "other"
        assert all(not kernel.palloc.is_allocated(f) or True
                   for f in old_frames)  # no crash path

    def test_dynamic_exec_maps_libc(self, sim, task):
        sim.kernel.sys_exec(task, "dyn", dynamic=True)
        assert any(vma.name == "libc" for vma in task.mm.vmas)

    def test_static_exec_has_no_libc(self, sim, task):
        sim.kernel.sys_exec(task, "static", dynamic=False)
        assert not any(vma.name == "libc" for vma in task.mm.vmas)

    def test_exec_bumps_context_under_lazy_flush(self, sim, task):
        old = list(task.mm.user_vsids)
        sim.kernel.sys_exec(task, "fresh")
        assert task.mm.user_vsids != old


class TestMmap:
    def test_mmap_returns_gap_address(self, sim, task):
        addr = sim.kernel.sys_mmap(task, 8 * PAGE_SIZE)
        assert addr == USER_MMAP_BASE
        second = sim.kernel.sys_mmap(task, 8 * PAGE_SIZE)
        assert second >= addr + 8 * PAGE_SIZE

    def test_mmap_rejects_bad_length(self, sim, task):
        with pytest.raises(SyscallError):
            sim.kernel.sys_mmap(task, 0)

    def test_munmap_requires_exact_vma(self, sim, task):
        addr = sim.kernel.sys_mmap(task, 8 * PAGE_SIZE)
        with pytest.raises(SyscallError):
            sim.kernel.sys_munmap(task, addr, 4 * PAGE_SIZE)

    def test_munmap_frees_anon_frames(self, sim, task):
        kernel = sim.kernel
        addr = kernel.sys_mmap(task, 8 * PAGE_SIZE)
        kernel.user_access(task, addr, 1, True)
        pfn = task.mm.resident[addr]
        kernel.sys_munmap(task, addr, 8 * PAGE_SIZE)
        assert not kernel.palloc.is_allocated(pfn)
        assert task.mm.find_vma(addr) is None

    def test_munmap_keeps_shared_file_frames(self, sim, task):
        kernel = sim.kernel
        kernel.fs.create("shared.dat", 8 * PAGE_SIZE)
        kernel.fs.prefault("shared.dat")
        addr = kernel.sys_mmap(task, 8 * PAGE_SIZE, file="shared.dat")
        kernel.user_access(task, addr, 1, False)
        pfn = task.mm.resident[addr]
        kernel.sys_munmap(task, addr, 8 * PAGE_SIZE)
        assert kernel.palloc.is_allocated(pfn)  # still in the page cache

    def test_brk_grows_data(self, sim, task):
        data = next(v for v in task.mm.vmas if v.name == "data")
        end_before = data.end
        new_end = sim.kernel.sys_brk(task, 4)
        assert new_end == end_before + 4 * PAGE_SIZE
        sim.kernel.user_access(task, end_before, 1, True)


class TestAddressingGuards:
    def test_user_access_requires_current(self, sim):
        task = sim.kernel.spawn("x")
        with pytest.raises(KernelPanic):
            sim.kernel.user_access(task, 0x10000000, 1, False)

    def test_mm_for_kernel_address(self, sim):
        assert sim.kernel.mm_for_address(KERNELBASE) is sim.kernel.kernel_mm

    def test_mm_for_user_address_without_task_panics(self, sim):
        with pytest.raises(KernelPanic):
            sim.kernel.mm_for_address(0x10000000)


class TestMemoryConservation:
    def test_full_lifecycle_leaks_nothing(self, sim):
        kernel = sim.kernel
        free_start = kernel.palloc.free_count()
        task = kernel.spawn("leak", text_pages=4, data_pages=8)
        kernel.switch_to(task)
        for page in range(8):
            kernel.user_access(task, 0x10000000 + page * PAGE_SIZE, 1, True)
        addr = kernel.sys_mmap(task, 16 * PAGE_SIZE)
        for page in range(16):
            kernel.user_access(task, addr + page * PAGE_SIZE, 1, True)
        kernel.sys_munmap(task, addr, 16 * PAGE_SIZE)
        child = kernel.sys_fork(task)
        kernel.switch_to(child)
        kernel.sys_exit(child)
        kernel.switch_to(task)
        kernel.sys_exit(task)
        # Everything except the spawned image's page-cache pages and the
        # pre-cleared stock is back.
        leaked = free_start - kernel.palloc.free_count()
        image_pages = kernel.fs.lookup("bin:leak").pages
        assert leaked <= image_pages + kernel.palloc.precleared_count() + 4
