"""Block address translation registers (§3, §5.1)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigError
from repro.hw.bat import BatArray, BatRegister, block_length_mask
from repro.params import BAT_MAX_BLOCK, BAT_MIN_BLOCK


class TestBlockLengthMask:
    def test_smallest_block(self):
        assert block_length_mask(128 * 1024) == 0

    def test_doubling_sets_bits(self):
        assert block_length_mask(256 * 1024) == 0b1
        assert block_length_mask(512 * 1024) == 0b11
        assert block_length_mask(32 * 1024 * 1024) == 0xFF

    def test_largest_block(self):
        assert block_length_mask(BAT_MAX_BLOCK) == 0x7FF

    def test_rejects_too_small(self):
        with pytest.raises(ConfigError):
            block_length_mask(BAT_MIN_BLOCK // 2)

    def test_rejects_too_large(self):
        with pytest.raises(ConfigError):
            block_length_mask(BAT_MAX_BLOCK * 2)

    def test_rejects_non_power_of_two_multiple(self):
        with pytest.raises(ConfigError):
            block_length_mask(3 * 128 * 1024)


class TestBatRegister:
    def test_mapping_requires_alignment(self):
        with pytest.raises(ConfigError):
            BatRegister.mapping(0xC0020000, 0, 32 * 1024 * 1024)

    def test_match_inside_block(self):
        bat = BatRegister.mapping(0xC0000000, 0, 32 * 1024 * 1024)
        assert bat.matches(0xC0000000)
        assert bat.matches(0xC1FFFFFF)
        assert not bat.matches(0xC2000000)
        assert not bat.matches(0xBFFFFFFF)

    def test_invalid_bat_never_matches(self):
        assert not BatRegister().matches(0)

    def test_translate_preserves_block_offset(self):
        bat = BatRegister.mapping(0xC0000000, 0x02000000, 16 * 1024 * 1024)
        assert bat.translate(0xC0000000) == 0x02000000
        assert bat.translate(0xC0ABCDEF) == 0x02ABCDEF

    def test_translate_identity_mapping(self):
        bat = BatRegister.mapping(0xF8000000, 0xF8000000, 8 * 1024 * 1024)
        assert bat.translate(0xF8123456) == 0xF8123456

    def test_size_bytes(self):
        bat = BatRegister.mapping(0, 0, 512 * 1024)
        assert bat.size_bytes == 512 * 1024

    @given(st.integers(0, (32 * 1024 * 1024) - 1))
    def test_translate_offset_within_32mb_block(self, offset):
        bat = BatRegister.mapping(0xC0000000, 0, 32 * 1024 * 1024)
        ea = 0xC0000000 + offset
        assert bat.matches(ea)
        assert bat.translate(ea) == offset


class TestBatArray:
    def test_empty_array_translates_nothing(self):
        array = BatArray()
        assert array.lookup(0xC0000000, instruction=False) is None
        assert array.translate(0xC0000000, instruction=False) is None

    def test_instruction_and_data_banks_are_separate(self):
        array = BatArray()
        bat = BatRegister.mapping(0xC0000000, 0, 32 * 1024 * 1024)
        array.set(0, bat, instruction=False)
        assert array.translate(0xC0000000, instruction=False) == 0
        assert array.translate(0xC0000000, instruction=True) is None

    def test_map_both_programs_both_banks(self):
        array = BatArray()
        bat = BatRegister.mapping(0xC0000000, 0, 32 * 1024 * 1024)
        array.map_both(0, bat)
        assert array.translate(0xC0001234, instruction=True) == 0x1234
        assert array.translate(0xC0001234, instruction=False) == 0x1234

    def test_lowest_numbered_match_wins(self):
        array = BatArray()
        array.set(0, BatRegister.mapping(0xC0000000, 0x01000000,
                                         16 * 1024 * 1024), instruction=False)
        array.set(1, BatRegister.mapping(0xC0000000, 0x02000000,
                                         16 * 1024 * 1024), instruction=False)
        assert array.translate(0xC0000000, instruction=False) == 0x01000000

    def test_clear(self):
        array = BatArray()
        array.set(0, BatRegister.mapping(0, 0, 128 * 1024), instruction=True)
        array.clear(0, instruction=True)
        assert array.translate(0, instruction=True) is None

    def test_clear_all(self):
        array = BatArray()
        array.map_both(0, BatRegister.mapping(0, 0, 128 * 1024))
        array.clear_all()
        assert array.translate(0, instruction=False) is None
        assert array.translate(0, instruction=True) is None

    def test_set_rejects_bad_index(self):
        with pytest.raises(ConfigError):
            BatArray().set(4, BatRegister(), instruction=True)
