"""The cycle ledger."""

import pytest

from repro.hw.clock import CycleLedger


class TestLedger:
    def test_add_accumulates(self):
        clock = CycleLedger()
        clock.add(10, "a")
        clock.add(5, "b")
        assert clock.total == 15

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            CycleLedger().add(-1)

    def test_zero_charge_allowed(self):
        clock = CycleLedger()
        clock.add(0, "a")
        assert clock.total == 0

    def test_categories(self):
        clock = CycleLedger()
        clock.add(10, "mem")
        clock.add(3, "mem")
        clock.add(2, "syscall")
        assert clock.category("mem") == 13
        assert clock.category("missing") == 0
        assert clock.breakdown() == {"mem": 13, "syscall": 2}

    def test_breakdown_sums_to_total(self):
        clock = CycleLedger()
        for index in range(10):
            clock.add(index, f"cat{index % 3}")
        assert sum(clock.breakdown().values()) == clock.total

    def test_snapshot_since(self):
        clock = CycleLedger()
        clock.add(10)
        mark = clock.snapshot()
        clock.add(7)
        assert clock.since(mark) == 7

    def test_reset(self):
        clock = CycleLedger()
        clock.add(10, "a")
        clock.reset()
        assert clock.total == 0
        assert clock.breakdown() == {}
