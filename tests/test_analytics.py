"""Tests for ``repro.obs.analytics`` — the derived-metrics layer.

Two tiers: pure-function units (percentile, downsampling, histogram
reduction) and a real observed run of a registry experiment, asserting
the shape and internal consistency of every section of the derived
block.  The module's literal registries are also pinned against the
live taxonomies they mirror, so drift fails here before it fails in
the lint closure.
"""

from __future__ import annotations

from repro.obs import analytics
from repro.obs import session as obs_session
from repro.obs.events import EVENT_NAMES
from repro.obs.profiler import DISPLAY_ORDER, PATH_CATEGORIES
from repro.perf.histogram import Histogram


class TestPercentile:
    def test_empty_is_zero(self):
        assert analytics.percentile([], 99) == 0

    def test_single_value(self):
        assert analytics.percentile([7], 50) == 7
        assert analytics.percentile([7], 99) == 7

    def test_nearest_rank(self):
        values = list(range(1, 101))  # 1..100, already sorted
        assert analytics.percentile(values, 50) == 50
        assert analytics.percentile(values, 90) == 90
        assert analytics.percentile(values, 99) == 99

    def test_small_population_rounds_up(self):
        # Nearest-rank with ceil: p50 of [10, 20] is the first element.
        assert analytics.percentile([10, 20], 50) == 10
        assert analytics.percentile([10, 20], 99) == 20


class TestSpanStats:
    def test_empty(self):
        stats = analytics.span_stats([])
        assert stats["count"] == 0
        assert stats["total_cycles"] == 0
        assert stats["max"] == 0
        assert stats["p99"] == 0

    def test_shape_and_values(self):
        stats = analytics.span_stats([30, 10, 20])
        assert stats["count"] == 3
        assert stats["total_cycles"] == 60
        assert stats["mean"] == 20.0
        assert stats["max"] == 30
        assert stats["p50"] == 20
        assert set(stats) == {
            "count", "total_cycles", "mean", "max", "p50", "p90", "p99",
        }


class TestSeriesStats:
    def test_empty(self):
        assert analytics.series_stats([]) == {
            "min": 0, "max": 0, "mean": 0.0, "final": 0,
        }

    def test_values(self):
        stats = analytics.series_stats([4, 2, 6])
        assert stats == {"min": 2, "max": 6, "mean": 4.0, "final": 6}


class TestDownsample:
    def test_short_series_untouched(self):
        assert analytics.downsample([1, 2, 3], points=10) == [1, 2, 3]

    def test_keeps_endpoints_and_length(self):
        values = list(range(1000))
        out = analytics.downsample(values, points=96)
        assert len(out) == 96
        assert out[0] == 0
        assert out[-1] == 999
        assert out == sorted(out)

    def test_deterministic(self):
        values = list(range(777))
        assert (analytics.downsample(values)
                == analytics.downsample(values))


class TestHistogramBars:
    def test_short_counts_untouched(self):
        assert analytics.histogram_bars([1, 2], bars=8) == [1, 2]

    def test_reduction_preserves_total(self):
        counts = list(range(300))
        bars = analytics.histogram_bars(counts, bars=64)
        assert len(bars) == 64
        assert sum(bars) == sum(counts)

    def test_summary_shape(self):
        summary = analytics.histogram_summary(Histogram([0, 4, 2, 0]))
        assert summary["buckets"] == 4
        assert summary["total"] == 6
        assert summary["max_load"] == 4
        assert summary["bars"] == [0, 4, 2, 0]
        assert 0.0 <= summary["entropy_efficiency"] <= 1.0


class TestMergedCounts:
    def test_modal_size_wins(self):
        merged = analytics._merged_counts([[1, 2], [3, 4], [9, 9, 9]])
        assert merged == [4, 6]

    def test_tie_prefers_smallest(self):
        merged = analytics._merged_counts([[1, 2], [5, 6, 7]])
        assert merged == [1, 2]


class TestRegistryMirrors:
    """The literal registries must track the live taxonomies."""

    def test_category_spans_cover_the_full_taxonomy(self):
        expected = set(PATH_CATEGORIES.values()) | {"other"}
        assert set(analytics.CATEGORY_SPANS) == expected
        assert set(analytics.CATEGORY_SPANS) == set(DISPLAY_ORDER)

    def test_span_events_are_registered(self):
        for name in analytics.SPAN_EVENTS:
            assert name in EVENT_NAMES

    def test_instant_events_are_registered(self):
        for name in analytics.INSTANT_EVENTS:
            assert name in EVENT_NAMES

    def test_drift_counters_are_registered(self):
        for name in analytics.DRIFT_COUNTERS:
            assert name in EVENT_NAMES

    def test_category_spans_use_span_events(self):
        for spans in analytics.CATEGORY_SPANS.values():
            for name in spans:
                assert name in analytics.SPAN_EVENTS
        for name in analytics.RELOAD_SPANS:
            assert name in analytics.SPAN_EVENTS


class TestDerive:
    def test_empty_handles(self):
        assert analytics.derive([]) == {}

    def test_full_block_from_observed_run(self):
        run = obs_session.run_observed(
            "E1", trace=True, sample_every_us=10.0
        )
        derived = analytics.derive(run.observed)

        assert derived["total_cycles"] > 0
        assert derived["simulators"] == len(run.observed)
        assert derived["machines"]

        attribution = derived["attribution"]
        assert sum(attribution["cycles"].values()) == derived["total_cycles"]
        assert abs(sum(attribution["shares"].values()) - 1.0) < 1e-3
        assert attribution["top"] in attribution["cycles"]

        assert set(derived["counters"]) == set(analytics.DRIFT_COUNTERS)
        assert derived["counters"]["context_switch"] > 0

        events = derived["events"]
        assert events["emitted"] > 0
        assert set(events["instants"]) <= set(analytics.INSTANT_EVENTS)
        assert set(derived["spans"]) <= set(analytics.SPAN_EVENTS)
        assert set(derived["categories"]) <= set(analytics.CATEGORY_SPANS)

        timeline = derived["timeline"]
        assert timeline["samples"] > 0
        assert len(timeline["series"]["us"]) <= analytics.TIMELINE_POINTS
        assert (len(timeline["series"]["live"])
                == len(timeline["series"]["us"]))

        for name in ("occupancy", "miss"):
            summary = derived["histograms"][name]
            assert sum(summary["bars"]) == summary["total"]

    def test_derive_is_deterministic_over_handles(self):
        run = obs_session.run_observed("E1", trace=True)
        assert (analytics.derive(run.observed)
                == analytics.derive(run.observed))
