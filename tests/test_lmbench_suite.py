"""The lmbench_suite runner and table rendering around it."""

import pytest

from repro.analysis.tables import format_lmbench_rows
from repro.kernel.config import KernelConfig
from repro.params import M604_185
from repro.sim.simulator import boot
from repro.workloads.lmbench import LmbenchResult, lmbench_suite


def mk():
    return boot(M604_185, KernelConfig.optimized())


class TestSuiteRunner:
    def test_each_point_gets_a_fresh_system(self):
        calls = []

        def make_sim():
            calls.append(1)
            return mk()

        lmbench_suite(make_sim, label="x", points=("null_syscall", "ctxsw"))
        # One probe boot plus one boot per point.
        assert len(calls) == 3

    def test_ctxsw8_optional(self):
        result = lmbench_suite(
            mk, label="x", points=("null_syscall",), ctxsw8=True
        )
        assert result.ctxsw8_us is not None
        assert result.ctxsw8_us >= 0

    def test_counters_captured_with_process_start(self):
        result = lmbench_suite(mk, label="x", points=("process_start",))
        assert result.counters.get("context_switch", 0) > 0

    def test_machine_name_recorded(self):
        result = lmbench_suite(mk, label="x", points=())
        assert result.machine == "604 185MHz"


class TestRendering:
    def test_format_lmbench_rows(self):
        results = [
            LmbenchResult(
                machine="604 185MHz",
                label="A",
                ctxsw_us=4.0,
                pipe_bw_mb_s=88.0,
            ),
            LmbenchResult(
                machine="604 185MHz",
                label="B",
                ctxsw_us=6.0,
                pipe_bw_mb_s=52.0,
            ),
        ]
        text = format_lmbench_rows(results)
        assert "A" in text and "B" in text
        assert "ctxsw (us)" in text
        # Rows with no data anywhere are dropped.
        assert "mmap" not in text

    def test_format_skips_all_none_metrics(self):
        results = [LmbenchResult(machine="m", label="only")]
        text = format_lmbench_rows(results)
        assert "only" in text
