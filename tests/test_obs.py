"""The MMU flight recorder (``repro.obs``).

Three properties the ISSUE pins down as acceptance criteria:

* **zero perturbation** — a traced/profiled/sampled run is bit-identical
  to a bare run in every monitor counter and in total cycles;
* **attribution completeness** — the profiler's path categories sum
  exactly to ``clock.total``, no residue;
* **determinism** — two identical runs serialize to byte-identical
  traces and records.
"""

from __future__ import annotations

import json

import pytest

from repro import __main__ as cli
from repro import obs
from repro.analysis import engine, specs
from repro.kernel.config import KernelConfig
from repro.obs import metrics
from repro.obs import session as obs_session
from repro.obs.events import (
    DEFAULT_MONITOR_EVENTS,
    EventTracer,
    TraceConfig,
    chrome_trace,
    validate_chrome_trace,
)
from repro.obs.profiler import (
    PATH_CATEGORIES,
    CycleProfiler,
    merge_attributions,
    render_attribution,
)
from repro.params import M603_133, M604_185
from repro.sim.simulator import Simulator, boot


def drive(sim: Simulator, pages: int = 48) -> Simulator:
    """A small but path-rich workload: faults, reloads, idle, flushes."""
    kernel = sim.kernel
    task = kernel.spawn("obs-driver", data_pages=pages)
    kernel.switch_to(task)
    for index in range(pages):
        kernel.user_access(task, 0x10000000 + index * 4096, lines=8,
                           write=True)
    kernel.run_idle(20_000)
    kernel.flush.flush_range(task.mm, 0x10000000, 0x10000000 + pages * 4096)
    for index in range(pages):
        kernel.user_access(task, 0x10000000 + index * 4096, lines=2)
    return sim


class TestZeroPerturbation:
    @pytest.mark.parametrize("spec", [M604_185, M603_133],
                             ids=["604", "603"])
    def test_counters_and_cycles_identical(self, spec):
        bare = drive(Simulator(spec, KernelConfig.optimized()))
        watched = drive(Simulator(
            spec, KernelConfig.optimized(),
            trace=True, profile=True, sample_every_us=5,
        ))
        assert watched.obs is not None
        assert watched.obs.tracer.emitted > 0
        assert watched.obs.sampler.samples
        assert watched.cycles == bare.cycles
        assert watched.counters() == bare.counters()
        assert watched.breakdown() == bare.breakdown()

    def test_untraced_simulator_has_no_recorder(self):
        sim = boot(M604_185, KernelConfig.optimized())
        assert sim.obs is None
        assert sim.machine.tracer is None
        assert sim.machine.monitor.tracer is None
        assert sim.machine.clock.observer is None


class TestEventTracer:
    def test_ring_capacity_drops_oldest(self):
        sim = boot(M604_185, KernelConfig.optimized())
        tracer = EventTracer(sim.machine, config=TraceConfig(capacity=4))
        for index in range(10):
            tracer.instant(f"e{index}", "test")
        assert tracer.emitted == 10
        assert tracer.dropped == 6
        names = [event[4] for event in tracer.events]
        assert names == ["e6", "e7", "e8", "e9"]

    def test_complete_span_backdates_start(self):
        sim = boot(M604_185, KernelConfig.optimized())
        tracer = EventTracer(sim.machine)
        sim.machine.clock.add(1000, "user_compute")
        now = sim.machine.clock.total
        tracer.complete("span", "test", 400)
        ts, dur, ph, _cat, _name, _tid, _args = tracer.events[0]
        assert ph == "X"
        assert ts == now - 400
        assert dur == 400

    def test_monitor_events_filtered(self):
        sim = boot(M604_185, KernelConfig.optimized())
        tracer = EventTracer(sim.machine)
        sim.machine.monitor.tracer = tracer
        sim.machine.monitor.count("vsid_bump")
        sim.machine.monitor.count("dcache_miss")  # excluded by default
        assert "dcache_miss" not in DEFAULT_MONITOR_EVENTS
        assert [event[4] for event in tracer.events] == ["vsid_bump"]

    def test_chrome_export_validates(self):
        sim = drive(Simulator(M604_185, KernelConfig.optimized(),
                              trace=True, sample_every_us=10))
        doc = chrome_trace([sim.obs.tracer])
        counts = validate_chrome_trace(doc)
        assert counts["events"] > 100
        assert counts["spans"] > 0
        assert counts["instants"] > 0
        assert counts["counters"] > 0
        # Round-trips through JSON.
        assert validate_chrome_trace(json.loads(json.dumps(doc))) == counts

    def test_validator_rejects_malformed(self):
        with pytest.raises(ValueError):
            validate_chrome_trace({"events": []})
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": [{"ph": "i", "ts": 0}]})
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": [
                {"ph": "X", "ts": 0, "name": "no-dur", "pid": 0, "tid": 0}
            ]})

    def test_two_runs_byte_identical(self):
        docs = []
        for _attempt in range(2):
            sim = drive(Simulator(M604_185, KernelConfig.optimized(),
                                  trace=True, sample_every_us=10))
            docs.append(json.dumps(chrome_trace([sim.obs.tracer]),
                                   sort_keys=True))
        assert docs[0] == docs[1]


class TestCycleProfiler:
    def test_attribution_sums_exactly(self):
        sim = drive(Simulator(M604_185, KernelConfig.optimized(),
                              profile=True))
        attribution = sim.obs.profiler.attribution()
        assert sum(attribution.values()) == sim.cycles
        assert sim.cycles > 0

    def test_every_ledger_category_is_mapped(self):
        sim = drive(Simulator(M604_185, KernelConfig.optimized(),
                              profile=True))
        for raw in sim.breakdown():
            assert raw in PATH_CATEGORIES, (
                f"ledger category {raw!r} missing from PATH_CATEGORIES"
            )

    def test_unknown_category_lands_in_other(self):
        sim = boot(M604_185, KernelConfig.optimized())
        profiler = CycleProfiler(sim.machine.clock)
        sim.machine.clock.add(123, "never-seen-before")
        attribution = profiler.attribution()
        assert attribution["other"] == 123
        assert sum(attribution.values()) == sim.cycles

    def test_merge_and_render(self):
        merged = merge_attributions([
            {"flush": 10, "idle": 5}, {"flush": 1, "other": 2},
        ])
        assert merged == {"flush": 11, "idle": 5, "other": 2}
        table = render_attribution(merged, "title")
        assert "title" in table
        assert "total" in table
        assert "18" in table  # the exact total row


class TestTimeSeriesSampler:
    def test_samples_on_boundaries(self):
        sim = drive(Simulator(M604_185, KernelConfig.optimized(),
                              sample_every_us=5))
        sampler = sim.obs.sampler
        assert sampler.samples
        cycles = sampler.series("cycle")
        assert cycles == sorted(cycles)
        # One sample per boundary crossing, never two in one interval.
        buckets = [cycle // sampler.every_cycles for cycle in cycles]
        assert len(buckets) == len(set(buckets))
        first = sampler.samples[0]
        assert set(first["htab"]) == {
            "live", "zombie", "valid", "occupancy", "hottest_bucket",
            "vsids",
        }
        assert first["htab"]["valid"] == (
            first["htab"]["live"] + first["htab"]["zombie"]
        )
        assert set(first["htab"]["vsids"]) == {"top", "rest"}

    def test_rejects_nonpositive_interval(self):
        sim = boot(M604_185, KernelConfig.optimized())
        with pytest.raises(ValueError):
            obs.TimeSeriesSampler(sim.kernel, 0)


class TestGlobalObservability:
    def test_attach_and_drain(self):
        obs.enable_global_observability(profile=True)
        try:
            first = boot(M604_185, KernelConfig.optimized())
            second = boot(M603_133, KernelConfig.optimized())
            assert first.obs is not None and second.obs is not None
            drained = obs.drain_global_observed()
            assert [o.machine for o in drained] == [
                first.machine, second.machine
            ]
            assert obs.drain_global_observed() == []
        finally:
            obs.disable_global_observability()
        assert boot(M604_185, KernelConfig.optimized()).obs is None


class TestObservedExperiments:
    """Experiment-level parity: the ISSUE's acceptance matrix."""

    @pytest.mark.parametrize("experiment_id,params", [
        ("E2", {"units": 2}),
        ("E6", None),
        ("E7", {"rounds": 60}),
    ], ids=["E2", "E6", "E7"])
    def test_traced_run_bit_identical(self, experiment_id, params):
        spec = specs.SPECS[experiment_id]
        baseline = []
        obs.enable_global_observability(profile=True)
        try:
            bare = engine.execute(spec, params)
            baseline = [
                (o.machine.spec.name, o.machine.clock.total, o.counters())
                for o in obs.drain_global_observed()
            ]
        finally:
            obs.disable_global_observability()
        obs.enable_global_observability(profile=True, trace=True,
                                        sample_every_us=500)
        try:
            traced = engine.execute(spec, params)
            watched = [
                (o.machine.spec.name, o.machine.clock.total, o.counters())
                for o in obs.drain_global_observed()
            ]
        finally:
            obs.disable_global_observability()
        assert bare.measured == traced.measured
        assert baseline == watched

    def test_run_observed_record(self):
        observed = obs_session.run_observed("E1")
        record = observed.record()
        assert record["id"] == "E1"
        assert record["total_cycles"] == observed.total_cycles > 0
        assert record["machines"]
        assert sum(record["attribution"].values()) == record["total_cycles"]
        assert isinstance(record["shape_holds"], bool)
        json.loads(metrics.dumps(record))

    def test_run_observed_rejects_unknown(self):
        with pytest.raises(KeyError):
            obs_session.run_observed("E99")


class TestMetrics:
    def test_json_safe_handles_oddballs(self):
        coerced = metrics.json_safe({
            1: float("inf"),
            "t": (1, 2),
            "f": float("nan"),
            "ok": 3.5,
        })
        assert coerced["1"] == "inf"
        assert coerced["t"] == [1, 2]
        assert coerced["f"] == "nan"
        assert coerced["ok"] == 3.5
        json.dumps(coerced)

    def test_bench_aggregation(self, tmp_path):
        for number, cycles in ((2, 100), (10, 50), (1, 7)):
            metrics.write_experiment_record(
                {"id": f"E{number}", "title": f"experiment {number}",
                 "machines": ["604e/200"], "total_cycles": cycles,
                 "shape_holds": True, "measured": {}, "paper": {},
                 "attribution": {"user-compute": cycles},
                 "derived": {}},
                tmp_path,
            )
        (tmp_path / "notes.json").write_text("{}")  # ignored: not E<n>.json
        out = tmp_path / "BENCH_results.json"
        doc = metrics.write_bench_results(tmp_path, out)
        assert [r["id"] for r in doc["experiments"]] == ["E1", "E2", "E10"]
        assert doc["summary"]["experiments"] == 3
        assert doc["summary"]["total_cycles"] == 157
        assert doc["summary"]["shapes_holding"] == 3
        assert json.loads(out.read_text()) == doc


class TestSortedIds:
    def test_numeric_order(self):
        ids = specs.sorted_ids()
        assert ids[0] == "E1"
        assert ids == sorted(ids, key=lambda i: int(i[1:]))
        assert set(ids) == set(specs.SPECS)


class TestCli:
    def test_profile_breakdown_sums_to_total(self, capsys):
        assert cli.main(["profile", "e1"]) == 0
        out = capsys.readouterr().out
        assert "E1" in out
        rows = [line for line in out.splitlines()
                if line.startswith("  ") and "category" not in line]
        parsed = [int(row.split()[1].replace(",", "")) for row in rows]
        # Last row is the total; the others are the categories.
        assert sum(parsed[:-1]) == parsed[-1] > 0

    def test_run_json(self, capsys):
        assert cli.main(["run", "e1", "--json"]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["id"] == "E1"
        assert record["total_cycles"] > 0
        assert sum(record["attribution"].values()) == record["total_cycles"]

    def test_check_json(self, capsys):
        assert cli.main(["check", "e1", "--json"]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["ok"] is True
        assert record["experiments"][0]["id"] == "E1"
        assert "seconds" not in record["experiments"][0]

    def test_trace_writes_valid_chrome_trace(self, tmp_path, capsys):
        out = tmp_path / "e1.trace.json"
        assert cli.main(["trace", "e1", "--out", str(out),
                         "--sample-us", "50"]) == 0
        doc = json.loads(out.read_text())
        counts = validate_chrome_trace(doc)
        assert counts["events"] > 0
        for event in doc["traceEvents"]:
            assert {"ph", "ts", "name"} <= set(event)
        assert doc["otherData"]["experiment"] == "E1"

    def test_trace_unknown_experiment(self, capsys):
        assert cli.main(["trace", "e99", "--out", "/dev/null"]) == 2

    def test_profile_unknown_experiment(self, capsys):
        assert cli.main(["profile", "e99"]) == 2


@pytest.mark.slow
class TestCliAcceptance:
    """The ISSUE's literal acceptance commands (heavier experiments)."""

    def test_trace_e7(self, tmp_path):
        out = tmp_path / "e7.trace.json"
        assert cli.main(["trace", "E7", "--out", str(out)]) == 0
        doc = json.loads(out.read_text())
        counts = validate_chrome_trace(doc)
        assert counts["spans"] > 0 and counts["instants"] > 0

    def test_profile_e6(self, capsys):
        assert cli.main(["profile", "E6"]) == 0
        out = capsys.readouterr().out
        rows = [line for line in out.splitlines()
                if line.startswith("  ") and "category" not in line]
        parsed = [int(row.split()[1].replace(",", "")) for row in rows]
        assert sum(parsed[:-1]) == parsed[-1] > 0
