"""Tests for ``repro.obs.baseline`` — the regression sentinel.

Units over the tolerance policy (validation, prefix matching, exact
and ratio checks), verdict accounting over hand-built bench docs, and
the ``repro bench compare`` CLI exit-code contract: 0 on a matching
pair, 1 on a regression, 2 on unusable inputs.
"""

from __future__ import annotations

import copy
import json
import subprocess
import sys

import pytest

from repro.obs import baseline
from repro.obs.metrics import BENCH_SCHEMA, validate_bench_doc


def record(number, cycles=100, shape=True, measured=None):
    return {
        "id": f"E{number}",
        "title": f"experiment {number}",
        "machines": ["604e/200"],
        "total_cycles": cycles,
        "shape_holds": shape,
        "measured": dict(measured or {"ratio": 2.5}),
        "paper": {},
        "attribution": {"tlb-reload": cycles},
        "derived": {"counters": {"tlb_miss": 7 * number}},
    }


def doc(records, timings=None):
    built = {
        "schema_version": BENCH_SCHEMA,
        "source": "test fixture",
        "experiments": records,
        "summary": {
            "experiments": len(records),
            "shapes_holding": sum(
                1 for r in records if r["shape_holds"]
            ),
            "total_cycles": sum(r["total_cycles"] for r in records),
        },
    }
    if timings is not None:
        built["timings"] = timings
    validate_bench_doc(built)
    return built


class TestPolicy:
    def test_default_policy_is_valid(self):
        assert baseline.validate_policy(baseline.DEFAULT_POLICY) == []

    def test_schema_skew_reported(self):
        policy = copy.deepcopy(baseline.DEFAULT_POLICY)
        policy["schema_version"] = 99
        assert any(
            "schema_version" in p for p in baseline.validate_policy(policy)
        )

    def test_bad_kind_reported(self):
        policy = {
            "schema_version": 1,
            "rules": [{"prefix": "x.", "kind": "fuzzy"}],
            "default": {"kind": "exact", "severity": "fail"},
        }
        assert any("kind" in p for p in baseline.validate_policy(policy))

    def test_ratio_rule_needs_band(self):
        policy = {
            "schema_version": 1,
            "rules": [{"prefix": "x.", "kind": "ratio", "max_ratio": 1}],
            "default": {"kind": "exact", "severity": "fail"},
        }
        assert any(
            "max_ratio" in p for p in baseline.validate_policy(policy)
        )

    def test_first_prefix_match_wins(self):
        policy = {
            "schema_version": 1,
            "rules": [
                {"prefix": "a.b.", "kind": "ignore"},
                {"prefix": "a.", "kind": "ratio", "max_ratio": 2.0,
                 "severity": "warn"},
            ],
            "default": {"kind": "exact", "severity": "fail"},
        }
        assert baseline.rule_for("a.b.c", policy)["kind"] == "ignore"
        assert baseline.rule_for("a.x", policy)["kind"] == "ratio"
        assert baseline.rule_for("z", policy)["kind"] == "exact"

    def test_load_policy_rejects_invalid_file(self, tmp_path):
        path = tmp_path / "policy.json"
        path.write_text(json.dumps({"schema_version": 1, "rules": 5}))
        with pytest.raises(ValueError, match="rules"):
            baseline.load_policy(path)


class TestCompareDocs:
    def test_identical_docs_are_ok(self):
        fixture = doc([record(1), record(2)])
        verdict = baseline.compare_docs(fixture, copy.deepcopy(fixture))
        assert verdict.ok
        assert verdict.findings == []
        assert verdict.checked > 0

    def test_perturbed_deterministic_leaf_is_a_regression(self):
        old = doc([record(1)])
        new = copy.deepcopy(old)
        new["experiments"][0]["measured"]["ratio"] = 9.9
        verdict = baseline.compare_docs(old, new)
        assert not verdict.ok
        (finding,) = verdict.regressions
        assert finding.key == "experiments.E1.measured.ratio"
        assert finding.kind == "exact"

    def test_shape_flip_is_a_regression(self):
        old = doc([record(1)])
        new = doc([record(1, shape=False)])
        verdict = baseline.compare_docs(old, new)
        assert any(
            "shape_holds" in f.key for f in verdict.regressions
        )

    def test_timing_inside_band_passes(self):
        old = doc([record(1)], timings={"E1": 1.0})
        new = doc([record(1)], timings={"E1": 3.0})
        verdict = baseline.compare_docs(old, new)
        assert verdict.ok
        assert verdict.findings == []

    def test_timing_outside_band_warns_only(self):
        old = doc([record(1)], timings={"E1": 0.01})
        new = doc([record(1)], timings={"E1": 10.0})
        verdict = baseline.compare_docs(old, new)
        assert verdict.ok  # warn severity does not gate
        (finding,) = verdict.warnings
        assert finding.key == "timings.E1"
        assert "band" in finding.note

    def test_timing_zero_crossing_warns(self):
        old = doc([record(1)], timings={"E1": 0.0})
        new = doc([record(1)], timings={"E1": 2.0})
        verdict = baseline.compare_docs(old, new)
        assert verdict.ok
        assert any("zero" in f.note for f in verdict.warnings)

    def test_missing_and_extra_leaves_are_findings(self):
        old = doc([record(1), record(2)])
        new = doc([record(1)])
        verdict = baseline.compare_docs(old, new)
        assert not verdict.ok
        gone = [f for f in verdict.regressions
                if f.key.startswith("experiments.E2.")]
        assert gone and all(f.new is None for f in gone)
        reversed_verdict = baseline.compare_docs(new, old)
        appeared = [f for f in reversed_verdict.regressions
                    if f.key.startswith("experiments.E2.")]
        assert appeared and all(f.baseline is None for f in appeared)

    def test_ignore_rule_skips_leaves(self):
        policy = {
            "schema_version": 1,
            "rules": [{"prefix": "experiments.E1.derived.",
                       "kind": "ignore"}],
            "default": {"kind": "exact", "severity": "fail"},
        }
        old = doc([record(1)])
        new = copy.deepcopy(old)
        new["experiments"][0]["derived"]["counters"]["tlb_miss"] = 999
        verdict = baseline.compare_docs(old, new, policy)
        assert verdict.ok
        assert verdict.ignored > 0


class TestRenderVerdict:
    def test_ok_verdict(self):
        verdict = baseline.compare_docs(doc([record(1)]),
                                        doc([record(1)]))
        text = baseline.render_verdict(verdict, "base.json", "new.json")
        assert text.endswith(
            "VERDICT: ok — the benchmark trajectory matches the baseline"
        )

    def test_regression_verdict_lists_findings(self):
        old = doc([record(1)])
        new = copy.deepcopy(old)
        new["experiments"][0]["total_cycles"] = 1
        new["summary"]["total_cycles"] = 1
        text = baseline.render_verdict(
            baseline.compare_docs(old, new), "a", "b"
        )
        assert "[fail]" in text
        assert "REGRESSION" in text.splitlines()[-1]

    def test_finding_limit(self):
        old = doc([record(1, measured={f"k{i}": i for i in range(30)})])
        new = doc([record(1, measured={f"k{i}": i + 1
                                       for i in range(30)})])
        text = baseline.render_verdict(
            baseline.compare_docs(old, new), "a", "b", limit=5
        )
        assert "... 25 more findings" in text


def run_cli(*argv):
    return subprocess.run(
        [sys.executable, "-m", "repro", "bench", "compare", *argv],
        capture_output=True, text=True,
    )


class TestCompareCli:
    def write(self, tmp_path, name, document):
        path = tmp_path / name
        path.write_text(json.dumps(document))
        return str(path)

    def test_matching_pair_exits_zero(self, tmp_path):
        fixture = doc([record(1)])
        a = self.write(tmp_path, "a.json", fixture)
        b = self.write(tmp_path, "b.json", fixture)
        proc = run_cli(a, b)
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "VERDICT: ok" in proc.stdout

    def test_regression_exits_one_and_writes_verdict(self, tmp_path):
        old = doc([record(1)])
        new = copy.deepcopy(old)
        new["experiments"][0]["derived"]["counters"]["tlb_miss"] = 1234
        a = self.write(tmp_path, "a.json", old)
        b = self.write(tmp_path, "b.json", new)
        out = tmp_path / "verdict.json"
        proc = run_cli(a, b, "--json", "--out", str(out))
        assert proc.returncode == 1
        payload = json.loads(proc.stdout)
        assert payload["ok"] is False
        assert payload["regressions"] == 1
        assert json.loads(out.read_text()) == payload

    def test_unreadable_input_exits_two(self, tmp_path):
        a = self.write(tmp_path, "a.json", doc([record(1)]))
        broken = tmp_path / "broken.json"
        broken.write_text("not json")
        proc = run_cli(a, str(broken))
        assert proc.returncode == 2

    def test_schema_skew_exits_two(self, tmp_path):
        fixture = doc([record(1)])
        stale = copy.deepcopy(fixture)
        stale["schema_version"] = 2
        a = self.write(tmp_path, "a.json", stale)
        b = self.write(tmp_path, "b.json", fixture)
        proc = run_cli(a, b)
        assert proc.returncode == 2
        assert "schema_version" in proc.stderr
