"""The §10.2 cache-preload mechanism."""

import pytest

from repro.hw.machine import MachineModel
from repro.hw.tlb import TlbEntry
from repro.kernel.config import KernelConfig
from repro.params import KERNELBASE, M604_185
from repro.sim.simulator import Simulator


class TestPrefetchMechanism:
    def test_prefetch_fills_cache_without_full_charge(self):
        machine = MachineModel(M604_185)
        machine.segments.write(1, 0x42)
        machine.dtlb.insert(TlbEntry(vsid=0x42, page_index=0x10, ppn=7))
        before = machine.clock.total
        machine.prefetch_page_lines(0x10010000, lines=4)
        charged = machine.clock.total - before
        # Issue cost only, far below four line fills.
        assert charged == 8
        assert machine.dcache.contains(7 << 12)
        # The subsequent demand access hits.
        assert machine.data_access(0x10010000) <= 2

    def test_prefetch_without_translation_is_dropped(self):
        machine = MachineModel(M604_185)
        machine.segments.write(1, 0x42)
        machine.prefetch_page_lines(0x10010000, lines=4)
        # Nothing faulted, nothing cached: dcbt never faults.
        assert len(machine.dcache) == 0
        assert machine.monitor["dtlb_miss"] == 0

    def test_prefetch_through_bat(self):
        sim = Simulator(M604_185, KernelConfig.optimized())
        sim.machine.prefetch_page_lines(KERNELBASE + 0x5000, lines=2)
        assert sim.machine.dcache.contains(0x5000)

    def test_cache_inhibited_entry_not_prefetched(self):
        machine = MachineModel(M604_185)
        machine.segments.write(1, 0x42)
        machine.dtlb.insert(
            TlbEntry(vsid=0x42, page_index=0x10, ppn=7, cache_inhibited=True)
        )
        machine.prefetch_page_lines(0x10010000, lines=4)
        assert len(machine.dcache) == 0


class TestSwitchPathIntegration:
    def test_preload_config_prefetches_on_switch(self):
        config = KernelConfig.optimized().with_changes(cache_preloads=True)
        sim = Simulator(M604_185, config)
        first = sim.kernel.spawn("a")
        second = sim.kernel.spawn("b")
        sim.kernel.switch_to(first)
        sim.kernel.switch_to(second)
        assert sim.breakdown().get("prefetch", 0) > 0

    def test_no_prefetch_by_default(self):
        sim = Simulator(M604_185, KernelConfig.optimized())
        first = sim.kernel.spawn("a")
        sim.kernel.switch_to(first)
        assert sim.breakdown().get("prefetch", 0) == 0
