"""The hardware performance monitor (§4)."""

from repro.hw.monitor import HardwareMonitor


class TestCounters:
    def test_counts_accumulate(self):
        monitor = HardwareMonitor()
        monitor.count("dtlb_miss")
        monitor.count("dtlb_miss", 4)
        assert monitor["dtlb_miss"] == 5

    def test_unknown_counter_reads_zero(self):
        assert HardwareMonitor()["nothing"] == 0
        assert HardwareMonitor().get("nothing", 7) == 7

    def test_snapshot_is_frozen(self):
        monitor = HardwareMonitor()
        monitor.count("syscall")
        snapshot = monitor.snapshot()
        monitor.count("syscall")
        assert snapshot["syscall"] == 1

    def test_delta_reports_only_changes(self):
        monitor = HardwareMonitor()
        monitor.count("syscall")
        snapshot = monitor.snapshot()
        monitor.count("dtlb_miss", 3)
        delta = monitor.delta(snapshot)
        assert delta == {"dtlb_miss": 3}

    def test_reset_all_and_selective(self):
        monitor = HardwareMonitor()
        monitor.count("a")
        monitor.count("b")
        monitor.reset(["a"])
        assert monitor["a"] == 0 and monitor["b"] == 1
        monitor.reset()
        assert monitor["b"] == 0


class TestDerivedMetrics:
    def test_htab_hit_rate(self):
        monitor = HardwareMonitor()
        assert monitor.htab_hit_rate() == 0.0
        monitor.count("htab_search", 10)
        monitor.count("htab_hit", 9)
        assert monitor.htab_hit_rate() == 0.9

    def test_evict_ratio(self):
        monitor = HardwareMonitor()
        assert monitor.evict_ratio() == 0.0
        monitor.count("htab_reload", 10)
        monitor.count("htab_evict", 3)
        assert monitor.evict_ratio() == 0.3

    def test_total_tlb_misses(self):
        monitor = HardwareMonitor()
        monitor.count("itlb_miss", 2)
        monitor.count("dtlb_miss", 3)
        assert monitor.total_tlb_misses() == 5
