"""System-level property tests (hypothesis).

These are the invariants the paper's optimizations must preserve:

* **Translation safety** — whatever sequence of maps, touches, unmaps
  and flushes runs, the hardware never translates an address to a frame
  other than the one the kernel's page tables currently assign it.  The
  lazy VSID flush leaves stale "valid" entries everywhere; this property
  is exactly why that is sound.
* **Resource conservation** — physical frames are never double-owned.
* **Hash distribution** — the architected hash function's structural
  properties.
"""

import dataclasses

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.errors import SyscallError, TranslationError
from repro.hw.hashtable import primary_hash, secondary_hash
from repro.kernel.config import KernelConfig, ShootdownStrategy, VsidPolicy
from repro.params import KERNELBASE, M604_185, PAGE_SIZE
from repro.sim.simulator import Simulator

CONFIGS = {
    "optimized": KernelConfig.optimized(),
    "unoptimized": KernelConfig.unoptimized(),
    "lazy-tiny-cutoff": KernelConfig.optimized().with_changes(
        range_flush_cutoff=1
    ),
    "search-flush": KernelConfig.optimized().with_changes(
        lazy_vsid_flush=False, vsid_policy=VsidPolicy.PID_SCATTER
    ),
}

#: One mmap arena the state machine plays in.
ARENA_PAGES = 24


class _Model:
    """Drives one simulated process through map/touch/unmap steps while
    shadowing what the memory should look like."""

    def __init__(self, config, sim=None):
        self.sim = sim if sim is not None else Simulator(M604_185, config)
        self.kernel = self.sim.kernel
        self.task = self.kernel.spawn("model", data_pages=4)
        self.kernel.switch_to(self.task)
        self.arena = None

    def do_map(self):
        if self.arena is None:
            self.arena = self.kernel.sys_mmap(
                self.task, ARENA_PAGES * PAGE_SIZE
            )

    def do_unmap(self):
        if self.arena is not None:
            self.kernel.sys_munmap(
                self.task, self.arena, ARENA_PAGES * PAGE_SIZE
            )
            self.arena = None

    def do_touch(self, page, write):
        if self.arena is None:
            return
        ea = self.arena + page * PAGE_SIZE
        self.kernel.user_access(self.task, ea, 1, write)
        # SAFETY: hardware translation must agree with the page table.
        expected = self.task.mm.resident[ea]
        result = self.sim.machine.translate(ea)
        assert result.pa >> 12 == expected

    def do_flush_mm(self):
        self.kernel.flush.flush_mm(self.task.mm)

    def do_fork_exit(self):
        child = self.kernel.sys_fork(self.task)
        self.kernel.switch_to(child)
        self.kernel.sys_exit(child)
        self.kernel.switch_to(self.task)

    def check_unmapped_is_unreachable(self):
        if self.arena is None:
            # The arena's old address must fault, not translate stale.
            probe = 0x40000000
            if self.task.mm.find_vma(probe) is None:
                with pytest.raises(TranslationError):
                    self.kernel.user_access(self.task, probe, 1, False)


steps = st.lists(
    st.one_of(
        st.just(("map",)),
        st.just(("unmap",)),
        st.tuples(
            st.just("touch"), st.integers(0, ARENA_PAGES - 1), st.booleans()
        ),
        st.just(("flush",)),
        st.just(("forkexit",)),
    ),
    min_size=1,
    max_size=30,
)


@pytest.mark.parametrize("config_name", sorted(CONFIGS))
class TestTranslationSafety:
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(plan=steps)
    def test_hardware_never_serves_stale_translations(self, config_name, plan):
        model = _Model(CONFIGS[config_name])
        for step in plan:
            if step[0] == "map":
                model.do_map()
            elif step[0] == "unmap":
                model.do_unmap()
                model.check_unmapped_is_unreachable()
            elif step[0] == "touch":
                model.do_touch(step[1], step[2])
            elif step[0] == "flush":
                model.do_flush_mm()
            elif step[0] == "forkexit":
                model.do_fork_exit()


class TestFrameConservation:
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(plan=steps)
    def test_no_frame_double_owned(self, plan):
        model = _Model(CONFIGS["optimized"])
        kernel = model.kernel
        for step in plan:
            if step[0] == "map":
                model.do_map()
            elif step[0] == "unmap":
                model.do_unmap()
            elif step[0] == "touch":
                model.do_touch(step[1], step[2])
            elif step[0] == "forkexit":
                model.do_fork_exit()
            # Every resident anonymous frame is owned exactly once.
            owners = {}
            for task in kernel.tasks.values():
                for ea, pfn in task.mm.resident.items():
                    if pfn in task.mm.shared_pages:
                        continue
                    assert pfn not in owners, (
                        f"frame {pfn} owned by {owners[pfn]} and "
                        f"({task.pid}, {ea:#x})"
                    )
                    owners[pfn] = (task.pid, ea)
                    assert kernel.palloc.is_allocated(pfn)


class TestHashStructure:
    @given(st.integers(0, 0xFFFFFF), st.integers(0, 0xFFFF))
    def test_secondary_always_differs_from_primary(self, vsid, page):
        assert primary_hash(vsid, page) != secondary_hash(vsid, page)

    @given(st.integers(0, 0xFFFFFF), st.integers(0, 0xFFFF),
           st.integers(0, 0xFFFF))
    def test_same_vsid_different_pages_usually_spread(self, vsid, p1, p2):
        # XOR structure: equal hashes iff equal page indexes.
        if p1 != p2:
            assert primary_hash(vsid, p1) != primary_hash(vsid, p2)

    @given(st.integers(0, 0x7FFFF))
    def test_hash_is_self_inverse_in_vsid(self, value):
        # h(v, p) == h(p, v) for 16-bit values: XOR commutes.
        assert primary_hash(value, 0) == value & 0x7FFFF


class TestLedgerMonotonicity:
    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(plan=steps)
    def test_cycles_never_decrease(self, plan):
        model = _Model(CONFIGS["optimized"])
        last = model.sim.cycles
        for step in plan:
            if step[0] == "map":
                model.do_map()
            elif step[0] == "unmap":
                model.do_unmap()
            elif step[0] == "touch":
                model.do_touch(step[1], step[2])
            elif step[0] == "flush":
                model.do_flush_mm()
            elif step[0] == "forkexit":
                model.do_fork_exit()
            assert model.sim.cycles >= last
            last = model.sim.cycles


class TestGeometryIndependence:
    """The kernel's MMU discipline holds at *any* legal geometry.

    The array-backed rewrite (and the idle-scan geometry fix) must not
    bake the architected defaults into address or slot arithmetic.  This
    drives the same map/touch/unmap/flush/fork state machine through a
    fully sanitized simulator built at non-default TLB associativity and
    hash-table shape, with the idle reclaim scan mixed in, and requires
    a clean differential check plus a clean final stable sweep.
    """

    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        plan=steps,
        tlb_assoc=st.sampled_from([1, 4, 8]),
        htab_groups=st.sampled_from([256, 1024, 4096]),
        ptes_per_group=st.sampled_from([4, 16]),
    )
    def test_sanitizer_clean_at_nondefault_geometry(
        self, plan, tlb_assoc, htab_groups, ptes_per_group
    ):
        spec = dataclasses.replace(M604_185, tlb_assoc=tlb_assoc)
        sim = Simulator(
            spec,
            KernelConfig.optimized(),
            htab_groups=htab_groups,
            htab_ptes_per_group=ptes_per_group,
            sanitize=True,
        )
        model = _Model(None, sim=sim)
        for step in plan:
            if step[0] == "map":
                model.do_map()
            elif step[0] == "unmap":
                model.do_unmap()
                model.check_unmapped_is_unreachable()
            elif step[0] == "touch":
                model.do_touch(step[1], step[2])
            elif step[0] == "flush":
                model.do_flush_mm()
            elif step[0] == "forkexit":
                model.do_fork_exit()
            sim.kernel.idle_task._reclaim_chunk()
        assert sim.sanitizer.violations == 0, sim.sanitizer.reporter
        assert sim.sanitizer.sweep(stable=True) == 0, sim.sanitizer.reporter


# -- SMP shootdown coherence -------------------------------------------------

#: Below the optimized config's 20-page range-flush cutoff so every
#: munmap takes the per-page search path and feeds the shootdown queue.
SMP_ARENA_PAGES = 12


class _SmpModel:
    """Several tasks pinned round-robin over N CPUs, driven from
    arbitrary CPUs so flushes race remote TLB contents."""

    def __init__(self, n_cpus, strategy):
        config = KernelConfig.optimized().with_changes(
            shootdown_strategy=strategy
        )
        self.sim = Simulator(
            M604_185, config, n_cpus=n_cpus, sanitize=True
        )
        self.kernel = self.sim.kernel
        self.machine = self.sim.machine
        self.tasks = [
            self.kernel.spawn(f"t{i}", data_pages=2)
            for i in range(2 * n_cpus)
        ]
        self.arenas = {}
        for task in self.tasks:
            self.run_on(task)
            self.arenas[task.pid] = self.kernel.sys_mmap(
                task, SMP_ARENA_PAGES * PAGE_SIZE
            )

    def run_on(self, task):
        self.machine.set_current_cpu(task.cpu)
        if self.kernel.current_task is not task:
            self.kernel.switch_to(task)

    def do_touch(self, slot, page, write):
        task = self.tasks[slot % len(self.tasks)]
        self.run_on(task)
        ea = self.arenas[task.pid] + page * PAGE_SIZE
        self.kernel.user_access(task, ea, 1, write)

    def do_remap(self, slot):
        task = self.tasks[slot % len(self.tasks)]
        self.run_on(task)
        self.kernel.sys_munmap(
            task, self.arenas[task.pid], SMP_ARENA_PAGES * PAGE_SIZE
        )
        self.arenas[task.pid] = self.kernel.sys_mmap(
            task, SMP_ARENA_PAGES * PAGE_SIZE
        )

    def do_ctxsw(self, cpu):
        cpu %= self.machine.n_cpus
        peers = [t for t in self.tasks if t.cpu == cpu]
        self.machine.set_current_cpu(cpu)
        current = self.kernel.current_task
        for task in peers:
            if task is not current:
                self.kernel.switch_to(task)
                return

    def do_flush_mm(self, acting_cpu, slot):
        # Flushing from a *different* CPU than the one that owns the
        # task is the cross-CPU case the shootdown protocol exists for.
        task = self.tasks[slot % len(self.tasks)]
        self.machine.set_current_cpu(acting_cpu % self.machine.n_cpus)
        self.kernel.flush.flush_mm(task.mm)


smp_steps = st.lists(
    st.one_of(
        st.tuples(
            st.just("touch"),
            st.integers(0, 7),
            st.integers(0, SMP_ARENA_PAGES - 1),
            st.booleans(),
        ),
        st.tuples(st.just("remap"), st.integers(0, 7)),
        st.tuples(st.just("ctxsw"), st.integers(0, 3)),
        st.tuples(st.just("flushmm"), st.integers(0, 3),
                  st.integers(0, 7)),
    ),
    min_size=1,
    max_size=25,
)


class TestSmpShootdownCoherence:
    """No interleaving of faults, flushes and context switches across
    CPUs lets any CPU translate through a PTE another CPU invalidated.

    The sanitizer's differential check runs on every translation with
    the shootdown-coherence invariant armed, so a stale remote TLB entry
    that ever *serves* a translation fails immediately; the final stable
    sweep additionally proves no such entry is still latent."""

    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        plan=smp_steps,
        n_cpus=st.sampled_from([2, 3, 4]),
        strategy=st.sampled_from(sorted(ShootdownStrategy,
                                        key=lambda s: s.value)),
    )
    def test_no_interleaving_violates_shootdown_coherence(
        self, plan, n_cpus, strategy
    ):
        model = _SmpModel(n_cpus, strategy)
        for step in plan:
            if step[0] == "touch":
                model.do_touch(step[1], step[2], step[3])
            elif step[0] == "remap":
                model.do_remap(step[1])
            elif step[0] == "ctxsw":
                model.do_ctxsw(step[1])
            elif step[0] == "flushmm":
                model.do_flush_mm(step[1], step[2])
        sanitizer = model.sim.sanitizer
        assert sanitizer.violations == 0, sanitizer.reporter
        assert sanitizer.sweep(stable=True) == 0, sanitizer.reporter

    @pytest.mark.parametrize(
        "strategy", sorted(ShootdownStrategy, key=lambda s: s.value)
    )
    def test_kernel_page_flush_is_eager_broadcast(self, strategy):
        # Kernel translations are live on every CPU the instant the
        # flush returns, so no strategy may defer or skip them.
        config = KernelConfig.optimized().with_changes(
            bat_kernel_map=False, shootdown_strategy=strategy
        )
        sim = Simulator(M604_185, config, n_cpus=2, sanitize=True)
        ea = KERNELBASE + 0x300000
        sim.machine.translate(ea)
        sim.kernel.flush.flush_page(sim.kernel.kernel_mm, ea)
        totals = sim.machine.monitor_totals()
        assert totals.get("ipi_sent", 0) == 1
        assert totals.get("ipi_received", 0) == 1
        assert totals.get("shootdown_deferred", 0) == 0
        assert sim.sanitizer.violations == 0, sim.sanitizer.reporter


class TestSmpSingleCpuExactness:
    """``n_cpus=1`` is the pre-refactor machine, bit for bit.

    The totals, ledger breakdown and monitor counters below were
    captured on the single-CPU tree immediately before the SMP refactor
    (commit 3fa6c91) for a deterministic three-process mixed workload;
    the refactored code must reproduce every number exactly."""

    GOLDENS = {
        "604-unopt": {
            "cycles": 1562546,
            "breakdown": {
                "context_switch": 127344, "fault": 94500,
                "flush": 50121, "mem": 35464, "palloc": 1024432,
                "sched": 2520, "syscall": 48900, "tlb_reload": 179265,
            },
            "counters": {
                "context_switch": 42, "dcache_miss": 740,
                "dtlb_miss": 258, "flush_range_search": 12,
                "hash_miss_interrupt": 129, "htab_hit": 144,
                "htab_miss": 129, "htab_reload": 129,
                "htab_search": 273, "icache_miss": 85,
                "itlb_miss": 15, "page_fault_minor": 105,
                "syscall": 12,
            },
        },
        "604-opt": {
            "cycles": 1227174,
            "breakdown": {
                "context_switch": 21792, "fault": 27300, "flush": 504,
                "mem": 35190, "palloc": 1025156, "sched": 2520,
                "syscall": 25140, "tlb_reload": 89572,
            },
            "counters": {
                "bat_translation": 837, "context_switch": 42,
                "dcache_miss": 736, "dtlb_miss": 243,
                "flush_range_lazy": 9, "hash_miss_interrupt": 105,
                "htab_hit": 138, "htab_miss": 105, "htab_reload": 105,
                "htab_search": 243, "icache_miss": 85,
                "page_fault_minor": 105, "syscall": 12,
                "vsid_bump": 9,
            },
        },
    }

    @staticmethod
    def _body(rounds, mmap_pages):
        def gen(t):
            addr = yield ("mmap", mmap_pages * PAGE_SIZE, None, None)
            for r in range(rounds):
                yield ("touch", addr + (r % mmap_pages) * PAGE_SIZE,
                       8, True)
                yield ("touch",
                       0x10000000 + (r % 4) * PAGE_SIZE, 4, True)
                if r % 3 == 2:
                    yield ("yield",)
            yield ("munmap", addr, mmap_pages * PAGE_SIZE)
            addr2 = yield ("mmap", mmap_pages * PAGE_SIZE, None, None)
            yield ("touch", addr2, 8, True)
            yield ("exit", 0)
        return gen

    @pytest.mark.parametrize("name,config", [
        ("604-unopt", KernelConfig.unoptimized()),
        ("604-opt", KernelConfig.optimized()),
    ])
    def test_bit_identical_to_pre_refactor_goldens(self, name, config):
        sim = Simulator(M604_185, config, sanitize=True)
        for i in range(3):
            sim.executive.spawn(f"w{i}", self._body(40, 30))
        sim.run()
        golden = self.GOLDENS[name]
        assert sim.machine.clock.total == golden["cycles"]
        assert dict(sim.machine.clock.breakdown()) == golden["breakdown"]
        assert dict(sim.machine.monitor.snapshot()) == golden["counters"]
        assert sim.sanitizer.violations == 0
