"""System-level property tests (hypothesis).

These are the invariants the paper's optimizations must preserve:

* **Translation safety** — whatever sequence of maps, touches, unmaps
  and flushes runs, the hardware never translates an address to a frame
  other than the one the kernel's page tables currently assign it.  The
  lazy VSID flush leaves stale "valid" entries everywhere; this property
  is exactly why that is sound.
* **Resource conservation** — physical frames are never double-owned.
* **Hash distribution** — the architected hash function's structural
  properties.
"""

import dataclasses

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.errors import SyscallError, TranslationError
from repro.hw.hashtable import primary_hash, secondary_hash
from repro.kernel.config import KernelConfig, VsidPolicy
from repro.params import M604_185, PAGE_SIZE
from repro.sim.simulator import Simulator

CONFIGS = {
    "optimized": KernelConfig.optimized(),
    "unoptimized": KernelConfig.unoptimized(),
    "lazy-tiny-cutoff": KernelConfig.optimized().with_changes(
        range_flush_cutoff=1
    ),
    "search-flush": KernelConfig.optimized().with_changes(
        lazy_vsid_flush=False, vsid_policy=VsidPolicy.PID_SCATTER
    ),
}

#: One mmap arena the state machine plays in.
ARENA_PAGES = 24


class _Model:
    """Drives one simulated process through map/touch/unmap steps while
    shadowing what the memory should look like."""

    def __init__(self, config, sim=None):
        self.sim = sim if sim is not None else Simulator(M604_185, config)
        self.kernel = self.sim.kernel
        self.task = self.kernel.spawn("model", data_pages=4)
        self.kernel.switch_to(self.task)
        self.arena = None

    def do_map(self):
        if self.arena is None:
            self.arena = self.kernel.sys_mmap(
                self.task, ARENA_PAGES * PAGE_SIZE
            )

    def do_unmap(self):
        if self.arena is not None:
            self.kernel.sys_munmap(
                self.task, self.arena, ARENA_PAGES * PAGE_SIZE
            )
            self.arena = None

    def do_touch(self, page, write):
        if self.arena is None:
            return
        ea = self.arena + page * PAGE_SIZE
        self.kernel.user_access(self.task, ea, 1, write)
        # SAFETY: hardware translation must agree with the page table.
        expected = self.task.mm.resident[ea]
        result = self.sim.machine.translate(ea)
        assert result.pa >> 12 == expected

    def do_flush_mm(self):
        self.kernel.flush.flush_mm(self.task.mm)

    def do_fork_exit(self):
        child = self.kernel.sys_fork(self.task)
        self.kernel.switch_to(child)
        self.kernel.sys_exit(child)
        self.kernel.switch_to(self.task)

    def check_unmapped_is_unreachable(self):
        if self.arena is None:
            # The arena's old address must fault, not translate stale.
            probe = 0x40000000
            if self.task.mm.find_vma(probe) is None:
                with pytest.raises(TranslationError):
                    self.kernel.user_access(self.task, probe, 1, False)


steps = st.lists(
    st.one_of(
        st.just(("map",)),
        st.just(("unmap",)),
        st.tuples(
            st.just("touch"), st.integers(0, ARENA_PAGES - 1), st.booleans()
        ),
        st.just(("flush",)),
        st.just(("forkexit",)),
    ),
    min_size=1,
    max_size=30,
)


@pytest.mark.parametrize("config_name", sorted(CONFIGS))
class TestTranslationSafety:
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(plan=steps)
    def test_hardware_never_serves_stale_translations(self, config_name, plan):
        model = _Model(CONFIGS[config_name])
        for step in plan:
            if step[0] == "map":
                model.do_map()
            elif step[0] == "unmap":
                model.do_unmap()
                model.check_unmapped_is_unreachable()
            elif step[0] == "touch":
                model.do_touch(step[1], step[2])
            elif step[0] == "flush":
                model.do_flush_mm()
            elif step[0] == "forkexit":
                model.do_fork_exit()


class TestFrameConservation:
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(plan=steps)
    def test_no_frame_double_owned(self, plan):
        model = _Model(CONFIGS["optimized"])
        kernel = model.kernel
        for step in plan:
            if step[0] == "map":
                model.do_map()
            elif step[0] == "unmap":
                model.do_unmap()
            elif step[0] == "touch":
                model.do_touch(step[1], step[2])
            elif step[0] == "forkexit":
                model.do_fork_exit()
            # Every resident anonymous frame is owned exactly once.
            owners = {}
            for task in kernel.tasks.values():
                for ea, pfn in task.mm.resident.items():
                    if pfn in task.mm.shared_pages:
                        continue
                    assert pfn not in owners, (
                        f"frame {pfn} owned by {owners[pfn]} and "
                        f"({task.pid}, {ea:#x})"
                    )
                    owners[pfn] = (task.pid, ea)
                    assert kernel.palloc.is_allocated(pfn)


class TestHashStructure:
    @given(st.integers(0, 0xFFFFFF), st.integers(0, 0xFFFF))
    def test_secondary_always_differs_from_primary(self, vsid, page):
        assert primary_hash(vsid, page) != secondary_hash(vsid, page)

    @given(st.integers(0, 0xFFFFFF), st.integers(0, 0xFFFF),
           st.integers(0, 0xFFFF))
    def test_same_vsid_different_pages_usually_spread(self, vsid, p1, p2):
        # XOR structure: equal hashes iff equal page indexes.
        if p1 != p2:
            assert primary_hash(vsid, p1) != primary_hash(vsid, p2)

    @given(st.integers(0, 0x7FFFF))
    def test_hash_is_self_inverse_in_vsid(self, value):
        # h(v, p) == h(p, v) for 16-bit values: XOR commutes.
        assert primary_hash(value, 0) == value & 0x7FFFF


class TestLedgerMonotonicity:
    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(plan=steps)
    def test_cycles_never_decrease(self, plan):
        model = _Model(CONFIGS["optimized"])
        last = model.sim.cycles
        for step in plan:
            if step[0] == "map":
                model.do_map()
            elif step[0] == "unmap":
                model.do_unmap()
            elif step[0] == "touch":
                model.do_touch(step[1], step[2])
            elif step[0] == "flush":
                model.do_flush_mm()
            elif step[0] == "forkexit":
                model.do_fork_exit()
            assert model.sim.cycles >= last
            last = model.sim.cycles


class TestGeometryIndependence:
    """The kernel's MMU discipline holds at *any* legal geometry.

    The array-backed rewrite (and the idle-scan geometry fix) must not
    bake the architected defaults into address or slot arithmetic.  This
    drives the same map/touch/unmap/flush/fork state machine through a
    fully sanitized simulator built at non-default TLB associativity and
    hash-table shape, with the idle reclaim scan mixed in, and requires
    a clean differential check plus a clean final stable sweep.
    """

    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        plan=steps,
        tlb_assoc=st.sampled_from([1, 4, 8]),
        htab_groups=st.sampled_from([256, 1024, 4096]),
        ptes_per_group=st.sampled_from([4, 16]),
    )
    def test_sanitizer_clean_at_nondefault_geometry(
        self, plan, tlb_assoc, htab_groups, ptes_per_group
    ):
        spec = dataclasses.replace(M604_185, tlb_assoc=tlb_assoc)
        sim = Simulator(
            spec,
            KernelConfig.optimized(),
            htab_groups=htab_groups,
            htab_ptes_per_group=ptes_per_group,
            sanitize=True,
        )
        model = _Model(None, sim=sim)
        for step in plan:
            if step[0] == "map":
                model.do_map()
            elif step[0] == "unmap":
                model.do_unmap()
                model.check_unmapped_is_unreachable()
            elif step[0] == "touch":
                model.do_touch(step[1], step[2])
            elif step[0] == "flush":
                model.do_flush_mm()
            elif step[0] == "forkexit":
                model.do_fork_exit()
            sim.kernel.idle_task._reclaim_chunk()
        assert sim.sanitizer.violations == 0, sim.sanitizer.reporter
        assert sim.sanitizer.sweep(stable=True) == 0, sim.sanitizer.reporter
