"""Segment register file behaviour."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigError
from repro.hw.segment import SegmentRegisterFile
from repro.params import NUM_SEGMENT_REGISTERS, VSID_MASK


class TestReadWrite:
    def test_initially_zero(self):
        srf = SegmentRegisterFile()
        assert all(srf.read(i) == 0 for i in range(NUM_SEGMENT_REGISTERS))

    def test_write_then_read(self):
        srf = SegmentRegisterFile()
        srf.write(3, 0xABCDEF)
        assert srf.read(3) == 0xABCDEF

    def test_rejects_bad_index(self):
        srf = SegmentRegisterFile()
        with pytest.raises(ConfigError):
            srf.write(16, 0)

    def test_rejects_oversized_vsid(self):
        srf = SegmentRegisterFile()
        with pytest.raises(ConfigError):
            srf.write(0, VSID_MASK + 1)


class TestContextLoad:
    def test_load_context_sets_all_sixteen(self):
        srf = SegmentRegisterFile()
        vsids = list(range(100, 116))
        srf.load_context(vsids)
        assert srf.snapshot() == tuple(vsids)

    def test_load_context_rejects_wrong_length(self):
        srf = SegmentRegisterFile()
        with pytest.raises(ConfigError):
            srf.load_context([1, 2, 3])

    def test_vsid_for_uses_top_bits(self):
        srf = SegmentRegisterFile()
        srf.load_context(list(range(16)))
        assert srf.vsid_for(0x00000000) == 0
        assert srf.vsid_for(0x10000000) == 1
        assert srf.vsid_for(0xC0001234) == 12
        assert srf.vsid_for(0xFFFFFFFF) == 15

    @given(st.integers(0, 0xFFFFFFFF))
    def test_vsid_for_matches_segment_number(self, ea):
        srf = SegmentRegisterFile()
        srf.load_context([v * 7 for v in range(16)])
        assert srf.vsid_for(ea) == ((ea >> 28) & 0xF) * 7
