"""Pipes and the syscall cost layer."""

import pytest

from repro.errors import SyscallError
from repro.kernel.config import KernelConfig
from repro.kernel.syscall import (
    KERNEL_FOOTPRINT,
    KERNEL_HOT_DATA_PAGES,
    KERNEL_HOT_TEXT_PAGES,
    entry_exit_cycles,
)
from repro.params import M604_185, PAGE_SIZE, SYSCALL_FAST_CYCLES, SYSCALL_SLOW_CYCLES
from repro.sim.simulator import Simulator


@pytest.fixture
def sim():
    return Simulator(M604_185, KernelConfig.optimized())


@pytest.fixture
def task(sim):
    task = sim.kernel.spawn("p", data_pages=8)
    sim.kernel.switch_to(task)
    return task


class TestEntryCosts:
    def test_fast_vs_slow(self):
        assert entry_exit_cycles(True) == SYSCALL_FAST_CYCLES
        assert entry_exit_cycles(False) == SYSCALL_SLOW_CYCLES
        assert SYSCALL_SLOW_CYCLES > 5 * SYSCALL_FAST_CYCLES

    def test_footprint_table_within_hot_sets(self):
        for text_pages, _tl, data_pages, _dl in KERNEL_FOOTPRINT.values():
            assert all(p < KERNEL_HOT_TEXT_PAGES for p in text_pages)
            assert all(p < KERNEL_HOT_DATA_PAGES for p in data_pages)

    def test_getpid_returns_pid_and_charges(self, sim, task):
        before = sim.machine.clock.total
        assert sim.kernel.sys_getpid(task) == task.pid
        assert sim.machine.clock.total > before
        assert sim.machine.monitor["syscall"] == 1


class TestPipes:
    def test_create_allocates_buffer(self, sim, task):
        ident = sim.kernel.sys_pipe(task)
        pipe = sim.kernel.pipes.get(ident)
        assert sim.kernel.palloc.is_allocated(pipe.buffer_pfn)

    def test_write_then_read(self, sim, task):
        ident = sim.kernel.sys_pipe(task)
        written, blocked = sim.kernel.sys_pipe_write(task, ident, 100)
        assert (written, blocked) == (100, False)
        count, blocked = sim.kernel.sys_pipe_read(task, ident, 100)
        assert (count, blocked) == (100, False)

    def test_read_empty_would_block(self, sim, task):
        ident = sim.kernel.sys_pipe(task)
        count, blocked = sim.kernel.sys_pipe_read(task, ident, 1)
        assert blocked and count == 0

    def test_write_full_would_block(self, sim, task):
        ident = sim.kernel.sys_pipe(task)
        written, blocked = sim.kernel.sys_pipe_write(task, ident, PAGE_SIZE)
        assert written == PAGE_SIZE and not blocked
        _, blocked = sim.kernel.sys_pipe_write(task, ident, 1)
        assert blocked

    def test_partial_write_when_nearly_full(self, sim, task):
        ident = sim.kernel.sys_pipe(task)
        sim.kernel.sys_pipe_write(task, ident, PAGE_SIZE - 10)
        written, blocked = sim.kernel.sys_pipe_write(task, ident, 100)
        assert written == 10 and not blocked

    def test_write_wakes_sleeping_reader(self, sim, task):
        kernel = sim.kernel
        ident = kernel.sys_pipe(task)
        reader = kernel.spawn("reader")
        from repro.kernel.task import TaskState

        reader.state = TaskState.SLEEPING
        kernel.pipes.get(ident).readers_waiting.append(reader)
        kernel.sys_pipe_write(task, ident, 1)
        assert reader.state is TaskState.READY

    def test_unknown_pipe_raises(self, sim, task):
        with pytest.raises(SyscallError):
            sim.kernel.sys_pipe_read(task, 999, 1)

    def test_close_frees_buffer(self, sim, task):
        ident = sim.kernel.sys_pipe(task)
        pfn = sim.kernel.pipes.get(ident).buffer_pfn
        sim.kernel.pipes.close(ident)
        assert not sim.kernel.palloc.is_allocated(pfn)

    def test_charge_entry_false_skips_syscall_cost(self, sim, task):
        kernel = sim.kernel
        ident = kernel.sys_pipe(task)
        kernel.sys_pipe_write(task, ident, 1)
        before = sim.machine.monitor["syscall"]
        kernel.sys_pipe_read(task, ident, 1, charge_entry=False)
        assert sim.machine.monitor["syscall"] == before

    def test_copy_multiplier_multiplies_copy_cost(self):
        def write_cost(multiplier):
            config = KernelConfig.optimized().with_changes(
                pipe_copy_multiplier=multiplier
            )
            sim = Simulator(M604_185, config)
            task = sim.kernel.spawn("p", data_pages=8)
            sim.kernel.switch_to(task)
            ident = sim.kernel.sys_pipe(task)
            start = sim.machine.clock.snapshot()
            sim.kernel.sys_pipe_write(task, ident, PAGE_SIZE)
            return sim.machine.clock.since(start)

        assert write_cost(3) > write_cost(1)

    def test_pipe_op_extra_cycles_charged_as_ipc(self):
        config = KernelConfig.optimized().with_changes(
            pipe_op_extra_cycles=5000
        )
        sim = Simulator(M604_185, config)
        task = sim.kernel.spawn("p", data_pages=8)
        sim.kernel.switch_to(task)
        ident = sim.kernel.sys_pipe(task)
        sim.kernel.sys_pipe_write(task, ident, 1)
        assert sim.breakdown().get("ipc", 0) == 5000
