"""Tests for the longitudinal bench ledger (``obs/history.py``)."""

import json

import pytest

from repro.obs import history, metrics


def bench_record(exp_id="E1", cycles=1000, shape=True, top="tlb-reload"):
    """A minimal valid schema-4 bench record with a derived block."""
    return {
        "id": exp_id,
        "title": f"experiment {exp_id}",
        "machine": "prototype",
        "machines": ["prototype"],
        "simulators": 1,
        "total_cycles": cycles,
        "shape_holds": shape,
        "measured": {"cycles": cycles},
        "paper": {"claim": "qualitative"},
        "attribution": {top: cycles},
        "derived": {
            "attribution": {"top": top, "shares": {top: 1.0}},
            "reload": {"p99": 42},
            "counters": {"tlb_miss": 7},
        },
    }


def bench_doc(records, timings=None):
    return metrics.bench_doc(records, timings=timings)


class TestHeadline:
    def test_pulls_derived_metrics(self):
        head = history.headline(bench_record())
        assert head == {
            "top_category": "tlb-reload",
            "top_share": 1.0,
            "reload_p99": 42,
            "tlb_miss": 7,
        }

    def test_absent_sections_yield_none(self):
        record = bench_record()
        record["derived"] = {}
        head = history.headline(record)
        assert set(head) == set(history.HEADLINE_FIELDS)
        assert all(value is None for value in head.values())


class TestEntryFromDoc:
    def test_builds_validated_entry(self):
        doc = bench_doc(
            [bench_record("E1", 1000), bench_record("E2", 2000, shape=False)],
            timings={"E1": 1.5, "E2": 2.5},
        )
        entry = history.entry_from_doc(
            doc, label="PR7", sha="abc123", parent="def456"
        )
        assert entry["schema_version"] == history.HISTORY_SCHEMA
        assert entry["bench_schema"] == metrics.BENCH_SCHEMA
        assert entry["label"] == "PR7"
        assert entry["git"] == {"sha": "abc123", "parent": "def456"}
        assert entry["experiments"]["E1"]["total_cycles"] == 1000
        assert entry["experiments"]["E2"]["shape_holds"] is False
        assert entry["experiments"]["E1"]["headline"]["tlb_miss"] == 7
        assert entry["summary"] == {
            "experiments": 2, "shapes_holding": 1, "total_cycles": 3000,
        }
        assert entry["wall"] == {"E1": 1.5, "E2": 2.5}
        assert entry["verdict"] is None

    def test_verdict_is_summarized(self):
        doc = bench_doc([bench_record()])
        entry = history.entry_from_doc(
            doc, verdict={"ok": False, "regressions": 2, "warnings": 1,
                          "findings": ["noise"]},
        )
        assert entry["verdict"] == {
            "ok": False, "regressions": 2, "warnings": 1,
        }

    def test_rejects_invalid_doc(self):
        doc = bench_doc([bench_record()])
        doc["summary"]["total_cycles"] = 0
        with pytest.raises(ValueError, match="total_cycles"):
            history.entry_from_doc(doc)


def make_entry(**kwargs):
    cycles = kwargs.pop("cycles", 1000)
    timings = kwargs.pop("timings", {"E1": 1.0})
    doc = bench_doc([bench_record(cycles=cycles)], timings=timings)
    return history.entry_from_doc(doc, **kwargs)


class TestValidateHistoryEntry:
    def test_counts_returned(self):
        counts = history.validate_history_entry(make_entry())
        assert counts == {
            "experiments": 1, "shapes_holding": 1, "total_cycles": 1000,
        }

    def test_rejects_wrong_schema(self):
        entry = make_entry()
        entry["schema_version"] = history.HISTORY_SCHEMA + 1
        with pytest.raises(ValueError, match="schema_version"):
            history.validate_history_entry(entry)

    def test_rejects_nonpositive_cycles(self):
        entry = make_entry()
        entry["experiments"]["E1"]["total_cycles"] = 0
        entry["summary"]["total_cycles"] = 0
        with pytest.raises(ValueError, match="positive int"):
            history.validate_history_entry(entry)

    def test_rejects_missing_headline_field(self):
        entry = make_entry()
        del entry["experiments"]["E1"]["headline"]["tlb_miss"]
        with pytest.raises(ValueError, match="tlb_miss"):
            history.validate_history_entry(entry)

    def test_rejects_summary_mismatch(self):
        entry = make_entry()
        entry["summary"]["total_cycles"] += 1
        with pytest.raises(ValueError, match="summary.total_cycles"):
            history.validate_history_entry(entry)

    def test_rejects_negative_wall(self):
        entry = make_entry()
        entry["wall"]["E1"] = -0.5
        with pytest.raises(ValueError, match="wall"):
            history.validate_history_entry(entry)

    def test_rejects_malformed_verdict(self):
        entry = make_entry()
        entry["verdict"] = {"regressions": 1}
        with pytest.raises(ValueError, match="verdict"):
            history.validate_history_entry(entry)

    def test_rejects_bad_experiment_id(self):
        entry = make_entry()
        entry["experiments"]["bogus"] = entry["experiments"]["E1"]
        with pytest.raises(ValueError, match="bogus"):
            history.validate_history_entry(entry)


class TestSerialization:
    def test_dumps_is_one_compact_sorted_line(self):
        entry = make_entry(label="PR7")
        line = history.dumps_entry(entry)
        assert line.endswith("\n")
        assert line.count("\n") == 1
        assert ": " not in line and ", " not in line
        assert json.loads(line) == entry

    def test_deterministic_view_drops_wall_only(self):
        fast = make_entry(timings={"E1": 1.0})
        slow = make_entry(timings={"E1": 9.0})
        assert fast["wall"] != slow["wall"]
        assert history.deterministic_view(fast) == \
            history.deterministic_view(slow)
        assert "wall" not in history.deterministic_view(fast)


class TestAppendLoad:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "BENCH_history.jsonl"
        first = make_entry(label="PR6", cycles=1000)
        second = make_entry(label="PR7", cycles=900)
        assert history.append_entry(path, first) == 1
        assert history.append_entry(path, second) == 2
        entries = history.load_history(path)
        assert [entry["label"] for entry in entries] == ["PR6", "PR7"]
        assert entries[0] == first
        assert entries[1] == second

    def test_append_is_append_only(self, tmp_path):
        path = tmp_path / "BENCH_history.jsonl"
        history.append_entry(path, make_entry(label="PR6"))
        before = path.read_text()
        history.append_entry(path, make_entry(label="PR7"))
        assert path.read_text().startswith(before)

    def test_append_rejects_invalid_entry(self, tmp_path):
        path = tmp_path / "BENCH_history.jsonl"
        entry = make_entry()
        entry["summary"]["experiments"] = 5
        with pytest.raises(ValueError):
            history.append_entry(path, entry)
        assert not path.exists()

    def test_load_reports_line_numbers(self, tmp_path):
        path = tmp_path / "BENCH_history.jsonl"
        path.write_text(history.dumps_entry(make_entry()) + "{broken\n")
        with pytest.raises(ValueError, match=r":2: not JSON"):
            history.load_history(path)

    def test_load_rejects_invalid_line(self, tmp_path):
        path = tmp_path / "BENCH_history.jsonl"
        bad = make_entry()
        bad["experiments"]["E1"]["shape_holds"] = "yes"
        path.write_text(json.dumps(bad) + "\n")
        with pytest.raises(ValueError, match=r":1: .*shape_holds"):
            history.load_history(path)

    def test_load_skips_blank_lines(self, tmp_path):
        path = tmp_path / "BENCH_history.jsonl"
        path.write_text("\n" + history.dumps_entry(make_entry()) + "\n")
        assert len(history.load_history(path)) == 1
