"""Flush strategies (§7): search vs lazy, and the safety invariant.

The load-bearing invariant of lazy flushing: after *any* flush of a
range, no translation for that range is reachable through the hardware —
even though the lazy path leaves "valid" zombie entries in the TLB and
hash table.
"""

import pytest

from repro.errors import TranslationError
from repro.kernel.config import KernelConfig, VsidPolicy
from repro.kernel.vsid import kernel_vsids
from repro.params import KERNELBASE, M604_185, PAGE_SIZE
from repro.sim.simulator import Simulator


def boot_search():
    return Simulator(
        M604_185,
        KernelConfig.optimized().with_changes(
            lazy_vsid_flush=False, vsid_policy=VsidPolicy.PID_SCATTER
        ),
    )


def boot_lazy(cutoff=20):
    return Simulator(
        M604_185,
        KernelConfig.optimized().with_changes(range_flush_cutoff=cutoff),
    )


def map_and_touch(sim, pages):
    kernel = sim.kernel
    task = kernel.spawn("t", data_pages=4)
    kernel.switch_to(task)
    addr = kernel.sys_mmap(task, pages * PAGE_SIZE)
    for page in range(pages):
        kernel.user_access(task, addr + page * PAGE_SIZE, 2, True)
    return task, addr


class TestSearchFlush:
    def test_flush_page_invalidates_htab_and_tlb(self):
        sim = boot_search()
        task, addr = map_and_touch(sim, 1)
        mm = task.mm
        vsid = mm.user_vsids[(addr >> 28) & 0xF]
        page_index = (addr >> 12) & 0xFFFF
        assert sim.machine.htab.search(vsid, page_index).found
        sim.kernel.flush.flush_page(mm, addr)
        assert not sim.machine.htab.search(vsid, page_index).found
        assert sim.machine.dtlb.peek(vsid, page_index) is None

    def test_flush_range_pays_per_page(self):
        sim = boot_search()
        task, addr = map_and_touch(sim, 4)
        small = sim.measure_cycles(
            lambda: sim.kernel.flush.flush_range(task.mm, addr,
                                                 addr + 4 * PAGE_SIZE)
        )
        big = sim.measure_cycles(
            lambda: sim.kernel.flush.flush_range(task.mm, addr,
                                                 addr + 64 * PAGE_SIZE)
        )
        assert big > 10 * small

    def test_flush_counts_monitor(self):
        sim = boot_search()
        task, addr = map_and_touch(sim, 2)
        sim.kernel.flush.flush_range(task.mm, addr, addr + 2 * PAGE_SIZE)
        assert sim.machine.monitor["flush_range_search"] >= 1


class TestLazyFlush:
    def test_large_range_bumps_vsids(self):
        sim = boot_lazy(cutoff=20)
        task, addr = map_and_touch(sim, 30)
        old_vsids = list(task.mm.user_vsids)
        sim.kernel.flush.flush_range(task.mm, addr, addr + 30 * PAGE_SIZE)
        assert task.mm.user_vsids != old_vsids
        assert sim.machine.monitor["vsid_bump"] >= 1

    def test_small_range_still_searches(self):
        sim = boot_lazy(cutoff=20)
        task, addr = map_and_touch(sim, 4)
        old_vsids = list(task.mm.user_vsids)
        sim.kernel.flush.flush_range(task.mm, addr, addr + 4 * PAGE_SIZE)
        assert task.mm.user_vsids == old_vsids

    def test_lazy_flush_is_cheap(self):
        lazy = boot_lazy()
        task, addr = map_and_touch(lazy, 64)
        lazy_cost = lazy.measure_cycles(
            lambda: lazy.kernel.flush.flush_range(
                task.mm, addr, addr + 64 * PAGE_SIZE)
        )
        search = boot_search()
        task2, addr2 = map_and_touch(search, 64)
        search_cost = search.measure_cycles(
            lambda: search.kernel.flush.flush_range(
                task2.mm, addr2, addr2 + 64 * PAGE_SIZE)
        )
        assert search_cost > 20 * lazy_cost

    def test_segment_registers_reloaded_for_current_task(self):
        sim = boot_lazy()
        task, addr = map_and_touch(sim, 30)
        sim.kernel.flush.flush_range(task.mm, addr, addr + 30 * PAGE_SIZE)
        assert (
            sim.machine.segments.snapshot()[:12]
            == tuple(task.mm.user_vsids)
        )

    def test_zombies_left_valid_in_htab(self):
        """The defining §7 behaviour: stale PTEs stay valid-but-dead."""
        sim = boot_lazy()
        task, addr = map_and_touch(sim, 30)
        live_before, zombie_before = sim.kernel.htab_zombie_stats()
        sim.kernel.flush.flush_range(task.mm, addr, addr + 30 * PAGE_SIZE)
        live_after, zombie_after = sim.kernel.htab_zombie_stats()
        assert zombie_after > zombie_before
        assert live_after < live_before


class TestSafetyInvariant:
    """No stale translation is ever served after a flush, lazy or not."""

    @pytest.mark.parametrize("make_sim", [boot_search, boot_lazy])
    def test_stale_mapping_unreachable_after_munmap(self, make_sim):
        sim = make_sim()
        kernel = sim.kernel
        task, addr = map_and_touch(sim, 30)
        # Record the physical frame the first page mapped to.
        old_pfn = task.mm.resident[addr]
        kernel.sys_munmap(task, addr, 30 * PAGE_SIZE)
        # Remap the same address range; fault the page back in.
        new_addr = kernel.sys_mmap(task, 30 * PAGE_SIZE, addr=addr)
        assert new_addr == addr
        kernel.user_access(task, addr, 1, True)
        new_pfn = task.mm.resident[addr]
        # The hardware must translate to the NEW frame.
        result = sim.machine.translate(addr)
        assert result.pa >> 12 == new_pfn

    @pytest.mark.parametrize("make_sim", [boot_search, boot_lazy])
    def test_unmapped_address_faults(self, make_sim):
        sim = make_sim()
        kernel = sim.kernel
        task, addr = map_and_touch(sim, 30)
        kernel.sys_munmap(task, addr, 30 * PAGE_SIZE)
        with pytest.raises(TranslationError):
            kernel.user_access(task, addr, 1, False)

    def test_flush_everything(self):
        sim = boot_lazy()
        task, addr = map_and_touch(sim, 8)
        sim.kernel.flush.flush_everything()
        assert sim.machine.htab.valid_entries() == 0
        assert len(sim.machine.dtlb) == 0
        # Access still works afterwards (refault path).
        sim.kernel.user_access(task, addr, 1, False)


class TestFlushTargeting:
    """Per-page flushes must hit exactly the context they were asked for."""

    def test_kernel_page_flush_invalidates_htab_and_tlb(self):
        # Without the BAT map, kernel pages sit in the TLB and hash table
        # like any others, and flushing one must actually remove it (the
        # kernel-EA path used to resolve no VSID and skip the hash table).
        sim = Simulator(
            M604_185,
            KernelConfig.optimized().with_changes(bat_kernel_map=False),
        )
        kernel = sim.kernel
        ea = KERNELBASE + 0x300000
        sim.machine.translate(ea)
        vsid = kernel_vsids()[0]
        page_index = (ea >> 12) & 0xFFFF
        assert sim.machine.htab.peek(vsid, page_index) is not None
        assert sim.machine.dtlb.peek(vsid, page_index) is not None
        kernel.flush.flush_page(kernel.kernel_mm, ea)
        assert sim.machine.htab.peek(vsid, page_index) is None
        assert sim.machine.dtlb.peek(vsid, page_index) is None

    def test_flush_page_spares_other_context_same_page_index(self):
        # tlbie by EA alone would also kill the *other* process's cached
        # translation of the same page index; the flush must pass the
        # owning VSID so only the requested context loses its entry.
        sim = boot_search()
        kernel = sim.kernel
        t1 = kernel.spawn("a", data_pages=4)
        kernel.switch_to(t1)
        addr = kernel.sys_mmap(t1, PAGE_SIZE)
        kernel.user_access(t1, addr, 1, True)
        t2 = kernel.spawn("b", data_pages=4)
        kernel.switch_to(t2)
        assert kernel.sys_mmap(t2, PAGE_SIZE, addr=addr) == addr
        kernel.user_access(t2, addr, 1, True)
        page_index = (addr >> 12) & 0xFFFF
        v1 = t1.mm.user_vsids[(addr >> 28) & 0xF]
        v2 = t2.mm.user_vsids[(addr >> 28) & 0xF]
        assert sim.machine.dtlb.peek(v1, page_index) is not None
        assert sim.machine.dtlb.peek(v2, page_index) is not None
        kernel.flush.flush_page(t1.mm, addr)
        assert sim.machine.dtlb.peek(v1, page_index) is None
        assert sim.machine.htab.peek(v1, page_index) is None
        assert sim.machine.dtlb.peek(v2, page_index) is not None
        assert sim.machine.htab.peek(v2, page_index) is not None


class TestGlobalFlushProtocol:
    """flush_everything and counter wrap follow one coherent protocol."""

    def test_flush_everything_renumbers_contexts(self):
        sim = boot_lazy()
        kernel = sim.kernel
        task, addr = map_and_touch(sim, 8)
        # Advance the task off context 1 so renumbering is observable.
        kernel.flush.flush_mm(task.mm)
        bumped = list(task.mm.user_vsids)
        kernel.flush.flush_everything()
        allocator = kernel.vsid_allocator
        # A direct flush_everything must restart the counter and
        # renumber, exactly like the wrap path (it used to only clear
        # the zombie set, leaving retired numbers unreusable).
        assert task.mm.user_vsids != bumped
        assert not any(allocator.is_live(v) for v in bumped)
        assert allocator.zombie_vsids() == frozenset()
        assert (
            sim.machine.segments.snapshot()[:12]
            == tuple(task.mm.user_vsids)
        )
        kernel.user_access(task, addr, 1, False)

    def test_counter_wrap_during_bump_keeps_context_coherent(self):
        sim = boot_lazy()
        kernel = sim.kernel
        task, addr = map_and_touch(sim, 4)
        allocator = kernel.vsid_allocator
        # Force the next allocation to wrap mid-bump: the wrap handler
        # renumbers every context EXCEPT the one whose bump is in
        # flight, whose fresh VSIDs come from the bump itself.  Without
        # that exclusion the wrap-time renumbering was immediately
        # overwritten, leaking a live context nobody owned.
        allocator._next_context = allocator.max_context + 1
        kernel.flush.flush_mm(task.mm)
        assert all(allocator.is_live(v) for v in task.mm.user_vsids)
        # Exactly the kernel's 4 VSIDs plus the task's 12 are live.
        assert allocator.live_count() == 4 + 12
        kernel.user_access(task, addr, 1, False)
