"""L1/L2 cache model: hits, LRU, write-back, inhibition, hierarchy."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError
from repro.hw.cache import Cache
from repro.params import L1_HIT_CYCLES


def l1(mem=50, word=10, next_level=None):
    return Cache(1024, 2, mem, line_size=32, word_cycles=word,
                 next_level=next_level)


class TestGeometry:
    def test_rejects_bad_geometry(self):
        with pytest.raises(ConfigError):
            Cache(1000, 3, 50)

    def test_sets(self):
        cache = Cache(16 * 1024, 4, 50)
        assert cache.num_sets == 16 * 1024 // (4 * 32)

    def test_address_mapping(self):
        cache = l1()
        assert cache.line_address(0) == 0
        assert cache.line_address(31) == 0
        assert cache.line_address(32) == 1
        assert cache.set_index(cache.num_sets) == 0
        assert cache.tag(cache.num_sets) == 1


class TestAccess:
    def test_miss_costs_memory(self):
        cache = l1(mem=50)
        assert cache.access(0) == 50
        assert cache.stats.misses == 1

    def test_hit_costs_one(self):
        cache = l1()
        cache.access(0)
        assert cache.access(0) == L1_HIT_CYCLES
        assert cache.access(16) == L1_HIT_CYCLES  # same line
        assert cache.stats.hits == 2

    def test_inhibited_bypasses(self):
        cache = l1(mem=50, word=10)
        assert cache.access(0, inhibited=True) == 10
        assert cache.stats.bypasses == 1
        # Nothing was allocated.
        assert not cache.contains(0)

    def test_write_marks_dirty_and_writeback_charged(self):
        cache = l1(mem=50)
        cache.access(0, write=True)
        # Fill the set until the dirty line is evicted (2-way, 16 sets).
        cache.access(0 + 512)   # same set (num_sets=16 -> 16*32=512)
        cost = cache.access(0 + 1024)  # evicts line 0 (dirty)
        assert cache.stats.writebacks == 1
        assert cost == 50 + 25

    def test_lru_order(self):
        cache = l1()
        cache.access(0)
        cache.access(512)
        cache.access(0)  # refresh
        cache.access(1024)  # evicts 512
        assert cache.contains(0)
        assert not cache.contains(512)


class TestHierarchy:
    def test_l1_miss_fills_from_l2(self):
        l2 = Cache(4096, 4, mem_cycles=50, hit_cycles=12)
        top = l1(mem=50, next_level=l2)
        first = top.access(0)
        assert first == 50  # L2 missed too -> memory
        assert l2.stats.misses == 1
        # Evict from L1, re-access: L2 hit this time.
        top.access(512)
        top.access(1024)
        cost = top.access(0)
        assert cost == 12
        assert l2.stats.hits >= 1

    def test_l1_dirty_victim_written_to_l2(self):
        l2 = Cache(4096, 4, mem_cycles=50, hit_cycles=12)
        top = l1(mem=50, next_level=l2)
        top.access(0, write=True)
        top.access(512)
        top.access(1024)  # evicts dirty line 0 -> write to L2
        assert top.stats.writebacks == 1
        assert l2.contains(0)


class TestMaintenance:
    def test_flush_all_clears_and_counts_writebacks(self):
        cache = l1()
        cache.access(0, write=True)
        cache.access(64)
        cycles = cache.flush_all()
        assert len(cache) == 0
        assert cache.stats.writebacks == 1
        assert cycles == 25

    def test_invalidate_page_drops_page_lines(self):
        cache = Cache(32 * 1024, 4, 50)
        cache.access(0)
        cache.access(4096)
        cache.invalidate_page(0)
        assert not cache.contains(0)
        assert cache.contains(4096)

    def test_occupancy_and_resident(self):
        cache = l1()
        cache.access(0, write=True)
        assert 0 < cache.occupancy() < 1
        resident = list(cache.resident_lines())
        assert len(resident) == 1
        assert resident[0][2] is True  # dirty


class TestProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(0, 8191), min_size=1, max_size=300))
    def test_capacity_invariant(self, addresses):
        cache = l1()
        for address in addresses:
            cache.access(address)
            assert len(cache) <= 32  # 1024B / 32B lines
            for lines in cache._sets:
                assert len(lines) <= 2

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(0, 2047), min_size=1, max_size=100))
    def test_most_recent_access_always_resident(self, addresses):
        cache = l1()
        for address in addresses:
            cache.access(address)
            assert cache.contains(address)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 4095), st.booleans()),
                    min_size=1, max_size=200))
    def test_hits_plus_misses_equals_accesses(self, operations):
        cache = l1()
        for address, write in operations:
            cache.access(address, write=write)
        assert cache.stats.hits + cache.stats.misses == len(operations)
