"""The 604 hardware table-walk engine and its cost accounting."""

from repro.hw.cache import Cache
from repro.hw.hashtable import HashedPageTable
from repro.hw.pte import HashPte
from repro.hw.walker import (
    HardwareWalker,
    PTEG_BYTES,
    WALK_BASE_CYCLES,
    WALK_CYCLES_PER_REF,
)


def make_walker(cache_ptes=True, groups=64):
    htab = HashedPageTable(groups=groups)
    dcache = Cache(32 * 1024, 4, mem_cycles=52, word_cycles=11)
    walker = HardwareWalker(htab, dcache, htab_base_pa=0x100000,
                           cache_ptes=cache_ptes)
    return walker, htab, dcache


class TestWalkCosts:
    def test_paper_cycle_ceiling_constants(self):
        # 8 + 16 * 7 = 120, the paper's measured hardware-walk maximum.
        assert WALK_BASE_CYCLES + 16 * WALK_CYCLES_PER_REF == 120

    def test_found_walk_returns_pte(self):
        walker, htab, _ = make_walker()
        htab.insert(HashPte(vsid=1, page_index=0x10, rpn=9))
        outcome = walker.walk(1, 0x10)
        assert outcome.found and outcome.pte.rpn == 9

    def test_miss_walk_probes_both_buckets(self):
        walker, _, _ = make_walker()
        outcome = walker.walk(1, 0x10)
        assert not outcome.found
        assert outcome.mem_refs == 16

    def test_walk_charges_cache_accesses(self):
        walker, _, dcache = make_walker()
        walker.walk(1, 0x10)
        assert dcache.stats.misses + dcache.stats.hits == 16

    def test_uncached_walk_bypasses_cache(self):
        walker, _, dcache = make_walker(cache_ptes=False)
        walker.walk(1, 0x10)
        assert dcache.stats.bypasses == 16
        assert len(dcache) == 0

    def test_warm_walk_cheaper_than_cold(self):
        walker, htab, _ = make_walker()
        htab.insert(HashPte(vsid=1, page_index=0x10, rpn=9))
        cold = walker.walk(1, 0x10).cycles
        warm = walker.walk(1, 0x10).cycles
        assert warm < cold

    def test_pte_physical_address_layout(self):
        walker, _, _ = make_walker()
        assert walker.pte_physical_address(0, 0) == 0x100000
        assert walker.pte_physical_address(1, 0) == 0x100000 + PTEG_BYTES
        assert walker.pte_physical_address(0, 3) == 0x100000 + 24


class TestInsertInvalidate:
    def test_insert_returns_event_with_cycles(self):
        walker, htab, _ = make_walker()
        event = walker.insert(HashPte(vsid=1, page_index=0x10, rpn=9))
        assert event["cycles"] > 0
        assert not event["evicted"]
        assert htab.search(1, 0x10).found

    def test_invalidate_found(self):
        walker, htab, _ = make_walker()
        walker.insert(HashPte(vsid=1, page_index=0x10, rpn=9))
        event = walker.invalidate(1, 0x10)
        assert event["found"] and event["cycles"] > 0
        assert not htab.search(1, 0x10).found

    def test_invalidate_missing_pays_full_search(self):
        walker, _, _ = make_walker()
        event = walker.invalidate(1, 0x10)
        assert not event["found"]
        assert event["mem_refs"] == 16
