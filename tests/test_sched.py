"""Run queue, timers, and the context-switch path."""

import pytest

from repro.errors import KernelPanic
from repro.kernel.config import KernelConfig
from repro.kernel.task import TaskState
from repro.params import M604_185
from repro.sim.simulator import Simulator


@pytest.fixture
def sim():
    return Simulator(M604_185, KernelConfig.optimized())


class TestRunQueue:
    def test_fifo_order(self, sim):
        sched = sim.kernel.scheduler
        tasks = [sim.kernel.spawn(f"t{i}") for i in range(3)]
        for task in tasks:
            sched.enqueue(task)
        assert sched.pick_next() is tasks[0]
        assert sched.pick_next() is tasks[1]

    def test_pick_next_empty(self, sim):
        assert sim.kernel.scheduler.pick_next() is None

    def test_exited_tasks_skipped(self, sim):
        sched = sim.kernel.scheduler
        first = sim.kernel.spawn("a")
        second = sim.kernel.spawn("b")
        sched.enqueue(first)
        sched.enqueue(second)
        first.state = TaskState.EXITED
        assert sched.pick_next() is second

    def test_enqueue_exited_panics(self, sim):
        task = sim.kernel.spawn("a")
        task.state = TaskState.EXITED
        with pytest.raises(KernelPanic):
            sim.kernel.scheduler.enqueue(task)

    def test_dequeue_removes(self, sim):
        sched = sim.kernel.scheduler
        task = sim.kernel.spawn("a")
        sched.enqueue(task)
        sched.dequeue(task)
        assert sched.pick_next() is None

    def test_runnable_count(self, sim):
        sched = sim.kernel.scheduler
        assert sched.runnable_count() == 0
        sched.enqueue(sim.kernel.spawn("a"))
        assert sched.runnable_count() == 1


class TestTimers:
    def test_sleep_and_expire(self, sim):
        sched = sim.kernel.scheduler
        task = sim.kernel.spawn("a")
        sched.sleep_until(task, 1000)
        assert task.state is TaskState.SLEEPING
        assert sched.next_wakeup() == 1000
        woken = sched.expire_timers(1000)
        assert woken == [task]
        assert task.state is TaskState.READY

    def test_expire_only_due_timers(self, sim):
        sched = sim.kernel.scheduler
        early = sim.kernel.spawn("a")
        late = sim.kernel.spawn("b")
        sched.sleep_until(early, 100)
        sched.sleep_until(late, 200)
        assert sched.expire_timers(150) == [early]
        assert sched.next_wakeup() == 200

    def test_exited_sleepers_dropped(self, sim):
        sched = sim.kernel.scheduler
        task = sim.kernel.spawn("a")
        sched.sleep_until(task, 100)
        task.state = TaskState.EXITED
        assert sched.next_wakeup() is None


class TestContextSwitch:
    def test_switch_loads_segment_registers(self, sim):
        task = sim.kernel.spawn("a")
        sim.kernel.switch_to(task)
        assert (
            sim.machine.segments.snapshot()[:12]
            == tuple(task.mm.user_vsids)
        )
        assert sim.kernel.current_task is task
        assert task.state is TaskState.RUNNING

    def test_switch_to_self_is_free(self, sim):
        task = sim.kernel.spawn("a")
        sim.kernel.switch_to(task)
        before = sim.machine.clock.total
        assert sim.kernel.switch_to(task) == 0
        assert sim.machine.clock.total == before

    def test_previous_task_becomes_ready(self, sim):
        first = sim.kernel.spawn("a")
        second = sim.kernel.spawn("b")
        sim.kernel.switch_to(first)
        sim.kernel.switch_to(second)
        assert first.state is TaskState.READY

    def test_switch_to_exited_panics(self, sim):
        task = sim.kernel.spawn("a")
        task.state = TaskState.EXITED
        with pytest.raises(KernelPanic):
            sim.kernel.switch_to(task)

    def test_switch_counts_monitor(self, sim):
        first = sim.kernel.spawn("a")
        second = sim.kernel.spawn("b")
        sim.kernel.switch_to(first)
        sim.kernel.switch_to(second)
        assert sim.machine.monitor["context_switch"] == 2

    def test_unoptimized_switch_costs_more(self):
        def switch_cost(config):
            sim = Simulator(M604_185, config)
            first = sim.kernel.spawn("a")
            second = sim.kernel.spawn("b")
            sim.kernel.switch_to(first)
            start = sim.machine.clock.snapshot()
            sim.kernel.switch_to(second)
            return sim.machine.clock.since(start)

        fast = switch_cost(KernelConfig.optimized())
        slow = switch_cost(KernelConfig.unoptimized())
        assert slow > fast
