"""VSID allocation: PID scatter vs the context counter (§5.2, §7)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError, KernelPanic
from repro.kernel.vsid import (
    ContextCounterVsids,
    KERNEL_VSID_BASE,
    NUM_USER_SEGMENTS,
    PidScatterVsids,
    kernel_vsids,
)


class TestKernelVsids:
    def test_four_fixed_vsids(self):
        vsids = kernel_vsids()
        assert len(vsids) == 4
        assert vsids[0] == KERNEL_VSID_BASE + 12

    def test_kernel_vsids_always_live(self):
        allocator = ContextCounterVsids()
        for vsid in kernel_vsids():
            assert allocator.is_live(vsid)


class TestPidScatter:
    def test_allocation_formula(self):
        allocator = PidScatterVsids(scatter_constant=37)
        vsids = allocator.allocate(pid=5)
        assert len(vsids) == NUM_USER_SEGMENTS
        assert vsids[0] == 5 * 37
        assert vsids[3] == 5 * 37 + 3

    def test_allocated_vsids_are_live(self):
        allocator = PidScatterVsids(37)
        vsids = allocator.allocate(1)
        assert all(allocator.is_live(v) for v in vsids)

    def test_retire_makes_zombies(self):
        allocator = PidScatterVsids(37)
        vsids = allocator.allocate(1)
        allocator.retire(vsids)
        assert not any(allocator.is_live(v) for v in vsids)
        assert all(allocator.is_zombie(v) for v in vsids)

    def test_bump_is_not_supported(self):
        allocator = PidScatterVsids(37)
        vsids = allocator.allocate(1)
        with pytest.raises(KernelPanic):
            allocator.bump(vsids, pid=1)

    def test_duplicate_allocation_panics(self):
        allocator = PidScatterVsids(37)
        allocator.allocate(1)
        with pytest.raises(KernelPanic):
            allocator.allocate(1)

    def test_rejects_bad_constant(self):
        with pytest.raises(ConfigError):
            PidScatterVsids(0)


class TestContextCounter:
    def test_distinct_contexts(self):
        allocator = ContextCounterVsids(scatter_constant=37)
        first = allocator.allocate(pid=1)
        second = allocator.allocate(pid=2)
        assert set(first).isdisjoint(second)

    def test_pid_is_ignored(self):
        allocator = ContextCounterVsids(37)
        first = allocator.allocate(pid=99)
        second = allocator.allocate(pid=99)
        assert set(first).isdisjoint(second)

    def test_bump_retires_and_reissues(self):
        allocator = ContextCounterVsids(37)
        old = allocator.allocate(pid=1)
        new = allocator.bump(old, pid=1)
        assert set(old).isdisjoint(new)
        assert all(allocator.is_zombie(v) for v in old)
        assert all(allocator.is_live(v) for v in new)
        assert allocator.bumps == 1

    def test_user_vsids_never_collide_with_kernel(self):
        allocator = ContextCounterVsids(37)
        for _ in range(50):
            vsids = allocator.allocate(pid=0)
            assert all(v < KERNEL_VSID_BASE for v in vsids)

    def test_wrap_invokes_handler_and_restarts(self):
        allocator = ContextCounterVsids(37)
        allocator.max_context = 2
        calls = []

        def on_wrap():
            calls.append(1)
            allocator.hard_reset()

        allocator.on_wrap = on_wrap
        allocator.allocate(0)
        allocator.allocate(0)
        vsids = allocator.allocate(0)  # wraps back to context 1
        assert calls == [1]
        assert vsids[0] == 37

    def test_kernel_wrap_renumbers_live_tasks(self):
        from repro.kernel.config import KernelConfig
        from repro.params import M604_185
        from repro.sim.simulator import Simulator

        sim = Simulator(M604_185, KernelConfig.optimized())
        kernel = sim.kernel
        kernel.vsid_allocator.max_context = 6
        task = kernel.spawn("t", data_pages=4)
        kernel.switch_to(task)
        kernel.user_access(task, 0x10000000, 1, True)
        # Burn contexts until the counter wraps.
        for _ in range(10):
            kernel.flush.flush_mm(task.mm)
        # The task survived the wrap with live VSIDs, and translation
        # still works.
        assert all(
            kernel.vsid_allocator.is_live(v) for v in task.mm.user_vsids
        )
        kernel.user_access(task, 0x10000000, 1, False)

    def test_wrap_without_handler_panics(self):
        allocator = ContextCounterVsids(37)
        allocator.max_context = 1
        allocator.allocate(0)
        with pytest.raises(KernelPanic):
            allocator.allocate(0)

    def test_reset_after_global_flush_clears_zombies(self):
        allocator = ContextCounterVsids(37)
        old = allocator.allocate(0)
        allocator.bump(old, 0)
        allocator.reset_after_global_flush()
        assert not any(allocator.is_zombie(v) for v in old)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(1, 40))
    def test_all_live_vsids_distinct(self, contexts):
        """The lazy-flush safety root: no two live contexts share a VSID."""
        allocator = ContextCounterVsids(37)
        seen = set()
        for _ in range(contexts):
            vsids = allocator.allocate(0)
            for vsid in vsids:
                assert vsid not in seen
                seen.add(vsid)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(1, 20))
    def test_bumped_vsids_never_reused_before_wrap(self, bumps):
        allocator = ContextCounterVsids(37)
        vsids = allocator.allocate(0)
        retired = set()
        for _ in range(bumps):
            retired.update(vsids)
            vsids = allocator.bump(vsids, 0)
            assert retired.isdisjoint(vsids)
