"""Shared fixtures for the test suite.

Most tests run against small, fast configurations; the heavyweight
paper-scale runs live in ``benchmarks/``.
"""

from __future__ import annotations

import pytest
from hypothesis import settings

from repro.kernel.config import KernelConfig

# Deterministic property tests: the simulator is deterministic, so
# derandomized hypothesis keeps CI stable without losing coverage.
settings.register_profile("repro", derandomize=True, deadline=None)
settings.load_profile("repro")
from repro.params import M603_180, M604_185
from repro.sim.simulator import Simulator


@pytest.fixture(autouse=True)
def _isolated_result_cache(tmp_path, monkeypatch):
    """Point the engine's result cache at a per-test directory.

    Without this, any test that reaches ``engine.run_cached`` (directly
    or through the CLI) would populate ``.repro-cache/`` in the repo —
    and could *read* stale entries another test wrote.
    """
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "repro-cache"))


@pytest.fixture
def sim604() -> Simulator:
    """A booted optimized 604 system."""
    return Simulator(M604_185, KernelConfig.optimized())


@pytest.fixture
def sim604_unopt() -> Simulator:
    """A booted unoptimized 604 system."""
    return Simulator(M604_185, KernelConfig.unoptimized())


@pytest.fixture
def sim603() -> Simulator:
    """A booted optimized (no-htab) 603 system."""
    return Simulator(M603_180, KernelConfig.optimized())


@pytest.fixture
def sim603_htab() -> Simulator:
    """A 603 running the hash-table-emulation handlers."""
    return Simulator(
        M603_180, KernelConfig.optimized().with_changes(use_htab_on_603=True)
    )


@pytest.fixture
def task604(sim604):
    """A spawned, running task on the optimized 604."""
    task = sim604.kernel.spawn("t", text_pages=8, data_pages=16)
    sim604.kernel.switch_to(task)
    return task
