"""Kernel configuration presets and validation."""

import pytest

from repro.errors import ConfigError
from repro.kernel.config import (
    IdlePageClearPolicy,
    KernelConfig,
    VsidPolicy,
)


class TestPresets:
    def test_unoptimized_is_all_off(self):
        config = KernelConfig.unoptimized()
        assert not config.bat_kernel_map
        assert not config.fast_handlers
        assert not config.lazy_vsid_flush
        assert not config.idle_zombie_reclaim
        assert config.idle_page_clear is IdlePageClearPolicy.OFF
        assert config.vsid_policy is VsidPolicy.PID_SCATTER

    def test_optimized_enables_the_paper_set(self):
        config = KernelConfig.optimized()
        assert config.bat_kernel_map
        assert config.fast_handlers
        assert not config.use_htab_on_603
        assert config.lazy_vsid_flush
        assert config.idle_zombie_reclaim
        assert config.idle_page_clear is IdlePageClearPolicy.UNCACHED_LIST
        assert config.range_flush_cutoff == 20

    def test_with_changes_produces_modified_copy(self):
        base = KernelConfig.optimized()
        changed = base.with_changes(bat_kernel_map=False)
        assert base.bat_kernel_map and not changed.bat_kernel_map

    def test_config_is_frozen(self):
        with pytest.raises(Exception):
            KernelConfig().bat_kernel_map = True


class TestValidation:
    def test_lazy_flush_requires_context_counter(self):
        with pytest.raises(ConfigError):
            KernelConfig(
                lazy_vsid_flush=True, vsid_policy=VsidPolicy.PID_SCATTER
            )

    def test_scatter_constant_positive(self):
        with pytest.raises(ConfigError):
            KernelConfig(vsid_scatter_constant=0)

    def test_cutoff_positive_or_none(self):
        with pytest.raises(ConfigError):
            KernelConfig(range_flush_cutoff=0)
        KernelConfig(range_flush_cutoff=None)  # allowed

    def test_pipe_cost_model_validation(self):
        with pytest.raises(ConfigError):
            KernelConfig(pipe_copy_multiplier=0)
        with pytest.raises(ConfigError):
            KernelConfig(pipe_op_extra_cycles=-1)
