"""Trace generation: page visits and the working-set model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError
from repro.hw.access import AccessKind
from repro.params import LINES_PER_PAGE, PAGE_SIZE
from repro.sim.trace import (
    PageVisit,
    WorkingSetTrace,
    sequential_trace,
    strided_trace,
)


class TestPageVisit:
    def test_validation(self):
        with pytest.raises(ConfigError):
            PageVisit(ea=0, lines=0)
        with pytest.raises(ConfigError):
            PageVisit(ea=0, lines=LINES_PER_PAGE + 1)
        with pytest.raises(ConfigError):
            PageVisit(ea=0, lines=1, first_line=LINES_PER_PAGE)

    def test_defaults(self):
        visit = PageVisit(ea=0x1000, lines=4)
        assert not visit.write
        assert visit.kind is AccessKind.DATA
        assert visit.first_line == 0


class TestGenerators:
    def test_sequential_trace(self):
        visits = sequential_trace(0x10000000, pages=4, lines=8)
        assert len(visits) == 4
        assert visits[0].ea == 0x10000000
        assert visits[3].ea == 0x10000000 + 3 * PAGE_SIZE
        assert all(v.lines == 8 for v in visits)

    def test_strided_trace(self):
        visits = strided_trace(0, pages=3, stride_pages=4)
        assert [v.ea for v in visits] == [0, 4 * PAGE_SIZE, 8 * PAGE_SIZE]

    def test_strided_rejects_bad_stride(self):
        with pytest.raises(ConfigError):
            strided_trace(0, 3, 0)


class TestWorkingSetTrace:
    def make(self, **kwargs):
        defaults = dict(
            code_base=0x01000000,
            code_pages=8,
            data_base=0x10000000,
            data_pages=32,
            seed=1,
        )
        defaults.update(kwargs)
        return WorkingSetTrace(**defaults)

    def test_validation(self):
        with pytest.raises(ConfigError):
            self.make(code_pages=0)
        with pytest.raises(ConfigError):
            self.make(hot_fraction=0.0)

    def test_deterministic_for_same_seed(self):
        first = self.make(seed=7).visit_list(100)
        second = self.make(seed=7).visit_list(100)
        assert first == second

    def test_different_seeds_differ(self):
        first = self.make(seed=1).visit_list(100)
        second = self.make(seed=2).visit_list(100)
        assert first != second

    def test_visits_stay_in_bounds(self):
        trace = self.make()
        for visit in trace.visits(500):
            if visit.kind is AccessKind.INSTRUCTION:
                assert 0x01000000 <= visit.ea < 0x01000000 + 8 * PAGE_SIZE
            else:
                assert 0x10000000 <= visit.ea < 0x10000000 + 32 * PAGE_SIZE

    def test_code_visits_are_reads(self):
        trace = self.make()
        for visit in trace.visits(300):
            if visit.kind is AccessKind.INSTRUCTION:
                assert not visit.write

    def test_hot_fraction_concentrates_accesses(self):
        concentrated = self.make(hot_fraction=0.1, drift=0.0, seed=3)
        pages = {
            visit.ea
            for visit in concentrated.visits(300)
            if visit.kind is AccessKind.DATA
        }
        # Mostly within the small hot window (plus the 15% wander).
        assert len(pages) < 32

    def test_first_line_varies_by_page(self):
        trace = self.make()
        offsets = {
            (visit.ea, visit.first_line) for visit in trace.visits(400)
        }
        distinct_offsets = {offset for _, offset in offsets}
        assert len(distinct_offsets) > 3

    @settings(max_examples=20, deadline=None)
    @given(st.integers(1, 400))
    def test_exact_count(self, count):
        assert len(self.make().visit_list(count)) == count
