"""The machine model: the full translation datapath."""

import pytest

from repro.errors import TranslationError
from repro.hw.access import AccessKind
from repro.hw.bat import BatRegister
from repro.hw.machine import MachineModel, RefillResult
from repro.hw.pte import HashPte
from repro.hw.tlb import TlbEntry
from repro.params import (
    C603_MISS_INVOKE_CYCLES,
    C604_HASH_MISS_INVOKE_CYCLES,
    M603_180,
    M604_185,
)


def refill_to(ppn, extra_cycles=5):
    """A canned refill handler mapping everything to one frame."""

    def handler(machine, ea, kind, write, vsid, page_index):
        return RefillResult(
            entry=TlbEntry(vsid=vsid, page_index=page_index, ppn=ppn),
            cycles=extra_cycles,
        )

    return handler


class TestBatPath:
    def test_bat_translation_wins(self):
        machine = MachineModel(M604_185)
        machine.bats.map_both(
            0, BatRegister.mapping(0xC0000000, 0, 32 * 1024 * 1024)
        )
        result = machine.translate(0xC0123456)
        assert result.path == "bat"
        assert result.pa == 0x123456
        assert result.cycles == 0
        assert machine.monitor["bat_translation"] == 1

    def test_bat_does_not_touch_tlb(self):
        machine = MachineModel(M604_185)
        machine.bats.map_both(
            0, BatRegister.mapping(0xC0000000, 0, 32 * 1024 * 1024)
        )
        machine.translate(0xC0123456, AccessKind.DATA)
        assert len(machine.dtlb) == 0


class TestTlbPath:
    def test_tlb_hit_is_free(self):
        machine = MachineModel(M604_185)
        machine.segments.write(1, 0x42)
        machine.dtlb.insert(TlbEntry(vsid=0x42, page_index=0x10, ppn=7))
        result = machine.translate(0x10010ABC)
        assert result.path == "tlb"
        assert result.pa == 0x7ABC
        assert result.cycles == 0

    def test_instruction_uses_itlb(self):
        machine = MachineModel(M604_185)
        machine.segments.write(1, 0x42)
        machine.itlb.insert(TlbEntry(vsid=0x42, page_index=0x10, ppn=7))
        result = machine.translate(0x10010000, AccessKind.INSTRUCTION)
        assert result.path == "tlb"


class Test604MissPath:
    def test_hardware_walk_hit_fills_tlb(self):
        machine = MachineModel(M604_185)
        machine.segments.write(1, 0x42)
        machine.htab.insert(HashPte(vsid=0x42, page_index=0x10, rpn=9))
        result = machine.translate(0x10010000)
        assert result.path == "hw_walk"
        assert result.pa == 9 << 12
        assert machine.monitor["htab_hit"] == 1
        # Next access hits the TLB.
        assert machine.translate(0x10010000).path == "tlb"

    def test_walk_sets_reference_and_change_bits(self):
        machine = MachineModel(M604_185)
        machine.segments.write(1, 0x42)
        machine.htab.insert(HashPte(vsid=0x42, page_index=0x10, rpn=9))
        machine.translate(0x10010000, write=True)
        stored = machine.htab.peek(0x42, 0x10)
        assert stored.referenced and stored.changed

    def test_htab_miss_invokes_handler_with_interrupt_cost(self):
        machine = MachineModel(M604_185)
        machine.segments.write(1, 0x42)
        machine.install_refill_handler(refill_to(ppn=3, extra_cycles=5))
        result = machine.translate(0x10010000)
        assert result.path == "handler"
        assert result.cycles >= C604_HASH_MISS_INVOKE_CYCLES + 5
        assert machine.monitor["hash_miss_interrupt"] == 1

    def test_miss_without_handler_raises(self):
        machine = MachineModel(M604_185)
        with pytest.raises(TranslationError):
            machine.translate(0x10010000)


class Test603MissPath:
    def test_every_miss_is_a_software_interrupt(self):
        machine = MachineModel(M603_180)
        machine.segments.write(1, 0x42)
        machine.htab.insert(HashPte(vsid=0x42, page_index=0x10, rpn=9))
        machine.install_refill_handler(refill_to(ppn=3))
        result = machine.translate(0x10010000)
        # The 603 traps regardless of the hash table's contents; the
        # handler decides whether to look there.
        assert result.path == "handler"
        assert machine.monitor["sw_tlb_miss_interrupt"] == 1
        assert result.cycles >= C603_MISS_INVOKE_CYCLES


class TestMemoryAccess:
    def test_data_access_charges_cache(self):
        machine = MachineModel(M604_185)
        machine.segments.write(1, 0x42)
        machine.dtlb.insert(TlbEntry(vsid=0x42, page_index=0x10, ppn=7))
        cold = machine.data_access(0x10010000)
        warm = machine.data_access(0x10010000)
        assert cold > warm == 1

    def test_cache_inhibited_entry_bypasses_cache(self):
        machine = MachineModel(M604_185)
        machine.segments.write(1, 0x42)
        machine.dtlb.insert(
            TlbEntry(vsid=0x42, page_index=0x10, ppn=7, cache_inhibited=True)
        )
        machine.data_access(0x10010000)
        assert machine.dcache.stats.bypasses == 1

    def test_access_page_touches_lines(self):
        machine = MachineModel(M604_185)
        machine.segments.write(1, 0x42)
        machine.dtlb.insert(TlbEntry(vsid=0x42, page_index=0x10, ppn=7))
        machine.access_page(0x10010000, lines=4)
        hits_misses = machine.dcache.stats.hits + machine.dcache.stats.misses
        assert hits_misses == 4

    def test_access_page_first_line_offsets(self):
        machine = MachineModel(M604_185)
        machine.segments.write(1, 0x42)
        machine.dtlb.insert(TlbEntry(vsid=0x42, page_index=0x10, ppn=7))
        machine.access_page(0x10010000, lines=2, first_line=10)
        assert machine.dcache.contains((7 << 12) + 10 * 32)
        assert not machine.dcache.contains(7 << 12)

    def test_instruction_fetch_uses_icache(self):
        machine = MachineModel(M604_185)
        machine.segments.write(1, 0x42)
        machine.itlb.insert(TlbEntry(vsid=0x42, page_index=0x10, ppn=7))
        machine.instruction_fetch(0x10010000)
        assert machine.icache.stats.misses == 1
        assert machine.dcache.stats.misses == 0


class TestHousekeeping:
    def test_context_switch_segments(self):
        machine = MachineModel(M604_185)
        cycles = machine.context_switch_segments(list(range(16)))
        assert cycles == 32
        assert machine.segments.read(5) == 5

    def test_invalidate_tlbs(self):
        machine = MachineModel(M604_185)
        machine.dtlb.insert(TlbEntry(vsid=1, page_index=0, ppn=0))
        machine.itlb.insert(TlbEntry(vsid=1, page_index=0, ppn=0))
        machine.invalidate_tlbs()
        assert len(machine.dtlb) == 0 and len(machine.itlb) == 0

    def test_ledger_accumulates(self):
        machine = MachineModel(M604_185)
        machine.segments.write(1, 0x42)
        machine.dtlb.insert(TlbEntry(vsid=0x42, page_index=0x10, ppn=7))
        machine.data_access(0x10010000)
        assert machine.clock.total > 0
        assert machine.elapsed_us() > 0

    def test_htab_sits_below_top_of_ram(self):
        machine = MachineModel(M604_185)
        htab_bytes = machine.htab.slots * 8
        assert machine.htab_base_pa == machine.ram_bytes - htab_bytes
