"""Set-associative TLB behaviour."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError
from repro.hw.tlb import Tlb, TlbEntry


def entry(vsid, page_index, ppn=0, kernel=False):
    return TlbEntry(vsid=vsid, page_index=page_index, ppn=ppn,
                    is_kernel=kernel)


class TestGeometry:
    def test_sets_from_entries_and_assoc(self):
        tlb = Tlb(entries=64, assoc=2)
        assert tlb.num_sets == 32

    def test_rejects_bad_geometry(self):
        with pytest.raises(ConfigError):
            Tlb(entries=63, assoc=2)
        with pytest.raises(ConfigError):
            Tlb(entries=0, assoc=2)

    def test_set_index_uses_low_page_bits(self):
        tlb = Tlb(entries=64, assoc=2)
        assert tlb.set_index(0) == 0
        assert tlb.set_index(31) == 31
        assert tlb.set_index(32) == 0


class TestLookupInsert:
    def test_miss_on_empty(self):
        tlb = Tlb(64, 2)
        assert tlb.lookup(1, 0x100) is None
        assert tlb.misses == 1

    def test_hit_after_insert(self):
        tlb = Tlb(64, 2)
        tlb.insert(entry(1, 0x100, ppn=7))
        found = tlb.lookup(1, 0x100)
        assert found is not None and found.ppn == 7
        assert tlb.hits == 1

    def test_distinct_vsids_are_distinct_translations(self):
        tlb = Tlb(64, 2)
        tlb.insert(entry(1, 0x100, ppn=7))
        tlb.insert(entry(2, 0x100, ppn=8))
        assert tlb.lookup(1, 0x100).ppn == 7
        assert tlb.lookup(2, 0x100).ppn == 8

    def test_reinsert_same_translation_does_not_evict(self):
        tlb = Tlb(64, 2)
        tlb.insert(entry(1, 0x100, ppn=7))
        victim = tlb.insert(entry(1, 0x100, ppn=9))
        assert victim is None
        assert tlb.lookup(1, 0x100).ppn == 9
        assert len(tlb) == 1

    def test_lru_eviction_within_set(self):
        tlb = Tlb(64, 2)  # 32 sets
        # Three pages in the same set (page_index mod 32 equal).
        tlb.insert(entry(1, 0))
        tlb.insert(entry(1, 32))
        tlb.lookup(1, 0)  # make page 0 most recent
        victim = tlb.insert(entry(1, 64))
        assert victim is not None and victim.page_index == 32
        assert tlb.peek(1, 0) is not None
        assert tlb.peek(1, 32) is None

    def test_peek_does_not_count(self):
        tlb = Tlb(64, 2)
        tlb.insert(entry(1, 0))
        tlb.peek(1, 0)
        tlb.peek(1, 1)
        assert tlb.hits == 0 and tlb.misses == 0


class TestInvalidate:
    def test_invalidate_page_removes_all_vsids(self):
        """tlbie invalidates by EA — every VSID's entry for that page."""
        tlb = Tlb(64, 2)
        tlb.insert(entry(1, 0x10))
        tlb.insert(entry(2, 0x10))
        removed = tlb.invalidate_page(0x10)
        assert removed == 2
        assert tlb.peek(1, 0x10) is None
        assert tlb.peek(2, 0x10) is None

    def test_invalidate_page_leaves_other_pages(self):
        tlb = Tlb(64, 2)
        tlb.insert(entry(1, 0x10))
        tlb.insert(entry(1, 0x11))
        tlb.invalidate_page(0x10)
        assert tlb.peek(1, 0x11) is not None

    def test_invalidate_all(self):
        tlb = Tlb(64, 2)
        for page in range(10):
            tlb.insert(entry(1, page))
        tlb.invalidate_all()
        assert len(tlb) == 0
        assert tlb.invalidate_all_count == 1


class TestStats:
    def test_occupancy(self):
        tlb = Tlb(64, 2)
        assert tlb.occupancy() == 0.0
        for page in range(32):
            tlb.insert(entry(1, page))
        assert tlb.occupancy() == 0.5

    def test_kernel_entries_counted(self):
        tlb = Tlb(64, 2)
        tlb.insert(entry(1, 0, kernel=True))
        tlb.insert(entry(1, 1, kernel=False))
        assert tlb.kernel_entries() == 1

    def test_hit_rate(self):
        tlb = Tlb(64, 2)
        tlb.insert(entry(1, 0))
        tlb.lookup(1, 0)
        tlb.lookup(1, 1)
        assert tlb.hit_rate() == 0.5

    def test_reset_stats(self):
        tlb = Tlb(64, 2)
        tlb.lookup(1, 0)
        tlb.reset_stats()
        assert tlb.misses == 0

    def test_live_entries_iteration(self):
        tlb = Tlb(64, 2)
        tlb.insert(entry(1, 0))
        tlb.insert(entry(1, 1))
        assert len(list(tlb.live_entries())) == 2


class TestProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(1, 4), st.integers(0, 255)),
            min_size=1,
            max_size=200,
        )
    )
    def test_capacity_never_exceeded(self, operations):
        tlb = Tlb(16, 2)
        for vsid, page in operations:
            tlb.insert(entry(vsid, page))
            assert len(tlb) <= 16
            for entries in tlb._sets:
                assert len(entries) <= 2

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(1, 4), st.integers(0, 63)),
            min_size=1,
            max_size=100,
        ),
        st.integers(0, 63),
    )
    def test_invalidated_page_is_never_returned(self, operations, target):
        """After tlbie of a page, no lookup for it may succeed."""
        tlb = Tlb(16, 2)
        for vsid, page in operations:
            tlb.insert(entry(vsid, page))
        tlb.invalidate_page(target)
        for vsid in range(1, 5):
            assert tlb.peek(vsid, target) is None
