"""Engine tests: determinism, fan-out equivalence, and the cache.

The core contracts under test:

* parallel ``run_ids`` (``jobs > 1``) produces results equal to the
  serial path, merged in the caller's id order;
* a cache hit returns an :class:`ExperimentResult` *equal* to the one
  a fresh execution produced (the engine's JSON round-trip guarantees
  cached and fresh results are the same value);
* the fingerprint moves when anything that could change the numbers
  moves (params, variants, code version).

These run the fastest specs only (E1/E12/E15) — the heavyweight
paper-scale runs live in ``benchmarks/``.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro import obs
from repro.analysis import cache as cache_mod
from repro.analysis import engine, specs
from repro.analysis.cache import ResultCache, spec_fingerprint
from repro.kernel.config import KernelConfig
from repro.params import M604_185
from repro.sim.simulator import boot

FAST_IDS = ["E1", "E12", "E15"]


class TestExecute:
    def test_result_fields(self):
        spec = engine.spec_for("e1")
        result = engine.execute(spec)
        assert result.experiment == "E1"
        assert result.title == spec.title
        assert result.shape_holds
        assert result.report

    def test_execute_is_deterministic(self):
        spec = engine.spec_for("E15")
        first = engine.execute(spec)
        second = engine.execute(spec)
        assert first == second

    def test_measured_is_json_plain(self):
        # The round-trip must leave only JSON-native types, so shape
        # predicates can never depend on something the cache would lose.
        result = engine.execute(engine.spec_for("E1"))

        def _check(value):
            if isinstance(value, dict):
                for key, item in value.items():
                    assert isinstance(key, str)
                    _check(item)
            elif isinstance(value, list):
                for item in value:
                    _check(item)
            else:
                assert value is None or isinstance(
                    value, (bool, int, float, str)
                )

        _check(result.measured)
        _check(result.paper)

    def test_spec_for_unknown_id_raises(self):
        with pytest.raises(KeyError):
            engine.spec_for("E99")


class TestRunIds:
    def test_parallel_equals_serial(self):
        serial = engine.run_ids(FAST_IDS, jobs=1, use_cache=False)
        parallel = engine.run_ids(FAST_IDS, jobs=2, use_cache=False)
        assert serial.results == parallel.results
        assert [r.experiment for r in parallel.results] == FAST_IDS
        assert serial.ok and parallel.ok

    def test_caller_order_preserved(self):
        reversed_ids = list(reversed(FAST_IDS))
        run = engine.run_ids(reversed_ids, jobs=2, use_cache=False)
        assert [r.experiment for r in run.results] == reversed_ids

    def test_unknown_id_raises_before_running(self):
        with pytest.raises(KeyError):
            engine.run_ids(["E1", "E99"])

    def test_progress_fires_per_experiment(self):
        seen = []
        engine.run_ids(
            ["E1"], use_cache=False, progress=lambda key, hit: seen.append((key, hit))
        )
        assert seen == [("E1", False)]

    def test_failed_ids_empty_on_clean_run(self):
        run = engine.run_ids(["E1"], use_cache=False)
        assert run.failed_ids() == []
        assert run.cache_hits == {"E1": False}
        assert run.timings["E1"] >= 0.0


class TestCache:
    def test_cold_then_warm_returns_equal_result(self):
        spec = engine.spec_for("E1")
        cold, cold_wall, cold_hit = engine.run_cached(spec)
        warm, warm_wall, warm_hit = engine.run_cached(spec)
        assert not cold_hit and warm_hit
        assert warm == cold  # dataclass equality, field for field
        assert warm_wall == 0.0

    def test_cache_dir_respects_env(self, tmp_path, monkeypatch):
        target = tmp_path / "elsewhere"
        monkeypatch.setenv(cache_mod.CACHE_DIR_ENV, str(target))
        engine.run_cached(engine.spec_for("E1"))
        entries = list(target.glob("E1-*.json"))
        assert len(entries) == 1

    def test_no_cache_writes_nothing(self):
        engine.run_cached(engine.spec_for("E1"), use_cache=False)
        assert list(cache_mod.cache_dir().glob("*.json")) == []

    def test_rerun_executes_but_refreshes_entry(self):
        spec = engine.spec_for("E1")
        engine.run_cached(spec)
        result, _wall, hit = engine.run_cached(spec, rerun=True)
        assert not hit
        # The refreshed entry is immediately hittable again.
        _again, _wall, hit = engine.run_cached(spec)
        assert hit

    def test_corrupt_entry_is_a_miss(self):
        spec = engine.spec_for("E1")
        engine.run_cached(spec)
        (entry,) = cache_mod.cache_dir().glob("E1-*.json")
        entry.write_text("not json {")
        result, _wall, hit = engine.run_cached(spec)
        assert not hit
        assert result.shape_holds

    def test_store_load_roundtrip(self):
        spec = engine.spec_for("E12")
        result = engine.execute(spec)
        store = ResultCache()
        fingerprint = spec_fingerprint(spec)
        store.store(spec.id, fingerprint, result)
        assert store.load(spec.id, fingerprint) == result
        assert store.load(spec.id, "0" * 16) is None


class TestDerive:
    def test_derive_does_not_perturb_measured(self):
        spec = engine.spec_for("E1")
        bare = engine.execute(spec)
        derived = engine.execute(spec, derive=True)
        assert derived.measured == bare.measured
        assert derived.shape_holds == bare.shape_holds
        assert bare.derived == {}
        assert derived.derived

    def test_derived_block_sections(self):
        result = engine.execute(engine.spec_for("E1"), derive=True)
        block = result.derived
        assert block["total_cycles"] > 0
        assert "attribution" in block
        assert "counters" in block
        assert "histograms" in block
        # The derive wrapper traces, so span sections are present too.
        assert "events" in block
        # The block must already be JSON-round-tripped (cache-identical).
        assert block == json.loads(json.dumps(block))

    def test_derived_identical_cached_vs_fresh(self):
        spec = engine.spec_for("E1")
        cold, _wall, cold_hit = engine.run_cached(spec)
        warm, _wall, warm_hit = engine.run_cached(spec)
        assert not cold_hit and warm_hit
        assert cold.derived
        assert warm.derived == cold.derived

    def test_derive_defers_to_active_global_observability(self):
        obs.enable_global_observability(profile=True)
        try:
            result = engine.execute(engine.spec_for("E1"), derive=True)
            observed = obs.drain_global_observed()
        finally:
            obs.disable_global_observability()
        # The outer caller owns the handles; derive must not steal them.
        assert result.derived == {}
        assert observed


class TestFingerprint:
    def test_stable_across_calls(self):
        spec = engine.spec_for("E1")
        assert spec_fingerprint(spec) == spec_fingerprint(spec)

    def test_params_change_fingerprint(self):
        spec = engine.spec_for("E1")
        assert spec_fingerprint(spec) != spec_fingerprint(
            spec, {"ea": 0xC0000ABC}
        )

    def test_config_change_fingerprint(self):
        spec = engine.spec_for("E1")
        variant = spec.variants[0]
        changed = dataclasses.replace(
            spec,
            variants=(
                dataclasses.replace(
                    variant,
                    config=variant.config.with_changes(
                        idle_zombie_reclaim=not variant.config.idle_zombie_reclaim
                    ),
                ),
            )
            + spec.variants[1:],
        )
        assert spec_fingerprint(spec) != spec_fingerprint(changed)

    def test_seed_change_fingerprint(self):
        spec = engine.spec_for("E16")
        assert spec_fingerprint(spec) != spec_fingerprint(
            dataclasses.replace(spec, seed=spec.seed + 1)
        )


class TestResultRecord:
    def test_record_is_derivable_from_cached_result(self):
        spec = engine.spec_for("E1")
        fresh = engine.execute(spec, derive=True)
        engine.run_cached(spec)  # populate
        cached, _wall, hit = engine.run_cached(spec)
        assert hit
        assert engine.result_record(fresh) == engine.result_record(cached)
        record = engine.result_record(fresh)
        assert record["id"] == "E1"
        assert record["machines"] == spec.machine_names()
        assert record["shape_holds"] is True


class TestBootForwarding:
    def test_boot_forwards_observability_kwargs(self):
        sim = boot(M604_185, KernelConfig.optimized(), profile=True)
        assert sim.obs is not None
        assert sim.obs.profiler is not None

    def test_boot_forwards_sanitize(self):
        sim = boot(M604_185, KernelConfig.optimized(), sanitize=True)
        assert sim.sanitizer is not None

    def test_boot_defaults_stay_bare(self):
        sim = boot(M604_185, KernelConfig.optimized())
        assert sim.obs is None
        assert sim.sanitizer is None
