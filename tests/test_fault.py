"""Miss-handler generations and the demand-fault path (§6)."""

import pytest

from repro.errors import SegmentFault
from repro.kernel.config import KernelConfig
from repro.params import M603_180, M604_185, PAGE_SIZE
from repro.sim.simulator import Simulator


def prepared(sim, data_pages=8):
    task = sim.kernel.spawn("t", data_pages=data_pages)
    sim.kernel.switch_to(task)
    return task


class Test604Refill:
    def test_first_touch_faults_then_htab_hits(self, sim604, task604):
        kernel = sim604.kernel
        kernel.user_access(task604, 0x10000000, 1, True)
        assert sim604.machine.monitor["page_fault_minor"] == 1
        assert sim604.machine.monitor["htab_reload"] >= 1
        # Kill the TLB entry only: the next access must be resolved by
        # the hardware hash walk, no software at all.
        before = sim604.machine.monitor["hash_miss_interrupt"]
        sim604.machine.invalidate_tlbs()
        kernel.user_access(task604, 0x10000000, 1, False)
        assert sim604.machine.monitor["hash_miss_interrupt"] == before
        assert sim604.machine.monitor["htab_hit"] >= 1

    def test_fault_outside_vma_raises(self, sim604, task604):
        with pytest.raises(SegmentFault):
            sim604.kernel.user_access(task604, 0x66000000, 1, False)

    def test_write_to_readonly_text_raises(self, sim604, task604):
        with pytest.raises(SegmentFault):
            sim604.kernel.user_access(task604, 0x01000000, 1, True)


class Test603Handlers:
    def test_no_htab_mode_never_touches_hash_table(self, sim603):
        task = prepared(sim603)
        sim603.kernel.user_access(task, 0x10000000, 2, True)
        sim603.machine.invalidate_tlbs()
        sim603.kernel.user_access(task, 0x10000000, 2, False)
        assert sim603.machine.htab.valid_entries() == 0
        assert sim603.machine.monitor["htab_reload"] == 0

    def test_htab_emulation_mode_feeds_hash_table(self, sim603_htab):
        task = prepared(sim603_htab)
        sim603_htab.kernel.user_access(task, 0x10000000, 2, True)
        assert sim603_htab.machine.htab.valid_entries() >= 1
        # After a TLB-only invalidate, the software search must hit.
        sim603_htab.machine.invalidate_tlbs()
        sim603_htab.kernel.user_access(task, 0x10000000, 1, False)
        assert sim603_htab.machine.monitor["htab_hit"] >= 1

    def test_no_htab_cheaper_on_the_full_miss_path(self):
        """§6.2: the emulation 'simply added another level of
        indirection' — on a hash miss it searches the table, walks the
        tree anyway, and re-inserts.  The direct handler just walks."""

        def refill_cost(config):
            sim = Simulator(M603_180, config)
            task = prepared(sim)
            sim.kernel.user_access(task, 0x10000000, 1, True)
            sim.machine.invalidate_tlbs()
            sim.machine.htab.invalidate_all()
            start = sim.machine.clock.snapshot()
            sim.kernel.user_access(task, 0x10000000, 1, False)
            return sim.machine.clock.since(start)

        opt = KernelConfig.optimized()
        direct = refill_cost(opt)
        emulated = refill_cost(opt.with_changes(use_htab_on_603=True))
        assert direct < emulated


class TestHandlerGenerations:
    def test_c_handlers_cost_more_per_miss(self):
        def miss_cost(config):
            sim = Simulator(M604_185, config)
            task = prepared(sim)
            sim.kernel.user_access(task, 0x10000000, 1, True)
            sim.machine.invalidate_tlbs()
            sim.machine.htab.invalidate_all()
            start = sim.machine.clock.snapshot()
            sim.kernel.user_access(task, 0x10000000, 1, False)
            return sim.machine.clock.since(start)

        slow = miss_cost(KernelConfig.unoptimized())
        fast = miss_cost(
            KernelConfig.unoptimized().with_changes(fast_handlers=True)
        )
        assert fast < slow

    def test_c_handler_state_save_pollutes_dcache(self):
        sim = Simulator(M604_185, KernelConfig.unoptimized())
        task = prepared(sim)
        sim.kernel.user_access(task, 0x10000000, 1, True)
        # The kernel stack lines were written through the data cache.
        assert sim.machine.dcache.contains(sim.kernel.kernel_stack_pa)


class TestDemandPaging:
    def test_each_page_faults_once(self, sim604, task604):
        kernel = sim604.kernel
        for page in range(4):
            kernel.user_access(task604, 0x10000000 + page * PAGE_SIZE, 1, True)
        assert sim604.machine.monitor["page_fault_minor"] == 4
        for page in range(4):
            kernel.user_access(task604, 0x10000000 + page * PAGE_SIZE, 1, False)
        assert sim604.machine.monitor["page_fault_minor"] == 4

    def test_anonymous_pages_are_zeroed_frames(self, sim604, task604):
        kernel = sim604.kernel
        kernel.user_access(task604, 0x10000000, 1, True)
        pfn = task604.mm.resident[0x10000000]
        assert kernel.palloc.is_allocated(pfn)

    def test_file_pages_shared_from_page_cache(self, sim604, task604):
        kernel = sim604.kernel
        kernel.user_access(task604, 0x01000000, 1, False)
        pfn = task604.mm.resident[0x01000000]
        image = kernel.fs.lookup("bin:t")
        assert pfn in image.cached.values()
        assert pfn in task604.mm.shared_pages
