"""End-to-end integration: every optimization toggled on a live system.

Each test boots two complete systems differing in exactly one paper
optimization, runs the same workload through the executive, and asserts
the direction of the effect — the paper's §4 methodology in miniature.
"""

import pytest

from repro.kernel.config import IdlePageClearPolicy, KernelConfig, VsidPolicy
from repro.params import M603_180, M604_185, PAGE_SIZE
from repro.sim.simulator import Simulator, boot
from repro.sim.trace import WorkingSetTrace


def mixed_workload(sim, seed=5, rounds=8):
    """A little of everything: compute, mmap churn, pipes, fork."""
    executive = sim.executive

    def factory(task):
        def body(t):
            trace = WorkingSetTrace(
                0x01000000, 8, 0x10000000, 40, hot_fraction=0.5, seed=seed
            )
            pipe = yield ("pipe",)
            for _round in range(rounds):
                yield ("work", trace.visit_list(60))
                addr = yield ("mmap", 32 * PAGE_SIZE, None, None)
                for page in range(0, 32, 4):
                    yield ("touch", addr + page * PAGE_SIZE, 4, True)
                yield ("munmap", addr, 32 * PAGE_SIZE)
                yield ("pipe_write", pipe, 256, 0x10000000)
                yield ("pipe_read", pipe, 256, 0x10000000)
            child = yield ("fork", None)
            sim.kernel.sys_exit(child)
            yield ("exit", 0)

        return body(task)

    executive.spawn("mix", factory, text_pages=8, data_pages=44)
    sim.run()
    return sim


def wall_us(config, spec=M604_185):
    sim = mixed_workload(boot(spec, config))
    return sim.elapsed_us(), sim


OPT = KernelConfig.optimized()
UNOPT = KernelConfig.unoptimized()


class TestEachOptimizationDirection:
    def test_whole_paper_stack_wins(self):
        # This workload is fault/cache-heavy (config-independent costs),
        # so the margin is smaller than on the syscall-heavy benchmarks.
        optimized, _ = wall_us(OPT)
        unoptimized, _ = wall_us(UNOPT)
        assert optimized < 0.92 * unoptimized

    def test_fast_handlers_direction(self):
        base, _ = wall_us(UNOPT)
        fast, _ = wall_us(
            UNOPT.with_changes(fast_handlers=True, optimized_entry=True)
        )
        assert fast < base

    def test_lazy_flush_direction(self):
        """Lazy flushing wins when flushed ranges are large relative to
        the working set that has to refault — the paper's §7 regime."""

        def big_flush_run(config):
            sim = boot(M604_185, config)
            kernel = sim.kernel
            task = kernel.spawn("t", data_pages=20)
            kernel.switch_to(task)
            for _round in range(6):
                for page in range(16):
                    kernel.user_access(
                        task, 0x10000000 + page * PAGE_SIZE, 2, True
                    )
                addr = kernel.sys_mmap(task, 192 * PAGE_SIZE)
                for page in range(0, 192, 24):
                    kernel.user_access(task, addr + page * PAGE_SIZE, 2, True)
                kernel.sys_munmap(task, addr, 192 * PAGE_SIZE)
            return sim.cycles

        search = big_flush_run(
            OPT.with_changes(
                lazy_vsid_flush=False, vsid_policy=VsidPolicy.PID_SCATTER
            )
        )
        lazy = big_flush_run(OPT)
        assert lazy < search

    def test_bat_map_reduces_kernel_tlb_presence(self):
        _, with_bat = wall_us(UNOPT.with_changes(bat_kernel_map=True))
        _, without = wall_us(UNOPT)
        assert (
            with_bat.machine.itlb.kernel_entries()
            + with_bat.machine.dtlb.kernel_entries()
            == 0
        )
        assert (
            without.machine.monitor.total_tlb_misses()
            > with_bat.machine.monitor.total_tlb_misses()
        )

    def test_no_htab_on_603_direction(self):
        emulated, _ = wall_us(
            OPT.with_changes(use_htab_on_603=True), spec=M603_180
        )
        direct, _ = wall_us(OPT, spec=M603_180)
        assert direct <= emulated * 1.01

    def test_603_vs_604_same_kernel(self):
        slow, _ = wall_us(OPT, spec=M603_180)
        fast, _ = wall_us(OPT, spec=M604_185)
        # The 604 is faster, but the no-htab 603 stays within ~40%.
        assert fast <= slow <= 1.4 * fast


class TestCrossConfigConsistency:
    @pytest.mark.parametrize(
        "config",
        [
            OPT,
            UNOPT,
            OPT.with_changes(cache_page_tables=False),
            OPT.with_changes(idle_page_clear=IdlePageClearPolicy.CACHED_LIST),
            OPT.with_changes(cache_preloads=True),
            UNOPT.with_changes(
                vsid_policy=VsidPolicy.CONTEXT_COUNTER,
                lazy_vsid_flush=True,
            ),
        ],
        ids=[
            "optimized",
            "unoptimized",
            "uncached-ptes",
            "cached-clearing",
            "preloads",
            "lazy-only",
        ],
    )
    def test_workload_completes_and_balances(self, config):
        """Every configuration runs the workload to completion with a
        balanced ledger and no leaked tasks."""
        sim = mixed_workload(boot(M604_185, config))
        assert not sim.kernel.tasks  # everything exited
        assert sim.cycles == sum(sim.breakdown().values())
        counters = sim.counters()
        assert counters["syscall"] > 0
        assert counters["page_fault_minor"] > 0

    def test_same_config_same_cycles(self):
        """The simulation is deterministic."""
        first, _ = wall_us(OPT)
        second, _ = wall_us(OPT)
        assert first == second
