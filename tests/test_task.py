"""Task, Mm, and VMA structures."""

import itertools

import pytest

from repro.errors import KernelPanic
from repro.kernel.pagetable import TwoLevelPageTable
from repro.kernel.task import Mm, Task, TaskState, Vma
from repro.kernel.vsid import NUM_USER_SEGMENTS, kernel_vsids


def make_mm():
    counter = itertools.count(10)
    table = TwoLevelPageTable(alloc_frame=lambda: next(counter))
    return Mm(table, user_vsids=list(range(NUM_USER_SEGMENTS)))


class TestVma:
    def test_requires_page_alignment(self):
        with pytest.raises(KernelPanic):
            Vma(start=0x1001, end=0x2000)
        with pytest.raises(KernelPanic):
            Vma(start=0x1000, end=0x2001)

    def test_rejects_empty(self):
        with pytest.raises(KernelPanic):
            Vma(start=0x2000, end=0x2000)

    def test_contains_and_pages(self):
        vma = Vma(start=0x10000000, end=0x10004000)
        assert vma.contains(0x10000000)
        assert vma.contains(0x10003FFF)
        assert not vma.contains(0x10004000)
        assert vma.pages == 4


class TestMm:
    def test_requires_twelve_user_vsids(self):
        counter = itertools.count(10)
        table = TwoLevelPageTable(alloc_frame=lambda: next(counter))
        with pytest.raises(KernelPanic):
            Mm(table, user_vsids=[1, 2, 3])

    def test_segment_vsids_appends_kernel(self):
        mm = make_mm()
        vsids = mm.segment_vsids()
        assert len(vsids) == 16
        assert vsids[:12] == list(range(12))
        assert vsids[12:] == kernel_vsids()

    def test_find_vma(self):
        mm = make_mm()
        vma = mm.add_vma(Vma(start=0x10000000, end=0x10002000))
        assert mm.find_vma(0x10001000) is vma
        assert mm.find_vma(0x20000000) is None

    def test_vmas_kept_sorted(self):
        mm = make_mm()
        mm.add_vma(Vma(start=0x30000000, end=0x30001000))
        mm.add_vma(Vma(start=0x10000000, end=0x10001000))
        assert [v.start for v in mm.vmas] == [0x10000000, 0x30000000]

    def test_overlapping_vmas_rejected(self):
        mm = make_mm()
        mm.add_vma(Vma(start=0x10000000, end=0x10002000))
        with pytest.raises(KernelPanic):
            mm.add_vma(Vma(start=0x10001000, end=0x10003000))

    def test_adjacent_vmas_allowed(self):
        mm = make_mm()
        mm.add_vma(Vma(start=0x10000000, end=0x10001000))
        mm.add_vma(Vma(start=0x10001000, end=0x10002000))
        assert len(mm.vmas) == 2

    def test_remove_vma(self):
        mm = make_mm()
        vma = mm.add_vma(Vma(start=0x10000000, end=0x10001000))
        mm.remove_vma(vma)
        assert mm.find_vma(0x10000000) is None

    def test_rss_tracks_resident(self):
        mm = make_mm()
        assert mm.rss == 0
        mm.resident[0x10000000] = 5
        assert mm.rss == 1


class TestTask:
    def test_identity_by_pid(self):
        mm = make_mm()
        first = Task(pid=1, name="a", mm=mm)
        second = Task(pid=1, name="b", mm=mm)
        assert first == second
        assert hash(first) == hash(second)

    def test_default_state_ready(self):
        assert Task(pid=1, name="a", mm=make_mm()).state is TaskState.READY
