"""The Simulator facade."""

import pytest

from repro.kernel.config import KernelConfig
from repro.params import M603_180, M604_185
from repro.sim.simulator import Simulator, boot


class TestConstruction:
    def test_default_config_is_unoptimized(self):
        sim = Simulator(M604_185)
        assert not sim.config.bat_kernel_map

    def test_boot_helper(self):
        sim = boot(M603_180, KernelConfig.optimized())
        assert sim.spec is M603_180
        assert sim.config.bat_kernel_map

    def test_cache_ptes_follows_config(self):
        cached = Simulator(M604_185, KernelConfig.optimized())
        uncached = Simulator(
            M604_185,
            KernelConfig.optimized().with_changes(cache_page_tables=False),
        )
        assert cached.machine.walker.cache_ptes
        assert not uncached.machine.walker.cache_ptes


class TestMeasurement:
    def test_measure_cycles(self):
        sim = Simulator(M604_185)
        cycles = sim.measure_cycles(lambda: sim.machine.clock.add(123, "x"))
        assert cycles == 123

    def test_cycles_to_us(self):
        sim = Simulator(M604_185)
        assert sim.cycles_to_us(185) == pytest.approx(1.0)

    def test_mb_per_s(self):
        sim = Simulator(M604_185)
        # 1 MB in 1 second's worth of cycles -> 1 MB/s.
        assert sim.mb_per_s(1_000_000, 185_000_000) == pytest.approx(1.0)
        assert sim.mb_per_s(100, 0) == 0.0

    def test_counters_and_breakdown_views(self):
        sim = Simulator(M604_185)
        task = sim.kernel.spawn("t", data_pages=4)
        sim.kernel.switch_to(task)
        sim.kernel.user_access(task, 0x10000000, 1, True)
        assert sim.counters()["page_fault_minor"] == 1
        assert sim.breakdown()
        assert sim.elapsed_us() > 0
