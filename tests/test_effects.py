"""Tests for ``repro.lint.effects`` — the interprocedural analyzer.

Four tiers:

* fixture mini-packages — for each of the four properties, a violating
  tree caught at the right site and a clean tree that passes, plus
  fixtures exercising the call-graph mechanics the properties stand on
  (transitive edges, pragma non-propagation, layer exemptions);
* mutation tests — seed one violation into a *copy* of the real
  package and assert exactly that property fires (proving each gate is
  live, not vacuous);
* artifact tests — the ``--effects-json`` document and ``--why``
  chains are well-formed and non-vacuous on the shipped tree;
* self-clean + CLI — the shipped package passes ``--effects``, which
  is what CI gates, and the new flags behave.
"""

import json
import shutil
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.lint import Baseline, LintEngine, KNOWN_RULE_IDS, rule_catalog
from repro.lint.cli import default_root, find_baseline
from repro.lint.effects import EFFECT_RULE_IDS, EffectRuleSuite
from repro.lint.effects.explain import effects_json, explain_why


def build_tree(tmp_path, files):
    """Write ``{rel: source}`` under a package dir named ``repro``."""
    root = tmp_path / "repro"
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return root


def run_effects(tmp_path, files):
    """Run only the four effect rules over a fixture tree."""
    suite = EffectRuleSuite(frozenset(KNOWN_RULE_IDS))
    root = build_tree(tmp_path, files)
    result = LintEngine(root, lint_rules=suite.rules()).run()
    return result, suite


def rules_fired(result):
    return {f.rule for f in result.findings}


# -- property 1: zero-perturbation closure -----------------------------------


#: A hook pair: the core calls ``tracer.publish`` (a perturbation
#: root), which reaches ``_poke`` two edges away.
_HOOKED_TRACER = {
    "hw/machine.py": """\
        class MachineModel:
            def step(self):
                self.tracer.publish(self)
    """,
    "obs/rec.py": """\
        class EventTracer:
            def __init__(self):
                self.ring = []

            def publish(self, machine):
                self.ring.append(machine.counter)
                self._poke(machine)

            def _poke(self, machine):
                machine.counter = machine.counter + 1
    """,
}


class TestPerturbationClosure:
    def test_transitive_foreign_write_flagged(self, tmp_path):
        result, _ = run_effects(tmp_path, _HOOKED_TRACER)
        (finding,) = result.findings
        assert finding.rule == "effect-perturbation"
        # Reported at the offending store, not the hook.
        assert finding.path == "obs/rec.py"
        assert "machine.counter" in finding.message

    def test_chain_names_the_root(self, tmp_path):
        result, _ = run_effects(tmp_path, _HOOKED_TRACER)
        (finding,) = result.findings
        assert "publish" in finding.message  # the root of the chain

    def test_read_only_observer_clean(self, tmp_path):
        files = dict(_HOOKED_TRACER)
        files["obs/rec.py"] = """\
            class EventTracer:
                def __init__(self):
                    self.ring = []

                def publish(self, machine):
                    self.ring.append(machine.counter)
                    self._poke(machine)

                def _poke(self, machine):
                    self.ring.append(len(self.ring))
        """
        result, _ = run_effects(tmp_path, files)
        assert result.findings == []

    def test_unhooked_writer_not_a_root(self, tmp_path):
        """The same writer with no core-side call site stays silent."""
        files = {"obs/rec.py": _HOOKED_TRACER["obs/rec.py"]}
        result, _ = run_effects(tmp_path, files)
        assert result.findings == []

    def test_observer_callback_is_a_root(self, tmp_path):
        """``<...>.observer = fn`` installs ``fn`` as an entry point."""
        result, _ = run_effects(tmp_path, {
            "hw/clock.py": """\
                from repro.obs.hooks import on_cycles

                class CycleLedger:
                    def install(self):
                        self.observer = on_cycles
            """,
            "obs/hooks.py": """\
                def on_cycles(machine, amount):
                    machine.poked = amount
            """,
        })
        (finding,) = result.findings
        assert finding.rule == "effect-perturbation"
        assert finding.path == "obs/hooks.py"


# -- property 2: cycle-ledger soundness --------------------------------------


class TestLedgerSoundness:
    def test_minting_outside_clock_flagged(self, tmp_path):
        result, _ = run_effects(tmp_path, {
            "kernel/sched.py": """\
                def cheat(clock):
                    clock.total += 64
            """,
        })
        (finding,) = result.findings
        assert finding.rule == "effect-ledger"
        assert (finding.path, finding.line) == ("kernel/sched.py", 2)

    def test_fires_even_when_unreachable(self, tmp_path):
        """Ledger soundness is global: no caller needed to report."""
        result, _ = run_effects(tmp_path, {
            "sim/dead.py": """\
                def _never_called(ledger):
                    ledger._by_category = {}
            """,
        })
        assert rules_fired(result) == {"effect-ledger"}

    def test_ledger_home_exempt(self, tmp_path):
        result, _ = run_effects(tmp_path, {
            "hw/clock.py": """\
                class CycleLedger:
                    def add(self, amount, category):
                        self.total += amount
            """,
        })
        assert result.findings == []

    def test_charging_through_add_clean(self, tmp_path):
        """Charges go through the one sanctioned entry point."""
        result, _ = run_effects(tmp_path, {
            "kernel/sched.py": """\
                def charge(clock):
                    clock.add(64, "dispatch")
            """,
        })
        assert result.findings == []


# -- property 3: determinism closure -----------------------------------------


class TestDeterminismClosure:
    def test_transitive_rng_flagged(self, tmp_path):
        result, _ = run_effects(tmp_path, {
            "analysis/engine.py": """\
                from repro.analysis.helpers import jitter

                def execute(spec):
                    return jitter()
            """,
            "analysis/helpers.py": """\
                import random

                def jitter():
                    return random.random()
            """,
        })
        (finding,) = result.findings
        assert finding.rule == "effect-determinism"
        # Reported at the RNG call, one module away from the root.
        assert (finding.path, finding.line) == ("analysis/helpers.py", 4)

    def test_wall_clock_flagged(self, tmp_path):
        result, _ = run_effects(tmp_path, {
            "analysis/engine.py": """\
                import time

                def execute(spec):
                    return time.monotonic()
            """,
        })
        (finding,) = result.findings
        assert finding.rule == "effect-determinism"

    def test_seeded_rng_clean(self, tmp_path):
        result, _ = run_effects(tmp_path, {
            "analysis/engine.py": """\
                import random

                def execute(spec):
                    rng = random.Random(7)
                    return rng.random()
            """,
        })
        assert result.findings == []

    def test_obs_layer_exempt(self, tmp_path):
        """Recorders observe from outside: their wall-clock use is
        reporting only, even when the engine reaches them."""
        result, _ = run_effects(tmp_path, {
            "analysis/engine.py": """\
                from repro.obs.stamp import wall_stamp

                def execute(spec):
                    return wall_stamp()
            """,
            "obs/stamp.py": """\
                import time

                def wall_stamp():
                    return time.time()
            """,
        })
        assert result.findings == []

    def test_pragma_site_does_not_propagate(self, tmp_path):
        """A pragma naming the matching per-file rule kills the site
        before the fixpoint: callers stay clean."""
        result, _ = run_effects(tmp_path, {
            "analysis/engine.py": """\
                from repro.analysis.helpers import jitter

                def execute(spec):
                    return jitter()
            """,
            "analysis/helpers.py": """\
                import random

                def jitter():
                    # repro-lint: disable=unseeded-random -- fixture
                    return random.random()
            """,
        })
        assert result.findings == []


# -- property 4: worker race freedom -----------------------------------------


class TestRaceFreedom:
    def test_pool_worker_module_write_flagged(self, tmp_path):
        result, _ = run_effects(tmp_path, {
            "sim/runner.py": """\
                from multiprocessing import Pool

                _CACHE = []

                def _work(job):
                    _CACHE.append(job)
                    return job

                def run_all(jobs):
                    with Pool() as pool:
                        return pool.map(_work, jobs)
            """,
        })
        (finding,) = result.findings
        assert finding.rule == "effect-race"
        assert (finding.path, finding.line) == ("sim/runner.py", 6)

    def test_process_target_flagged(self, tmp_path):
        result, _ = run_effects(tmp_path, {
            "sim/runner.py": """\
                from multiprocessing import Process

                _SEEN = {}

                def _work(job):
                    _SEEN[job] = True

                def launch(job):
                    return Process(target=_work, args=(job,))
            """,
        })
        (finding,) = result.findings
        assert finding.rule == "effect-race"

    def test_pure_worker_clean(self, tmp_path):
        result, _ = run_effects(tmp_path, {
            "sim/runner.py": """\
                from multiprocessing import Pool

                def _work(job):
                    return job * 2

                def run_all(jobs):
                    with Pool() as pool:
                        return pool.map(_work, jobs)
            """,
        })
        assert result.findings == []

    def test_unspawned_writer_clean(self, tmp_path):
        """Module-state writes are fine in functions never forked."""
        result, _ = run_effects(tmp_path, {
            "sim/runner.py": """\
                _CACHE = []

                def remember(job):
                    _CACHE.append(job)
            """,
        })
        assert result.findings == []


# -- mutation tests: each gate is live on the real package -------------------


def mutated_package(tmp_path, mutate):
    """Copy the installed package, apply ``mutate(root)``, return root."""
    root = tmp_path / "repro"
    shutil.copytree(default_root(), root,
                    ignore=shutil.ignore_patterns("__pycache__"))
    mutate(root)
    return root


def run_effects_on(root):
    suite = EffectRuleSuite(frozenset(KNOWN_RULE_IDS))
    return LintEngine(root, lint_rules=suite.rules()).run()


class TestMutations:
    def test_clean_copy_is_clean(self, tmp_path):
        root = mutated_package(tmp_path, lambda _root: None)
        assert run_effects_on(root).findings == []

    def test_perturbing_hook_fires(self, tmp_path):
        """A write-through-argument in a live tracer hook is caught."""
        def mutate(root):
            path = root / "obs/events.py"
            source = path.read_text()
            anchor = (
                '"""Publish a point event at the current simulated '
                'cycle."""'
            )
            assert anchor in source
            path.write_text(source.replace(
                anchor, anchor + "\n        args.owner = self", 1
            ))

        result = run_effects_on(mutated_package(tmp_path, mutate))
        assert rules_fired(result) == {"effect-perturbation"}
        assert any("args.owner" in f.message for f in result.findings)

    def test_minting_cycles_fires(self, tmp_path):
        def mutate(root):
            path = root / "kernel/flush.py"
            with path.open("a") as handle:
                handle.write(
                    "\n\ndef _mutation_mint(clock):\n"
                    "    clock.total += 100\n"
                )

        result = run_effects_on(mutated_package(tmp_path, mutate))
        assert rules_fired(result) == {"effect-ledger"}

    def test_engine_rng_fires(self, tmp_path):
        def mutate(root):
            path = root / "analysis/engine.py"
            with path.open("a") as handle:
                handle.write(
                    "\n\ndef _mutation_jitter():\n"
                    "    import random\n"
                    "    return random.random()\n"
                )

        result = run_effects_on(mutated_package(tmp_path, mutate))
        assert rules_fired(result) == {"effect-determinism"}

    def test_racing_worker_fires(self, tmp_path):
        def mutate(root):
            path = root / "analysis/engine.py"
            source = path.read_text()
            anchor = '"""Worker body: must be module-level so the pool'
            assert anchor in source
            index = source.index("\n", source.index(anchor))
            source = (
                source[:index]
                + "\n    _MUTATION_CACHE[str(job)] = True"
                + source[index:]
            )
            path.write_text(source + "\n_MUTATION_CACHE = {}\n")

        result = run_effects_on(mutated_package(tmp_path, mutate))
        assert rules_fired(result) == {"effect-race"}


# -- artifacts: --effects-json and --why -------------------------------------


@pytest.fixture(scope="module")
def shipped_suite():
    suite = EffectRuleSuite(frozenset(KNOWN_RULE_IDS))
    result = LintEngine(default_root(), lint_rules=suite.rules()).run()
    assert suite.analysis is not None and suite.roots is not None
    return result, suite


class TestArtifacts:
    def test_effects_json_shape(self, shipped_suite):
        _, suite = shipped_suite
        doc = effects_json(suite.analysis, suite.roots)
        assert set(doc) == {"functions", "roots", "totals"}
        totals = doc["totals"]
        assert totals["functions"] == len(doc["functions"])
        assert totals["functions"] > 500
        for qualname, entry in doc["functions"].items():
            assert entry["rel"].endswith(".py")
            assert set(entry["effects"]) >= set(entry["direct"])

    def test_roots_are_non_vacuous(self, shipped_suite):
        """The shipped tree has live hooks, engine entry points and a
        forked worker — an empty root set would make the properties
        vacuously true."""
        _, suite = shipped_suite
        roots = suite.roots
        assert len(roots.perturbation) >= 5
        assert len(roots.determinism) >= 3
        assert any("_run_one_job" in q for q in roots.race)

    def test_why_resolves_a_chain(self, shipped_suite):
        _, suite = shipped_suite
        out = explain_why(suite.analysis, suite.roots, "Tlb.lookup")
        assert "Tlb.lookup" in out

    def test_why_unknown_function(self, shipped_suite):
        _, suite = shipped_suite
        out = explain_why(
            suite.analysis, suite.roots, "no_such_function_xyz"
        )
        assert "no function" in out.lower()


# -- severity metadata (satellite: self-describing output) -------------------


class TestSeverity:
    def test_catalog_is_self_describing(self):
        for entry in rule_catalog():
            assert entry["severity"] in ("error", "warn")
            assert entry["kind"] in ("file", "project", "effect", "pseudo")
        by_id = {entry["id"]: entry for entry in rule_catalog()}
        for rule_id in EFFECT_RULE_IDS:
            assert by_id[rule_id]["kind"] == "effect"
        assert by_id["geometry-literal"]["severity"] == "warn"

    def test_warn_findings_do_not_fail(self, tmp_path):
        root = build_tree(tmp_path, {
            "kernel/a.py": """\
                def page_index(ea):
                    return (ea >> 12) & 0xFFFF
            """,
        })
        result = LintEngine(root).run()
        assert result.ok  # warn-only trees pass by default
        assert result.warnings and not result.errors
        record = result.to_record()
        assert record["counts"]["error"] == 0
        assert record["counts"]["warn"] == len(result.warnings)
        assert all(
            f["severity"] == "warn" for f in record["findings"]
        )


# -- self-clean and CLI ------------------------------------------------------


def run_cli(*argv):
    return subprocess.run(
        [sys.executable, "-m", "repro", "lint", *argv],
        capture_output=True, text=True,
    )


class TestSelfClean:
    def test_repo_passes_effects(self):
        """The acceptance gate: the shipped tree proves all four
        properties with zero findings."""
        suite = EffectRuleSuite(frozenset(KNOWN_RULE_IDS))
        baseline = Baseline.load(find_baseline(default_root()))
        engine = LintEngine(
            default_root(), lint_rules=suite.rules(), baseline=baseline
        )
        result = engine.run()
        assert result.findings == []
        assert result.baselined == []


class TestCli:
    def test_effects_exit_zero(self):
        proc = run_cli("--effects")
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_effects_json_to_stdout(self):
        proc = run_cli("--effects", "--effects-json", "-")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        doc = json.loads(proc.stdout[: proc.stdout.rindex("}") + 1])
        assert doc["totals"]["functions"] > 500

    def test_effects_json_to_file(self, tmp_path):
        out = tmp_path / "effects.json"
        proc = run_cli("--effects", "--effects-json", str(out))
        assert proc.returncode == 0, proc.stdout + proc.stderr
        doc = json.loads(out.read_text())
        assert set(doc) == {"functions", "roots", "totals"}

    def test_why_prints_a_chain(self):
        proc = run_cli("--effects", "--why", "Tlb.lookup")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "Tlb.lookup" in proc.stdout

    def test_effect_finding_fails_run(self, tmp_path):
        root = build_tree(tmp_path, {
            "kernel/sched.py": """\
                def cheat(clock):
                    clock.total += 64
            """,
        })
        proc = run_cli("--root", str(root), "--no-baseline", "--effects")
        assert proc.returncode == 1
        assert "[effect-ledger]" in proc.stdout

    def test_fail_on_warn(self, tmp_path):
        root = build_tree(tmp_path, {
            "kernel/a.py": """\
                def page_index(ea):
                    return (ea >> 12) & 0xFFFF
            """,
        })
        lenient = run_cli("--root", str(root), "--no-baseline")
        assert lenient.returncode == 0, lenient.stdout + lenient.stderr
        strict = run_cli(
            "--root", str(root), "--no-baseline", "--fail-on-warn"
        )
        assert strict.returncode == 1
        assert "warn" in strict.stdout
