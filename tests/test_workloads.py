"""Small-scale sanity runs of the paper workloads.

Full paper-scale runs live in ``benchmarks/``; these verify that each
workload runs end to end and produces sane units.
"""

import pytest

from repro.kernel.config import KernelConfig
from repro.params import M604_185
from repro.sim.simulator import boot
from repro.workloads.kbuild import (
    CACHE_RESIDENT,
    KbuildProfile,
    TLB_STORM,
    kernel_compile,
)
from repro.workloads.lmbench import (
    context_switch,
    file_reread,
    lmbench_suite,
    mmap_latency,
    null_syscall,
    pipe_bandwidth,
    pipe_latency,
    process_start,
)
from repro.workloads.mixes import multiprogram_mix


def mk():
    return boot(M604_185, KernelConfig.optimized())


class TestLmbenchPoints:
    def test_null_syscall_microseconds(self):
        value = null_syscall(mk(), iterations=50)
        assert 0.5 < value < 30

    def test_context_switch(self):
        value = context_switch(mk(), nproc=2, iterations=10)
        assert 0 <= value < 100

    def test_context_switch_with_working_set_stays_sane(self):
        loaded = context_switch(
            mk(), nproc=4, iterations=10, working_set_kb=16
        )
        # Net-of-overhead switch time is clamped non-negative and finite.
        assert 0 <= loaded < 1000

    def test_pipe_latency(self):
        value = pipe_latency(mk(), iterations=10)
        assert 1 < value < 500

    def test_pipe_bandwidth(self):
        value = pipe_bandwidth(mk(), total_bytes=256 * 1024)
        assert 5 < value < 500

    def test_file_reread(self):
        value = file_reread(mk(), file_bytes=512 * 1024)
        assert 5 < value < 500

    def test_mmap_latency(self):
        value = mmap_latency(mk(), region_bytes=1024 * 1024, iterations=3)
        assert 1 < value < 10000

    def test_process_start(self):
        value = process_start(mk(), iterations=2)
        assert 0.1 < value < 20

    def test_suite_runs_selected_points(self):
        result = lmbench_suite(
            mk, label="test", points=("null_syscall", "ctxsw")
        )
        assert result.null_syscall_us is not None
        assert result.ctxsw_us is not None
        assert result.pipe_bw_mb_s is None
        assert result.label == "test"


class TestKbuild:
    def test_small_compile_runs(self):
        result = kernel_compile(mk(), units=2, profile=CACHE_RESIDENT)
        assert result.units == 2
        assert result.wall_ms > 0
        assert result.tlb_misses > 0
        assert result.counters["context_switch"] > 0

    def test_storm_profile_has_more_tlb_pressure(self):
        quiet = kernel_compile(mk(), units=2, profile=CACHE_RESIDENT)
        storm = kernel_compile(mk(), units=2, profile=TLB_STORM)
        assert (
            storm.tlb_misses / storm.wall_cycles
            > quiet.tlb_misses / quiet.wall_cycles
        )

    def test_profile_properties(self):
        profile = KbuildProfile(
            name="x", data_pages=10, visits=10, hot_fraction=1.0,
            lines_per_visit=4, source_bytes=8192,
        )
        assert profile.source_pages == 2
        assert profile.phases == 2


class TestMix:
    def test_small_mix_runs(self):
        result = multiprogram_mix(
            mk(), nproc=3, rounds=6, churn_every=2, think_cycles=5000,
            ws_pages=10, visits=10, samples=2,
        )
        assert result.wall_cycles > 0
        assert result.samples
        assert 0 <= result.occupancy <= 1
        assert result.valid_entries >= result.live_entries
