"""Table 3 OS profiles."""

from repro.kernel.config import KernelConfig
from repro.oscompare.profiles import (
    AIX,
    LINUX_PPC,
    LINUX_PPC_UNOPTIMIZED,
    MKLINUX,
    RHAPSODY,
    TABLE3_PROFILES,
)
from repro.oscompare.runner import PAPER_TABLE3


class TestProfiles:
    def test_five_columns_in_paper_order(self):
        names = [profile.name for profile in TABLE3_PROFILES]
        assert names == [
            "Linux/PPC",
            "Unoptimized Linux/PPC",
            "Rhapsody 5.0",
            "MkLinux",
            "AIX",
        ]

    def test_linux_columns_are_native(self):
        assert LINUX_PPC.native and LINUX_PPC_UNOPTIMIZED.native
        assert not RHAPSODY.native and not AIX.native

    def test_native_configs_match_presets(self):
        assert LINUX_PPC.config == KernelConfig.optimized()
        assert LINUX_PPC_UNOPTIMIZED.config == KernelConfig.unoptimized()

    def test_microkernels_pay_ipc_overheads(self):
        for mach in (RHAPSODY, MKLINUX):
            assert mach.config.pipe_op_extra_cycles > 0
            assert mach.config.ctxsw_cycles > 5000

    def test_aix_monolithic_but_heavier_than_linux(self):
        assert AIX.config.syscall_entry_cycles > 1000
        assert AIX.config.ctxsw_cycles < RHAPSODY.config.ctxsw_cycles

    def test_paper_values_cover_every_profile(self):
        for profile in TABLE3_PROFILES:
            assert profile.name in PAPER_TABLE3
