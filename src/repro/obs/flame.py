"""Flamegraph export: span trees out of the flight recorder's ring.

The tracer's ring (see :mod:`repro.obs.events`) stores completed spans
flat, in completion order.  This module reconstructs the nesting —
a span is a child of the innermost span that fully contains it on the
same task lane — and exports the resulting forest in the two formats
profiler tooling actually consumes:

* collapsed-stack ("folded") lines, one ``frame;frame;frame weight``
  per unique stack, weighted by *self* cycles — the input format of
  ``flamegraph.pl`` and every inferno-style renderer;
* speedscope's evented JSON, one profile per machine/task lane, which
  preserves the timeline (open/close event pairs in simulated cycles).

Both are pure functions of the ring: identical runs export identical
bytes, and exporting perturbs nothing (the contract the whole recorder
is built on — a traced run is bit-identical to an untraced one).

``SPAN_CATEGORY`` maps every span event the tracer can publish to the
profiler's path taxonomy, so folded frames carry the same category
names the cycle attribution uses.  It is a literal dict on purpose:
the observatory-closure lint pass reads it from the AST and checks
the keys against ``EVENT_NAMES`` of ``obs/events.py`` and the values
against ``PATH_CATEGORIES`` of ``obs/profiler.py``.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

#: Span event name -> path category (the profiler's taxonomy).  Keys
#: must be registered span names in EVENT_NAMES; values must be
#: registered path categories (or the "other" fallback).  Checked by
#: ``repro lint``.
SPAN_CATEGORY: Dict[str, str] = {
    "hw-walk": "tlb-reload",
    "sw-refill": "tlb-reload",
    "scavenge-burst": "tlb-reload",
    "flush-page": "flush",
    "flush-range": "flush",
    "flush-mm": "flush",
    "flush-everything": "flush",
    "vsid-bump": "flush",
    "shootdown-drain": "shootdown",
    "reclaim-chunk": "idle",
    "idle-window": "idle",
    "page-fault": "fault",
    "req-queue": "service",
    "req-run": "service",
}


class Span:
    """One reconstructed span: name, extent in simulated cycles, kids."""

    __slots__ = ("name", "category", "start", "end", "tid", "children")

    def __init__(self, name: str, category: str, start: int, end: int,
                 tid: int) -> None:
        self.name = name
        self.category = category
        self.start = start
        self.end = end
        self.tid = tid
        self.children: List["Span"] = []

    @property
    def total(self) -> int:
        return self.end - self.start

    @property
    def self_cycles(self) -> int:
        return self.total - sum(child.total for child in self.children)

    def frame(self) -> str:
        """The folded-stack frame label: name, tagged with its category."""
        category = SPAN_CATEGORY.get(self.name, self.category)
        return f"{self.name} [{category}]"


def span_forest(tracer: Any) -> Dict[int, List[Span]]:
    """Rebuild the span nesting from one tracer's ring, per task lane.

    Spans nest when one fully contains the other; spans that merely
    overlap (possible at the ring's drop boundary, where a parent's
    completion was evicted) are treated as siblings.  The sort key
    ``(start, -end, index)`` makes the reconstruction deterministic
    and parent-before-child.
    """
    from repro.obs.events import PH_COMPLETE

    by_tid: Dict[int, List[Tuple[int, int, int, str, str]]] = {}
    for index, (ts, dur, ph, category, name, tid, _args) in enumerate(
        tracer.events
    ):
        if ph != PH_COMPLETE:
            continue
        by_tid.setdefault(tid, []).append(
            (ts, ts + (dur or 0), index, name, category)
        )
    forest: Dict[int, List[Span]] = {}
    for tid in sorted(by_tid):
        roots: List[Span] = []
        stack: List[Span] = []
        for start, end, _index, name, category in sorted(
            by_tid[tid], key=lambda item: (item[0], -item[1], item[2])
        ):
            span = Span(name, category, start, end, tid)
            while stack and (start >= stack[-1].end
                             or end > stack[-1].end):
                stack.pop()
            if stack:
                stack[-1].children.append(span)
            else:
                roots.append(span)
            stack.append(span)
        forest[tid] = roots
    return forest


def _lane_label(label: str, tid: int) -> str:
    return f"{label}/task{tid}"


def folded(tracers: Iterable[Any]) -> List[str]:
    """Collapsed-stack lines for a list of tracers, sorted and merged.

    Each line is ``lane;frame;...;frame self_cycles``; identical stacks
    across the forest merge, and the line order is lexicographic —
    byte-deterministic for a given ring.
    """
    weights: Dict[str, int] = {}

    def walk(span: Span, prefix: str) -> None:
        stack = f"{prefix};{span.frame()}"
        self_cycles = span.self_cycles
        if self_cycles > 0:
            weights[stack] = weights.get(stack, 0) + self_cycles
        for child in span.children:
            walk(child, stack)

    for tracer in tracers:
        for tid, roots in span_forest(tracer).items():
            lane = _lane_label(tracer.label, tid)
            for root in roots:
                walk(root, lane)
    return [f"{stack} {weight}" for stack, weight in sorted(weights.items())]


def speedscope(tracers: Iterable[Any],
               name: str = "repro trace") -> Dict:
    """The span forest as a speedscope evented-profile document.

    One profile per machine/task lane; ``at`` values are simulated
    cycles (unit ``none`` — speedscope treats them as abstract ticks).
    Every open event has a matching close and lanes are properly
    nested, which :func:`validate_speedscope` (and speedscope itself)
    checks.
    """
    frames: List[Dict[str, str]] = []
    frame_index: Dict[str, int] = {}

    def frame_of(span: Span) -> int:
        label = span.frame()
        if label not in frame_index:
            frame_index[label] = len(frames)
            frames.append({"name": label})
        return frame_index[label]

    profiles = []
    for tracer in tracers:
        for tid, roots in span_forest(tracer).items():
            if not roots:
                continue
            events: List[Dict[str, int]] = []
            # Spans are timestamped retroactively at completion, so two
            # siblings can overlap by a few cycles (their durations are
            # accounted separately, not nested).  The cursor clamps the
            # event stream monotonic, which the evented format requires;
            # total extents are unchanged beyond those slivers.
            cursor = roots[0].start

            def emit(span: Span) -> None:
                nonlocal cursor
                cursor = max(cursor, span.start)
                events.append(
                    {"type": "O", "frame": frame_of(span), "at": cursor}
                )
                for child in span.children:
                    emit(child)
                cursor = max(cursor, span.end)
                events.append(
                    {"type": "C", "frame": frame_of(span), "at": cursor}
                )

            for root in roots:
                emit(root)
            profiles.append({
                "type": "evented",
                "name": _lane_label(tracer.label, tid),
                "unit": "none",
                "startValue": roots[0].start,
                "endValue": events[-1]["at"],
                "events": events,
            })
    return {
        "$schema": "https://www.speedscope.app/file-format-schema.json",
        "shared": {"frames": frames},
        "profiles": profiles,
        "name": name,
        "exporter": "repro trace",
        "activeProfileIndex": 0,
    }


def validate_speedscope(doc: Dict) -> Dict[str, int]:
    """Check a speedscope document is well-formed and balanced.

    Raises :class:`ValueError` on the first problem; returns
    ``{"frames": n, "profiles": n, "events": n}``.
    """
    if not isinstance(doc, dict) or "profiles" not in doc:
        raise ValueError("not a speedscope doc: missing 'profiles'")
    frames = doc.get("shared", {}).get("frames")
    if not isinstance(frames, list):
        raise ValueError("speedscope doc needs shared.frames")
    counts = {"frames": len(frames), "profiles": 0, "events": 0}
    for number, profile in enumerate(doc["profiles"]):
        if profile.get("type") != "evented":
            raise ValueError(f"profile {number} is not evented")
        stack: List[int] = []
        last_at = profile.get("startValue", 0)
        for event in profile.get("events", []):
            kind = event.get("type")
            frame = event.get("frame")
            at = event.get("at")
            if not isinstance(frame, int) or not 0 <= frame < len(frames):
                raise ValueError(
                    f"profile {number}: frame {frame!r} out of range"
                )
            if not isinstance(at, (int, float)) or at < last_at:
                raise ValueError(
                    f"profile {number}: 'at' went backwards ({at!r})"
                )
            last_at = at
            if kind == "O":
                stack.append(frame)
            elif kind == "C":
                if not stack or stack[-1] != frame:
                    raise ValueError(
                        f"profile {number}: close of frame {frame} does "
                        f"not match open stack {stack}"
                    )
                stack.pop()
            else:
                raise ValueError(
                    f"profile {number}: unknown event type {kind!r}"
                )
            counts["events"] += 1
        if stack:
            raise ValueError(
                f"profile {number}: {len(stack)} span(s) left open"
            )
        counts["profiles"] += 1
    return counts


def critical_path(tracers: Iterable[Any], limit: int = 12) -> List[Dict[str, object]]:
    """The heaviest root-to-leaf chain across the whole forest.

    "Heaviest" is by total cycles at each level — the chain a
    flamegraph reader would trace with a finger, extracted as data:
    one record per depth with the span name, lane, total and self
    cycles, and the share of its parent it covers.
    """
    best_root: Optional[Span] = None
    best_lane = ""
    for tracer in tracers:
        for tid, roots in span_forest(tracer).items():
            for root in roots:
                if best_root is None or root.total > best_root.total:
                    best_root = root
                    best_lane = _lane_label(tracer.label, tid)
    if best_root is None:
        return []
    path: List[Dict[str, object]] = []
    span: Optional[Span] = best_root
    parent_total = best_root.total
    depth = 0
    while span is not None and depth < limit:
        path.append({
            "depth": depth,
            "lane": best_lane,
            "name": span.name,
            "category": SPAN_CATEGORY.get(span.name, span.category),
            "total_cycles": span.total,
            "self_cycles": span.self_cycles,
            "share_of_parent": round(
                span.total / parent_total, 4
            ) if parent_total else 1.0,
        })
        parent_total = span.total
        span = max(
            span.children, key=lambda child: (child.total, -child.start),
            default=None,
        )
        depth += 1
    return path


def render_critical_path(path: List[Dict[str, object]]) -> str:
    """The critical path as indented text (printed by ``repro trace``)."""
    if not path:
        return "critical path: no spans recorded\n"
    lines = [f"critical path ({path[0]['lane']}):"]
    for record in path:
        indent = "  " * (int(record["depth"]) + 1)
        lines.append(
            f"{indent}{record['name']} [{record['category']}] "
            f"{record['total_cycles']:,} cycles "
            f"(self {record['self_cycles']:,}, "
            f"{record['share_of_parent']:.0%} of parent)"
        )
    return "\n".join(lines) + "\n"
