"""Machine-readable metrics: one serialization for every consumer.

``repro run --json``, ``repro check --json``, the benchmark suite's
per-experiment records and the repo-root ``BENCH_results.json``
aggregate all flow through here, so a run is diffable mechanically —
the ISSUE's "perf trajectory" artifact.  Records are deterministic:
no wall-clock timestamps, keys sorted at serialization time.
"""

from __future__ import annotations

import json
import pathlib
import re
from typing import Any, Dict, List, Optional, Sequence

from repro.obs import analytics

#: Schema version for BENCH_results.json consumers.  v2: records are
#: emitted in sorted_ids() order under a ``schema_version`` field, and
#: an optional ``timings`` section carries wall seconds per experiment
#: (the one part of the document exempt from determinism — two
#: otherwise-identical runs differ only there).  v3: every record
#: carries the observatory's ``derived`` analytics block, and documents
#: are checked by :func:`validate_bench_doc` before they are written or
#: compared.  v4: one record builder for every producer — each record
#: carries ``total_cycles``/``machine``/``simulators``/``attribution``
#: (previously dropped by the engine's builder, which made
#: ``summary.total_cycles`` always 0) plus the spec's ``section`` and
#: ``variants``, and the validator rejects records whose
#: ``total_cycles`` is missing or non-positive.
BENCH_SCHEMA = 4


def json_safe(value: Any) -> Any:
    """Coerce a measured-values structure into JSON-serializable form."""
    if isinstance(value, dict):
        return {str(key): json_safe(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [json_safe(item) for item in value]
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, (int, str)):
        return value
    if isinstance(value, float):
        # NaN/inf are not valid JSON; stringify the rare pathological case.
        return value if value == value and abs(value) != float("inf") else str(value)
    return str(value)


def experiment_record(result: Any, observed: Sequence[Any] = (),
                      spec: Any = None) -> Dict:
    """One structured record for an :class:`ExperimentResult`.

    The *only* bench-record builder: the benchmark suite (live
    ``observed`` handles), the engine's cached path (``spec`` only) and
    the obs session all funnel through here, so every record carries
    the same field set (:data:`RECORD_REQUIRED`) and
    ``summary.total_cycles`` aggregates something real on every path.

    ``observed`` is the list of :class:`~repro.obs.Observability`
    handles drained from the run (one per machine the experiment
    booted); when absent, total cycles, machines, simulator count and
    the cycle attribution are lifted from the result's ``derived``
    block (the engine always attaches one).  ``spec`` supplies the
    registry metadata (section, variants) the result itself does not
    carry; callers that can reach the registry pass it.
    """
    observed = list(observed)
    derived = json_safe(
        result.derived if getattr(result, "derived", None)
        else analytics.derive(observed)
    )
    if observed:
        machines: List[str] = []
        for obs in observed:
            name = obs.machine.spec.name
            if name not in machines:
                machines.append(name)
        total_cycles = sum(obs.machine.clock.total for obs in observed)
        simulators = len(observed)
        attribution: Dict[str, int] = {}
        for obs in observed:
            if obs.profiler is None:
                continue
            for category, cycles in obs.profiler.attribution().items():
                attribution[category] = attribution.get(category, 0) + cycles
    else:
        machines = list(derived.get("machines", []))
        if not machines and spec is not None:
            machines = spec.machine_names()
        total_cycles = derived.get("total_cycles", 0)
        simulators = derived.get("simulators", 0)
        attribution = dict(derived.get("attribution", {}).get("cycles", {}))
    record = {
        "id": result.experiment,
        "title": result.title,
        "machine": ", ".join(machines),
        "machines": machines,
        "simulators": simulators,
        "total_cycles": total_cycles,
        "shape_holds": result.shape_holds,
        "measured": json_safe(result.measured),
        "paper": json_safe(result.paper),
        "attribution": attribution,
        "derived": derived,
    }
    if spec is not None:
        record["section"] = spec.section
        record["variants"] = [variant.label for variant in spec.variants]
    if result.notes:
        record["notes"] = result.notes
    return record


def dumps(record: Any) -> str:
    """The one true serialization: sorted keys, stable indentation."""
    return json.dumps(record, indent=2, sort_keys=True) + "\n"


# -- BENCH_results.json aggregation ----------------------------------------

_RECORD_NAME = re.compile(r"^E(\d+)\.json$")


def collect_bench_records(reports_dir: Any) -> List[Dict]:
    """Load every per-experiment JSON record under ``reports_dir``."""
    reports_dir = pathlib.Path(reports_dir)
    found = []
    for path in reports_dir.glob("E*.json"):
        match = _RECORD_NAME.match(path.name)
        if match is None:
            continue
        found.append((int(match.group(1)), json.loads(path.read_text())))
    return [record for _number, record in sorted(found, key=lambda x: x[0])]


def bench_doc(
    records: List[Dict],
    source: str = "benchmarks/reports/*.json "
                  "(regenerated by the benchmark suite)",
    timings: Optional[Dict[str, float]] = None,
) -> Dict:
    """The BENCH_results.json document for a list of records.

    ``records`` must already be in registry order; ``timings`` maps
    experiment id to wall seconds and is the only nondeterministic
    section of the document.
    """
    doc = {
        "schema_version": BENCH_SCHEMA,
        "source": source,
        "experiments": records,
        "summary": {
            "experiments": len(records),
            "shapes_holding": sum(
                1 for record in records if record.get("shape_holds")
            ),
            "total_cycles": sum(
                record.get("total_cycles", 0) for record in records
            ),
        },
    }
    if timings is not None:
        doc["timings"] = {
            key: round(value, 3) for key, value in sorted(timings.items())
        }
    return doc


#: Keys every bench record must carry — every producer funnels through
#: :func:`experiment_record`, and :func:`validate_bench_doc` rejects a
#: record missing any of them.  A literal tuple on purpose: ``repro
#: lint``'s observatory-closure pass reads it from the AST and checks
#: the history ledger's ``RECORD_FIELDS`` stay a subset of it.
RECORD_REQUIRED = ("id", "title", "machines", "total_cycles",
                   "shape_holds", "measured", "paper", "attribution",
                   "derived")

_RECORD_ID = re.compile(r"^E\d+$")


def validate_bench_doc(doc: Any) -> Dict[str, int]:
    """Check a document is a well-formed BENCH_results.json.

    The bench-doc counterpart of
    :func:`repro.obs.events.validate_chrome_trace`: raises
    :class:`ValueError` on the first malformed section — including a
    ``schema_version`` skew, which would otherwise surface as a
    nonsense diff in ``repro bench compare`` — and returns summary
    counts so callers can also assert non-emptiness.
    """
    if not isinstance(doc, dict) or "experiments" not in doc:
        raise ValueError("not a bench doc: missing 'experiments'")
    version = doc.get("schema_version")
    if version != BENCH_SCHEMA:
        raise ValueError(
            f"bench doc schema_version {version!r} != supported "
            f"{BENCH_SCHEMA}; regenerate the artifact"
        )
    records = doc["experiments"]
    if not isinstance(records, list):
        raise ValueError("'experiments' must be a list")
    counts = {"experiments": 0, "shapes_holding": 0, "derived": 0}
    previous = 0
    for index, record in enumerate(records):
        if not isinstance(record, dict):
            raise ValueError(f"record {index} is not an object")
        for key in RECORD_REQUIRED:
            if key not in record:
                raise ValueError(
                    f"record {index} missing {key!r}: "
                    f"{sorted(record)}"
                )
        record_id = record["id"]
        if not isinstance(record_id, str) or not _RECORD_ID.match(record_id):
            raise ValueError(f"record {index} has bad id: {record_id!r}")
        number = int(record_id[1:])
        if number <= previous:
            raise ValueError(
                f"records out of registry order at {record_id} "
                f"(after E{previous})"
            )
        previous = number
        if not isinstance(record["shape_holds"], bool):
            raise ValueError(f"{record_id}: shape_holds must be a bool")
        cycles = record["total_cycles"]
        if not isinstance(cycles, int) or isinstance(cycles, bool) \
                or cycles <= 0:
            raise ValueError(
                f"{record_id}: total_cycles must be a positive int, got "
                f"{cycles!r} (a record that simulated nothing is a "
                "producer bug, and summary.total_cycles would be "
                "silently understated)"
            )
        for key in ("measured", "paper", "attribution", "derived"):
            if not isinstance(record[key], dict):
                raise ValueError(f"{record_id}: {key!r} must be an object")
        if not isinstance(record["machines"], list):
            raise ValueError(f"{record_id}: 'machines' must be a list")
        counts["experiments"] += 1
        counts["shapes_holding"] += 1 if record["shape_holds"] else 0
        counts["derived"] += 1 if record["derived"] else 0
    summary = doc.get("summary")
    if not isinstance(summary, dict):
        raise ValueError("bench doc missing 'summary' object")
    for key, expected in (
        ("experiments", counts["experiments"]),
        ("shapes_holding", counts["shapes_holding"]),
    ):
        if summary.get(key) != expected:
            raise ValueError(
                f"summary.{key} = {summary.get(key)!r} does not match "
                f"the records ({expected})"
            )
    total = sum(record["total_cycles"] for record in records)
    if summary.get("total_cycles") != total:
        raise ValueError(
            f"summary.total_cycles = {summary.get('total_cycles')!r} "
            f"does not match the records ({total})"
        )
    timings = doc.get("timings")
    if timings is not None:
        if not isinstance(timings, dict):
            raise ValueError("'timings' must be an object")
        for key, value in sorted(timings.items()):
            if not isinstance(value, (int, float)) or isinstance(value, bool) \
                    or value < 0:
                raise ValueError(f"timings[{key!r}] is not a wall time: "
                                 f"{value!r}")
    return counts


def write_bench_results(
    reports_dir: Any, out_path: Any,
    timings: Optional[Dict[str, float]] = None
) -> Dict:
    """Aggregate per-experiment records into one BENCH_results.json."""
    doc = bench_doc(collect_bench_records(reports_dir), timings=timings)
    validate_bench_doc(doc)
    pathlib.Path(out_path).write_text(dumps(doc))
    return doc


def load_bench_doc(path: Any) -> Dict:
    """Read and validate a bench artifact (the compare/report input)."""
    try:
        doc = json.loads(pathlib.Path(path).read_text())
    except ValueError as exc:
        raise ValueError(f"{path}: not JSON: {exc}") from exc
    try:
        validate_bench_doc(doc)
    except ValueError as exc:
        raise ValueError(f"{path}: {exc}") from exc
    return doc


def write_experiment_record(record: Dict, reports_dir: Any) -> pathlib.Path:
    """Save one experiment record as ``reports_dir/<id>.json``."""
    reports_dir = pathlib.Path(reports_dir)
    path = reports_dir / f"{record['id']}.json"
    path.write_text(dumps(record))
    return path
