"""Time-series sampling — layer 3 of the MMU flight recorder.

§7's headline curves are *trajectories*, not endpoints: hash-table
occupancy growing from 600–700 to 1400–2200 live entries, the evict
ratio collapsing from >90% to ~30%.  The repro previously exposed only
endpoint deltas; this sampler snapshots the monitor counters and the
hash table's occupancy/zombie state every N simulated microseconds, so
those curves become first-class, plottable artifacts.

Sampling rides the cycle ledger's observer hook: whenever charged
cycles cross the next sample boundary, a snapshot is taken.  Every read
is counter-free (``snapshot``, ``live_zombie_histogram``), so sampled
runs stay bit-identical to unsampled ones.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

#: Monitor counters republished as Chrome counter tracks (so Perfetto
#: plots them as curves next to the occupancy track).
CURVE_COUNTERS = (
    "itlb_miss",
    "dtlb_miss",
    "htab_reload",
    "htab_evict",
    "zombie_reclaimed",
)

#: Per-VSID detail kept per sample: the K heaviest VSIDs, everything
#: else folded into one remainder bucket.  Bounds each occupancy tick
#: at O(K) record size however many thousand contexts a service-scale
#: run churns (the full per-VSID map would be O(distinct VSIDs)).
VSID_TOP_K = 8


class TimeSeriesSampler:
    """Snapshots monitor + HTAB state on a fixed simulated-time grid."""

    def __init__(self, kernel: Any, every_us: float,
                 tracer: Any = None,
                 max_samples: int = 100_000) -> None:
        if every_us <= 0:
            raise ValueError(f"sample interval must be positive: {every_us}")
        self.kernel = kernel
        self.machine = kernel.machine
        self.tracer = tracer
        self.every_us = every_us
        self.every_cycles = max(
            1, int(every_us * self.machine.spec.clock_mhz)
        )
        self.max_samples = max_samples
        self.samples: List[Dict] = []
        self._next = self.every_cycles

    # -- the ledger observer -------------------------------------------------

    def on_cycles(self, total: int) -> None:
        """Called by the ledger after every charge; samples on boundaries."""
        if total < self._next:
            return
        if len(self.samples) < self.max_samples:
            self._sample(total)
        # One sample per crossing, however large the charge was.
        self._next = total - (total % self.every_cycles) + self.every_cycles

    def _sample(self, total: int) -> None:
        machine = self.machine
        htab = machine.htab
        # Incrementally-maintained table population: same numbers the
        # full live/zombie histogram sums to, at O(live VSIDs) per tick.
        live, zombie = htab.live_and_zombie_counts(
            self.kernel.vsid_allocator.is_live
        )
        valid = live + zombie
        hottest = htab.hottest_bucket_load()
        vsids = htab.top_vsid_loads(
            VSID_TOP_K, self.kernel.vsid_allocator.is_live
        )
        if machine.n_cpus > 1:
            counters = machine.monitor_totals()
        else:
            counters = machine.monitor.snapshot()
        sample = {
            "cycle": total,
            "us": round(machine.spec.cycles_to_us(total), 3),
            "htab": {
                "live": live,
                "zombie": zombie,
                "valid": valid,
                "occupancy": round(valid / htab.slots, 6),
                "hottest_bucket": hottest,
                "vsids": vsids,
            },
            "counters": counters,
        }
        if machine.n_cpus > 1:
            # Per-CPU ledger occupancy: where simulated time is accruing
            # across the machine at this sample boundary.
            sample["cpu_cycles"] = machine.cpu_cycle_totals()
        self.samples.append(sample)
        if self.tracer is not None:
            self.tracer.counter(
                "htab", {"live": live, "zombie": zombie}
            )
            self.tracer.counter(
                "occupancy", {"valid": valid}
            )
            curve = {
                name: counters.get(name, 0) for name in CURVE_COUNTERS
            }
            self.tracer.counter("monitor", curve)
            rest = vsids["rest"]
            self.tracer.counter(
                "vsids",
                {
                    "top_entries": sum(
                        entry["entries"] for entry in vsids["top"]
                    ),
                    "rest_entries": rest["entries"],
                    "rest_zombie": rest["zombie_entries"],
                },
            )

    # -- export ----------------------------------------------------------------

    def series(self, *path: str) -> List:
        """One column of the time series, e.g. ``series("htab", "live")``."""
        out = []
        for sample in self.samples:
            value: object = sample
            for key in path:
                value = value[key]  # type: ignore[index]
            out.append(value)
        return out

    def to_records(self) -> List[Dict]:
        return [dict(sample) for sample in self.samples]


def attach_clock_observer(clock: Any,
                          sampler: Optional[TimeSeriesSampler]) -> None:
    """Wire a sampler into a ledger (or clear the hook with ``None``)."""
    # repro-lint: disable=zero-perturbation -- sanctioned attach point for
    # the ledger's read-only observer slot.
    clock.observer = None if sampler is None else sampler.on_cycles
