"""Structural diffing of runs and config variants.

The paper's tables are all pairwise comparisons — hash vs no-hash
reload (Table 1), flush strategies (Table 2), reclaim on vs off (§8).
This module makes that comparison mechanical: flatten two records (or
the derived blocks of two :class:`ConfigVariant` cells of one
experiment) into dotted-path leaves, then report what changed, by how
much, and what exists on only one side.

Like :mod:`repro.obs.session`, this module imports the experiment
registry and therefore stays out of ``repro.obs.__init__``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis.spec import ExperimentSpec
from repro.obs import analytics

#: Document keys that are provenance, not measurements.
_INFO_KEYS = ("source", "schema_version")


def flatten(value: Any, prefix: str = "") -> Dict[str, object]:
    """Dotted-path -> scalar leaves of a JSON-shaped structure.

    Lists flatten by index, so series keep positional identity; the
    empty dict/list flattens to nothing (its absence is visible through
    the parent's other keys).
    """
    out: Dict[str, object] = {}
    if isinstance(value, dict):
        for key in sorted(value):
            child = f"{prefix}.{key}" if prefix else str(key)
            out.update(flatten(value[key], child))
    elif isinstance(value, (list, tuple)):
        for index, item in enumerate(value):
            child = f"{prefix}.{index}" if prefix else str(index)
            out.update(flatten(item, child))
    else:
        out[prefix] = value
    return out


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def diff_flat(a: Dict[str, object], b: Dict[str, object]) -> Dict:
    """Compare two flattened leaf maps.

    Returns ``{"changed": [...], "only_a": [...], "only_b": [...],
    "equal": n}``; each changed entry carries the leaf values plus, for
    numeric leaves, the delta and (where defined) the ratio.
    """
    changed: List[Dict[str, object]] = []
    only_a = sorted(set(a) - set(b))
    only_b = sorted(set(b) - set(a))
    equal = 0
    for key in sorted(set(a) & set(b)):
        left, right = a[key], b[key]
        # == alone would call True equal to 1; everything else that
        # compares equal across types (0 vs 0.0) is genuinely equal.
        if left == right and isinstance(left, bool) == isinstance(right, bool):
            equal += 1
            continue
        entry: Dict[str, object] = {"key": key, "a": left, "b": right}
        if _is_number(left) and _is_number(right):
            entry["delta"] = right - left
            if left:
                entry["ratio"] = round(right / left, 6)
        changed.append(entry)
    changed.sort(key=_change_magnitude)
    return {
        "changed": changed,
        "only_a": only_a,
        "only_b": only_b,
        "equal": equal,
    }


def _change_magnitude(entry: Dict[str, object]) -> Tuple:
    """Largest relative movement first; non-numeric changes lead."""
    left, right = entry["a"], entry["b"]
    if not (_is_number(left) and _is_number(right)):
        return (0, 0.0, entry["key"])
    scale = max(abs(left), abs(right))
    relative = abs(right - left) / scale if scale else 0.0
    return (1, -relative, entry["key"])


def diff_records(a: Dict, b: Dict) -> Dict:
    """Diff two experiment records (or any two JSON-shaped objects)."""
    flat_a = flatten({k: v for k, v in a.items() if k not in _INFO_KEYS})
    flat_b = flatten({k: v for k, v in b.items() if k not in _INFO_KEYS})
    return diff_flat(flat_a, flat_b)


def diff_docs(a: Dict, b: Dict) -> Dict[str, Dict]:
    """Diff two bench docs experiment-by-experiment, matched by id."""
    by_id_a = {record["id"]: record for record in a.get("experiments", [])}
    by_id_b = {record["id"]: record for record in b.get("experiments", [])}
    out: Dict[str, Dict] = {}
    for key in sorted(
        set(by_id_a) | set(by_id_b),
        key=lambda record_id: int(record_id[1:]),
    ):
        if key not in by_id_a:
            out[key] = {"only_b": ["<entire record>"], "changed": [],
                        "only_a": [], "equal": 0}
        elif key not in by_id_b:
            out[key] = {"only_a": ["<entire record>"], "changed": [],
                        "only_b": [], "equal": 0}
        else:
            out[key] = diff_records(by_id_a[key], by_id_b[key])
    return out


# -- variant splitting -------------------------------------------------------


def variant_observations(
    spec: ExperimentSpec, observed: Sequence[Any]
) -> Tuple[Dict[str, List], List]:
    """Group drained recorder handles under the spec's variant labels.

    A handle matches the first variant (in declaration order) whose
    machine spec and kernel config equal the booted ones; handles from
    ad-hoc configs a workload built itself (``with_changes``) land in
    the unmatched remainder.
    """
    groups: Dict[str, List] = {variant.label: [] for variant in spec.variants}
    unmatched: List = []
    for obs in observed:
        for variant in spec.variants:
            if (
                obs.machine.spec == variant.machine
                and obs.kernel.config == variant.config
            ):
                groups[variant.label].append(obs)
                break
        else:
            unmatched.append(obs)
    return groups, unmatched


def variant_derived(
    spec: ExperimentSpec, observed: Sequence[Any]
) -> Tuple[Dict[str, Dict], int]:
    """Per-variant derived blocks (labels with no handles are dropped)."""
    groups, unmatched = variant_observations(spec, observed)
    derived = {
        label: analytics.derive(handles)
        for label, handles in groups.items()
        if handles
    }
    return derived, len(unmatched)


def diff_variant_labels(
    spec: ExperimentSpec,
    observed: Sequence[Any],
    label_a: str,
    label_b: str,
) -> Dict:
    """Diff the derived analytics of two variants of one observed run."""
    derived, unmatched = variant_derived(spec, observed)
    for label in (label_a, label_b):
        if label not in derived:
            known = ", ".join(sorted(derived))
            raise KeyError(
                f"no recorder handles matched variant {label!r} "
                f"(observed variants: {known or 'none'})"
            )
    diff = diff_records(derived[label_a], derived[label_b])
    diff["unmatched_simulators"] = unmatched
    return diff


# -- rendering ---------------------------------------------------------------


def render_diff(
    diff: Dict,
    title_a: str,
    title_b: str,
    limit: Optional[int] = 24,
) -> str:
    """A prose diff table: biggest relative movements first."""
    changed = diff["changed"]
    lines = [f"diff: {title_a}  ->  {title_b}"]
    lines.append(
        f"  {diff['equal']} leaves equal, {len(changed)} changed, "
        f"{len(diff['only_a'])} only in A, {len(diff['only_b'])} only in B"
    )
    if diff.get("unmatched_simulators"):
        lines.append(
            f"  note: {diff['unmatched_simulators']} simulator(s) matched "
            "no declared variant (workload-built configs)"
        )
    shown = changed if limit is None else changed[:limit]
    if shown:
        width = max(len(entry["key"]) for entry in shown)
        for entry in shown:
            row = (f"  {entry['key']:<{width}}  "
                   f"{_fmt(entry['a'])} -> {_fmt(entry['b'])}")
            if "ratio" in entry:
                row += f"  (x{entry['ratio']:g})"
            elif "delta" in entry:
                row += f"  ({entry['delta']:+g})"
            lines.append(row)
        if limit is not None and len(changed) > limit:
            lines.append(f"  ... {len(changed) - limit} more changed leaves "
                         "(--json for all)")
    for label, keys in (("only in A", diff["only_a"]),
                        ("only in B", diff["only_b"])):
        for key in keys[:8]:
            lines.append(f"  {label}: {key}")
        if len(keys) > 8:
            lines.append(f"  {label}: ... {len(keys) - 8} more")
    return "\n".join(lines)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:g}"
    if isinstance(value, int) and not isinstance(value, bool):
        return f"{value:,}"
    return str(value)
