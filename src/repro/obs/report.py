"""The observatory dashboard: one self-contained, deterministic HTML.

``repro report`` renders a bench doc (schema v3, every record carrying
a ``derived`` block) into a single HTML file with no external assets —
inline CSS and inline SVG only, so the artifact opens anywhere and can
be diffed byte-for-byte.  Determinism is a contract: the renderer is a
pure function of the input document, never consults the clock or the
environment, and the CLI builds its input without the wall-clock
``timings`` section — so repeated runs (and ``--jobs 1`` vs
``--jobs 4``) produce byte-identical files.

The per-experiment sections visualize the derived analytics: a stacked
cycle-attribution bar, latency percentile tables for the traced path
categories, the occupancy/zombie timeline polyline, and the §5.2
hash-table histograms.  The experiments behind the paper's Tables 1–3
(E5, E6, E11) get their measured-vs-paper tables flagged as such.
"""

from __future__ import annotations

import html
from typing import Any, Dict, List, Optional

from repro.obs.profiler import DISPLAY_ORDER

#: Experiments reproducing the paper's numbered tables.
PAPER_TABLES = {"E5": "Table 1", "E6": "Table 2", "E11": "Table 3"}

#: Stacked-bar palette, one color per display-order path category.
CATEGORY_COLORS = {
    "user-compute": "#4e79a7",
    "memory": "#59a14f",
    "tlb-reload": "#e15759",
    "flush": "#f28e2b",
    "idle": "#76b7b2",
    "syscall": "#edc948",
    "fault": "#b07aa1",
    "scheduling": "#ff9da7",
    "io": "#9c755f",
    "kernel-mm": "#bab0ac",
    "shootdown": "#d37295",
    "service": "#86bcb6",
    "other": "#d4d4d4",
}

#: Columns of the capacity-curve table, in display order.  Literal
#: tuple — the observatory-closure pass checks every column is a
#: recorded CAPACITY_POINT_FIELDS field of ``analysis/capacity.py``.
CAPACITY_COLUMNS = (
    "offered_per_s",
    "throughput_per_s",
    "latency_p50_us",
    "latency_p99_us",
    "latency_p999_us",
    "queue_depth_max",
    "zombie_peak",
    "zombie_queue_correlation",
)

_CSS = """
body { font: 14px/1.5 system-ui, sans-serif; margin: 2em auto;
       max-width: 70em; color: #1a1a2e; }
h1 { font-size: 1.5em; } h2 { font-size: 1.15em; margin-top: 2.2em;
     border-bottom: 1px solid #ddd; padding-bottom: .2em; }
table { border-collapse: collapse; margin: .6em 0; }
th, td { border: 1px solid #ddd; padding: .25em .6em; text-align: right; }
th:first-child, td:first-child { text-align: left; }
th { background: #f4f4f8; }
.badge { display: inline-block; padding: .05em .5em; border-radius: .7em;
         font-size: .85em; color: #fff; }
.hold { background: #2a9d4a; } .break { background: #c0392b; }
.papertag { color: #8a5a00; background: #fff3d6; border-radius: .4em;
            padding: .05em .5em; font-size: .85em; }
.meta { color: #666; font-size: .9em; }
svg { background: #fafafc; border: 1px solid #eee; }
.legend span { margin-right: 1em; white-space: nowrap; }
.swatch { display: inline-block; width: .8em; height: .8em;
          margin-right: .3em; border-radius: .15em; }
"""


def _esc(value: Any) -> str:
    return html.escape(str(value), quote=True)


def _fmt(value: Any) -> str:
    """Deterministic cell formatting for measured/derived values."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, int):
        return f"{value:,}"
    if isinstance(value, float):
        return f"{value:g}"
    if isinstance(value, (list, dict)):
        return _esc(repr(value))
    return _esc(value)


# -- SVG helpers -------------------------------------------------------------


def _svg_stacked_bar(shares: Dict[str, float], width: int = 640,
                     height: int = 26) -> str:
    """One horizontal stacked bar of attribution shares."""
    ordered = [c for c in DISPLAY_ORDER if c in shares]
    ordered += sorted(set(shares) - set(ordered))
    parts = [f'<svg width="{width}" height="{height}" role="img">']
    x = 0.0
    for category in ordered:
        span = shares[category] * width
        color = CATEGORY_COLORS.get(category, "#d4d4d4")
        parts.append(
            f'<rect x="{x:.2f}" y="0" width="{span:.2f}" '
            f'height="{height}" fill="{color}">'
            f"<title>{_esc(category)}: {shares[category]:.1%}</title></rect>"
        )
        x += span
    parts.append("</svg>")
    legend = ['<div class="legend">']
    for category in ordered:
        color = CATEGORY_COLORS.get(category, "#d4d4d4")
        legend.append(
            f'<span><i class="swatch" style="background:{color}"></i>'
            f"{_esc(category)} {shares[category]:.1%}</span>"
        )
    legend.append("</div>")
    return "".join(parts) + "".join(legend)


def _svg_polyline(series: Dict[str, List], width: int = 640,
                  height: int = 140) -> str:
    """The live/zombie occupancy trajectory over simulated time."""
    xs = series.get("us", [])
    if len(xs) < 2:
        return '<p class="meta">timeline: fewer than two samples</p>'
    curves = [("live", "#2a9d4a"), ("zombie", "#c0392b")]
    x_max = xs[-1] or 1
    y_max = max(
        [1] + [max(series.get(name, [0]) or [0]) for name, _color in curves]
    )
    parts = [f'<svg width="{width}" height="{height}" role="img">']
    for name, color in curves:
        ys = series.get(name, [])
        if len(ys) != len(xs):
            continue
        points = " ".join(
            f"{(x / x_max) * (width - 8) + 4:.2f},"
            f"{height - 4 - (y / y_max) * (height - 8):.2f}"
            for x, y in zip(xs, ys)
        )
        parts.append(
            f'<polyline fill="none" stroke="{color}" stroke-width="1.5" '
            f'points="{points}"><title>{_esc(name)}</title></polyline>'
        )
    parts.append("</svg>")
    parts.append(
        '<div class="legend">'
        '<span><i class="swatch" style="background:#2a9d4a"></i>live</span>'
        '<span><i class="swatch" style="background:#c0392b"></i>zombie</span>'
        f"<span>{_fmt(xs[-1])} simulated &micro;s, peak {y_max:,}</span>"
        "</div>"
    )
    return "".join(parts)


def _svg_histogram(bars: List[int], width: int = 640,
                   height: int = 90, color: str = "#4e79a7") -> str:
    """Bucket-load bars (already downsampled by the analytics)."""
    if not bars:
        return '<p class="meta">empty histogram</p>'
    peak = max(bars) or 1
    step = width / len(bars)
    parts = [f'<svg width="{width}" height="{height}" role="img">']
    for index, count in enumerate(bars):
        bar_height = (count / peak) * (height - 4)
        parts.append(
            f'<rect x="{index * step:.2f}" '
            f'y="{height - bar_height:.2f}" '
            f'width="{max(step - 1, 1):.2f}" height="{bar_height:.2f}" '
            f'fill="{color}"><title>bin {index}: {count}</title></rect>'
        )
    parts.append("</svg>")
    return "".join(parts)


def _svg_sparkline(values: List, width: int = 150, height: int = 28,
                   color: str = "#4e79a7") -> str:
    """A small inline trend line (one per experiment in the ledger).

    ``values`` may contain ``None`` for entries where the experiment
    was absent; those break the polyline into segments.
    """
    numbers = [v for v in values if v is not None]
    if len(numbers) < 2 or len(values) < 2:
        return '<span class="meta">&mdash;</span>'
    low, high = min(numbers), max(numbers)
    span = (high - low) or 1
    step = (width - 8) / (len(values) - 1)

    def point(index: int, value: Any) -> str:
        x = 4 + index * step
        y = height - 4 - ((value - low) / span) * (height - 8)
        return f"{x:.2f},{y:.2f}"

    parts = [f'<svg width="{width}" height="{height}" role="img" '
             f'class="spark">']
    segment: List[str] = []
    for index, value in enumerate(values):
        if value is None:
            if len(segment) > 1:
                parts.append(
                    f'<polyline fill="none" stroke="{color}" '
                    f'stroke-width="1.5" points="{" ".join(segment)}"/>'
                )
            segment = []
            continue
        segment.append(point(index, value))
    if len(segment) > 1:
        parts.append(
            f'<polyline fill="none" stroke="{color}" stroke-width="1.5" '
            f'points="{" ".join(segment)}"/>'
        )
    last = values[-1]
    if last is not None:
        parts.append(
            f'<circle cx="{point(len(values) - 1, last).split(",")[0]}" '
            f'cy="{point(len(values) - 1, last).split(",")[1]}" r="2" '
            f'fill="{color}"/>'
        )
    parts.append("</svg>")
    return "".join(parts)


# -- section renderers -------------------------------------------------------


def _measured_table(record: Dict) -> str:
    measured = record.get("measured", {})
    paper = record.get("paper", {})
    keys = sorted(set(measured) | set(paper))
    if not keys:
        return ""
    rows = ["<table><tr><th>metric</th><th>measured</th>"
            "<th>paper</th></tr>"]
    for key in keys:
        rows.append(
            f"<tr><td>{_esc(key)}</td>"
            f"<td>{_fmt(measured.get(key, ''))}</td>"
            f"<td>{_fmt(paper.get(key, ''))}</td></tr>"
        )
    rows.append("</table>")
    return "".join(rows)


def _latency_table(derived: Dict) -> str:
    categories = derived.get("categories", {})
    reload_path = derived.get("reload")
    if not categories and not reload_path:
        return ""
    rows = ["<table><tr><th>path</th><th>count</th><th>cycles</th>"
            "<th>p50</th><th>p90</th><th>p99</th><th>max</th></tr>"]

    def one(name: str, stats: Dict) -> str:
        return (
            f"<tr><td>{_esc(name)}</td><td>{_fmt(stats['count'])}</td>"
            f"<td>{_fmt(stats['total_cycles'])}</td>"
            f"<td>{_fmt(stats['p50'])}</td><td>{_fmt(stats['p90'])}</td>"
            f"<td>{_fmt(stats['p99'])}</td><td>{_fmt(stats['max'])}</td></tr>"
        )

    for name in sorted(categories):
        rows.append(one(name, categories[name]))
    if reload_path:
        rows.append(one("reload path (Table 1)", reload_path))
    rows.append("</table>")
    return "".join(rows)


def _histogram_section(derived: Dict) -> str:
    histograms = derived.get("histograms", {})
    parts = []
    for name, title in (("occupancy", "occupancy histogram (valid PTEs)"),
                        ("miss", "miss histogram (§5.2 instrument)")):
        summary = histograms.get(name)
        if not summary or not summary.get("total"):
            continue
        parts.append(f"<h4>{_esc(title)}</h4>")
        parts.append(_svg_histogram(summary.get("bars", [])))
        parts.append(
            '<p class="meta">'
            f"{_fmt(summary['total'])} entries over "
            f"{_fmt(summary['buckets'])} buckets &middot; "
            f"entropy efficiency {summary['entropy_efficiency']:.3f} "
            f"&middot; hot-spot ratio {summary['hot_spot_ratio']:.2f} "
            f"&middot; top-1% share {summary['top_share']:.1%}</p>"
        )
    return "".join(parts)


def _experiment_section(record: Dict) -> str:
    record_id = record.get("id", "?")
    derived = record.get("derived", {})
    holds = record.get("shape_holds", False)
    badge = ('<span class="badge hold">shape holds</span>' if holds
             else '<span class="badge break">shape broken</span>')
    paper_tag = ""
    if record_id in PAPER_TABLES:
        paper_tag = (f' <span class="papertag">paper '
                     f"{PAPER_TABLES[record_id]}</span>")
    parts = [
        f'<h2 id="{_esc(record_id)}">{_esc(record_id)} — '
        f"{_esc(record.get('title', ''))} {badge}{paper_tag}</h2>",
        f'<p class="meta">machines: '
        f"{_esc(', '.join(record.get('machines', [])))}"
    ]
    if record.get("variants"):
        parts.append(" &middot; variants: "
                     + _esc(", ".join(record["variants"])))
    if derived.get("total_cycles"):
        parts.append(f" &middot; {derived['total_cycles']:,} simulated "
                     f"cycles across {derived.get('simulators', 0)} "
                     "simulator(s)")
    parts.append("</p>")
    shares = derived.get("attribution", {}).get("shares")
    if shares:
        parts.append("<h4>cycle attribution</h4>")
        parts.append(_svg_stacked_bar(shares))
    parts.append("<h4>measured vs paper</h4>")
    parts.append(_measured_table(record))
    latency = _latency_table(derived)
    if latency:
        parts.append("<h4>path latencies (cycles)</h4>")
        parts.append(latency)
    timeline = derived.get("timeline")
    if timeline and timeline.get("series"):
        parts.append("<h4>hash-table occupancy timeline</h4>")
        parts.append(_svg_polyline(timeline["series"]))
    parts.append(_histogram_section(derived))
    if record.get("notes"):
        parts.append(f'<p class="meta">notes: {_esc(record["notes"])}</p>')
    return "".join(parts)


def _summary_table(records: List[Dict]) -> str:
    rows = ["<table><tr><th>experiment</th><th>shape</th>"
            "<th>total cycles</th><th>top path</th>"
            "<th>reload p99</th></tr>"]
    for record in records:
        derived = record.get("derived", {})
        reload_path = derived.get("reload", {})
        rows.append(
            f'<tr><td><a href="#{_esc(record["id"])}">'
            f"{_esc(record['id'])}</a> {_esc(record.get('title', ''))}</td>"
            f"<td>{_fmt(bool(record.get('shape_holds')))}</td>"
            f"<td>{_fmt(derived.get('total_cycles', 0))}</td>"
            f"<td>{_esc(derived.get('attribution', {}).get('top', ''))}</td>"
            f"<td>{_fmt(reload_path.get('p99', ''))}</td></tr>"
        )
    rows.append("</table>")
    return "".join(rows)


def _trend_delta_cell(delta: int) -> str:
    if delta == 0:
        return '<td class="meta">=</td>'
    color = "#c0392b" if delta > 0 else "#2a9d4a"
    return f'<td style="color:{color}">{delta:+,}</td>'


def _trend_section(trend: Dict) -> str:
    """The longitudinal section: ledger table, sparklines, latest deltas.

    ``trend`` is a :func:`repro.obs.trend.trend_doc` document.  The
    section is a pure function of it — wall times appear, but they come
    from the fixed ledger, so the dashboard stays byte-deterministic
    for a given history file.
    """
    entries = trend.get("entries", [])
    if not entries:
        return ""
    parts = ['<h2 id="trend">perf trajectory '
             f'({len(entries)} recorded runs)</h2>']
    rows = ["<table><tr><th>run</th><th>sha</th><th>total cycles</th>"
            "<th>shapes</th><th>wall (s)</th><th>sentinel</th></tr>"]
    for entry in entries:
        verdict = entry.get("verdict")
        verdict_cell = "&mdash;" if verdict is None else (
            "ok" if verdict.get("ok") else "REGRESSION"
        )
        rows.append(
            f"<tr><td>{_esc(entry['name'])}</td>"
            f"<td>{_esc((entry.get('sha') or '')[:12])}</td>"
            f"<td>{_fmt(entry['total_cycles'])}</td>"
            f"<td>{_fmt(entry['shapes_holding'])}/"
            f"{_fmt(entry['experiments'])}</td>"
            f"<td>{_fmt(entry.get('wall_total') or '')}</td>"
            f"<td>{verdict_cell}</td></tr>"
        )
    rows.append("</table>")
    parts.append("".join(rows))
    series = trend.get("series", {})
    spark_ids = [key for key in series if key != "__total__"]
    spark_ids.sort(key=lambda k: int(k[1:]))
    spark_rows = ["<table><tr><th>experiment</th><th>cycles trend</th>"
                  "<th>latest</th></tr>"]
    total = series.get("__total__", [])
    spark_rows.append(
        "<tr><td>all experiments</td>"
        f"<td>{_svg_sparkline(total)}</td>"
        f"<td>{_fmt(total[-1] if total else '')}</td></tr>"
    )
    for key in spark_ids:
        values = series[key]
        latest = next(
            (v for v in reversed(values) if v is not None), ""
        )
        spark_rows.append(
            f'<tr><td><a href="#{_esc(key)}">{_esc(key)}</a></td>'
            f"<td>{_svg_sparkline(values)}</td>"
            f"<td>{_fmt(latest)}</td></tr>"
        )
    spark_rows.append("</table>")
    parts.append(f"<h4>per-experiment cycle series "
                 f"(last {_fmt(trend.get('series_window', 0))} runs)</h4>")
    parts.append("".join(spark_rows))
    steps = trend.get("steps", [])
    if steps:
        change = steps[-1]
        parts.append(
            f"<h4>latest step: {_esc(change['from']['name'])} &rarr; "
            f"{_esc(change['to']['name'])}</h4>"
        )
        rows = ["<table><tr><th>experiment</th><th>cycles before</th>"
                "<th>cycles after</th><th>&Delta; cycles</th>"
                "<th>wall</th></tr>"]
        for key in sorted(change["experiments"],
                          key=lambda k: int(k[1:])):
            entry = change["experiments"][key]
            cycles = entry["cycles"]
            wall = entry["wall"]
            if wall.get("status") == "missing":
                wall_cell = "&mdash;"
            else:
                wall_cell = (f"{_fmt(wall['old'])} &rarr; "
                             f"{_fmt(wall['new'])} ({_esc(wall['status'])})")
            rows.append(
                f"<tr><td>{_esc(key)}</td><td>{_fmt(cycles['old'])}</td>"
                f"<td>{_fmt(cycles['new'])}</td>"
                + _trend_delta_cell(cycles["delta"])
                + f"<td>{wall_cell}</td></tr>"
            )
        rows.append("</table>")
        parts.append("".join(rows))
        if change["category_movers"]:
            movers = ["<table><tr><th>path category</th>"
                      "<th>&Delta; cycles</th></tr>"]
            for mover in change["category_movers"]:
                movers.append(
                    f"<tr><td>{_esc(mover['category'])}</td>"
                    + _trend_delta_cell(mover["delta"]) + "</tr>"
                )
            movers.append("</table>")
            parts.append("<h4>where the cycles went</h4>")
            parts.append("".join(movers))
    return "".join(parts)


_CAPACITY_TITLES = {
    "offered_per_s": "offered/s",
    "throughput_per_s": "throughput/s",
    "latency_p50_us": "p50 (µs)",
    "latency_p99_us": "p99 (µs)",
    "latency_p999_us": "p99.9 (µs)",
    "queue_depth_max": "queue max",
    "zombie_peak": "zombie peak",
    "zombie_queue_correlation": "zombie↔queue r",
}


def _capacity_section(capacity: Dict) -> str:
    """The request-level capacity curves: one table + p99 sparklines.

    ``capacity`` is a :func:`repro.analysis.capacity.capacity_sweep`
    document; the section is a pure function of it, so the dashboard
    stays byte-deterministic.
    """
    curves = capacity.get("curves", [])
    if not curves:
        return ""
    parts = [
        '<h2 id="capacity">capacity curves '
        "(open-loop service telemetry)</h2>",
        f'<p class="meta">{_esc(capacity.get("machine", "?"))} &middot; '
        f"{_fmt(capacity.get('n_cpus', 0))} CPU(s) &middot; "
        f"{_fmt(capacity.get('requests', 0))} requests/point &middot; "
        f"{_esc(capacity.get('schedule', '?'))} arrivals, seed "
        f"{_fmt(capacity.get('seed', 0))} &middot; latency measured "
        "from the <em>scheduled</em> arrival (open-loop, no "
        "coordinated omission)</p>",
    ]
    rows = ["<table><tr><th>strategy</th>"]
    rows += [
        f"<th>{_esc(_CAPACITY_TITLES.get(column, column))}</th>"
        for column in CAPACITY_COLUMNS
    ]
    rows.append("</tr>")
    for curve in curves:
        for point in curve.get("points", []):
            rows.append(f"<tr><td>{_esc(curve.get('strategy', '?'))}</td>")
            rows += [
                f"<td>{_fmt(point.get(column, ''))}</td>"
                for column in CAPACITY_COLUMNS
            ]
            rows.append("</tr>")
    rows.append("</table>")
    parts.append("".join(rows))
    spark = ["<table><tr><th>strategy</th><th>p99 vs offered load</th>"
             "<th>throughput vs offered load</th></tr>"]
    for curve in curves:
        points = curve.get("points", [])
        spark.append(
            f"<tr><td>{_esc(curve.get('strategy', '?'))}</td>"
            f"<td>{_svg_sparkline([p.get('latency_p99_us') for p in points], color='#c0392b')}</td>"
            f"<td>{_svg_sparkline([p.get('throughput_per_s') for p in points], color='#2a9d4a')}</td>"
            "</tr>"
        )
    spark.append("</table>")
    parts.append("<h4>the knee, at a glance</h4>")
    parts.append("".join(spark))
    return "".join(parts)


def render_report(doc: Dict, title: Optional[str] = None,
                  trend: Optional[Dict] = None,
                  capacity: Optional[Dict] = None) -> str:
    """The full dashboard HTML for a validated bench doc.

    ``trend`` (a :func:`repro.obs.trend.trend_doc` document) adds the
    longitudinal section between the summary table and the
    per-experiment sections; ``capacity`` (a
    :func:`repro.analysis.capacity.capacity_sweep` document) adds the
    request-level capacity curves after it.
    """
    records = doc.get("experiments", [])
    summary = doc.get("summary", {})
    heading = title or "MMU tricks — perf observatory report"
    parts = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        f"<title>{_esc(heading)}</title>",
        f"<style>{_CSS}</style></head><body>",
        f"<h1>{_esc(heading)}</h1>",
        f'<p class="meta">{_fmt(summary.get("experiments", len(records)))} '
        f"experiments &middot; {_fmt(summary.get('shapes_holding', 0))} "
        "paper shapes holding &middot; derived by the flight recorder "
        "(repro.obs)</p>",
        _summary_table(records),
    ]
    if trend is not None:
        parts.append(_trend_section(trend))
    if capacity is not None:
        parts.append(_capacity_section(capacity))
    for record in records:
        parts.append(_experiment_section(record))
    parts.append("</body></html>")
    return "\n".join(parts) + "\n"
