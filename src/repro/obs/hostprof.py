"""Host-time profiling: where the *real* CPU seconds go.

Everything else in the observatory measures simulated cycles.  This
module answers the complementary question — which parts of the
reproduction burn host time — by running experiments under
:mod:`cProfile` and aggregating the per-function ``tottime`` onto the
simulator's hot kernels (the TLB, the hash table, the cache model,
the kernel paths).  That is the trajectory data for optimizing the
*repro itself*: PR 6's packed-int rewrite was motivated by exactly
this breakdown.

Host seconds are wall-clock-adjacent and therefore outside every
determinism contract in this package: two runs of ``repro profile
--host`` agree on the grouping and ordering logic but not on the
numbers.  Nothing here is ever fed into a bench doc's deterministic
sections.

``KERNEL_GROUPS`` is ordered, first match wins, and is a literal
tuple on purpose: the observatory-closure lint pass reads it from the
AST and checks every path suffix names a real module (or package
directory) of the ``repro`` package, so the attribution can never
silently rot when files move.
"""

from __future__ import annotations

import cProfile
import pstats
from typing import Dict, List, Optional, Tuple

#: ``(path fragment, group)`` — a profiled function whose filename
#: contains the fragment lands in the group; first match wins, so the
#: specific hot kernels come before their packages.  Checked by
#: ``repro lint`` against the package tree.
KERNEL_GROUPS: Tuple[Tuple[str, str], ...] = (
    ("repro/hw/tlb.py", "hw.tlb"),
    ("repro/hw/hashtable.py", "hw.hashtable"),
    ("repro/hw/cache.py", "hw.cache"),
    ("repro/hw/walker.py", "hw.walker"),
    ("repro/hw/machine.py", "hw.machine"),
    ("repro/hw/", "hw.other"),
    ("repro/kernel/reload.py", "kernel.reload"),
    ("repro/kernel/flush.py", "kernel.flush"),
    ("repro/kernel/idle.py", "kernel.idle"),
    ("repro/kernel/", "kernel.other"),
    ("repro/sim/", "sim"),
    ("repro/workloads/", "workloads"),
    ("repro/obs/", "obs"),
    ("repro/analysis/", "analysis"),
    ("repro/check/", "check"),
)

#: Everything that matches no group (stdlib, interpreter overhead,
#: the rest of the package).
OTHER_GROUP = "other"


def group_for(filename: str) -> str:
    """The kernel group a profiled function's filename belongs to."""
    normalized = filename.replace("\\", "/")
    for fragment, group in KERNEL_GROUPS:
        if fragment in normalized:
            return group
    return OTHER_GROUP


def profile_experiments(ids: List[str]) -> Dict:
    """Run experiments under cProfile; return the host-time breakdown.

    Experiments run through the engine's pure path (no result cache —
    a cache hit would profile nothing but JSON parsing), one shared
    profiler across all of them.  The returned document carries the
    per-group seconds, the hottest functions per group, and the
    experiments' shape verdicts so a profiling run still reports
    correctness.
    """
    from repro.analysis import engine, specs

    profiler = cProfile.Profile()
    shapes: Dict[str, bool] = {}
    profiler.enable()
    try:
        for key in ids:
            result = engine.execute(specs.SPECS[key])
            shapes[key] = result.shape_holds
    finally:
        profiler.disable()
    stats = pstats.Stats(profiler)
    return breakdown_from_stats(stats, ids, shapes)


def breakdown_from_stats(
    stats: "pstats.Stats", ids: List[str], shapes: Dict[str, bool]
) -> Dict:
    """Fold pstats rows into the kernel-group breakdown document."""
    groups: Dict[str, Dict] = {}
    total = 0.0
    calls = 0
    for (filename, line, name), row in stats.stats.items():  # type: ignore[attr-defined]
        cc, nc, tt, _ct, _callers = row
        group = group_for(filename)
        entry = groups.setdefault(
            group, {"seconds": 0.0, "calls": 0, "functions": []}
        )
        entry["seconds"] += tt
        entry["calls"] += nc
        entry["functions"].append(
            {"function": f"{name} ({filename.rsplit('/', 1)[-1]}:{line})",
             "seconds": tt, "calls": nc}
        )
        total += tt
        calls += nc
    for entry in groups.values():
        entry["functions"].sort(
            key=lambda f: (-f["seconds"], f["function"])
        )
        del entry["functions"][5:]
        entry["seconds"] = round(entry["seconds"], 4)
        for function in entry["functions"]:
            function["seconds"] = round(function["seconds"], 4)
        entry["share"] = round(entry["seconds"] / total, 4) if total else 0.0
    return {
        "experiments": list(ids),
        "shapes": shapes,
        "host_seconds": round(total, 4),
        "calls": calls,
        "groups": dict(sorted(
            groups.items(),
            key=lambda item: (-item[1]["seconds"], item[0]),
        )),
    }


def render_host_profile(doc: Dict, top: Optional[int] = 3) -> str:
    """The host-time table ``repro profile --host`` prints."""
    ids = ", ".join(doc["experiments"])
    lines = [
        f"host-time profile — {ids} "
        f"({doc['host_seconds']:.2f}s in {doc['calls']:,} calls)",
        f"  {'group':<18}{'seconds':>10}{'share':>9}{'calls':>14}",
    ]
    for group, entry in doc["groups"].items():
        lines.append(
            f"  {group:<18}{entry['seconds']:>10.3f}"
            f"{entry['share']:>8.1%}{entry['calls']:>14,}"
        )
        for function in entry["functions"][: top or 0]:
            lines.append(
                f"      {function['seconds']:>8.3f}s  "
                f"{function['function']}"
            )
    broken = [key for key, holds in doc["shapes"].items() if not holds]
    if broken:
        lines.append(f"  SHAPE BROKEN under profiling: {', '.join(broken)}")
    return "\n".join(lines) + "\n"
