"""The MMU flight recorder (DESIGN.md "obs" subsystem).

Three zero-perturbation layers over a booted simulator:

* :class:`~repro.obs.events.EventTracer` — ring-buffered structured
  events with simulated-cycle timestamps, exported as Chrome
  trace-event JSON (opens in Perfetto);
* :class:`~repro.obs.profiler.CycleProfiler` — folds the cycle ledger
  into a path-category attribution that sums exactly to total cycles;
* :class:`~repro.obs.sampler.TimeSeriesSampler` — periodic counter and
  HTAB occupancy/zombie snapshots on a simulated-time grid.

Two ways to turn it on, mirroring ``repro.check``:

* per simulator — ``Simulator(spec, config, trace=True, profile=True,
  sample_every_us=1000)`` or ``attach_observability(kernel)`` directly;
* globally — ``enable_global_observability()`` makes every Simulator
  built afterwards attach a recorder, registered for
  ``drain_global_observed()``.  This is how ``python -m repro trace``
  and ``profile`` instrument experiment code they do not construct.

This module must not import :mod:`repro.obs.session` — the session
runner pulls in the experiment registry, which imports the simulator,
which imports this package.  The CLI imports the session directly.
"""

from __future__ import annotations

# repro-lint: disable-file=effect-race -- _GLOBAL is per-process recorder state: a worker inherits a private copy at fork and reports via return values, never through the parent's module

from typing import Any, Dict, List, Optional

from repro.obs.events import (
    EventTracer,
    TraceConfig,
    chrome_trace,
    validate_chrome_trace,
)
from repro.obs.profiler import (
    CycleProfiler,
    merge_attributions,
    render_attribution,
)
from repro.obs.sampler import TimeSeriesSampler

__all__ = [
    "CycleProfiler",
    "EventTracer",
    "Observability",
    "TimeSeriesSampler",
    "TraceConfig",
    "attach_observability",
    "chrome_trace",
    "disable_global_observability",
    "drain_global_observed",
    "enable_global_observability",
    "global_obs_active",
    "merge_attributions",
    "render_attribution",
    "validate_chrome_trace",
]


class Observability:
    """One machine's flight recorder: tracer + profiler + sampler."""

    def __init__(
        self,
        kernel: Any,
        trace: bool = False,
        profile: bool = True,
        sample_every_us: Optional[float] = None,
        trace_config: Optional[TraceConfig] = None,
        label: Optional[str] = None,
    ) -> None:
        machine = kernel.machine
        self.kernel = kernel
        self.machine = machine
        self.label = label if label is not None else machine.spec.name
        self.tracer: Optional[EventTracer] = None
        self.profiler: Optional[CycleProfiler] = None
        self.profilers: List[CycleProfiler] = []
        self.sampler: Optional[TimeSeriesSampler] = None
        if trace:
            self.tracer = EventTracer(
                machine, kernel=kernel, label=self.label, config=trace_config
            )
            # repro-lint: disable=zero-perturbation -- the sanctioned hook
            # attach point: installs the tracer on the machine's dedicated
            # observer slots, which hold no simulation state.
            machine.tracer = self.tracer
            for cpu in machine.cpus:
                # repro-lint: disable=zero-perturbation -- same attach
                # point, every CPU's monitor-side observer slot.
                cpu.monitor.tracer = self.tracer
        if profile:
            # One profiler per CPU ledger; ``profiler`` stays the boot
            # CPU's for existing single-CPU callers.
            self.profilers = [
                CycleProfiler(cpu.clock) for cpu in machine.cpus
            ]
            self.profiler = self.profilers[0]
        if sample_every_us is not None:
            self.sampler = TimeSeriesSampler(
                kernel, sample_every_us, tracer=self.tracer
            )
            # repro-lint: disable=zero-perturbation -- the ledger's observer
            # slot exists for exactly this; the sampler callback never
            # charges cycles.
            machine.clock.observer = self.sampler.on_cycles

    # -- counter-free reads --------------------------------------------------

    @property
    def cycles(self) -> int:
        return self.machine.clock.total

    def counters(self) -> Any:
        return self.machine.monitor.snapshot()

    def attribution(self) -> Dict[str, int]:
        """Path-category attribution summed over every CPU's ledger."""
        if not self.profilers:
            return {}
        return merge_attributions(
            profiler.attribution() for profiler in self.profilers
        )


class _GlobalObs:
    """Process-wide recorder state, active between enable/disable."""

    def __init__(self) -> None:
        self.active = False
        self.trace = False
        self.profile = True
        self.sample_every_us: Optional[float] = None
        self.trace_config: Optional[TraceConfig] = None
        self.observed: List[Observability] = []


_GLOBAL = _GlobalObs()


def enable_global_observability(
    trace: bool = False,
    profile: bool = True,
    sample_every_us: Optional[float] = None,
    trace_config: Optional[TraceConfig] = None,
) -> None:
    """Attach a recorder to every subsequently-built Simulator."""
    _GLOBAL.active = True
    _GLOBAL.trace = trace
    _GLOBAL.profile = profile
    _GLOBAL.sample_every_us = sample_every_us
    _GLOBAL.trace_config = trace_config
    _GLOBAL.observed = []


def disable_global_observability() -> None:
    _GLOBAL.active = False
    _GLOBAL.trace = False
    _GLOBAL.profile = True
    _GLOBAL.sample_every_us = None
    _GLOBAL.trace_config = None
    _GLOBAL.observed = []


def global_obs_active() -> bool:
    return _GLOBAL.active


def drain_global_observed() -> List[Observability]:
    """Hand over (and forget) the recorders attached since enable."""
    observed = _GLOBAL.observed
    _GLOBAL.observed = []
    return observed


def attach_observability(
    kernel: Any,
    trace: Optional[bool] = None,
    profile: Optional[bool] = None,
    sample_every_us: Optional[float] = None,
    trace_config: Optional[TraceConfig] = None,
    label: Optional[str] = None,
) -> Observability:
    """Build an :class:`Observability` for ``kernel`` and hook the machine.

    While the global recorder is active, unspecified options inherit the
    global configuration and the recorder is registered for
    :func:`drain_global_observed`.
    """
    if _GLOBAL.active:
        if trace is None:
            trace = _GLOBAL.trace
        if profile is None:
            profile = _GLOBAL.profile
        if sample_every_us is None:
            sample_every_us = _GLOBAL.sample_every_us
        if trace_config is None:
            trace_config = _GLOBAL.trace_config
    observability = Observability(
        kernel,
        trace=bool(trace),
        profile=True if profile is None else bool(profile),
        sample_every_us=sample_every_us,
        trace_config=trace_config,
        label=label,
    )
    if _GLOBAL.active:
        _GLOBAL.observed.append(observability)
    return observability
