"""Derived analytics — the observatory over the flight recorder.

The recorder's three layers (events, attribution, time series) only
*record*; the paper's arguments are all comparative (§5.2 tunes the
VSID multiplier against a miss histogram, Table 1 compares reload
paths, Table 2 compares flush strategies).  This module turns drained
:class:`~repro.obs.Observability` handles into a ``derived`` block of
verdict-ready numbers: per-path-category latency percentiles, the
reload-path tail, flush/idle span statistics, monitor-counter drift
totals, zombie-occupancy timeline statistics and hash-table hot-spot
summaries.

Everything here is a pure function of recorder state — deriving never
touches the simulation, so a derived run stays bit-identical to a bare
one.  All floats are rounded to six decimals and every ordering is
explicit, so the same run always produces the same block (the engine
additionally JSON-round-trips it before attaching it to a result, so
cached and fresh blocks compare equal).

The module-level registries are *literal* tuples/dicts on purpose:
``repro lint``'s analytics-coverage closure pass reads them from the
AST and checks that every ``PATH_CATEGORIES`` path category and every
``EVENT_NAMES`` entry is consumed by at least one derivation here.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs.events import PH_COMPLETE, PH_COUNTER, PH_INSTANT
from repro.obs.profiler import DISPLAY_ORDER, merge_attributions
from repro.perf.histogram import (
    Histogram,
    miss_histogram,
    occupancy_histogram,
)

#: Sample interval (simulated microseconds) the engine's derive wrapper
#: uses; coarse enough that sampling cost stays negligible next to the
#: workloads, fine enough for the timeline statistics to be meaningful.
DERIVE_SAMPLE_US = 1000.0

#: Tracer span names whose duration distributions are summarized, in
#: display order.  Mirrors the span half of ``EVENT_NAMES``.
SPAN_EVENTS: Tuple[str, ...] = (
    "hw-walk",
    "sw-refill",
    "scavenge-burst",
    "flush-page",
    "flush-range",
    "flush-mm",
    "flush-everything",
    "vsid-bump",
    "reclaim-chunk",
    "idle-window",
    "page-fault",
    "shootdown-drain",
    "req-queue",
    "req-run",
)

#: Tracer instant names whose occurrence counts are derived.  The
#: ``syscall:*`` entry aggregates every suffixed syscall instant.
INSTANT_EVENTS: Tuple[str, ...] = (
    "syscall:*",
    "ctxsw",
    "wakeup",
    "sleep",
    "pipe-create",
    "pipe-close",
    "preclear-page",
    "ipi",
    "req-arrival",
    "req-dispatch",
    "req-complete",
)

#: Chrome counter tracks whose sample counts are derived.
COUNTER_TRACKS: Tuple[str, ...] = (
    "htab",
    "occupancy",
    "monitor",
    "queue-depth",
    "vsids",
)

#: Hardware-monitor counters whose end-of-run totals feed the
#: ``counters`` drift section (the numbers ``repro diff`` and the
#: regression sentinel compare).  Mirrors the monitor half of
#: ``EVENT_NAMES``.
DRIFT_COUNTERS: Tuple[str, ...] = (
    "itlb_miss",
    "dtlb_miss",
    "tlb_miss",
    "htab_search",
    "htab_hit",
    "htab_miss",
    "htab_reload",
    "htab_evict",
    "hash_miss_interrupt",
    "sw_tlb_miss_interrupt",
    "bat_translation",
    "icache_miss",
    "dcache_miss",
    "page_fault_major",
    "page_fault_minor",
    "flush_range_search",
    "flush_range_lazy",
    "vsid_bump",
    "zombie_reclaimed",
    "pages_precleared",
    "precleared_page_used",
    "scavenge_burst",
    "context_switch",
    "syscall",
    "ipi_sent",
    "ipi_received",
    "shootdown_deferred",
    "shootdown_drained",
    "flush_skipped_reuse",
    "reuse_pool_hit",
)

#: Path category -> the tracer spans that time it.  Keys cover the full
#: profiler taxonomy (every ``PATH_CATEGORIES`` value plus the
#: ``"other"`` fallback); categories whose cost has no span
#: representation (pure ledger charges like user compute) map to an
#: empty tuple and are covered by the attribution shares instead.
CATEGORY_SPANS: Dict[str, Tuple[str, ...]] = {
    "user-compute": (),
    "memory": (),
    "tlb-reload": ("hw-walk", "sw-refill", "scavenge-burst"),
    "flush": (
        "flush-page", "flush-range", "flush-mm", "flush-everything",
        "vsid-bump",
    ),
    "shootdown": ("shootdown-drain",),
    "idle": ("reclaim-chunk", "idle-window"),
    "syscall": (),
    "fault": ("page-fault",),
    "scheduling": (),
    "io": (),
    "kernel-mm": (),
    "service": ("req-queue", "req-run"),
    "other": (),
}

#: The combined TLB/hash reload path (§4, Table 1): the tail of these
#: spans is the paper's headline latency.
RELOAD_SPANS: Tuple[str, ...] = ("hw-walk", "sw-refill", "scavenge-burst")

#: Percentiles reported for every span distribution.
PERCENTILES: Tuple[int, ...] = (50, 90, 99)

#: Permille quantiles reported for open-loop request latencies — the
#: SLO block's p50/p90/p99/p99.9 ladder (999 = p99.9, finer than the
#: integer-percent grid the span stats use).
SLO_PERMILLES: Tuple[int, ...] = (500, 900, 990, 999)

#: Maximum points kept in a downsampled timeline series (enough for an
#: SVG polyline; keeps derived blocks small for 10k-sample runs).
TIMELINE_POINTS = 96

#: Maximum bars kept in a downsampled histogram (adjacent buckets are
#: summed, so bar totals still sum to the histogram total).
HISTOGRAM_BARS = 64


def percentile(sorted_values: Sequence[int], q: int) -> int:
    """Nearest-rank percentile of an ascending-sorted sequence."""
    return percentile_permille(sorted_values, q * 10)


def percentile_permille(sorted_values: Sequence[int], permille: int) -> int:
    """Nearest-rank quantile at permille resolution (999 = p99.9).

    The SLO ladder needs p99.9, which the integer-percent grid cannot
    express; same ceil-without-floats rank rule as :func:`percentile`.
    """
    if not sorted_values:
        return 0
    rank = max(1, -(-permille * len(sorted_values) // 1000))
    return sorted_values[min(rank, len(sorted_values)) - 1]


def permille_label(permille: int) -> str:
    """500 -> 'p50', 990 -> 'p99', 999 -> 'p999' (SLO block keys)."""
    if permille % 10 == 0:
        return f"p{permille // 10}"
    return f"p{permille}"


def span_stats(durations: Sequence[int]) -> Dict[str, object]:
    """count / total / mean / p50 / p90 / p99 / max over span durations."""
    ordered = sorted(durations)
    total = sum(ordered)
    stats: Dict[str, object] = {
        "count": len(ordered),
        "total_cycles": total,
        "mean": round(total / len(ordered), 6) if ordered else 0.0,
        "max": ordered[-1] if ordered else 0,
    }
    for q in PERCENTILES:
        stats[f"p{q}"] = percentile(ordered, q)
    return stats


def series_stats(values: Sequence[float]) -> Dict[str, object]:
    """min / max / mean / final over one timeline column."""
    if not values:
        return {"min": 0, "max": 0, "mean": 0.0, "final": 0}
    return {
        "min": min(values),
        "max": max(values),
        "mean": round(sum(values) / len(values), 6),
        "final": values[-1],
    }


def downsample(values: Sequence, points: int = TIMELINE_POINTS) -> List:
    """At most ``points`` values, keeping first and last, evenly spaced."""
    if len(values) <= points:
        return list(values)
    last = len(values) - 1
    return [
        values[round(index * last / (points - 1))]
        for index in range(points)
    ]


def histogram_bars(counts: Sequence[int],
                   bars: int = HISTOGRAM_BARS) -> List[int]:
    """Sum adjacent buckets down to at most ``bars`` bars."""
    if len(counts) <= bars:
        return list(counts)
    out = []
    for index in range(bars):
        start = index * len(counts) // bars
        stop = (index + 1) * len(counts) // bars
        out.append(sum(counts[start:stop]))
    return out


def histogram_summary(histogram: Histogram) -> Dict[str, object]:
    """The §5.2 hot-spot diagnostics plus a plottable bar reduction."""
    return {
        "buckets": histogram.buckets,
        "total": histogram.total,
        "nonzero_fraction": round(histogram.nonzero_fraction(), 6),
        "max_load": histogram.max_load(),
        "hot_spot_ratio": round(histogram.hot_spot_ratio(), 6),
        "top_share": round(histogram.top_share(), 6),
        "entropy_efficiency": round(histogram.entropy_efficiency(), 6),
        "bars": histogram_bars(histogram.counts),
    }


def _merged_counts(count_lists: List[List[int]]) -> List[int]:
    """Bucket-wise sum over the simulators sharing the modal size.

    Machines in one experiment can carry differently-sized hash tables;
    summing across sizes would misalign buckets, so only the most
    common size (smallest on a tie) participates.
    """
    sizes = [len(counts) for counts in count_lists]
    modal = max(sorted(set(sizes)), key=sizes.count)
    merged = [0] * modal
    for counts in count_lists:
        if len(counts) != modal:
            continue
        for index, count in enumerate(counts):
            merged[index] += count
    return merged


def _attribution_block(observed: Iterable[Any]) -> Optional[Dict[str, object]]:
    attribution = merge_attributions(
        obs.attribution()
        for obs in observed
        if obs.profiler is not None
    )
    if not attribution:
        return None
    total = sum(attribution.values())
    ordered = [c for c in DISPLAY_ORDER if c in attribution]
    ordered += sorted(set(attribution) - set(ordered))
    shares = {
        category: (round(attribution[category] / total, 6) if total else 0.0)
        for category in ordered
    }
    top = sorted(ordered, key=lambda c: (-attribution[c], c))[0]
    return {
        "cycles": {category: attribution[category] for category in ordered},
        "shares": shares,
        "top": top,
    }


def _instant_key(name: str) -> str:
    """Fold suffixed syscall instants onto their wildcard registry key."""
    if name.startswith("syscall:"):
        return "syscall:*"
    return name


def _trace_blocks(tracers: Iterable[Any]) -> Dict[str, Dict[str, object]]:
    """The span/event/category/reload sections from the trace rings."""
    durations: Dict[str, List[int]] = {}
    instants: Dict[str, int] = {}
    tracks: Dict[str, int] = {}
    for tracer in tracers:
        for _ts, dur, ph, _category, name, _tid, _args in tracer.events:
            if ph == PH_COMPLETE and dur is not None:
                durations.setdefault(name, []).append(dur)
            elif ph == PH_INSTANT:
                key = _instant_key(name)
                if key in INSTANT_EVENTS:
                    instants[key] = instants.get(key, 0) + 1
            elif ph == PH_COUNTER and name in COUNTER_TRACKS:
                tracks[name] = tracks.get(name, 0) + 1
    spans = {
        name: span_stats(durations[name])
        for name in SPAN_EVENTS
        if name in durations
    }
    categories = {}
    for category in sorted(CATEGORY_SPANS):
        merged: List[int] = []
        for name in CATEGORY_SPANS[category]:
            merged.extend(durations.get(name, []))
        if merged:
            categories[category] = span_stats(merged)
    reload_path: List[int] = []
    for name in RELOAD_SPANS:
        reload_path.extend(durations.get(name, []))
    out: Dict[str, Dict[str, object]] = {
        "events": {
            "emitted": sum(tracer.emitted for tracer in tracers),
            "dropped": sum(tracer.dropped for tracer in tracers),
            "instants": {
                name: instants[name]
                for name in INSTANT_EVENTS
                if name in instants
            },
            "tracks": {
                name: tracks[name]
                for name in COUNTER_TRACKS
                if name in tracks
            },
        },
        "spans": spans,
        "categories": categories,
    }
    if reload_path:
        out["reload"] = span_stats(reload_path)
    return out


def pearson(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Pearson correlation over paired samples (0.0 when degenerate)."""
    n = min(len(xs), len(ys))
    if n < 2:
        return 0.0
    xs = list(xs[:n])
    ys = list(ys[:n])
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    var_x = sum((x - mean_x) ** 2 for x in xs)
    var_y = sum((y - mean_y) ** 2 for y in ys)
    if var_x == 0 or var_y == 0:
        return 0.0
    return cov / (var_x * var_y) ** 0.5


def _service_block(tracers: Iterable[Any]) -> Optional[Dict[str, object]]:
    """The SLO section: open-loop latency quantiles from the request
    life-cycle events, the queue-depth curve, and the correlation of
    queue pressure against the sampler's zombie-occupancy track."""
    latencies: List[int] = []
    depth_series: List[int] = []
    zombie_series: List[int] = []
    arrivals = dispatches = 0
    for tracer in tracers:
        for _ts, _dur, ph, _category, name, _tid, args in tracer.events:
            if ph == PH_INSTANT:
                if name == "req-complete" and args:
                    latencies.append(args.get("latency", 0))
                elif name == "req-arrival":
                    arrivals += 1
                elif name == "req-dispatch":
                    dispatches += 1
            elif ph == PH_COUNTER and args:
                if name == "queue-depth":
                    depth_series.append(args.get("pending", 0))
                elif name == "htab":
                    zombie_series.append(args.get("zombie", 0))
    if not latencies and not depth_series:
        return None
    latencies.sort()
    quantiles = {
        permille_label(permille): percentile_permille(latencies, permille)
        for permille in SLO_PERMILLES
    }
    block: Dict[str, object] = {
        "requests": len(latencies),
        "arrivals": arrivals,
        "dispatches": dispatches,
        "latency_cycles": quantiles,
        "queue_depth": series_stats(depth_series),
    }
    # Queue pressure vs zombie occupancy: both curves downsampled onto
    # a common grid before correlating (they tick at different rates —
    # arrivals vs sampler boundaries).
    if depth_series and zombie_series:
        points = min(len(depth_series), len(zombie_series),
                     TIMELINE_POINTS)
        block["zombie_queue_correlation"] = round(
            pearson(
                downsample(depth_series, points),
                downsample(zombie_series, points),
            ), 6
        )
    return block


def _timeline_block(samplers: Iterable[Any]) -> Optional[Dict[str, object]]:
    """Occupancy/zombie trajectory statistics from the sampled series."""
    sampled = [s for s in samplers if s.samples]
    if not sampled:
        return None
    live: List[int] = []
    zombie: List[int] = []
    occupancy: List[float] = []
    for sampler in sampled:
        live.extend(sampler.series("htab", "live"))
        zombie.extend(sampler.series("htab", "zombie"))
        occupancy.extend(sampler.series("htab", "occupancy"))
    # One machine's trajectory is plottable; pick the richest series
    # (first on a tie, so the choice is deterministic).
    richest = max(sampled, key=lambda s: len(s.samples))
    return {
        "samplers": len(sampled),
        "samples": sum(len(s.samples) for s in sampled),
        "every_us": richest.every_us,
        "live": series_stats(live),
        "zombie": series_stats(zombie),
        "occupancy": series_stats(occupancy),
        "series": {
            "us": downsample(richest.series("us")),
            "live": downsample(richest.series("htab", "live")),
            "zombie": downsample(richest.series("htab", "zombie")),
        },
    }


def derive(observed: Sequence[Any]) -> Dict[str, object]:
    """The full derived block for a drained list of recorder handles.

    Sections degrade gracefully with the recorder configuration: a
    profile-only run (the benchmark suite) gets attribution, counters
    and histograms; a traced run adds spans, categories and the reload
    tail; a sampled run adds the timeline.
    """
    observed = list(observed)
    if not observed:
        return {}
    machines: List[str] = []
    for obs in observed:
        name = obs.machine.spec.name
        if name not in machines:
            machines.append(name)
    out: Dict[str, object] = {
        "total_cycles": sum(
            obs.machine.total_cycles_all_cpus() for obs in observed
        ),
        "machines": machines,
        "simulators": len(observed),
    }
    attribution = _attribution_block(observed)
    if attribution is not None:
        out["attribution"] = attribution
    counters = {name: 0 for name in DRIFT_COUNTERS}
    for obs in observed:
        snapshot = obs.machine.monitor_totals()
        for name in DRIFT_COUNTERS:
            counters[name] += snapshot.get(name, 0)
    out["counters"] = counters
    tracers = [obs.tracer for obs in observed if obs.tracer is not None]
    if tracers:
        out.update(_trace_blocks(tracers))
        service = _service_block(tracers)
        if service is not None:
            out["service"] = service
    timeline = _timeline_block(
        [obs.sampler for obs in observed if obs.sampler is not None]
    )
    if timeline is not None:
        out["timeline"] = timeline
    out["histograms"] = {
        "occupancy": histogram_summary(
            Histogram(_merged_counts([
                occupancy_histogram(obs.machine.htab).counts
                for obs in observed
            ]))
        ),
        "miss": histogram_summary(
            Histogram(_merged_counts([
                miss_histogram(obs.machine.htab).counts
                for obs in observed
            ]))
        ),
    }
    return out
