"""Cycle attribution — layer 2 of the MMU flight recorder.

The paper's analysis style is "where did the time go": time in TLB
reloads vs flushes vs user work vs syscall entry (§4, §6, §7).  Every
cycle the simulation charges already lands in the :class:`CycleLedger`
under a fine-grained category; this profiler folds those raw categories
into the paper's path taxonomy and renders a breakdown that sums
*exactly* to the run's total cycles — no sampling, no residue.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Optional

#: Raw ledger category -> path category.  Anything unlisted lands in
#: "other", so the attribution is total by construction.
PATH_CATEGORIES: Dict[str, str] = {
    "user_compute": "user-compute",
    # Memory-system traffic: the cache-modelled line touches and copies.
    "mem": "memory",
    "copy": "memory",
    "prefetch": "memory",
    # TLB/hash reload path — includes the hardware hash walk, the trap
    # invoke costs and the software handler's table probes.
    "tlb_reload": "tlb-reload",
    "scavenge": "tlb-reload",
    # Translation teardown.
    "flush": "flush",
    # SMP TLB-shootdown traffic: IPI send/deliver and deferred drains.
    "shootdown": "shootdown",
    # The idle task's three jobs.
    "idle_reclaim": "idle",
    "idle_spin": "idle",
    "idle_clear": "idle",
    # Kernel entry/exit and syscall bodies.
    "syscall": "syscall",
    "ipc": "syscall",
    "fork": "syscall",
    # Demand faulting.
    "fault": "fault",
    # Scheduling and the switch path.
    "context_switch": "scheduling",
    "sched": "scheduling",
    "wakeup": "scheduling",
    # File layer and disk waits.
    "fs": "io",
    "io_wait": "io",
    # Page allocator work outside the idle task.
    "palloc": "kernel-mm",
    # Request-serving runtime bookkeeping (queue accept/dispatch).
    "service": "service",
}

#: Stable display order for rendered breakdowns (largest concerns of the
#: paper first); categories absent from a run are skipped.
DISPLAY_ORDER = (
    "user-compute", "memory", "tlb-reload", "flush", "shootdown", "idle",
    "syscall", "fault", "scheduling", "io", "kernel-mm", "service",
    "other",
)


class AttributionError(AssertionError):
    """The attribution failed to cover the ledger exactly (a bug)."""


class CycleProfiler:
    """Folds a ledger's raw categories into path-category attribution."""

    def __init__(self, clock: Any) -> None:
        self.clock = clock

    @property
    def total(self) -> int:
        return self.clock.total

    def attribution(self) -> Dict[str, int]:
        """Path-category cycle totals; always sums to ``clock.total``."""
        out: Dict[str, int] = {}
        for raw, cycles in self.clock.breakdown().items():
            category = PATH_CATEGORIES.get(raw, "other")
            out[category] = out.get(category, 0) + cycles
        attributed = sum(out.values())
        if attributed != self.clock.total:
            raise AttributionError(
                f"attributed {attributed} cycles != ledger total "
                f"{self.clock.total}"
            )
        return out

    def raw_breakdown(self) -> Dict[str, int]:
        return self.clock.breakdown()


def merge_attributions(attributions: Iterable[Dict[str, int]]) -> Dict[str, int]:
    """Sum per-machine attributions into one experiment-level breakdown."""
    out: Dict[str, int] = {}
    for attribution in attributions:
        for category, cycles in attribution.items():
            out[category] = out.get(category, 0) + cycles
    return out


def render_attribution(
    attribution: Dict[str, int],
    title: str,
    cycles_to_us: Optional[Callable[[float], float]] = None,
) -> str:
    """A 'where did the time go' table whose rows sum to the total."""
    total = sum(attribution.values())
    lines = [title]
    header = f"  {'category':<14}{'cycles':>16}{'share':>9}"
    if cycles_to_us is not None:
        header += f"{'us':>14}"
    lines.append(header)
    ordered = [c for c in DISPLAY_ORDER if c in attribution]
    ordered += sorted(set(attribution) - set(ordered))
    for category in ordered:
        cycles = attribution[category]
        share = cycles / total if total else 0.0
        row = f"  {category:<14}{cycles:>16,}{share:>8.1%}"
        if cycles_to_us is not None:
            row += f"{cycles_to_us(cycles):>14,.1f}"
        lines.append(row)
    row = f"  {'total':<14}{total:>16,}{'100.0%':>9}"
    if cycles_to_us is not None:
        row += f"{cycles_to_us(total):>14,.1f}"
    lines.append(row)
    return "\n".join(lines)
