"""Run one experiment under the flight recorder.

Experiments construct their own Simulators internally, so observing one
means enabling the global recorder around the registry call and draining
the handles afterwards — the same shape as ``repro.check.runner``.

Kept out of ``repro.obs.__init__`` on purpose: this module imports the
experiment registry, which imports the simulator, which imports the
``obs`` package.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis import engine, specs
from repro.analysis.spec import ExperimentResult
from repro.obs import (
    Observability,
    TraceConfig,
    chrome_trace,
    disable_global_observability,
    drain_global_observed,
    enable_global_observability,
    merge_attributions,
)
from repro.obs.metrics import experiment_record


@dataclass
class ObservedExperiment:
    """An experiment's result plus the recorders that watched it run."""

    experiment: str
    result: ExperimentResult
    observed: List[Observability] = field(default_factory=list)

    @property
    def total_cycles(self) -> int:
        return sum(obs.machine.clock.total for obs in self.observed)

    def machines(self) -> List[str]:
        names: List[str] = []
        for obs in self.observed:
            name = obs.machine.spec.name
            if name not in names:
                names.append(name)
        return names

    def attribution(self) -> Dict[str, int]:
        return merge_attributions(
            obs.profiler.attribution()
            for obs in self.observed
            if obs.profiler is not None
        )

    def record(self) -> Dict:
        return experiment_record(
            self.result, self.observed, spec=specs.SPECS[self.experiment]
        )

    def chrome_trace(self) -> Dict:
        tracers = [obs.tracer for obs in self.observed if obs.tracer is not None]
        return chrome_trace(
            tracers,
            other_data={
                "experiment": self.experiment,
                "title": self.result.title,
                "dropped_events": sum(t.dropped for t in tracers),
            },
        )


def run_observed(
    experiment_id: str,
    trace: bool = False,
    sample_every_us: Optional[float] = None,
    trace_config: Optional[TraceConfig] = None,
) -> ObservedExperiment:
    """Run one registry experiment with the global recorder enabled."""
    if experiment_id not in specs.SPECS:
        raise KeyError(f"unknown experiment: {experiment_id}")
    enable_global_observability(
        trace=trace,
        profile=True,
        sample_every_us=sample_every_us,
        trace_config=trace_config,
    )
    try:
        result = engine.execute(specs.SPECS[experiment_id])
        observed = drain_global_observed()
    finally:
        disable_global_observability()
    return ObservedExperiment(
        experiment=experiment_id, result=result, observed=observed
    )
