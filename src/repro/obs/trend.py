"""Per-PR trend analytics over the history ledger.

``repro trend`` reads ``BENCH_history.jsonl`` (see
:mod:`repro.obs.history`) and answers the trajectory questions the
paper answers table-by-table: which experiments moved between two
runs, by how many cycles (exact — the simulation is deterministic, so
any nonzero delta is a real change, not noise), where the cycles went
(per path-category movers), and what the wall clock did (banded
through the same ``timings.`` tolerance rules the regression sentinel
uses, because wall time measures the host).

Everything here is a pure function of the ledger: given the same
entries, :func:`trend_doc` returns the same document and
:func:`render_trend` the same text, byte for byte.  The dashboard's
trend section (``repro report --history``) builds on the same doc.

``MOVER_CATEGORIES`` is a literal tuple on purpose: the
observatory-closure lint pass reads it from the AST and checks every
name is a registered path category of ``obs/profiler.py`` (or its
``other`` fallback), so the trend table can never rank a category the
profiler does not produce.  Same for ``HEADLINE_COLUMNS`` against the
ledger's ``HEADLINE_FIELDS``.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.obs import baseline

#: Path categories the per-category movers table ranks, in display
#: order.  Checked by ``repro lint`` against the profiler's registered
#: PATH_CATEGORIES values (plus the "other" fallback).
MOVER_CATEGORIES = (
    "user-compute", "memory", "tlb-reload", "flush", "shootdown", "idle",
    "syscall", "fault", "scheduling", "io", "kernel-mm", "other",
)

#: Headline metrics carried through per step, in display order.
#: Checked by ``repro lint`` against ``HEADLINE_FIELDS`` of
#: ``obs/history.py``.
HEADLINE_COLUMNS = ("top_category", "top_share", "reload_p99", "tlb_miss")

#: Longest sparkline series the trend doc carries per experiment (and
#: for the total); older entries beyond the cap are dropped from the
#: series (never from the deltas).
SPARK_POINTS = 32


def _entry_name(entry: Dict, index: int) -> str:
    """A human name for one ledger entry: label, else short sha, else #n."""
    if entry.get("label"):
        return str(entry["label"])
    sha = entry.get("git", {}).get("sha")
    if sha:
        return str(sha)[:12]
    return f"#{index + 1}"


def _wall_total(entry: Dict) -> Optional[float]:
    wall = entry.get("wall", {})
    if not wall:
        return None
    return round(sum(wall.values()), 3)


def _wall_delta(
    key: str, old: Optional[float], new: Optional[float],
    policy: Dict[str, object],
) -> Dict[str, object]:
    """One wall-time movement, banded like the sentinel bands it.

    ``key`` is the leaf path the sentinel would use (``timings.E7``),
    so the same committed policy file governs both the gate and the
    trend report's wording.
    """
    if old is None or new is None:
        return {"old": old, "new": new, "status": "missing"}
    rule = baseline.rule_for(key, policy)
    finding = baseline.check_leaf(key, old, new, policy)
    out: Dict[str, object] = {
        "old": old,
        "new": new,
        "status": "outside-band" if finding is not None else "within-band",
        "kind": rule["kind"],
    }
    if old > 0:
        out["ratio"] = round(new / old, 4)
    return out


def step(
    old: Dict, new: Dict,
    policy: Optional[Dict[str, object]] = None,
    old_name: str = "old", new_name: str = "new",
    movers_limit: int = 5,
) -> Dict:
    """The delta document between two consecutive ledger entries."""
    policy = policy if policy is not None else baseline.DEFAULT_POLICY
    old_exp = old["experiments"]
    new_exp = new["experiments"]
    shared = [key for key in new_exp if key in old_exp]
    experiments: Dict[str, Dict] = {}
    for key in sorted(shared, key=lambda k: int(k[1:])):
        before, after = old_exp[key], new_exp[key]
        cycles_old = before["total_cycles"]
        cycles_new = after["total_cycles"]
        entry: Dict[str, object] = {
            "cycles": {
                "old": cycles_old,
                "new": cycles_new,
                "delta": cycles_new - cycles_old,
                "ratio": round(cycles_new / cycles_old, 6),
            },
            "shape": {
                "old": before["shape_holds"],
                "new": after["shape_holds"],
            },
            "wall": _wall_delta(
                f"timings.{key}",
                old.get("wall", {}).get(key),
                new.get("wall", {}).get(key),
                policy,
            ),
            "headline": {
                column: {
                    "old": before["headline"].get(column),
                    "new": after["headline"].get(column),
                }
                for column in HEADLINE_COLUMNS
            },
        }
        experiments[key] = entry
    movers = sorted(
        (
            (key, entry["cycles"]["delta"])
            for key, entry in experiments.items()
            if entry["cycles"]["delta"] != 0
        ),
        key=lambda pair: (-abs(pair[1]), int(pair[0][1:])),
    )
    category_movers = _category_movers(old_exp, new_exp, shared)
    return {
        "from": {
            "label": old.get("label"),
            "sha": old.get("git", {}).get("sha"),
            "name": old_name,
        },
        "to": {
            "label": new.get("label"),
            "sha": new.get("git", {}).get("sha"),
            "name": new_name,
        },
        "experiments": experiments,
        "movers": [
            {"id": key, "delta": delta}
            for key, delta in movers[:movers_limit]
        ],
        "category_movers": category_movers[:movers_limit],
        "summary": {
            "shared": len(shared),
            "added": sorted(
                (k for k in new_exp if k not in old_exp),
                key=lambda k: int(k[1:]),
            ),
            "removed": sorted(
                (k for k in old_exp if k not in new_exp),
                key=lambda k: int(k[1:]),
            ),
            "changed": sum(
                1 for entry in experiments.values()
                if entry["cycles"]["delta"] != 0
            ),
            "total_cycles": {
                "old": sum(old_exp[k]["total_cycles"] for k in shared),
                "new": sum(new_exp[k]["total_cycles"] for k in shared),
            },
            "wall_total": _wall_delta(
                "timings.total", _wall_total(old), _wall_total(new), policy
            ),
        },
    }


def _category_movers(old_exp: Dict, new_exp: Dict,
                     shared: List[str]) -> List[Dict]:
    """Cycle deltas summed per path category across shared experiments."""
    totals: Dict[str, List[int]] = {}
    for key in shared:
        for side, exp in ((0, old_exp), (1, new_exp)):
            for category, cycles in exp[key]["attribution"].items():
                totals.setdefault(category, [0, 0])[side] += cycles
    ranked = []
    order = {name: rank for rank, name in enumerate(MOVER_CATEGORIES)}
    for category in sorted(
        totals,
        key=lambda c: (
            -abs(totals[c][1] - totals[c][0]),
            order.get(c, len(order)),
            c,
        ),
    ):
        old_total, new_total = totals[category]
        delta = new_total - old_total
        if delta == 0:
            continue
        ranked.append({
            "category": category,
            "old": old_total,
            "new": new_total,
            "delta": delta,
        })
    return ranked


def trend_doc(
    entries: List[Dict],
    policy: Optional[Dict[str, object]] = None,
) -> Dict:
    """The full trend document for a ledger (oldest entry first)."""
    if not entries:
        raise ValueError("trend needs at least one history entry")
    policy = policy if policy is not None else baseline.DEFAULT_POLICY
    names = [_entry_name(entry, index)
             for index, entry in enumerate(entries)]
    steps = [
        step(entries[index - 1], entries[index], policy,
             old_name=names[index - 1], new_name=names[index])
        for index in range(1, len(entries))
    ]
    ids = sorted(
        {key for entry in entries for key in entry["experiments"]},
        key=lambda k: int(k[1:]),
    )
    window = entries[-SPARK_POINTS:]
    series = {
        key: [
            entry["experiments"].get(key, {}).get("total_cycles")
            for entry in window
        ]
        for key in ids
    }
    series["__total__"] = [
        entry["summary"]["total_cycles"] for entry in window
    ]
    return {
        "entries": [
            {
                "name": names[index],
                "label": entry.get("label"),
                "sha": entry.get("git", {}).get("sha"),
                "total_cycles": entry["summary"]["total_cycles"],
                "experiments": entry["summary"]["experiments"],
                "shapes_holding": entry["summary"]["shapes_holding"],
                "wall_total": _wall_total(entry),
                "verdict": entry.get("verdict"),
            }
            for index, entry in enumerate(entries)
        ],
        "steps": steps,
        "series": series,
        "series_window": len(window),
    }


# -- text rendering ----------------------------------------------------------

_TICKS = "▁▂▃▄▅▆▇█"


def sparkline(values: List[Optional[int]]) -> str:
    """A unicode sparkline; gaps render as spaces."""
    numbers = [v for v in values if v is not None]
    if not numbers:
        return ""
    low, high = min(numbers), max(numbers)
    span = high - low
    out = []
    for value in values:
        if value is None:
            out.append(" ")
        elif span == 0:
            out.append(_TICKS[0])
        else:
            index = int((value - low) / span * (len(_TICKS) - 1))
            out.append(_TICKS[index])
    return "".join(out)


def _signed(value: int) -> str:
    return f"{value:+,}" if value else "="


def _wall_phrase(wall: Dict[str, object]) -> str:
    if wall.get("status") == "missing":
        return "wall n/a"
    ratio = wall.get("ratio")
    arrow = f"{wall['old']}s -> {wall['new']}s"
    if isinstance(ratio, (int, float)) and ratio > 0:
        if ratio < 1.0:
            arrow += f" ({1.0 / ratio:.2f}x faster"
        elif ratio > 1.0:
            arrow += f" ({ratio:.2f}x slower"
        else:
            arrow += " (unchanged"
        arrow += f", {wall['status']})"
    return f"wall {arrow}"


def render_trend(doc: Dict, limit: int = 5) -> str:
    """The prose trend report (``--json`` prints the doc instead)."""
    lines = [f"BENCH history: {len(doc['entries'])} entries"]
    for entry in doc["entries"]:
        sha = (entry["sha"] or "")[:12]
        wall = entry["wall_total"]
        verdict = entry["verdict"]
        lines.append(
            f"  {entry['name']:<14} {sha:<12} "
            f"{entry['total_cycles']:>16,} cycles  "
            f"{entry['shapes_holding']}/{entry['experiments']} shapes"
            + (f"  wall {wall}s" if wall is not None else "")
            + ("" if verdict is None else
               f"  [{'ok' if verdict['ok'] else 'REGRESSION'}]")
        )
    total = doc["series"]["__total__"]
    if len(total) > 1:
        lines.append(f"  total cycles trend: {sparkline(total)}")
    for change in doc["steps"]:
        lines.append("")
        lines.append(
            f"{change['from']['name']} -> {change['to']['name']}:"
        )
        summary = change["summary"]
        cycles = summary["total_cycles"]
        lines.append(
            f"  total {cycles['old']:,} -> {cycles['new']:,} cycles "
            f"({_signed(cycles['new'] - cycles['old'])}), "
            f"{summary['changed']}/{summary['shared']} experiments moved; "
            + _wall_phrase(summary["wall_total"])
        )
        for key in summary["added"]:
            lines.append(f"  added {key}")
        for key in summary["removed"]:
            lines.append(f"  removed {key}")
        if not change["movers"]:
            lines.append("  cycle deltas: none (bit-identical runs)")
        else:
            lines.append("  top movers:")
            for mover in change["movers"][:limit]:
                entry = change["experiments"][mover["id"]]
                cycles = entry["cycles"]
                lines.append(
                    f"    {mover['id']:<4} {_signed(mover['delta']):>16} "
                    f"cycles  ({cycles['old']:,} -> {cycles['new']:,}, "
                    f"x{cycles['ratio']:.4f})"
                )
            if change["category_movers"]:
                lines.append("  where the cycles went:")
                for mover in change["category_movers"][:limit]:
                    lines.append(
                        f"    {mover['category']:<14} "
                        f"{_signed(mover['delta']):>16} cycles"
                    )
        shape_flips = [
            key for key, entry in change["experiments"].items()
            if entry["shape"]["old"] != entry["shape"]["new"]
        ]
        for key in shape_flips:
            entry = change["experiments"][key]
            lines.append(
                f"  SHAPE FLIP {key}: {entry['shape']['old']} -> "
                f"{entry['shape']['new']}"
            )
    return "\n".join(lines) + "\n"
