"""Structured event tracing — layer 1 of the MMU flight recorder.

§4's methodology is observability: the 604 hardware monitor "counting
every TLB and cache miss" is what made the paper's optimizations
findable.  The :class:`EventTracer` is the software equivalent of that
monitor's event stream: a ring-buffered bus of timestamped events that
the machine and kernel commit points (TLB/hash miss and reload, BAT
hits, flushes and VSID bumps, idle reclaim and preclear, context
switches, syscall entries, page faults) publish into.

Zero perturbation is the design rule, mirroring ``repro.check``: an
emit never touches the cycle ledger, the hardware monitor, or any cache
— a traced run is bit-identical to an untraced one in every counter and
in total cycles.  Timestamps are *simulated* cycles read off the ledger,
so two identical runs produce byte-identical traces.

The export format is Chrome trace-event JSON (the ``traceEvents``
array), so any captured run opens directly in Perfetto or
``chrome://tracing``.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Dict, FrozenSet, Iterable, List, Optional

#: The closed registry of every event name this repo may publish —
#: tracer spans/instants/counter tracks and hardware-monitor counters.
#: ``repro lint``'s event-registry closure pass statically checks that
#: every ``tracer.instant/complete/counter`` and ``monitor.count``
#: callsite uses a name listed here (entries ending in ``*`` match by
#: prefix, for names carrying a dynamic suffix).  Keep this a literal
#: dict: the lint pass reads it from the AST, not at runtime.
EVENT_NAMES: Dict[str, str] = {
    # -- tracer spans (Chrome "X" events) -------------------------------
    "hw-walk": "604 hardware hash walk resolved a TLB miss",
    "sw-refill": "software TLB refill through the Linux page tables",
    "scavenge-burst": "on-miss zombie scavenge burst over the hash table",
    "flush-page": "single-page invalidate (hash search + tlbie)",
    "flush-range": "range invalidate by per-page hash search",
    "flush-mm": "whole-address-space invalidate by hash search",
    "flush-everything": "global invalidate (counter wrap / reset)",
    "vsid-bump": "lazy context invalidate by VSID bump (section 7)",
    "reclaim-chunk": "idle-task zombie reclaim over one hash-table chunk",
    "idle-window": "one scheduling of the idle task",
    "page-fault": "demand fault handled (major or minor)",
    "shootdown-drain": "deferred remote TLB invalidations drained at ctxsw",
    "req-queue": "service request waiting in its CPU's dispatch queue",
    "req-run": "service request executing (exec/map/touch/compute)",
    # -- tracer instants (Chrome "i" events) ----------------------------
    "syscall:*": "syscall entry, suffixed with the syscall name",
    "ctxsw": "context switch committed to a task",
    "wakeup": "sleeping task woken",
    "sleep": "task put to sleep until a simulated deadline",
    "pipe-create": "pipe created",
    "pipe-close": "pipe endpoint closed",
    "preclear-page": "idle task pre-cleared one free page (section 9)",
    "ipi": "inter-processor interrupt round for a TLB shootdown",
    "req-arrival": "open-loop request accepted onto a dispatch queue",
    "req-dispatch": "service request picked up by a worker",
    "req-complete": "service request finished, open-loop latency known",
    # -- tracer counter tracks (Chrome "C" events) ----------------------
    "htab": "hash-table live/zombie occupancy curve",
    "occupancy": "hash-table valid-entry curve",
    "monitor": "selected hardware-monitor counter curves",
    "queue-depth": "pending service requests per dispatch queue",
    "vsids": "bounded top-K per-VSID hash-table population summary",
    # -- hardware-monitor counters (republished as instants when the
    # -- tracer's monitor filter selects them) --------------------------
    "itlb_miss": "instruction TLB miss",
    "dtlb_miss": "data TLB miss",
    "tlb_miss": "TLB miss (either side)",
    "htab_search": "hash-table search started",
    "htab_hit": "hash-table search found the PTE",
    "htab_miss": "hash-table search missed",
    "htab_reload": "PTE installed into the hash table",
    "htab_evict": "valid PTE evicted to make room",
    "hash_miss_interrupt": "604 hash-miss trap to the kernel",
    "sw_tlb_miss_interrupt": "603 software TLB-miss trap",
    "bat_translation": "access translated by a BAT register",
    "icache_miss": "instruction-cache miss",
    "dcache_miss": "data-cache miss",
    "page_fault_major": "major page fault (backing store)",
    "page_fault_minor": "minor page fault (mapping only)",
    "flush_range_search": "flush took the per-page search path",
    "flush_range_lazy": "flush took the lazy VSID-bump path",
    "vsid_bump": "context moved onto fresh VSIDs",
    "zombie_reclaimed": "zombie PTE invalidated (idle task or scavenge)",
    "pages_precleared": "free page pre-cleared onto the section-9 list",
    "precleared_page_used": "get_free_page served a pre-cleared page",
    "scavenge_burst": "on-miss scavenge burst ran",
    "context_switch": "context switch",
    "syscall": "syscall entered",
    "ipi_sent": "shootdown IPI dispatched to a remote CPU",
    "ipi_received": "shootdown IPI delivered on a remote CPU",
    "shootdown_deferred": "remote invalidation queued instead of IPI'd",
    "shootdown_drained": "deferred invalidation applied at context switch",
    "flush_skipped_reuse": "munmap flush skipped by pooling the region",
    "reuse_pool_hit": "mmap revived a pooled region without faulting",
}

#: Monitor events republished as trace instants by default.  The cache
#: miss counters are excluded — they fire per cache *line* touched and
#: would drown every other event (they are still visible as counters in
#: the time-series samples); everything translation-shaped is kept.
DEFAULT_MONITOR_EVENTS: FrozenSet[str] = frozenset({
    "itlb_miss",
    "dtlb_miss",
    "htab_search",
    "htab_hit",
    "htab_miss",
    "htab_reload",
    "htab_evict",
    "hash_miss_interrupt",
    "sw_tlb_miss_interrupt",
    "bat_translation",
    "page_fault_major",
    "page_fault_minor",
    "flush_range_search",
    "flush_range_lazy",
    "vsid_bump",
    "zombie_reclaimed",
    "pages_precleared",
    "precleared_page_used",
    "scavenge_burst",
    "ipi_sent",
    "ipi_received",
    "shootdown_deferred",
    "shootdown_drained",
    "flush_skipped_reuse",
    "reuse_pool_hit",
})

#: Default ring capacity, in events.  A full E7 run emits a few million
#: raw events; the ring keeps the most recent window bounded.
DEFAULT_CAPACITY = 1 << 18

#: Chrome trace-event phases this tracer emits.
PH_INSTANT = "i"
PH_COMPLETE = "X"
PH_COUNTER = "C"
PH_METADATA = "M"


class TraceConfig:
    """Tuning knobs for one :class:`EventTracer`."""

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        monitor_events: Optional[FrozenSet[str]] = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"trace ring capacity must be positive: {capacity}")
        self.capacity = capacity
        self.monitor_events = (
            DEFAULT_MONITOR_EVENTS if monitor_events is None else
            frozenset(monitor_events)
        )


class EventTracer:
    """A ring-buffered event bus with simulated-cycle timestamps.

    Events are stored as tuples ``(ts_cycles, dur_cycles, ph, category,
    name, tid, args)`` — ``dur_cycles`` and ``args`` may be ``None``.
    ``tid`` is the pid of the task that was current when the event
    fired (0 = boot / idle / no task).
    """

    def __init__(self, machine: Any, kernel: Any = None,
                 label: str = "machine",
                 config: Optional[TraceConfig] = None) -> None:
        self.machine = machine
        self.kernel = kernel
        self.label = label
        self.config = config if config is not None else TraceConfig()
        self.events: deque = deque(maxlen=self.config.capacity)
        #: Total events ever published (the ring may have dropped some).
        self.emitted = 0

    # -- publication ---------------------------------------------------------

    def _tid(self) -> int:
        kernel = self.kernel
        if kernel is None or kernel.current_task is None:
            return 0
        return kernel.current_task.pid

    def instant(self, name: str, category: str,
                args: Optional[Dict] = None) -> None:
        """Publish a point event at the current simulated cycle."""
        self.emitted += 1
        self.events.append(
            (self.machine.clock.total, None, PH_INSTANT, category, name,
             self._tid(), args)
        )

    def complete(self, name: str, category: str, dur_cycles: int,
                 args: Optional[Dict] = None) -> None:
        """Publish a span that just finished, ``dur_cycles`` long."""
        self.emitted += 1
        now = self.machine.clock.total
        self.events.append(
            (max(now - dur_cycles, 0), dur_cycles, PH_COMPLETE, category,
             name, self._tid(), args)
        )

    def counter(self, name: str, values: Dict[str, float]) -> None:
        """Publish a Chrome counter sample (renders as a curve)."""
        self.emitted += 1
        self.events.append(
            (self.machine.clock.total, None, PH_COUNTER, "sample", name,
             0, dict(values))
        )

    def on_monitor_event(self, event: str, amount: int = 1) -> None:
        """Hardware-monitor hook: republish counted events as instants."""
        if event in self.config.monitor_events:
            args = None if amount == 1 else {"count": amount}
            self.instant(event, "monitor", args)

    @property
    def dropped(self) -> int:
        """Events pushed out of the ring by newer ones."""
        return self.emitted - len(self.events)

    # -- export --------------------------------------------------------------

    def chrome_events(self, pid: int = 0) -> List[Dict]:
        """This tracer's ring as Chrome trace-event dicts.

        ``ts`` is in microseconds of simulated time at this machine's
        clock rate, as the trace-event format specifies.
        """
        cycles_to_us = self.machine.spec.cycles_to_us
        out: List[Dict] = [{
            "ph": PH_METADATA, "ts": 0, "pid": pid, "tid": 0,
            "name": "process_name", "args": {"name": self.label},
        }]
        for ts, dur, ph, category, name, tid, args in self.events:
            event = {
                "ph": ph,
                "ts": round(cycles_to_us(ts), 3),
                "pid": pid,
                "tid": tid,
                "name": name,
                "cat": category,
            }
            if dur is not None:
                event["dur"] = round(cycles_to_us(dur), 3)
            if args is not None:
                event["args"] = args
            out.append(event)
        return out


def chrome_trace(tracers: Iterable[Any],
                 other_data: Optional[Dict] = None) -> Dict:
    """Merge tracers into one Chrome trace document (one pid each)."""
    events: List[Dict] = []
    for pid, tracer in enumerate(tracers):
        events.extend(tracer.chrome_events(pid=pid))
    doc = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
    }
    if other_data:
        doc["otherData"] = dict(other_data)
    return doc


def validate_chrome_trace(doc: Dict) -> Dict[str, int]:
    """Check a document is well-formed Chrome trace-event JSON.

    Raises :class:`ValueError` on the first malformed event; returns
    ``{"events": n, "spans": n, "instants": n, "counters": n}`` so
    callers (the CI step, the tests) can also assert non-emptiness.
    """
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        raise ValueError("not a Chrome trace: missing 'traceEvents'")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("'traceEvents' must be a list")
    counts = {"events": 0, "spans": 0, "instants": 0, "counters": 0}
    known_ph = {PH_INSTANT, PH_COMPLETE, PH_COUNTER, PH_METADATA, "B", "E"}
    for index, event in enumerate(events):
        for field in ("ph", "ts", "name", "pid", "tid"):
            if field not in event:
                raise ValueError(f"event {index} missing {field!r}: {event}")
        ph = event["ph"]
        if ph not in known_ph:
            raise ValueError(f"event {index} has unknown phase {ph!r}")
        if not isinstance(event["ts"], (int, float)) or event["ts"] < 0:
            raise ValueError(f"event {index} has bad ts: {event['ts']!r}")
        if ph == PH_COMPLETE and "dur" not in event:
            raise ValueError(f"event {index} is 'X' without 'dur'")
        counts["events"] += 1
        if ph == PH_COMPLETE:
            counts["spans"] += 1
        elif ph == PH_INSTANT:
            counts["instants"] += 1
        elif ph == PH_COUNTER:
            counts["counters"] += 1
    return counts
