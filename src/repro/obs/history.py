"""The longitudinal bench ledger: ``BENCH_history.jsonl``.

The paper's method is longitudinal by nature — §3-§4 measure one
optimization at a time and attribute every win against the run before
it.  This module gives the reproduction the same memory: an
append-only JSON-lines ledger where each line is one schema-validated
run record (git provenance, per-experiment total cycles and
attribution, derived headline metrics, the sentinel's verdict, wall
seconds), written by ``repro bench append`` after a run and read back
by ``repro trend`` to compute per-PR deltas.

Determinism contract (the same split the regression sentinel applies):
every field of an entry is byte-deterministic for a given bench doc
*except* the ``wall`` section, which mirrors the doc's wall-clock
``timings`` and measures the host, not the simulation.  Entries are
serialized as one compact, key-sorted JSON line each, so the ledger
diffs line-per-run in review.

``RECORD_FIELDS`` below names the bench-record fields an entry copies
per experiment; ``repro lint``'s observatory-closure pass checks it
stays a subset of :data:`repro.obs.metrics.RECORD_REQUIRED`, so the
ledger can never silently drift from the record schema.
"""

from __future__ import annotations

import json
import pathlib
import re
from typing import Any, Dict, List, Optional

from repro.obs import metrics

#: Ledger entry schema version.
HISTORY_SCHEMA = 1

#: Bench-record fields copied verbatim into each entry's per-experiment
#: sub-record.  A literal tuple on purpose: the observatory-closure
#: lint pass reads it from the AST and checks every name is in
#: ``RECORD_REQUIRED`` of ``obs/metrics.py``.
RECORD_FIELDS = ("total_cycles", "shape_holds", "attribution")

#: Derived headline metrics summarized per experiment (the trend
#: table's columns).  Each is computed by :func:`headline` from the
#: record's ``derived`` block; absent sections yield ``None``.
HEADLINE_FIELDS = ("top_category", "top_share", "reload_p99", "tlb_miss")

_ENTRY_ID = re.compile(r"^E\d+$")


def headline(record: Dict) -> Dict[str, object]:
    """The derived headline metrics for one bench record."""
    derived = record.get("derived", {})
    attribution = derived.get("attribution", {})
    top = attribution.get("top")
    shares = attribution.get("shares", {})
    reload_path = derived.get("reload", {})
    counters = derived.get("counters", {})
    return {
        "top_category": top,
        "top_share": shares.get(top) if top is not None else None,
        "reload_p99": reload_path.get("p99"),
        "tlb_miss": counters.get("tlb_miss"),
    }


def entry_from_doc(
    doc: Dict,
    label: Optional[str] = None,
    sha: Optional[str] = None,
    parent: Optional[str] = None,
    verdict: Optional[Dict] = None,
) -> Dict:
    """Build one ledger entry from a validated bench doc.

    ``sha``/``parent`` record the git revision the run measured (and
    its parent, so a trend consumer can order or cross-check entries);
    ``verdict`` is the sentinel's record (``repro bench compare
    --json``/``--out`` output) when the run was gated.  The entry is
    validated before it is returned.
    """
    metrics.validate_bench_doc(doc)
    experiments: Dict[str, Dict] = {}
    for record in doc["experiments"]:
        sub: Dict[str, object] = {
            field: record[field] for field in RECORD_FIELDS
        }
        sub["headline"] = headline(record)
        experiments[record["id"]] = sub
    entry = {
        "schema_version": HISTORY_SCHEMA,
        "bench_schema": doc["schema_version"],
        "label": label,
        "git": {"sha": sha, "parent": parent},
        "experiments": experiments,
        "summary": {
            "experiments": len(experiments),
            "shapes_holding": sum(
                1 for sub in experiments.values() if sub["shape_holds"]
            ),
            "total_cycles": sum(
                sub["total_cycles"] for sub in experiments.values()
            ),
        },
        "wall": {
            key: value
            for key, value in sorted(doc.get("timings", {}).items())
        },
        "verdict": _verdict_summary(verdict),
    }
    validate_history_entry(entry)
    return entry


def _verdict_summary(verdict: Optional[Dict]) -> Optional[Dict]:
    """The gate-relevant slice of a sentinel verdict record."""
    if verdict is None:
        return None
    return {
        "ok": bool(verdict.get("ok")),
        "regressions": int(verdict.get("regressions", 0)),
        "warnings": int(verdict.get("warnings", 0)),
    }


def validate_history_entry(entry: Any) -> Dict[str, int]:
    """Check one ledger entry is well-formed.

    The ledger counterpart of
    :func:`repro.obs.metrics.validate_bench_doc`: raises
    :class:`ValueError` on the first malformed section and returns
    summary counts so callers can assert non-emptiness.
    """
    if not isinstance(entry, dict) or "experiments" not in entry:
        raise ValueError("not a history entry: missing 'experiments'")
    version = entry.get("schema_version")
    if version != HISTORY_SCHEMA:
        raise ValueError(
            f"history entry schema_version {version!r} != supported "
            f"{HISTORY_SCHEMA}"
        )
    bench_schema = entry.get("bench_schema")
    if not isinstance(bench_schema, int) or isinstance(bench_schema, bool):
        raise ValueError("history entry needs an int 'bench_schema'")
    git = entry.get("git")
    if not isinstance(git, dict) or "sha" not in git:
        raise ValueError("history entry needs a 'git' object with 'sha'")
    experiments = entry["experiments"]
    if not isinstance(experiments, dict) or not experiments:
        raise ValueError("'experiments' must be a non-empty object")
    counts = {"experiments": 0, "shapes_holding": 0, "total_cycles": 0}
    for key in experiments:
        if not isinstance(key, str) or not _ENTRY_ID.match(key):
            raise ValueError(f"bad experiment id in entry: {key!r}")
        sub = experiments[key]
        if not isinstance(sub, dict):
            raise ValueError(f"{key}: entry sub-record must be an object")
        for field in RECORD_FIELDS + ("headline",):
            if field not in sub:
                raise ValueError(f"{key}: sub-record missing {field!r}")
        cycles = sub["total_cycles"]
        if not isinstance(cycles, int) or isinstance(cycles, bool) \
                or cycles <= 0:
            raise ValueError(
                f"{key}: total_cycles must be a positive int, got "
                f"{cycles!r}"
            )
        if not isinstance(sub["shape_holds"], bool):
            raise ValueError(f"{key}: shape_holds must be a bool")
        if not isinstance(sub["attribution"], dict):
            raise ValueError(f"{key}: attribution must be an object")
        head = sub["headline"]
        if not isinstance(head, dict):
            raise ValueError(f"{key}: headline must be an object")
        for field in HEADLINE_FIELDS:
            if field not in head:
                raise ValueError(f"{key}: headline missing {field!r}")
        counts["experiments"] += 1
        counts["shapes_holding"] += 1 if sub["shape_holds"] else 0
        counts["total_cycles"] += cycles
    summary = entry.get("summary")
    if not isinstance(summary, dict):
        raise ValueError("history entry missing 'summary' object")
    for field, expected in sorted(counts.items()):
        if summary.get(field) != expected:
            raise ValueError(
                f"summary.{field} = {summary.get(field)!r} does not "
                f"match the experiments ({expected})"
            )
    wall = entry.get("wall")
    if not isinstance(wall, dict):
        raise ValueError("history entry needs a 'wall' object (may be {})")
    for key in sorted(wall):
        value = wall[key]
        if not isinstance(value, (int, float)) or isinstance(value, bool) \
                or value < 0:
            raise ValueError(f"wall[{key!r}] is not a wall time: {value!r}")
    verdict = entry.get("verdict")
    if verdict is not None and (
        not isinstance(verdict, dict) or "ok" not in verdict
    ):
        raise ValueError("'verdict' must be null or an object with 'ok'")
    return counts


def dumps_entry(entry: Dict) -> str:
    """One compact, key-sorted JSON line (the ledger's record format)."""
    return json.dumps(
        entry, sort_keys=True, separators=(",", ":")
    ) + "\n"


def deterministic_view(entry: Dict) -> Dict:
    """The entry minus its wall-time section — the byte-stable part."""
    return {key: entry[key] for key in sorted(entry) if key != "wall"}


def append_entry(path: Any, entry: Dict) -> int:
    """Validate and append one entry line; returns the new entry count.

    Append-only by construction: existing lines are never rewritten,
    so a ledger only ever grows and its git diff is the new line.
    """
    validate_history_entry(entry)
    path = pathlib.Path(path)
    existing = load_history(path) if path.exists() else []
    with open(path, "a") as handle:
        handle.write(dumps_entry(entry))
    return len(existing) + 1


def load_history(path: Any) -> List[Dict]:
    """Every entry of a ledger file, validated, in append order."""
    path = pathlib.Path(path)
    entries: List[Dict] = []
    for number, line in enumerate(path.read_text().splitlines(), start=1):
        if not line.strip():
            continue
        try:
            entry = json.loads(line)
        except ValueError as exc:
            raise ValueError(f"{path}:{number}: not JSON: {exc}") from exc
        try:
            validate_history_entry(entry)
        except ValueError as exc:
            raise ValueError(f"{path}:{number}: {exc}") from exc
        entries.append(entry)
    return entries
