"""The regression sentinel: tolerance-aware bench-doc comparison.

``repro bench compare BASELINE NEW`` gates a change on the benchmark
trajectory.  The simulation is deterministic, so almost every leaf of
a bench doc — measured numbers, derived analytics, cycle attributions,
shape verdicts — must match the committed baseline *exactly*; only the
wall-clock ``timings`` section is allowed to move, inside a wide ratio
band, because it measures the host, not the simulation.

Which leaves get which treatment is the *tolerance policy*: an ordered
list of prefix rules (first match wins) with a default of
exact-match/fail.  The repo commits its policy next to the baseline
(``bench-policy.json``) so the gate itself is reviewable; the built-in
default is used when no file is given.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.obs import diff as obs_diff

#: Policy file schema (committed as ``bench-policy.json``).
POLICY_SCHEMA = 1

#: Finding severities, in decreasing order of consequence: ``fail``
#: findings make the comparison (and CI) fail; ``warn`` findings are
#: reported but do not gate.
SEVERITIES = ("fail", "warn")

#: Rule kinds: ``exact`` (values must be identical), ``ratio`` (numeric
#: values must stay inside ``[1/max_ratio, max_ratio]`` of baseline),
#: ``ignore`` (leaf excluded from comparison).
KINDS = ("exact", "ratio", "ignore")

#: The built-in policy: everything deterministic is exact/fail; wall
#: times warn inside a wide band (they measure the host, and CI hosts
#: vary wildly — the band only catches pathology).
DEFAULT_POLICY: Dict[str, object] = {
    "schema_version": POLICY_SCHEMA,
    "rules": [
        {
            "prefix": "timings.",
            "kind": "ratio",
            "max_ratio": 25.0,
            "severity": "warn",
            "reason": "wall-clock timings measure the host, not the "
                      "simulation; only order-of-magnitude moves matter",
        },
    ],
    "default": {"kind": "exact", "severity": "fail"},
}


def load_policy(path: Optional[Any] = None) -> Dict[str, object]:
    """The committed tolerance policy, or the built-in default."""
    if path is None:
        return DEFAULT_POLICY
    policy = json.loads(pathlib.Path(path).read_text())
    problems = validate_policy(policy)
    if problems:
        raise ValueError(f"{path}: {problems[0]}")
    return policy


def validate_policy(policy: Any) -> List[str]:
    """Structural problems with a policy document (empty = valid)."""
    if not isinstance(policy, dict):
        return ["policy must be an object"]
    problems = []
    if policy.get("schema_version") != POLICY_SCHEMA:
        problems.append(
            f"policy schema_version {policy.get('schema_version')!r} != "
            f"supported {POLICY_SCHEMA}"
        )
    rules = policy.get("rules")
    if not isinstance(rules, list):
        return problems + ["policy 'rules' must be a list"]
    for index, rule in enumerate(rules + [policy.get("default", {})]):
        where = f"rules[{index}]" if index < len(rules) else "default"
        if not isinstance(rule, dict):
            problems.append(f"{where} must be an object")
            continue
        if index < len(rules) and not isinstance(rule.get("prefix"), str):
            problems.append(f"{where} needs a string 'prefix'")
        if rule.get("kind") not in KINDS:
            problems.append(f"{where} kind must be one of {KINDS}")
        if rule.get("severity", "fail") not in SEVERITIES:
            problems.append(f"{where} severity must be one of {SEVERITIES}")
        if rule.get("kind") == "ratio":
            max_ratio = rule.get("max_ratio")
            if not isinstance(max_ratio, (int, float)) or max_ratio <= 1:
                problems.append(f"{where} ratio rule needs max_ratio > 1")
    return problems


def rule_for(key: str, policy: Dict[str, object]) -> Dict[str, object]:
    """First prefix rule matching ``key``, else the policy default."""
    for rule in policy.get("rules", []):
        if key.startswith(rule["prefix"]):
            return rule
    return policy.get("default", DEFAULT_POLICY["default"])


@dataclass
class Finding:
    """One leaf that moved outside its rule's tolerance."""

    key: str
    severity: str
    kind: str
    baseline: object
    new: object
    note: str

    def to_record(self) -> Dict[str, object]:
        return {
            "key": self.key,
            "severity": self.severity,
            "kind": self.kind,
            "baseline": self.baseline,
            "new": self.new,
            "note": self.note,
        }


@dataclass
class Verdict:
    """Outcome of one baseline comparison."""

    findings: List[Finding] = field(default_factory=list)
    #: Leaves compared (after ignores).
    checked: int = 0
    ignored: int = 0

    @property
    def regressions(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "fail"]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "warn"]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def to_record(self) -> Dict[str, object]:
        return {
            "ok": self.ok,
            "checked": self.checked,
            "ignored": self.ignored,
            "regressions": len(self.regressions),
            "warnings": len(self.warnings),
            "findings": [f.to_record() for f in self.findings],
        }


def _doc_leaves(doc: Dict) -> Dict[str, object]:
    """Flatten a bench doc with experiments keyed by id, not index."""
    keyed = {
        key: value
        for key, value in doc.items()
        if key not in ("experiments", "source", "schema_version")
    }
    keyed["experiments"] = {
        record["id"]: record for record in doc.get("experiments", [])
    }
    return obs_diff.flatten(keyed)


def compare_docs(
    baseline_doc: Dict, new_doc: Dict,
    policy: Optional[Dict[str, object]] = None,
) -> Verdict:
    """Apply the tolerance policy leaf-by-leaf.

    Both documents must already have passed
    :func:`repro.obs.metrics.validate_bench_doc` (the CLI does this),
    which guarantees the schema versions agree.
    """
    policy = policy if policy is not None else DEFAULT_POLICY
    old = _doc_leaves(baseline_doc)
    new = _doc_leaves(new_doc)
    findings: List[Finding] = []
    checked = 0
    ignored = 0
    for key in sorted(set(old) | set(new)):
        rule = rule_for(key, policy)
        if rule["kind"] == "ignore":
            ignored += 1
            continue
        checked += 1
        severity = rule.get("severity", "fail")
        if key not in new:
            findings.append(Finding(
                key, severity, rule["kind"], old[key], None,
                "leaf present in the baseline but missing from the new "
                "run; regenerate the baseline if this removal is "
                "intentional",
            ))
            continue
        if key not in old:
            findings.append(Finding(
                key, severity, rule["kind"], None, new[key],
                "leaf absent from the baseline; regenerate the baseline "
                "to start tracking it",
            ))
            continue
        finding = check_leaf(key, old[key], new[key], policy)
        if finding is not None:
            findings.append(finding)
    return Verdict(findings=findings, checked=checked, ignored=ignored)


def check_leaf(key: str, before: Any, after: Any,
               policy: Dict[str, object]) -> Optional[Finding]:
    """Apply the policy's rule for one leaf; None when inside tolerance.

    The single-leaf entry point the trend analytics reuse, so the same
    committed policy bands both the sentinel gate and the trend
    report's wall-time wording.
    """
    rule = rule_for(key, policy)
    if rule["kind"] == "ignore":
        return None
    if rule["kind"] == "ratio":
        return _ratio_check(key, before, after, rule)
    return _exact_check(key, before, after, rule.get("severity", "fail"))


def _exact_check(key: str, before: Any, after: Any,
                 severity: str) -> Optional[Finding]:
    if before == after and isinstance(before, bool) == isinstance(after, bool):
        return None
    return Finding(
        key, severity, "exact", before, after,
        "deterministic value diverged from the baseline",
    )


def _ratio_check(key: str, before: Any, after: Any,
                 rule: Dict[str, object]) -> Optional[Finding]:
    severity = rule.get("severity", "fail")
    max_ratio = float(rule["max_ratio"])
    numbers = all(
        isinstance(value, (int, float)) and not isinstance(value, bool)
        for value in (before, after)
    )
    if not numbers:
        return Finding(
            key, severity, "ratio", before, after,
            "ratio-banded leaf is not numeric on both sides",
        )
    if before == after:
        return None
    if before == 0 or after == 0:
        return Finding(
            key, severity, "ratio", before, after,
            "value moved to/from zero; no ratio is defined",
        )
    ratio = after / before
    if 1.0 / max_ratio <= ratio <= max_ratio:
        return None
    return Finding(
        key, severity, "ratio", before, after,
        f"ratio {ratio:.3g} outside the allowed band "
        f"[{1.0 / max_ratio:.3g}, {max_ratio:.3g}]",
    )


def render_verdict(verdict: Verdict, baseline_name: str,
                   new_name: str, limit: int = 20) -> str:
    """The prose verdict (``--json`` prints the record instead)."""
    lines = [
        f"bench compare: {baseline_name} (baseline) vs {new_name} (new)",
        f"  {verdict.checked} leaves checked, {verdict.ignored} ignored, "
        f"{len(verdict.regressions)} regression(s), "
        f"{len(verdict.warnings)} warning(s)",
    ]
    shown = 0
    for finding in verdict.findings:
        if shown == limit:
            lines.append(
                f"  ... {len(verdict.findings) - limit} more findings "
                "(--json for all)"
            )
            break
        shown += 1
        lines.append(
            f"  [{finding.severity}] {finding.key}: "
            f"{finding.baseline!r} -> {finding.new!r} ({finding.note})"
        )
    lines.append(
        "VERDICT: " + (
            "ok — the benchmark trajectory matches the baseline"
            if verdict.ok else
            "REGRESSION — deterministic results diverged from the baseline"
        )
    )
    return "\n".join(lines)
