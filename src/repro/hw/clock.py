"""The machine's cycle ledger.

Every cost in the model is charged here, tagged with a category so the
benchmarks can break time down the way the paper does (time in TLB
reloads vs flushes vs user work vs syscall entry).  Times are integer
cycles; conversion to wall-clock happens only at the reporting edge.

This lives in ``hw`` — the ledger is the machine's clock, owned by
:class:`~repro.hw.machine.MachineModel` — and is re-exported by
``repro.sim`` for the simulator-facing import path.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Dict, Optional


class CycleLedger:
    """Accumulates cycles by category."""

    def __init__(self) -> None:
        self.total = 0
        self._by_category: "Counter[str]" = Counter()
        #: Optional ``observer(total)`` callback invoked after every
        #: charge.  The observability sampler rides this hook; observers
        #: must be read-only (they see the ledger after the charge and
        #: must not charge cycles themselves).
        self.observer: Optional[Callable[[int], None]] = None

    def add(self, cycles: int, category: str = "other") -> int:
        """Charge ``cycles`` to ``category``; returns the amount charged."""
        if cycles < 0:
            raise ValueError(f"negative cycle charge: {cycles}")
        self.total += cycles
        self._by_category[category] += cycles
        if self.observer is not None:
            self.observer(self.total)
        return cycles

    def category(self, name: str) -> int:
        return self._by_category.get(name, 0)

    def breakdown(self) -> Dict[str, int]:
        return dict(self._by_category)

    def snapshot(self) -> int:
        """Current total, for elapsed-time measurement."""
        return self.total

    def since(self, mark: int) -> int:
        """Cycles elapsed since a snapshot."""
        return self.total - mark

    def reset(self) -> None:
        self.total = 0
        self._by_category.clear()
