"""The machine model: the full Figure-1 translation datapath plus caches.

``MachineModel`` owns the segment registers, BAT array, instruction and
data TLBs, L1 caches, the in-memory hashed page table, the 604 hardware
walk engine and the performance monitor.  The kernel layer installs a
*refill handler* — the software that runs when hardware cannot resolve a
translation (every TLB miss on the 603; hash-table misses on the 604).

Cost accounting: BAT hits and TLB hits are overlapped with the access and
charge nothing beyond the cache access itself; every miss path charges
the paper's interrupt/walk costs plus real cache-modelled memory
references.  All charges land in the machine's :class:`CycleLedger`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import ConfigError, TranslationError
from repro.hw.access import AccessKind
from repro.hw.addr import ea_page_index, physical_address
from repro.hw.cache import Cache
from repro.hw.cpu import CpuState
from repro.hw.hashtable import HashedPageTable
from repro.hw.tlb import Tlb, TlbEntry
from repro.params import (
    C603_MISS_INVOKE_CYCLES,
    C604_HASH_MISS_INVOKE_CYCLES,
    HTAB_GROUPS,
    MachineSpec,
    PAGE_OFFSET_MASK,
    PAGE_SHIFT,
    PTE_BYTES,
    PTES_PER_GROUP,
    RAM_BYTES,
)


@dataclass(slots=True)
class TranslationResult:
    """Outcome of translating one effective address."""

    pa: int
    cycles: int
    #: Which path resolved it: "bat", "tlb", "hw_walk", "handler".
    path: str
    cache_inhibited: bool = False


@dataclass(slots=True)
class RefillResult:
    """What the kernel's software refill handler hands back to hardware."""

    entry: Optional[TlbEntry]
    cycles: int


#: Signature of the kernel-installed refill handler.
RefillHandler = Callable[["MachineModel", int, AccessKind, bool, int, int], RefillResult]


class MachineModel:
    """One simulated PowerPC machine (603- or 604-style MMU)."""

    def __init__(
        self,
        spec: MachineSpec,
        htab_groups: int = HTAB_GROUPS,
        ram_bytes: int = RAM_BYTES,
        cache_ptes: bool = True,
        htab_ptes_per_group: int = PTES_PER_GROUP,
        n_cpus: int = 1,
    ):
        if n_cpus < 1:
            raise ConfigError(f"n_cpus must be >= 1: {n_cpus}")
        self.spec = spec
        self.ram_bytes = ram_bytes
        self.n_cpus = n_cpus
        self.htab = HashedPageTable(
            groups=htab_groups, ptes_per_group=htab_ptes_per_group
        )
        htab_bytes = self.htab.slots * PTE_BYTES
        if htab_bytes >= ram_bytes:
            raise ConfigError("hash table does not fit in RAM")
        #: The table lives at the top of physical memory, shared by every
        #: CPU; so is physical memory itself.  Everything else — segment
        #: registers, BATs, TLBs, L1/L2 caches, monitor, cycle ledger,
        #: walk engine — is per-CPU (:class:`~repro.hw.cpu.CpuState`).
        self.htab_base_pa = ram_bytes - htab_bytes
        self.cpus = [
            CpuState(index, spec, self.htab, self.htab_base_pa,
                     cache_ptes=cache_ptes)
            for index in range(n_cpus)
        ]
        self.current_cpu = 0
        self._bind_cpu(self.cpus[0])
        self.refill_handler: Optional[RefillHandler] = None
        #: Opt-in shadow-MMU coherence sanitizer (``repro.check``).  When
        #: set, every translation served by any path is cross-validated
        #: against ground truth; the kernel's flush/reclaim/preclear
        #: paths also consult it at their commit points.
        self.sanitizer = None
        #: Opt-in flight-recorder event bus (``repro.obs``).  When set,
        #: the translation paths and the kernel's commit points publish
        #: structured events into it; emits are counter-free, so a
        #: traced run is bit-identical to an untraced one.
        self.tracer = None

    # -- CPU selection --------------------------------------------------------

    def _bind_cpu(self, cpu: CpuState) -> None:
        """Bind one CPU's components to the machine's hot-path slots.

        The translation fast paths read ``self.clock`` / ``self.itlb`` /
        ... as plain attributes, so selecting a CPU is a handful of
        reference copies at quantum boundaries instead of a property
        indirection on every access.  With ``n_cpus=1`` the binding
        happens exactly once, at construction.
        """
        self.clock = cpu.clock
        self.monitor = cpu.monitor
        self.segments = cpu.segments
        self.bats = cpu.bats
        self.itlb = cpu.itlb
        self.dtlb = cpu.dtlb
        self.l2 = cpu.l2
        self.icache = cpu.icache
        self.dcache = cpu.dcache
        self.walker = cpu.walker

    def set_current_cpu(self, index: int) -> None:
        """Make ``index`` the executing CPU (the executive's round-robin)."""
        if index == self.current_cpu:
            return
        self.current_cpu = index
        self._bind_cpu(self.cpus[index])

    # -- cross-CPU aggregates -------------------------------------------------

    def total_cycles_all_cpus(self) -> int:
        """Sum of every CPU's ledger (the SMP experiments' cost metric)."""
        return sum(cpu.clock.total for cpu in self.cpus)

    def cpu_cycle_totals(self) -> list:
        return [cpu.clock.total for cpu in self.cpus]

    def monitor_totals(self) -> dict:
        """Every CPU's counters merged into one machine-wide snapshot."""
        totals: dict = {}
        for cpu in self.cpus:
            for event, value in cpu.monitor.snapshot().items():
                totals[event] = totals.get(event, 0) + value
        return totals

    # -- configuration --------------------------------------------------------

    def install_refill_handler(self, handler: RefillHandler) -> None:
        """The kernel installs its TLB/hash-miss handler here."""
        self.refill_handler = handler

    def tlb_for(self, kind: AccessKind) -> Tlb:
        return self.itlb if kind is AccessKind.INSTRUCTION else self.dtlb

    def cache_for(self, kind: AccessKind) -> Cache:
        return self.icache if kind is AccessKind.INSTRUCTION else self.dcache

    # -- the translation datapath ----------------------------------------------

    def translate(
        self, ea: int, kind: AccessKind = AccessKind.DATA, write: bool = False
    ) -> TranslationResult:
        """Translate one EA, charging all miss costs to the ledger."""
        result = self._translate(ea, kind, write)
        if self.sanitizer is not None:
            self.sanitizer.check_translation(ea, kind, write, result)
        return result

    def _translate(
        self, ea: int, kind: AccessKind, write: bool
    ) -> TranslationResult:
        # Block address translation proceeds in parallel with the page
        # lookup and wins if it matches (§3) — zero added latency.
        bat = self.bats.lookup(ea, instruction=kind is AccessKind.INSTRUCTION)
        if bat is not None:
            self.monitor.count("bat_translation")
            return TranslationResult(
                pa=bat.translate(ea),
                cycles=0,
                path="bat",
                cache_inhibited=bool(bat.wimg & 0b0100),
            )

        vsid = self.segments.vsid_for(ea)
        page_index = ea_page_index(ea)
        tlb = self.tlb_for(kind)
        entry = tlb.lookup(vsid, page_index)
        if entry is not None:
            pa = physical_address(entry.ppn, ea & PAGE_OFFSET_MASK)
            return TranslationResult(
                pa=pa,
                cycles=0,
                path="tlb",
                cache_inhibited=entry.cache_inhibited,
            )
        return self._tlb_miss(ea, kind, write, vsid, page_index, tlb)

    def _tlb_miss(
        self,
        ea: int,
        kind: AccessKind,
        write: bool,
        vsid: int,
        page_index: int,
        tlb: Tlb,
    ) -> TranslationResult:
        self.monitor.count(
            "itlb_miss" if kind is AccessKind.INSTRUCTION else "dtlb_miss"
        )
        if self.spec.hardware_tablewalk:
            return self._tlb_miss_604(ea, kind, write, vsid, page_index, tlb)
        return self._tlb_miss_603(ea, kind, write, vsid, page_index, tlb)

    def _tlb_miss_604(self, ea, kind, write, vsid, page_index, tlb):
        """604: hardware searches the hash table before trapping."""
        outcome = self.walker.walk(vsid, page_index)
        self.monitor.count("htab_search")
        cycles = outcome.cycles
        if outcome.found:
            self.monitor.count("htab_hit")
            pte = outcome.pte
            pte.referenced = True
            if write:
                pte.changed = True
            entry = TlbEntry(
                vsid=vsid,
                page_index=page_index,
                ppn=pte.rpn,
                writable=pte.pp != 0b11,
                cache_inhibited=pte.cache_inhibited,
                is_kernel=ea >= 0xC0000000,
            )
            tlb.insert(entry)
            self.clock.add(cycles, "tlb_reload")
            if self.tracer is not None:
                self.tracer.complete(
                    "hw-walk", "mmu", cycles, {"ea": hex(ea)}
                )
            pa = physical_address(entry.ppn, ea & PAGE_OFFSET_MASK)
            return TranslationResult(
                pa=pa,
                cycles=cycles,
                path="hw_walk",
                cache_inhibited=entry.cache_inhibited,
            )
        # Hash-table miss: trap to the kernel.
        self.monitor.count("htab_miss")
        self.monitor.count("hash_miss_interrupt")
        cycles += C604_HASH_MISS_INVOKE_CYCLES
        return self._software_refill(ea, kind, write, vsid, page_index, tlb, cycles)

    def _tlb_miss_603(self, ea, kind, write, vsid, page_index, tlb):
        """603: every TLB miss traps to software immediately."""
        self.monitor.count("sw_tlb_miss_interrupt")
        cycles = C603_MISS_INVOKE_CYCLES
        return self._software_refill(ea, kind, write, vsid, page_index, tlb, cycles)

    def _software_refill(self, ea, kind, write, vsid, page_index, tlb, cycles):
        if self.refill_handler is None:
            self.clock.add(cycles, "tlb_reload")
            raise TranslationError(ea, "TLB miss with no refill handler installed")
        refill = self.refill_handler(self, ea, kind, write, vsid, page_index)
        cycles += refill.cycles
        self.clock.add(cycles, "tlb_reload")
        if refill.entry is None:
            raise TranslationError(ea, "refill handler could not map address")
        tlb.insert(refill.entry)
        pa = physical_address(refill.entry.ppn, ea & PAGE_OFFSET_MASK)
        return TranslationResult(
            pa=pa,
            cycles=cycles,
            path="handler",
            cache_inhibited=refill.entry.cache_inhibited,
        )

    # -- memory accesses ---------------------------------------------------------

    def data_access(self, ea: int, write: bool = False) -> int:
        """Translate + one data-cache access; returns total cycles."""
        result = self.translate(ea, AccessKind.DATA, write)
        cycles = self.dcache.access(
            result.pa, write=write, inhibited=result.cache_inhibited
        )
        if not result.cache_inhibited and cycles > 1:
            self.monitor.count("dcache_miss")
        self.clock.add(cycles, "mem")
        return result.cycles + cycles

    def instruction_fetch(self, ea: int) -> int:
        """Translate + one instruction-cache access."""
        result = self.translate(ea, AccessKind.INSTRUCTION, write=False)
        cycles = self.icache.access(result.pa, inhibited=result.cache_inhibited)
        if not result.cache_inhibited and cycles > 1:
            self.monitor.count("icache_miss")
        self.clock.add(cycles, "mem")
        return result.cycles + cycles

    def access_page(
        self,
        ea: int,
        lines: int,
        write: bool = False,
        kind: AccessKind = AccessKind.DATA,
        first_line: int = 0,
    ) -> int:
        """Batched page visit: one translation, ``lines`` line touches.

        This is the workload fast path: a process touching a working-set
        page translates once (later references hit the TLB, which costs
        nothing extra) and streams through ``lines`` distinct cache lines
        starting at ``first_line`` (callers stagger this so different hot
        pages do not artificially alias into the same cache sets).
        """
        result = self.translate(ea, kind, write)
        cache = self.cache_for(kind)
        page_base = result.pa & ~PAGE_OFFSET_MASK
        mem_cycles, misses = cache.access_page_lines(
            page_base,
            first_line,
            lines,
            write=write,
            inhibited=result.cache_inhibited,
        )
        if misses and not result.cache_inhibited:
            miss_event = (
                "icache_miss" if kind is AccessKind.INSTRUCTION else "dcache_miss"
            )
            self._count_misses(miss_event, misses)
        self.clock.add(mem_cycles, "mem")
        return result.cycles + mem_cycles

    def _count_misses(self, miss_event: str, misses: int) -> None:
        """Count a batch of cache-miss events, trace-exactly.

        A single ``monitor.count(event, n)`` and ``n`` separate counts
        leave identical counters, but a tracer whose monitor filter
        selects the event would see one ``{"count": n}`` instant instead
        of ``n`` instants.  The per-event loop is kept for exactly that
        case (the default filter excludes the cache-miss events, so the
        batched form is the one that normally runs).
        """
        monitor = self.monitor
        tracer = monitor.tracer
        if tracer is not None and miss_event in tracer.config.monitor_events:
            for _ in range(misses):
                monitor.count(miss_event)
        else:
            monitor.count(miss_event, misses)

    def prefetch_page_lines(
        self,
        ea: int,
        lines: int,
        first_line: int = 0,
        issue_cycles: int = 2,
    ) -> int:
        """§10.2's `dcbt`-style data prefetch: non-faulting, latency hidden.

        The PowerPC touch instructions never fault: a prefetch whose
        translation misses the TLB is simply dropped.  Lines brought in
        here charge only the issue cost — the fill overlaps the
        independent work the caller is about to do (which is why the
        paper proposes them for context-switch and interrupt entry code,
        where hundreds of cycles of register work can hide the fills).
        """
        bat = self.bats.lookup(ea, instruction=False)
        if bat is not None:
            pa_base = bat.translate(ea) & ~PAGE_OFFSET_MASK
        else:
            vsid = self.segments.vsid_for(ea)
            entry = self.dtlb.peek(vsid, ea_page_index(ea))
            if entry is None or entry.cache_inhibited:
                # Dropped prefetch: issue cost only.
                self.clock.add(issue_cycles, "prefetch")
                return issue_cycles
            pa_base = entry.ppn << PAGE_SHIFT
        cycles = issue_cycles * lines
        # The fills are real cache traffic (LRU state, statistics) but
        # their latency is hidden behind the caller's independent work —
        # only the issue cost is charged.
        self.dcache.access_page_lines(pa_base, first_line, lines, write=False)
        self.clock.add(cycles, "prefetch")
        return cycles

    # -- housekeeping -------------------------------------------------------------

    def context_switch_segments(self, vsids) -> int:
        """Load the 16 segment registers (the per-switch VSID reload)."""
        return self.context_switch_segments_on(self.current_cpu, vsids)

    def context_switch_segments_on(self, index: int, vsids) -> int:
        """Segment-register reload on a specific CPU, charged to it.

        The shootdown subsystem uses this to apply a remote context
        renumbering (post-global-flush) on the CPU that owns the stale
        registers; on the current CPU it is exactly the classic reload.
        """
        cpu = self.cpus[index]
        cpu.segments.load_context(vsids)
        cycles = 2 * len(vsids)  # one mtsr per register, dual-issued
        cpu.clock.add(cycles, "context_switch")
        return cycles

    def invalidate_tlbs(self) -> None:
        """Drop every TLB entry on every CPU (the global-flush path)."""
        for cpu in self.cpus:
            cpu.itlb.invalidate_all()
            cpu.dtlb.invalidate_all()

    def elapsed_us(self) -> float:
        """Wall-clock equivalent of the ledger at this machine's clock."""
        return self.spec.cycles_to_us(self.clock.total)
