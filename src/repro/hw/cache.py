"""Physically-indexed set-associative L1 cache model.

The paper's §8 and §9 arguments are entirely about who gets to put lines
into this structure: TLB reloads that pull PTEs through the data cache,
idle-task page clearing that fills the cache with zeroed lines nobody
reads, versus user working sets that want to stay resident.

The model tracks tags only (no data), true-LRU per set, write-back with
write-allocate, and supports *cache-inhibited* accesses, which bypass the
array entirely and cost a full memory access — the mechanism §9 uses to
clear pages without polluting the cache.

Representation: each set is a plain list of integer tags ordered
most-recent-first, and dirtiness lives in one set of line addresses
shared by the whole array.  The scalar :meth:`Cache.access` and the
batched :meth:`Cache.access_page_lines` both operate on those flat
structures directly — there is no per-line object, which is what makes
the 10⁷-access experiment runs affordable.  The behaviour (LRU order,
writeback charging, statistics) is identical to the earlier
object-per-line model; the white-box tests index ``_sets`` and see the
same shape, with tags instead of line objects.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.params import CACHE_LINE_SIZE, L1_HIT_CYCLES, PAGE_SIZE


@dataclass
class CacheStats:
    """Event counts for one cache array."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0
    bypasses: int = 0  # cache-inhibited accesses

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def reset(self) -> None:
        self.hits = self.misses = 0
        self.evictions = self.writebacks = self.bypasses = 0


class Cache:
    """One L1 array (instruction or data)."""

    def __init__(
        self,
        size_bytes: int,
        assoc: int,
        mem_cycles: int,
        line_size: int = CACHE_LINE_SIZE,
        name: str = "cache",
        word_cycles: int = 0,
        hit_cycles: int = L1_HIT_CYCLES,
        next_level: "Cache" = None,
    ):
        if size_bytes % (assoc * line_size):
            raise ConfigError(
                f"bad cache geometry: {size_bytes}B {assoc}-way "
                f"{line_size}B lines"
            )
        self.name = name
        self.size_bytes = size_bytes
        self.assoc = assoc
        self.line_size = line_size
        #: Cost of a full line fill from memory on a miss (used when
        #: there is no next level).
        self.mem_cycles = mem_cycles
        #: Cost of a single-beat (cache-inhibited) access; defaults to
        #: the line-fill cost when not given.
        self.word_cycles = word_cycles or mem_cycles
        #: Cost of a hit in *this* array (1 for L1, tens for an L2).
        self.hit_cycles = hit_cycles
        #: The next cache level misses fall through to (e.g. the
        #: board-level L2 behind both L1s), or None for main memory.
        self.next_level = next_level
        self.num_sets = size_bytes // (assoc * line_size)
        #: Per-set MRU-first lists of integer tags.
        self._sets = [[] for _ in range(self.num_sets)]
        #: Line addresses (``pa // line_size``) of resident dirty lines.
        self._dirty = set()
        #: Keys of page visits proven *pure* — every line hit at MRU and,
        #: for writes, was already dirty — since the last state mutation.
        #: A pure visit leaves ``_sets``/``_dirty`` bit-identical, so an
        #: identical repeat visit can replay its (hits, cycles) in O(1).
        #: Any mutation of cache state empties the memo.
        self._pure_visits = set()
        self.stats = CacheStats()

    # -- address mapping ---------------------------------------------------

    def line_address(self, pa: int) -> int:
        return pa // self.line_size

    def set_index(self, line_addr: int) -> int:
        return line_addr % self.num_sets

    def tag(self, line_addr: int) -> int:
        return line_addr // self.num_sets

    # -- the access path ---------------------------------------------------

    def access(self, pa: int, write: bool = False, inhibited: bool = False) -> int:
        """One load or store at physical address ``pa``.

        Returns the cycle cost.  Cache-inhibited accesses never touch the
        array: they cost a memory access and count as bypasses.
        """
        stats = self.stats
        if inhibited:
            stats.bypasses += 1
            return self.word_cycles
        num_sets = self.num_sets
        line_addr = pa // self.line_size
        tags = self._sets[line_addr % num_sets]
        tag = line_addr // num_sets
        # Membership test before index: a miss is a cheap C scan, not a
        # raised-and-caught ValueError (misses dominate the hot streams).
        if tag in tags:
            if tags[0] != tag:
                tags.remove(tag)
                tags.insert(0, tag)
                self._pure_visits.clear()
            if write and line_addr not in self._dirty:
                self._dirty.add(line_addr)
                self._pure_visits.clear()
            stats.hits += 1
            return self.hit_cycles
        return self._miss(line_addr, tags, tag, write)

    def _miss(self, line_addr: int, tags: list, tag: int, write: bool) -> int:
        """Allocate ``line_addr``, evicting LRU; returns the miss cost."""
        stats = self.stats
        stats.misses += 1
        self._pure_visits.clear()
        next_level = self.next_level
        if next_level is not None:
            cycles = next_level.access(line_addr * self.line_size, write=False)
        else:
            cycles = self.mem_cycles
        if len(tags) >= self.assoc:
            victim_tag = tags.pop()
            stats.evictions += 1
            victim_line = victim_tag * self.num_sets + line_addr % self.num_sets
            if victim_line in self._dirty:
                self._dirty.discard(victim_line)
                stats.writebacks += 1
                if next_level is not None:
                    cycles += next_level.access(
                        victim_line * self.line_size, write=True
                    )
                else:
                    cycles += self.mem_cycles // 2
        tags.insert(0, tag)
        if write:
            self._dirty.add(line_addr)
        return cycles

    def touch_line(self, line_addr: int, write: bool = False) -> int:
        """Access by line address (used by the page-visit fast path)."""
        return self.access(line_addr * self.line_size, write=write)

    # -- batched kernels ---------------------------------------------------

    def access_page_lines(
        self,
        page_base: int,
        first_line: int,
        lines: int,
        write: bool = False,
        inhibited: bool = False,
        page_size: int = PAGE_SIZE,
    ) -> tuple:
        """A page visit's worth of line accesses in one call.

        Touches line indices ``first_line .. first_line + lines - 1``
        within the page at ``page_base``, wrapping at ``page_size`` the
        way :meth:`~repro.hw.machine.MachineModel.access_page` staggers
        hot pages.  Equivalent to ``lines`` scalar :meth:`access` calls
        in the same order — same LRU transitions, statistics, writeback
        charges — without the per-call overhead.

        Returns ``(cycles, misses)`` where ``misses`` counts accesses
        whose cost exceeded one hit (the condition the machine layer
        uses for its ``dcache_miss``/``icache_miss`` monitor events).
        """
        stats = self.stats
        line_size = self.line_size
        if inhibited:
            stats.bypasses += lines
            return self.word_cycles * lines, 0
        hit_cycles = self.hit_cycles
        memo = self._pure_visits
        visit_key = (page_base << 32) | (first_line << 16) | (lines << 1) | write
        if visit_key in memo:
            # This exact visit previously completed without changing any
            # cache state (all hits at MRU; writes to already-dirty
            # lines), and no state mutation has happened since.  Replay
            # its outputs without walking the lines.
            stats.hits += lines
            return (
                hit_cycles * lines,
                lines if hit_cycles > 1 else 0,
            )
        num_sets = self.num_sets
        sets = self._sets
        dirty = self._dirty
        assoc = self.assoc
        mem_cycles = self.mem_cycles
        next_level = self.next_level
        if next_level is not None:
            # Hoist the next level's state so it runs inline; a further
            # level below it (never configured in practice) still goes
            # through the generic call.
            nl_sets = next_level._sets
            nl_num_sets = next_level.num_sets
            nl_line_size = next_level.line_size
            nl_dirty = next_level._dirty
            nl_stats = next_level.stats
            nl_hit_cycles = next_level.hit_cycles
            nl_assoc = next_level.assoc
            nl_mem_cycles = next_level.mem_cycles
            nl_last = next_level.next_level is None
            nl_miss = next_level._miss
            nl_misses = 0
            nl_evictions = 0
            # Same line size at both levels (true for every configured
            # machine): L1 and L2 line addresses coincide, so the
            # per-miss address conversion disappears.
            nl_same_line = nl_line_size == line_size
        cycles = 0
        hits = 0
        misses = 0
        evictions = 0
        miss_events = 0
        pure = True
        lines_per_page = page_size // line_size
        base_line = page_base // line_size
        index = first_line
        remaining = lines
        while remaining > 0:
            # One contiguous run of line addresses (the visit wraps back
            # to the page start when a staggered window crosses the end).
            offset = index % lines_per_page
            run = min(remaining, lines_per_page - offset)
            start_line = base_line + offset
            # Set index and tag advance incrementally along the run —
            # consecutive line addresses walk consecutive sets — so the
            # two per-line divisions disappear from the loop body.
            set_index = start_line % num_sets
            tag = start_line // num_sets
            for line_addr in range(start_line, start_line + run):
                tags = sets[set_index]
                if tag in tags:
                    if tags[0] != tag:
                        tags.remove(tag)
                        tags.insert(0, tag)
                        pure = False
                    if write and line_addr not in dirty:
                        dirty.add(line_addr)
                        pure = False
                    hits += 1
                    cycles += hit_cycles
                    set_index += 1
                    if set_index == num_sets:
                        set_index = 0
                        tag += 1
                    continue
                misses += 1
                pure = False
                if next_level is None:
                    cost = mem_cycles
                else:
                    nl_line = (
                        line_addr
                        if nl_same_line
                        else (line_addr * line_size) // nl_line_size
                    )
                    nl_tags = nl_sets[nl_line % nl_num_sets]
                    nl_tag = nl_line // nl_num_sets
                    if nl_tag in nl_tags:
                        if nl_tags[0] != nl_tag:
                            nl_tags.remove(nl_tag)
                            nl_tags.insert(0, nl_tag)
                        nl_stats.hits += 1
                        cost = nl_hit_cycles
                    elif nl_last:
                        nl_misses += 1
                        cost = nl_mem_cycles
                        if len(nl_tags) >= nl_assoc:
                            nl_victim = nl_tags.pop()
                            nl_evictions += 1
                            nl_victim_line = (
                                nl_victim * nl_num_sets + nl_line % nl_num_sets
                            )
                            if nl_victim_line in nl_dirty:
                                nl_dirty.discard(nl_victim_line)
                                nl_stats.writebacks += 1
                                cost += nl_mem_cycles // 2
                        nl_tags.insert(0, nl_tag)
                    else:
                        cost = nl_miss(nl_line, nl_tags, nl_tag, False)
                if len(tags) >= assoc:
                    victim_tag = tags.pop()
                    evictions += 1
                    victim_line = victim_tag * num_sets + set_index
                    if victim_line in dirty:
                        dirty.discard(victim_line)
                        stats.writebacks += 1
                        if next_level is None:
                            cost += mem_cycles // 2
                        else:
                            nl_line = (
                                victim_line
                                if nl_same_line
                                else (victim_line * line_size) // nl_line_size
                            )
                            nl_tags = nl_sets[nl_line % nl_num_sets]
                            nl_tag = nl_line // nl_num_sets
                            if nl_tag in nl_tags:
                                if nl_tags[0] != nl_tag:
                                    nl_tags.remove(nl_tag)
                                    nl_tags.insert(0, nl_tag)
                                nl_dirty.add(nl_line)
                                nl_stats.hits += 1
                                cost += nl_hit_cycles
                            elif nl_last:
                                nl_misses += 1
                                wb_cost = nl_mem_cycles
                                if len(nl_tags) >= nl_assoc:
                                    nl_victim = nl_tags.pop()
                                    nl_evictions += 1
                                    nl_victim_line = (
                                        nl_victim * nl_num_sets
                                        + nl_line % nl_num_sets
                                    )
                                    if nl_victim_line in nl_dirty:
                                        nl_dirty.discard(nl_victim_line)
                                        nl_stats.writebacks += 1
                                        wb_cost += nl_mem_cycles // 2
                                nl_tags.insert(0, nl_tag)
                                nl_dirty.add(nl_line)
                                cost += wb_cost
                            else:
                                cost += nl_miss(nl_line, nl_tags, nl_tag, True)
                tags.insert(0, tag)
                if write:
                    dirty.add(line_addr)
                if cost > 1:
                    miss_events += 1
                cycles += cost
                set_index += 1
                if set_index == num_sets:
                    set_index = 0
                    tag += 1
            index += run
            remaining -= run
        if pure:
            # No state changed: the identical visit will replay until
            # something mutates the cache.  (Bound the memo so patholog-
            # ical visit diversity cannot grow it without limit.)
            if len(memo) >= 1 << 16:
                memo.clear()
            memo.add(visit_key)
        else:
            memo.clear()
            if next_level is not None:
                # The inlined L2 paths mutate its state directly.
                next_level._pure_visits.clear()
        stats.hits += hits
        stats.misses += misses
        stats.evictions += evictions
        if next_level is not None:
            nl_stats.misses += nl_misses
            nl_stats.evictions += nl_evictions
        if hit_cycles > 1:
            # The machine layer's miss-event condition is ``cost > 1``,
            # which a non-unit hit cost also satisfies.
            miss_events += hits
        return cycles, miss_events

    def access_run_same_line(self, pa: int, count: int, inhibited: bool = False) -> int:
        """``count`` back-to-back reads of which only the first can miss.

        The hash-table probe loops touch consecutive PTE slots; slots
        sharing a cache line after the first are guaranteed hits (the
        first access left the line resident and MRU).  This charges one
        real access plus ``count - 1`` hit-priced accesses — identical
        to the scalar loop, without re-proving residency per slot.
        """
        if count <= 0:
            return 0
        if inhibited:
            self.stats.bypasses += count
            return self.word_cycles * count
        cycles = self.access(pa)
        if count > 1:
            self.stats.hits += count - 1
            cycles += self.hit_cycles * (count - 1)
        return cycles

    # -- maintenance operations --------------------------------------------

    def contains(self, pa: int) -> bool:
        line_addr = pa // self.line_size
        return line_addr // self.num_sets in self._sets[line_addr % self.num_sets]

    def flush_all(self) -> int:
        """Write back and invalidate everything; returns cycle cost."""
        writebacks = len(self._dirty)
        self.stats.writebacks += writebacks
        cycles = writebacks * (self.mem_cycles // 2)
        self._dirty.clear()
        for tags in self._sets:
            tags.clear()
        self._pure_visits.clear()
        return cycles

    def invalidate_page(self, ppn: int, page_size: int = PAGE_SIZE) -> int:
        """Invalidate all lines of a physical page (dcbf loop)."""
        cycles = 0
        self._pure_visits.clear()
        num_sets = self.num_sets
        first = (ppn * page_size) // self.line_size
        for line_addr in range(first, first + page_size // self.line_size):
            tags = self._sets[line_addr % num_sets]
            tag = line_addr // num_sets
            try:
                position = tags.index(tag)
            except ValueError:
                continue
            if line_addr in self._dirty:
                self._dirty.discard(line_addr)
                self.stats.writebacks += 1
                cycles += self.mem_cycles // 2
            del tags[position]
        return cycles

    # -- introspection -----------------------------------------------------

    def __len__(self) -> int:
        return sum(len(tags) for tags in self._sets)

    def occupancy(self) -> float:
        return len(self) / (self.num_sets * self.assoc)

    def resident_lines(self):
        """Iterate (set_index, tag, dirty) for every resident line."""
        num_sets = self.num_sets
        for index, tags in enumerate(self._sets):
            for tag in tags:
                yield index, tag, (tag * num_sets + index) in self._dirty
