"""Physically-indexed set-associative L1 cache model.

The paper's §8 and §9 arguments are entirely about who gets to put lines
into this structure: TLB reloads that pull PTEs through the data cache,
idle-task page clearing that fills the cache with zeroed lines nobody
reads, versus user working sets that want to stay resident.

The model tracks tags only (no data), true-LRU per set, write-back with
write-allocate, and supports *cache-inhibited* accesses, which bypass the
array entirely and cost a full memory access — the mechanism §9 uses to
clear pages without polluting the cache.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.params import CACHE_LINE_SIZE, L1_HIT_CYCLES


@dataclass
class CacheStats:
    """Event counts for one cache array."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0
    bypasses: int = 0  # cache-inhibited accesses

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def reset(self) -> None:
        self.hits = self.misses = 0
        self.evictions = self.writebacks = self.bypasses = 0


@dataclass
class _Line:
    tag: int
    dirty: bool = False


class Cache:
    """One L1 array (instruction or data)."""

    def __init__(
        self,
        size_bytes: int,
        assoc: int,
        mem_cycles: int,
        line_size: int = CACHE_LINE_SIZE,
        name: str = "cache",
        word_cycles: int = 0,
        hit_cycles: int = L1_HIT_CYCLES,
        next_level: "Cache" = None,
    ):
        if size_bytes % (assoc * line_size):
            raise ConfigError(
                f"bad cache geometry: {size_bytes}B {assoc}-way "
                f"{line_size}B lines"
            )
        self.name = name
        self.size_bytes = size_bytes
        self.assoc = assoc
        self.line_size = line_size
        #: Cost of a full line fill from memory on a miss (used when
        #: there is no next level).
        self.mem_cycles = mem_cycles
        #: Cost of a single-beat (cache-inhibited) access; defaults to
        #: the line-fill cost when not given.
        self.word_cycles = word_cycles or mem_cycles
        #: Cost of a hit in *this* array (1 for L1, tens for an L2).
        self.hit_cycles = hit_cycles
        #: The next cache level misses fall through to (e.g. the
        #: board-level L2 behind both L1s), or None for main memory.
        self.next_level = next_level
        self.num_sets = size_bytes // (assoc * line_size)
        self._sets = [[] for _ in range(self.num_sets)]
        self.stats = CacheStats()

    # -- address mapping ---------------------------------------------------

    def line_address(self, pa: int) -> int:
        return pa // self.line_size

    def set_index(self, line_addr: int) -> int:
        return line_addr % self.num_sets

    def tag(self, line_addr: int) -> int:
        return line_addr // self.num_sets

    # -- the access path ---------------------------------------------------

    def access(self, pa: int, write: bool = False, inhibited: bool = False) -> int:
        """One load or store at physical address ``pa``.

        Returns the cycle cost.  Cache-inhibited accesses never touch the
        array: they cost a memory access and count as bypasses.
        """
        if inhibited:
            self.stats.bypasses += 1
            return self.word_cycles
        line_addr = self.line_address(pa)
        set_index = self.set_index(line_addr)
        lines = self._sets[set_index]
        tag = self.tag(line_addr)
        for position, line in enumerate(lines):
            if line.tag == tag:
                if position:
                    lines.insert(0, lines.pop(position))
                if write:
                    line.dirty = True
                self.stats.hits += 1
                return self.hit_cycles
        # Miss: allocate, evicting LRU.
        self.stats.misses += 1
        if self.next_level is not None:
            cycles = self.next_level.access(pa, write=False)
        else:
            cycles = self.mem_cycles
        if len(lines) >= self.assoc:
            victim = lines.pop()
            self.stats.evictions += 1
            if victim.dirty:
                self.stats.writebacks += 1
                if self.next_level is not None:
                    victim_pa = (
                        (victim.tag * self.num_sets + set_index)
                        * self.line_size
                    )
                    cycles += self.next_level.access(victim_pa, write=True)
                else:
                    cycles += self.mem_cycles // 2
        lines.insert(0, _Line(tag=tag, dirty=write))
        return cycles

    def touch_line(self, line_addr: int, write: bool = False) -> int:
        """Access by line address (used by the page-visit fast path)."""
        return self.access(line_addr * self.line_size, write=write)

    # -- maintenance operations --------------------------------------------

    def contains(self, pa: int) -> bool:
        line_addr = self.line_address(pa)
        tag = self.tag(line_addr)
        return any(
            line.tag == tag for line in self._sets[self.set_index(line_addr)]
        )

    def flush_all(self) -> int:
        """Write back and invalidate everything; returns cycle cost."""
        cycles = 0
        for lines in self._sets:
            for line in lines:
                if line.dirty:
                    self.stats.writebacks += 1
                    cycles += self.mem_cycles // 2
            lines.clear()
        return cycles

    def invalidate_page(self, ppn: int, page_size: int = 4096) -> int:
        """Invalidate all lines of a physical page (dcbf loop)."""
        cycles = 0
        first = (ppn * page_size) // self.line_size
        for line_addr in range(first, first + page_size // self.line_size):
            lines = self._sets[self.set_index(line_addr)]
            tag = self.tag(line_addr)
            for position, line in enumerate(lines):
                if line.tag == tag:
                    if line.dirty:
                        self.stats.writebacks += 1
                        cycles += self.mem_cycles // 2
                    lines.pop(position)
                    break
        return cycles

    # -- introspection -----------------------------------------------------

    def __len__(self) -> int:
        return sum(len(lines) for lines in self._sets)

    def occupancy(self) -> float:
        return len(self) / (self.num_sets * self.assoc)

    def resident_lines(self):
        """Iterate (set_index, tag, dirty) for every resident line."""
        for index, lines in enumerate(self._sets):
            for line in lines:
                yield index, line.tag, line.dirty
