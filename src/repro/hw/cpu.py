"""Per-CPU hardware state for the SMP machine model.

Everything private to one processor lives here: the segment-register
file and BAT array (per-CPU register state the kernel programs on every
processor), both TLBs, the L1 caches and the per-CPU L2 behind them,
the hardware performance monitor and the cycle ledger.  The hashed page
table and physical memory stay on :class:`~repro.hw.machine.MachineModel`
— they are the *shared* structures every mapping change must be made
coherent against, which is exactly what the TLB-shootdown subsystem
(:mod:`repro.kernel.shootdown`) exists to do.

Each CPU gets its own :class:`~repro.hw.walker.HardwareWalker` over the
shared table: the walk engine is on-chip silicon, and its PTE probes
must charge *this* CPU's data cache (the §8 cache-pollution effect is
per-processor).
"""

from __future__ import annotations

from repro.hw.bat import BatArray
from repro.hw.cache import Cache
from repro.hw.clock import CycleLedger
from repro.hw.hashtable import HashedPageTable
from repro.hw.monitor import HardwareMonitor
from repro.hw.segment import SegmentRegisterFile
from repro.hw.tlb import Tlb
from repro.hw.walker import HardwareWalker
from repro.params import MachineSpec


class CpuState:
    """One processor's private translation and accounting state."""

    __slots__ = (
        "index",
        "clock",
        "monitor",
        "segments",
        "bats",
        "itlb",
        "dtlb",
        "l2",
        "icache",
        "dcache",
        "walker",
    )

    def __init__(
        self,
        index: int,
        spec: MachineSpec,
        htab: HashedPageTable,
        htab_base_pa: int,
        cache_ptes: bool = True,
    ):
        self.index = index
        self.clock = CycleLedger()
        self.monitor = HardwareMonitor()
        self.segments = SegmentRegisterFile()
        self.bats = BatArray()
        self.itlb = Tlb(spec.itlb_entries, spec.tlb_assoc, name="itlb")
        self.dtlb = Tlb(spec.dtlb_entries, spec.tlb_assoc, name="dtlb")
        self.l2 = Cache(
            spec.l2_bytes,
            8,
            spec.mem_cycles,
            name="l2",
            word_cycles=spec.word_cycles,
            hit_cycles=spec.l2_hit_cycles,
        )
        self.icache = Cache(
            spec.icache_bytes,
            spec.cache_assoc,
            spec.mem_cycles,
            name="icache",
            word_cycles=spec.word_cycles,
            next_level=self.l2,
        )
        self.dcache = Cache(
            spec.dcache_bytes,
            spec.cache_assoc,
            spec.mem_cycles,
            name="dcache",
            word_cycles=spec.word_cycles,
            next_level=self.l2,
        )
        self.walker = HardwareWalker(
            htab, self.dcache, htab_base_pa, cache_ptes=cache_ptes
        )
