"""The architected hashed page table (HTAB).

§3: the table is organized into power-of-two many "buckets" (PTE groups,
PTEGs) of eight PTEs each.  A primary hash of the virtual address picks
one bucket; if no PTE there matches, the one's-complement secondary hash
picks an overflow bucket.  Misses in both buckets raise the (hash-table)
miss fault the kernel must service.

The architected primary hash function is::

    hash = (VSID mod 2^19)  XOR  page_index

and the secondary hash is its one's complement.  The low bits of the
hash, masked to the table size, select the PTEG.

Replacement is the part the paper actually studies (§7): the reload code
first looks for an *invalid* slot in either bucket and, failing that,
"chose an arbitrary PTE to replace" — modelled as a per-table round-robin
pointer, counted as an *evict*.  The idle-task zombie reclaim exists to
keep invalid slots available so those evicts stop happening.

Representation: the table is struct-of-arrays — one flat list of packed
``(vsid << 32) | page_index`` tag keys (-1 = never written), parallel
bytearrays for the valid/H/R/C/WIMG/PP bits and a flat list of RPNs.
Searches are C-speed ``list.index`` runs over an 8-slot window instead
of per-object scans.  Callers that need a PTE *object* (the machine's
reference/changed updates, the sanitizer, the analytics derivations) get
a :class:`PteView` — a thin live view whose attribute writes go straight
back into the arrays, preserving the old ``HashPte`` write-through
semantics.  The ``*_counted`` variants additionally report which PTEG
slots were examined so the hardware walker can charge its per-probe
cache accesses in one batched run per bucket.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.errors import ConfigError
from repro.hw.pte import HashPte, WIMG_CACHE_INHIBIT, pte_api
from repro.params import HTAB_GROUPS, PAGE_INDEX_MASK, PTES_PER_GROUP

_HASH_MASK_19 = (1 << 19) - 1

#: Bits of the packed tag key holding the page index (VSID above them).
_KEY_PAGE_BITS = 32
_KEY_PAGE_MASK = (1 << _KEY_PAGE_BITS) - 1


def primary_hash(vsid: int, page_index: int) -> int:
    """The architected 19-bit primary hash."""
    return (vsid & _HASH_MASK_19) ^ (page_index & PAGE_INDEX_MASK)


def secondary_hash(vsid: int, page_index: int) -> int:
    """The architected secondary hash: one's complement of the primary."""
    return (~primary_hash(vsid, page_index)) & _HASH_MASK_19


class PteView:
    """A live window onto one hash-table slot.

    Mirrors the :class:`~repro.hw.pte.HashPte` attribute surface; writes
    (``valid``, ``referenced``, ``changed``) go straight into the
    table's arrays, so the machine's R/C updates and the sanitizer's
    post-invalidation checks observe current state, exactly as they did
    when slots held mutable dataclass instances.
    """

    __slots__ = ("_table", "_flat")

    def __init__(self, table: "HashedPageTable", flat: int):
        self._table = table
        self._flat = flat

    @property
    def vsid(self) -> int:
        return self._table._key[self._flat] >> _KEY_PAGE_BITS

    @property
    def page_index(self) -> int:
        return self._table._key[self._flat] & _KEY_PAGE_MASK

    @property
    def rpn(self) -> int:
        return self._table._rpn[self._flat]

    @rpn.setter
    def rpn(self, value: int) -> None:
        self._table._rpn[self._flat] = value

    @property
    def valid(self) -> bool:
        return bool(self._table._valid[self._flat])

    @valid.setter
    def valid(self, value: bool) -> None:
        table = self._table
        flat = self._flat
        new = 1 if value else 0
        old = table._valid[flat]
        if new != old:
            table._valid[flat] = new
            table._valid_delta(flat, new - old)

    @property
    def secondary(self) -> bool:
        return bool(self._table._sec[self._flat])

    @secondary.setter
    def secondary(self, value: bool) -> None:
        self._table._sec[self._flat] = 1 if value else 0

    @property
    def referenced(self) -> bool:
        return bool(self._table._ref[self._flat])

    @referenced.setter
    def referenced(self, value: bool) -> None:
        self._table._ref[self._flat] = 1 if value else 0

    @property
    def changed(self) -> bool:
        return bool(self._table._chg[self._flat])

    @changed.setter
    def changed(self, value: bool) -> None:
        self._table._chg[self._flat] = 1 if value else 0

    @property
    def wimg(self) -> int:
        return self._table._wimg[self._flat]

    @property
    def pp(self) -> int:
        return self._table._pp[self._flat]

    @property
    def api(self) -> int:
        return pte_api(self.page_index)

    @property
    def cache_inhibited(self) -> bool:
        return bool(self._table._wimg[self._flat] & WIMG_CACHE_INHIBIT)

    def matches(self, vsid: int, page_index: int, secondary: bool) -> bool:
        """Hardware tag compare: V, VSID, H and API must all match."""
        table = self._table
        flat = self._flat
        return (
            bool(table._valid[flat])
            and table._key[flat] == ((vsid << _KEY_PAGE_BITS) | page_index)
            and bool(table._sec[flat]) == secondary
        )

    def snapshot(self) -> HashPte:
        """A detached :class:`HashPte` copy of this slot's current state."""
        return self._table._snapshot(self._flat)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PteView(slot={self._flat}, vsid={self.vsid:#x}, "
            f"page_index={self.page_index:#x}, rpn={self.rpn}, "
            f"valid={self.valid})"
        )


class PtegSearchResult:
    """Outcome of a hash-table search for one virtual page."""

    __slots__ = ("pte", "mem_refs", "buckets_probed")

    def __init__(self, pte, mem_refs: int, buckets_probed: int):
        self.pte = pte
        #: Memory references the hardware (or software emulating it) made:
        #: PTEs examined across the probed bucket(s).
        self.mem_refs = mem_refs
        #: Buckets probed (1 if found in primary without secondary probe).
        self.buckets_probed = buckets_probed

    @property
    def found(self) -> bool:
        return self.pte is not None


class HashedPageTable:
    """A fixed-size architected hash table of PTE groups."""

    def __init__(
        self,
        groups: int = HTAB_GROUPS,
        ptes_per_group: int = PTES_PER_GROUP,
    ):
        if groups <= 0 or groups & (groups - 1):
            raise ConfigError(f"HTAB group count must be a power of two: {groups}")
        if ptes_per_group <= 0:
            raise ConfigError(
                f"PTEG size must be positive: {ptes_per_group}"
            )
        self.groups = groups
        self.ptes_per_group = ptes_per_group
        self.slots = groups * ptes_per_group
        # Struct-of-arrays state; -1 marks a never-written slot.
        self._key: List[int] = [-1] * self.slots
        self._rpn: List[int] = [0] * self.slots
        self._valid = bytearray(self.slots)
        self._sec = bytearray(self.slots)
        self._ref = bytearray(self.slots)
        self._chg = bytearray(self.slots)
        self._wimg = bytearray(self.slots)
        self._pp = bytearray(self.slots)
        self._rr_pointer = 0
        # Incremental valid-population bookkeeping, kept exactly in sync
        # with ``_valid`` by every mutation path: total valid slots, the
        # per-group load, and valid entries per VSID.  The observability
        # sampler reads these every tick; maintaining them incrementally
        # turns its per-sample cost from O(slots) into O(live VSIDs).
        self._valid_total = 0
        self._group_valid = (
            bytearray(groups) if ptes_per_group <= 0xFF else [0] * groups
        )
        self._vsid_valid: Dict[int, int] = {}
        # Counters the paper reports on.
        self.searches = 0
        self.search_hits = 0
        self.reloads = 0
        self.evicts = 0
        self.insert_secondary = 0
        #: Per-bucket miss counts — the "hash table miss histogram" the
        #: authors used to tune the VSID scatter constant (§5.2).
        self.bucket_miss_histogram = [0] * groups

    # -- indexing -----------------------------------------------------------

    def group_index(self, vsid: int, page_index: int, secondary: bool) -> int:
        if secondary:
            return secondary_hash(vsid, page_index) & (self.groups - 1)
        return primary_hash(vsid, page_index) & (self.groups - 1)

    def _snapshot(self, flat: int) -> HashPte:
        key = self._key[flat]
        return HashPte(
            vsid=key >> _KEY_PAGE_BITS,
            page_index=key & _KEY_PAGE_MASK,
            rpn=self._rpn[flat],
            valid=bool(self._valid[flat]),
            secondary=bool(self._sec[flat]),
            referenced=bool(self._ref[flat]),
            changed=bool(self._chg[flat]),
            wimg=self._wimg[flat],
            pp=self._pp[flat],
        )

    def _valid_delta(self, flat: int, delta: int) -> None:
        """Adjust the incremental valid-population counters for ``flat``.

        Must run while ``_key[flat]`` still names the VSID whose valid
        bit changed (i.e. decrement *before* overwriting a slot's key).
        """
        self._valid_total += delta
        self._group_valid[flat // self.ptes_per_group] += delta
        vsid = self._key[flat] >> _KEY_PAGE_BITS
        counts = self._vsid_valid
        remaining = counts.get(vsid, 0) + delta
        if remaining:
            counts[vsid] = remaining
        else:
            del counts[vsid]

    def _store(self, flat: int, pte, secondary: bool) -> None:
        if self._valid[flat]:
            # The previous occupant's key is still in place; retire it
            # from the population counts before overwriting.
            self._valid_delta(flat, -1)
        self._key[flat] = (pte.vsid << _KEY_PAGE_BITS) | pte.page_index
        self._rpn[flat] = pte.rpn
        self._valid[flat] = 1 if pte.valid else 0
        if pte.valid:
            self._valid_delta(flat, 1)
        self._sec[flat] = 1 if secondary else 0
        self._ref[flat] = 1 if pte.referenced else 0
        self._chg[flat] = 1 if pte.changed else 0
        self._wimg[flat] = pte.wimg & 0xF
        self._pp[flat] = pte.pp & 0x3

    def _find_in_group(self, group_index: int, key: int, secondary: int):
        """First matching valid slot in one PTEG.

        Returns ``(flat, examined)``; ``flat`` is -1 on a miss, in which
        case the whole group (``ptes_per_group`` slots) was examined —
        the paper's per-bucket worst case.
        """
        ppg = self.ptes_per_group
        base = group_index * ppg
        end = base + ppg
        keys = self._key
        valid = self._valid
        sec = self._sec
        pos = base
        while True:
            try:
                pos = keys.index(key, pos, end)
            except ValueError:
                return -1, ppg
            if valid[pos] and sec[pos] == secondary:
                return pos, pos - base + 1
            pos += 1

    # -- the hardware search (and its software emulation) --------------------

    def search_counted(self, vsid: int, page_index: int):
        """Probe primary then secondary bucket, reporting probe runs.

        Returns ``(result, probes)`` where ``probes`` is a list of
        ``(group_index, slots_examined)`` pairs — the consecutive slot
        prefix of each PTEG the search touched, in probe order.  The
        walker uses the runs to charge its per-probe cache accesses in
        batches; ``result`` is identical to :meth:`search`.
        """
        self.searches += 1
        key = (vsid << _KEY_PAGE_BITS) | page_index
        mem_refs = 0
        probes = []
        for secondary in (0, 1):
            group_index = self.group_index(vsid, page_index, bool(secondary))
            flat, examined = self._find_in_group(group_index, key, secondary)
            mem_refs += examined
            probes.append((group_index, examined))
            if flat >= 0:
                self.search_hits += 1
                result = PtegSearchResult(
                    pte=PteView(self, flat),
                    mem_refs=mem_refs,
                    buckets_probed=1 + secondary,
                )
                return result, probes
        primary_group = self.group_index(vsid, page_index, False)
        self.bucket_miss_histogram[primary_group] += 1
        return (
            PtegSearchResult(pte=None, mem_refs=mem_refs, buckets_probed=2),
            probes,
        )

    def search(self, vsid: int, page_index: int, probe=None) -> PtegSearchResult:
        """Probe primary then secondary bucket for a matching valid PTE.

        Accounts one memory reference per PTE examined, the way the paper
        counts the 16-reference worst case.  ``probe(group, slot)``, if
        given, is invoked for every PTE examined so callers (the hardware
        walker, the software miss handlers) can charge cache costs per
        probe.
        """
        if probe is None:
            result, _ = self.search_counted(vsid, page_index)
            return result
        self.searches += 1
        key = (vsid << _KEY_PAGE_BITS) | page_index
        keys = self._key
        valid = self._valid
        sec = self._sec
        ppg = self.ptes_per_group
        mem_refs = 0
        for secondary in (0, 1):
            group_index = self.group_index(vsid, page_index, bool(secondary))
            base = group_index * ppg
            for slot in range(ppg):
                mem_refs += 1
                probe(group_index, slot)
                flat = base + slot
                if (
                    valid[flat]
                    and keys[flat] == key
                    and sec[flat] == secondary
                ):
                    self.search_hits += 1
                    return PtegSearchResult(
                        pte=PteView(self, flat),
                        mem_refs=mem_refs,
                        buckets_probed=1 + secondary,
                    )
            # A full bucket with no match falls through to the secondary.
        primary_group = self.group_index(vsid, page_index, False)
        self.bucket_miss_histogram[primary_group] += 1
        return PtegSearchResult(pte=None, mem_refs=mem_refs, buckets_probed=2)

    def pte_at(self, group_index: int, slot: int) -> Optional[PteView]:
        """Direct slot read (for the walker and white-box tests)."""
        flat = group_index * self.ptes_per_group + slot
        if self._key[flat] == -1:
            return None
        return PteView(self, flat)

    def peek(self, vsid: int, page_index: int) -> Optional[PteView]:
        """Search without touching counters or the miss histogram.

        For assertions and the coherence sanitizer, which must observe
        the table without perturbing the statistics the experiments
        measure.
        """
        key = (vsid << _KEY_PAGE_BITS) | page_index
        for secondary in (0, 1):
            group_index = self.group_index(vsid, page_index, bool(secondary))
            flat, _ = self._find_in_group(group_index, key, secondary)
            if flat >= 0:
                return PteView(self, flat)
        return None

    def iter_valid(self):
        """Yield ``(group_index, slot, pte)`` for every valid PTE."""
        valid = self._valid
        ppg = self.ptes_per_group
        flat = valid.find(1)
        while flat != -1:
            group_index, slot = divmod(flat, ppg)
            yield group_index, slot, PteView(self, flat)
            flat = valid.find(1, flat + 1)

    # -- reload / insert ------------------------------------------------------

    def insert_counted(self, pte):
        """Install a PTE, reporting probe runs like :meth:`search_counted`.

        Returns ``(event, probes)`` where ``event`` is the dict
        :meth:`insert` documents and ``probes`` the per-group examined
        slot runs (the round-robin evict examines no extra slots).
        """
        self.reloads += 1
        mem_refs = 0
        probes = []
        valid = self._valid
        ppg = self.ptes_per_group
        for secondary in (False, True):
            index = self.group_index(pte.vsid, pte.page_index, secondary)
            base = index * ppg
            try:
                flat = valid.index(0, base, base + ppg)
            except ValueError:
                mem_refs += ppg
                probes.append((index, ppg))
                continue
            examined = flat - base + 1
            mem_refs += examined
            probes.append((index, examined))
            pte.secondary = secondary
            self._store(flat, pte, secondary)
            if secondary:
                self.insert_secondary += 1
            return (
                {"mem_refs": mem_refs, "evicted": False, "victim": None},
                probes,
            )
        # No invalid slot anywhere: replace an arbitrary PTE (§7), chosen
        # round-robin within the primary bucket.
        index = self.group_index(pte.vsid, pte.page_index, False)
        flat = index * ppg + self._rr_pointer % ppg
        self._rr_pointer += 1
        victim = self._snapshot(flat)
        pte.secondary = False
        self._store(flat, pte, False)
        self.evicts += 1
        return (
            {"mem_refs": mem_refs, "evicted": True, "victim": victim},
            probes,
        )

    def insert(self, pte, probe=None) -> dict:
        """Install a PTE, preferring invalid slots; evict round-robin else.

        Returns an event dict: ``{"mem_refs", "evicted", "victim"}`` where
        ``victim`` is the replaced *valid* PTE if an evict happened.
        ``probe(group, slot)`` is called per slot examined, as in
        :meth:`search`.
        """
        if probe is None:
            event, _ = self.insert_counted(pte)
            return event
        self.reloads += 1
        mem_refs = 0
        valid = self._valid
        ppg = self.ptes_per_group
        # Pass 1: a free (invalid) slot in primary, then secondary bucket.
        for secondary in (False, True):
            index = self.group_index(pte.vsid, pte.page_index, secondary)
            base = index * ppg
            for slot in range(ppg):
                mem_refs += 1
                probe(index, slot)
                if not valid[base + slot]:
                    pte.secondary = secondary
                    self._store(base + slot, pte, secondary)
                    if secondary:
                        self.insert_secondary += 1
                    return {"mem_refs": mem_refs, "evicted": False, "victim": None}
        index = self.group_index(pte.vsid, pte.page_index, False)
        flat = index * ppg + self._rr_pointer % ppg
        self._rr_pointer += 1
        victim = self._snapshot(flat)
        pte.secondary = False
        self._store(flat, pte, False)
        self.evicts += 1
        return {"mem_refs": mem_refs, "evicted": True, "victim": victim}

    # -- invalidation ----------------------------------------------------------

    def invalidate_counted(self, vsid: int, page_index: int):
        """Search-and-invalidate, reporting probe runs (flush path)."""
        key = (vsid << _KEY_PAGE_BITS) | page_index
        mem_refs = 0
        probes = []
        for secondary in (0, 1):
            group_index = self.group_index(vsid, page_index, bool(secondary))
            flat, examined = self._find_in_group(group_index, key, secondary)
            mem_refs += examined
            probes.append((group_index, examined))
            if flat >= 0:
                self._valid[flat] = 0
                self._valid_delta(flat, -1)
                return {"mem_refs": mem_refs, "found": True}, probes
        return {"mem_refs": mem_refs, "found": False}, probes

    def invalidate_entry(self, vsid: int, page_index: int, probe=None) -> dict:
        """Search-and-invalidate one translation (the expensive flush path).

        Returns ``{"mem_refs", "found"}``; the 16-reference worst case is
        exactly the cost §7 attributes to range flushes.
        """
        if probe is None:
            event, _ = self.invalidate_counted(vsid, page_index)
            return event
        key = (vsid << _KEY_PAGE_BITS) | page_index
        keys = self._key
        valid = self._valid
        sec = self._sec
        ppg = self.ptes_per_group
        mem_refs = 0
        for secondary in (0, 1):
            group_index = self.group_index(vsid, page_index, bool(secondary))
            base = group_index * ppg
            for slot in range(ppg):
                mem_refs += 1
                probe(group_index, slot)
                flat = base + slot
                if (
                    valid[flat]
                    and keys[flat] == key
                    and sec[flat] == secondary
                ):
                    valid[flat] = 0
                    self._valid_delta(flat, -1)
                    return {"mem_refs": mem_refs, "found": True}
        return {"mem_refs": mem_refs, "found": False}

    def invalidate_all(self) -> int:
        """Clear the whole table; returns slots that were valid."""
        cleared = sum(self._valid)
        slots = self.slots
        self._key[:] = [-1] * slots
        self._rpn[:] = [0] * slots
        self._valid[:] = bytes(slots)
        self._sec[:] = bytes(slots)
        self._ref[:] = bytes(slots)
        self._chg[:] = bytes(slots)
        self._wimg[:] = bytes(slots)
        self._pp[:] = bytes(slots)
        self._valid_total = 0
        if isinstance(self._group_valid, bytearray):
            self._group_valid[:] = bytes(self.groups)
        else:
            self._group_valid = [0] * self.groups
        self._vsid_valid.clear()
        return cleared

    # -- the idle task's view ---------------------------------------------------

    def scan_slots(self, start: int, count: int):
        """Yield ``(flat_slot_index, pte)`` for a window of the table.

        The idle task's zombie reclaim walks the table incrementally with
        this, remembering its position between idle periods.
        """
        slots = self.slots
        keys = self._key
        for offset in range(count):
            flat = (start + offset) % slots
            yield flat, (PteView(self, flat) if keys[flat] != -1 else None)

    def zombie_flats(self, start: int, count: int, vsid_is_live) -> List[int]:
        """Flat indices of zombie slots in a scan window, in scan order.

        A zombie is a valid PTE whose VSID the allocator no longer
        considers live — the §7 entries the idle task reclaims.  The
        window wraps at the table size like :meth:`scan_slots`; only
        valid slots pay a liveness check, so sweeping a mostly-invalid
        table is nearly free.
        """
        slots = self.slots
        valid = self._valid
        keys = self._key
        out = []
        position = start % slots
        remaining = min(count, slots)
        while remaining > 0:
            run = min(remaining, slots - position)
            end = position + run
            flat = valid.find(1, position, end)
            while flat != -1:
                if not vsid_is_live(keys[flat] >> _KEY_PAGE_BITS):
                    out.append(flat)
                flat = valid.find(1, flat + 1, end)
            remaining -= run
            position = 0
        return out

    def invalidate_slot(self, flat_index: int) -> None:
        flat = flat_index % self.slots
        if self._key[flat] != -1 and self._valid[flat]:
            self._valid[flat] = 0
            self._valid_delta(flat, -1)

    # -- statistics ---------------------------------------------------------------

    def valid_entries(self) -> int:
        return self._valid_total

    def occupancy(self) -> float:
        """Fraction of slots holding valid PTEs — the paper's "use" metric."""
        return self.valid_entries() / self.slots

    def live_and_zombie_counts(
        self, vsid_is_live: Callable[[int], bool]
    ) -> tuple:
        """Split valid entries into live vs zombie under a VSID predicate.

        Computed from the incrementally-maintained per-VSID population,
        so it costs O(distinct VSIDs) rather than a full table scan —
        the totals are identical to summing the histogram.
        """
        live = 0
        for vsid, count in self._vsid_valid.items():
            if vsid_is_live(vsid):
                live += count
        return live, self._valid_total - live

    def top_vsid_loads(
        self, k: int, vsid_is_live: Callable[[int], bool]
    ) -> Dict[str, Any]:
        """Bounded per-VSID population: top-``k`` plus a bucketed rest.

        Service-scale runs churn thousands of VSIDs; emitting the full
        per-VSID map every sampler tick would make trace records
        O(distinct VSIDs).  This folds the incrementally-maintained
        population into the ``k`` heaviest VSIDs (count-descending,
        VSID-ascending on ties, so the pick is deterministic) and one
        aggregate remainder bucket.  Counter-free, like :meth:`peek`.
        """
        ranked = sorted(
            self._vsid_valid.items(),
            key=lambda item: (-item[1], item[0]),
        )
        top = [
            {
                "vsid": vsid,
                "entries": count,
                "live": vsid_is_live(vsid),
            }
            for vsid, count in ranked[:k]
        ]
        rest_entries = 0
        rest_zombie = 0
        for vsid, count in ranked[k:]:
            rest_entries += count
            if not vsid_is_live(vsid):
                rest_zombie += count
        return {
            "top": top,
            "rest": {
                "vsids": max(len(ranked) - k, 0),
                "entries": rest_entries,
                "zombie_entries": rest_zombie,
            },
        }

    def live_zombie_histogram(
        self, vsid_is_live: Callable[[int], bool]
    ) -> List[tuple]:
        """Per-bucket ``(live, zombie)`` counts under a VSID predicate.

        Counter-free, like :meth:`peek` — the observability sampler reads
        this every tick without perturbing the table's statistics.
        """
        valid = self._valid
        keys = self._key
        ppg = self.ptes_per_group
        histogram = []
        for base in range(0, self.slots, ppg):
            live = zombie = 0
            end = base + ppg
            flat = valid.find(1, base, end)
            while flat != -1:
                if vsid_is_live(keys[flat] >> _KEY_PAGE_BITS):
                    live += 1
                else:
                    zombie += 1
                flat = valid.find(1, flat + 1, end)
            histogram.append((live, zombie))
        return histogram

    def evict_ratio(self) -> float:
        """Evicts per reload — §7's headline metric (>90% before, 30% after)."""
        return self.evicts / self.reloads if self.reloads else 0.0

    def search_hit_rate(self) -> float:
        return self.search_hits / self.searches if self.searches else 0.0

    def bucket_load_histogram(self) -> List[int]:
        """Valid-PTE count per bucket (for hot-spot analysis, §5.2)."""
        return list(self._group_valid)

    def hottest_bucket_load(self) -> int:
        """Largest per-bucket valid-PTE count (the sampler's hot-spot)."""
        return max(self._group_valid) if self.groups else 0

    def reset_stats(self) -> None:
        self.searches = self.search_hits = 0
        self.reloads = self.evicts = self.insert_secondary = 0
        self.bucket_miss_histogram = [0] * self.groups
