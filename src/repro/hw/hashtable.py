"""The architected hashed page table (HTAB).

§3: the table is organized into power-of-two many "buckets" (PTE groups,
PTEGs) of eight PTEs each.  A primary hash of the virtual address picks
one bucket; if no PTE there matches, the one's-complement secondary hash
picks an overflow bucket.  Misses in both buckets raise the (hash-table)
miss fault the kernel must service.

The architected primary hash function is::

    hash = (VSID mod 2^19)  XOR  page_index

and the secondary hash is its one's complement.  The low bits of the
hash, masked to the table size, select the PTEG.

Replacement is the part the paper actually studies (§7): the reload code
first looks for an *invalid* slot in either bucket and, failing that,
"chose an arbitrary PTE to replace" — modelled as a per-table round-robin
pointer, counted as an *evict*.  The idle-task zombie reclaim exists to
keep invalid slots available so those evicts stop happening.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.errors import ConfigError
from repro.hw.pte import HashPte
from repro.params import HTAB_GROUPS, PTES_PER_GROUP

_HASH_MASK_19 = (1 << 19) - 1


def primary_hash(vsid: int, page_index: int) -> int:
    """The architected 19-bit primary hash."""
    return (vsid & _HASH_MASK_19) ^ (page_index & 0xFFFF)


def secondary_hash(vsid: int, page_index: int) -> int:
    """The architected secondary hash: one's complement of the primary."""
    return (~primary_hash(vsid, page_index)) & _HASH_MASK_19


@dataclass
class PtegSearchResult:
    """Outcome of a hash-table search for one virtual page."""

    pte: Optional[HashPte]
    #: Memory references the hardware (or software emulating it) made:
    #: PTEs examined across the probed bucket(s).
    mem_refs: int
    #: Buckets probed (1 if found in primary without secondary probe).
    buckets_probed: int

    @property
    def found(self) -> bool:
        return self.pte is not None


class HashedPageTable:
    """A fixed-size architected hash table of PTE groups."""

    def __init__(self, groups: int = HTAB_GROUPS):
        if groups <= 0 or groups & (groups - 1):
            raise ConfigError(f"HTAB group count must be a power of two: {groups}")
        self.groups = groups
        self.slots = groups * PTES_PER_GROUP
        self._table: List[List[Optional[HashPte]]] = [
            [None] * PTES_PER_GROUP for _ in range(groups)
        ]
        self._rr_pointer = 0
        # Counters the paper reports on.
        self.searches = 0
        self.search_hits = 0
        self.reloads = 0
        self.evicts = 0
        self.insert_secondary = 0
        #: Per-bucket miss counts — the "hash table miss histogram" the
        #: authors used to tune the VSID scatter constant (§5.2).
        self.bucket_miss_histogram = [0] * groups

    # -- indexing -----------------------------------------------------------

    def group_index(self, vsid: int, page_index: int, secondary: bool) -> int:
        if secondary:
            return secondary_hash(vsid, page_index) & (self.groups - 1)
        return primary_hash(vsid, page_index) & (self.groups - 1)

    # -- the hardware search (and its software emulation) --------------------

    def search(self, vsid: int, page_index: int, probe=None) -> PtegSearchResult:
        """Probe primary then secondary bucket for a matching valid PTE.

        Accounts one memory reference per PTE examined, the way the paper
        counts the 16-reference worst case.  ``probe(group, slot)``, if
        given, is invoked for every PTE examined so callers (the hardware
        walker, the software miss handlers) can charge cache costs per
        probe.
        """
        self.searches += 1
        mem_refs = 0
        for secondary in (False, True):
            group_index = self.group_index(vsid, page_index, secondary)
            group = self._table[group_index]
            for slot, pte in enumerate(group):
                mem_refs += 1
                if probe is not None:
                    probe(group_index, slot)
                if pte is not None and pte.matches(vsid, page_index, secondary):
                    self.search_hits += 1
                    return PtegSearchResult(
                        pte=pte, mem_refs=mem_refs, buckets_probed=1 + secondary
                    )
            # A full bucket with no match falls through to the secondary.
        primary_group = self.group_index(vsid, page_index, False)
        self.bucket_miss_histogram[primary_group] += 1
        return PtegSearchResult(pte=None, mem_refs=mem_refs, buckets_probed=2)

    def pte_at(self, group_index: int, slot: int) -> Optional[HashPte]:
        """Direct slot read (for the walker and white-box tests)."""
        return self._table[group_index][slot]

    def peek(self, vsid: int, page_index: int) -> Optional[HashPte]:
        """Search without touching counters or the miss histogram.

        For assertions and the coherence sanitizer, which must observe
        the table without perturbing the statistics the experiments
        measure.
        """
        for secondary in (False, True):
            group = self._table[self.group_index(vsid, page_index, secondary)]
            for pte in group:
                if pte is not None and pte.matches(vsid, page_index, secondary):
                    return pte
        return None

    def iter_valid(self):
        """Yield ``(group_index, slot, pte)`` for every valid PTE."""
        for group_index, group in enumerate(self._table):
            for slot, pte in enumerate(group):
                if pte is not None and pte.valid:
                    yield group_index, slot, pte

    # -- reload / insert ------------------------------------------------------

    def insert(self, pte: HashPte, probe=None) -> dict:
        """Install a PTE, preferring invalid slots; evict round-robin else.

        Returns an event dict: ``{"mem_refs", "evicted", "victim"}`` where
        ``victim`` is the replaced *valid* PTE if an evict happened.
        ``probe(group, slot)`` is called per slot examined, as in
        :meth:`search`.
        """
        self.reloads += 1
        mem_refs = 0
        # Pass 1: a free (invalid) slot in primary, then secondary bucket.
        for secondary in (False, True):
            index = self.group_index(pte.vsid, pte.page_index, secondary)
            group = self._table[index]
            for slot, existing in enumerate(group):
                mem_refs += 1
                if probe is not None:
                    probe(index, slot)
                if existing is None or not existing.valid:
                    pte.secondary = secondary
                    group[slot] = pte
                    if secondary:
                        self.insert_secondary += 1
                    return {"mem_refs": mem_refs, "evicted": False, "victim": None}
        # No invalid slot anywhere: replace an arbitrary PTE (§7), chosen
        # round-robin within the primary bucket.
        index = self.group_index(pte.vsid, pte.page_index, False)
        group = self._table[index]
        slot = self._rr_pointer % PTES_PER_GROUP
        self._rr_pointer += 1
        victim = group[slot]
        pte.secondary = False
        group[slot] = pte
        self.evicts += 1
        return {"mem_refs": mem_refs, "evicted": True, "victim": victim}

    # -- invalidation ----------------------------------------------------------

    def invalidate_entry(self, vsid: int, page_index: int, probe=None) -> dict:
        """Search-and-invalidate one translation (the expensive flush path).

        Returns ``{"mem_refs", "found"}``; the 16-reference worst case is
        exactly the cost §7 attributes to range flushes.
        """
        mem_refs = 0
        for secondary in (False, True):
            group_index = self.group_index(vsid, page_index, secondary)
            group = self._table[group_index]
            for slot, pte in enumerate(group):
                mem_refs += 1
                if probe is not None:
                    probe(group_index, slot)
                if pte is not None and pte.matches(vsid, page_index, secondary):
                    pte.valid = False
                    return {"mem_refs": mem_refs, "found": True}
        return {"mem_refs": mem_refs, "found": False}

    def invalidate_all(self) -> int:
        """Clear the whole table; returns slots that were valid."""
        cleared = 0
        for group in self._table:
            for slot in range(PTES_PER_GROUP):
                if group[slot] is not None and group[slot].valid:
                    cleared += 1
                group[slot] = None
        return cleared

    # -- the idle task's view ---------------------------------------------------

    def scan_slots(self, start: int, count: int):
        """Yield ``(flat_slot_index, pte)`` for a window of the table.

        The idle task's zombie reclaim walks the table incrementally with
        this, remembering its position between idle periods.
        """
        for offset in range(count):
            flat = (start + offset) % self.slots
            group, slot = divmod(flat, PTES_PER_GROUP)
            yield flat, self._table[group][slot]

    def invalidate_slot(self, flat_index: int) -> None:
        group, slot = divmod(flat_index % self.slots, PTES_PER_GROUP)
        pte = self._table[group][slot]
        if pte is not None:
            pte.valid = False

    # -- statistics ---------------------------------------------------------------

    def valid_entries(self) -> int:
        return sum(
            1
            for group in self._table
            for pte in group
            if pte is not None and pte.valid
        )

    def occupancy(self) -> float:
        """Fraction of slots holding valid PTEs — the paper's "use" metric."""
        return self.valid_entries() / self.slots

    def live_and_zombie_counts(
        self, vsid_is_live: Callable[[int], bool]
    ) -> tuple:
        """Split valid entries into live vs zombie under a VSID predicate."""
        live = zombie = 0
        for group_live, group_zombie in self.live_zombie_histogram(vsid_is_live):
            live += group_live
            zombie += group_zombie
        return live, zombie

    def live_zombie_histogram(
        self, vsid_is_live: Callable[[int], bool]
    ) -> List[tuple]:
        """Per-bucket ``(live, zombie)`` counts under a VSID predicate.

        Counter-free, like :meth:`peek` — the observability sampler reads
        this every tick without perturbing the table's statistics.
        """
        histogram = []
        for group in self._table:
            live = zombie = 0
            for pte in group:
                if pte is not None and pte.valid:
                    if vsid_is_live(pte.vsid):
                        live += 1
                    else:
                        zombie += 1
            histogram.append((live, zombie))
        return histogram

    def evict_ratio(self) -> float:
        """Evicts per reload — §7's headline metric (>90% before, 30% after)."""
        return self.evicts / self.reloads if self.reloads else 0.0

    def search_hit_rate(self) -> float:
        return self.search_hits / self.searches if self.searches else 0.0

    def bucket_load_histogram(self) -> List[int]:
        """Valid-PTE count per bucket (for hot-spot analysis, §5.2)."""
        return [
            sum(1 for pte in group if pte is not None and pte.valid)
            for group in self._table
        ]

    def reset_stats(self) -> None:
        self.searches = self.search_hits = 0
        self.reloads = self.evicts = self.insert_secondary = 0
        self.bucket_miss_histogram = [0] * self.groups
