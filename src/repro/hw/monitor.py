"""604-style hardware performance monitor.

§4: "we gathered low-level statistics with the PPC 604 hardware monitor.
Using this monitor we were able to characterize the system's behavior in
great detail by counting every TLB and cache miss, whether data or
instruction."  On the 603 the kernel kept software counters serving the
same role.  This module is that counter fabric: a named-counter registry
with snapshot/delta support so benchmarks can report per-phase numbers.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, Optional


class HardwareMonitor:
    """Named event counters with snapshot/delta accounting."""

    #: Events every component reports into the monitor.
    WELL_KNOWN = (
        "itlb_miss",
        "dtlb_miss",
        "tlb_miss",
        "htab_search",
        "htab_hit",
        "htab_miss",
        "htab_reload",
        "htab_evict",
        "hash_miss_interrupt",
        "sw_tlb_miss_interrupt",
        "bat_translation",
        "icache_miss",
        "dcache_miss",
        "page_fault_major",
        "page_fault_minor",
        "flush_range_search",
        "flush_range_lazy",
        "vsid_bump",
        "zombie_reclaimed",
        "pages_precleared",
        "precleared_page_used",
        "context_switch",
        "syscall",
    )

    def __init__(self):
        self._counters: Counter = Counter()
        #: Optional event tracer; when attached, every counted event is
        #: republished on the trace bus (the tracer filters for itself).
        self.tracer = None

    def count(self, event: str, amount: int = 1) -> None:
        """Increment a named event counter."""
        self._counters[event] += amount
        if self.tracer is not None:
            self.tracer.on_monitor_event(event, amount)

    def __getitem__(self, event: str) -> int:
        return self._counters.get(event, 0)

    def get(self, event: str, default: int = 0) -> int:
        return self._counters.get(event, default)

    def snapshot(self) -> Dict[str, int]:
        """A frozen copy of all counters."""
        return dict(self._counters)

    def delta(self, since: Dict[str, int]) -> Dict[str, int]:
        """Counter increase since a snapshot (only non-zero deltas)."""
        out = {}
        for event, value in self._counters.items():
            change = value - since.get(event, 0)
            if change:
                out[event] = change
        return out

    def reset(self, events: Optional[Iterable[str]] = None) -> None:
        if events is None:
            self._counters.clear()
        else:
            for event in events:
                self._counters.pop(event, None)

    # -- derived metrics the paper quotes ------------------------------------

    def htab_hit_rate(self) -> float:
        """Hash-table hit rate on TLB misses (85%–98% in §7)."""
        searches = self.get("htab_search")
        return self.get("htab_hit") / searches if searches else 0.0

    def evict_ratio(self) -> float:
        """Evicts per hash-table reload (>90% -> 30% in §7)."""
        reloads = self.get("htab_reload")
        return self.get("htab_evict") / reloads if reloads else 0.0

    def total_tlb_misses(self) -> int:
        return self.get("itlb_miss") + self.get("dtlb_miss")
