"""Set-associative translation look-aside buffers.

The 603 has separate 64-entry instruction and data TLBs; the 604's are
128 entries each (the paper quotes the 128/256 totals).  Both are 2-way
set associative and indexed by the low bits of the effective page index,
with the (VSID, page index) pair as tag — so two processes' entries for
the same EA coexist only until they collide in a set.

The model keeps an LRU bit per set, as the hardware does for 2-way
arrays, and generalizes to true-LRU for wider associativity so tests can
exercise other geometries.

Representation: each set is a list of packed integer keys
(``vsid << PAGE_INDEX_BITS | page_index``) ordered most-recent-first;
the :class:`TlbEntry` payloads live in one dict keyed by the same packed
key.  Lookups are a C-speed ``list.index`` over at most ``assoc`` small
ints plus one dict read — no per-entry object scan.  The entry objects
callers insert are stored as-is, so the check/obs layers keep receiving
the same mutable :class:`TlbEntry` instances they always did.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigError
from repro.params import PAGE_INDEX_BITS, PAGE_INDEX_MASK

_KEY_SHIFT = PAGE_INDEX_BITS
_KEY_PAGE_MASK = PAGE_INDEX_MASK


@dataclass(slots=True)
class TlbEntry:
    """One cached virtual-to-physical translation."""

    vsid: int
    page_index: int
    ppn: int
    writable: bool = True
    cache_inhibited: bool = False
    #: The kernel tags entries it loaded for supervisor addresses so the
    #: monitor can report the OS TLB footprint (§5.1's 33% figure).
    is_kernel: bool = False


class Tlb:
    """A set-associative TLB with per-set LRU replacement."""

    def __init__(self, entries: int, assoc: int, name: str = "tlb"):
        if entries <= 0 or assoc <= 0 or entries % assoc:
            raise ConfigError(
                f"bad TLB geometry: {entries} entries, {assoc}-way"
            )
        self.name = name
        self.entries = entries
        self.assoc = assoc
        self.num_sets = entries // assoc
        # Each set is a list of packed (vsid, page_index) keys ordered
        # most-recent-first; payloads live in _data.
        self._sets = [[] for _ in range(self.num_sets)]
        self._data = {}
        self.hits = 0
        self.misses = 0
        self.invalidate_all_count = 0
        self.invalidate_entry_count = 0

    # -- indexing ----------------------------------------------------------

    def set_index(self, page_index: int) -> int:
        """Hardware indexes by the low EA page-index bits."""
        return page_index % self.num_sets

    # -- lookup / fill -----------------------------------------------------

    def lookup(self, vsid: int, page_index: int) -> Optional[TlbEntry]:
        """Probe the TLB; maintains LRU order and hit/miss counters."""
        keys = self._sets[page_index % self.num_sets]
        key = (vsid << _KEY_SHIFT) | page_index
        try:
            position = keys.index(key)
        except ValueError:
            self.misses += 1
            return None
        if position:
            del keys[position]
            keys.insert(0, key)
        self.hits += 1
        return self._data[key]

    def peek(self, vsid: int, page_index: int) -> Optional[TlbEntry]:
        """Probe without touching LRU state or counters (for assertions)."""
        key = (vsid << _KEY_SHIFT) | page_index
        if key in self._sets[page_index % self.num_sets]:
            return self._data[key]
        return None

    def insert(self, entry: TlbEntry) -> Optional[TlbEntry]:
        """Fill an entry, evicting LRU if the set is full.

        Returns the victim entry, or None if a slot was free or the same
        translation was already present (it is refreshed in place).
        """
        keys = self._sets[entry.page_index % self.num_sets]
        key = (entry.vsid << _KEY_SHIFT) | entry.page_index
        try:
            position = keys.index(key)
        except ValueError:
            pass
        else:
            del keys[position]
            keys.insert(0, key)
            self._data[key] = entry
            return None
        victim = None
        if len(keys) >= self.assoc:
            victim = self._data.pop(keys.pop())
        keys.insert(0, key)
        self._data[key] = entry
        return victim

    # -- invalidation ------------------------------------------------------

    def invalidate_page(self, page_index: int, vsid: Optional[int] = None) -> int:
        """`tlbie`: drop entries whose EA page index matches.

        With ``vsid=None`` this is the architected instruction — it
        invalidates by EA alone (all VSIDs in the indexed set whose page
        index matches), which is why per-page flushes are cheap for the
        TLB but the hash table still needs the expensive search the paper
        complains about.  Passing the owning VSID restricts the kill to
        that context, so flushing one address space cannot evict another
        context's translation of the same page index.
        """
        keys = self._sets[page_index % self.num_sets]
        removed = 0
        if vsid is not None:
            key = (vsid << _KEY_SHIFT) | page_index
            try:
                keys.remove(key)
            except ValueError:
                pass
            else:
                del self._data[key]
                removed = 1
        else:
            survivors = []
            for key in keys:
                if key & _KEY_PAGE_MASK == page_index:
                    del self._data[key]
                    removed += 1
                else:
                    survivors.append(key)
            if removed:
                keys[:] = survivors
        self.invalidate_entry_count += 1
        return removed

    def invalidate_all(self) -> None:
        """`tlbia` / sync of a full flush."""
        for keys in self._sets:
            keys.clear()
        self._data.clear()
        self.invalidate_all_count += 1

    # -- introspection -----------------------------------------------------

    def __len__(self) -> int:
        return len(self._data)

    def occupancy(self) -> float:
        """Fraction of TLB slots currently holding a translation."""
        return len(self._data) / self.entries

    def kernel_entries(self) -> int:
        """How many live entries belong to the kernel (§5.1 footprint)."""
        return sum(1 for entry in self._data.values() if entry.is_kernel)

    def live_entries(self):
        """Iterate over all live entries (MRU-first within each set)."""
        data = self._data
        for keys in self._sets:
            for key in keys:
                yield data[key]

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
        self.invalidate_all_count = 0
        self.invalidate_entry_count = 0
