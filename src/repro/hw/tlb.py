"""Set-associative translation look-aside buffers.

The 603 has separate 64-entry instruction and data TLBs; the 604's are
128 entries each (the paper quotes the 128/256 totals).  Both are 2-way
set associative and indexed by the low bits of the effective page index,
with the (VSID, page index) pair as tag — so two processes' entries for
the same EA coexist only until they collide in a set.

The model keeps an LRU bit per set, as the hardware does for 2-way
arrays, and generalizes to true-LRU for wider associativity so tests can
exercise other geometries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigError


@dataclass
class TlbEntry:
    """One cached virtual-to-physical translation."""

    vsid: int
    page_index: int
    ppn: int
    writable: bool = True
    cache_inhibited: bool = False
    #: The kernel tags entries it loaded for supervisor addresses so the
    #: monitor can report the OS TLB footprint (§5.1's 33% figure).
    is_kernel: bool = False


class Tlb:
    """A set-associative TLB with per-set LRU replacement."""

    def __init__(self, entries: int, assoc: int, name: str = "tlb"):
        if entries <= 0 or assoc <= 0 or entries % assoc:
            raise ConfigError(
                f"bad TLB geometry: {entries} entries, {assoc}-way"
            )
        self.name = name
        self.entries = entries
        self.assoc = assoc
        self.num_sets = entries // assoc
        # Each set is a list of TlbEntry ordered most-recent-first.
        self._sets = [[] for _ in range(self.num_sets)]
        self.hits = 0
        self.misses = 0
        self.invalidate_all_count = 0
        self.invalidate_entry_count = 0

    # -- indexing ----------------------------------------------------------

    def set_index(self, page_index: int) -> int:
        """Hardware indexes by the low EA page-index bits."""
        return page_index % self.num_sets

    # -- lookup / fill -----------------------------------------------------

    def lookup(self, vsid: int, page_index: int) -> Optional[TlbEntry]:
        """Probe the TLB; maintains LRU order and hit/miss counters."""
        entries = self._sets[self.set_index(page_index)]
        for position, entry in enumerate(entries):
            if entry.vsid == vsid and entry.page_index == page_index:
                if position:
                    entries.insert(0, entries.pop(position))
                self.hits += 1
                return entry
        self.misses += 1
        return None

    def peek(self, vsid: int, page_index: int) -> Optional[TlbEntry]:
        """Probe without touching LRU state or counters (for assertions)."""
        for entry in self._sets[self.set_index(page_index)]:
            if entry.vsid == vsid and entry.page_index == page_index:
                return entry
        return None

    def insert(self, entry: TlbEntry) -> Optional[TlbEntry]:
        """Fill an entry, evicting LRU if the set is full.

        Returns the victim entry, or None if a slot was free or the same
        translation was already present (it is refreshed in place).
        """
        entries = self._sets[self.set_index(entry.page_index)]
        for position, existing in enumerate(entries):
            if (
                existing.vsid == entry.vsid
                and existing.page_index == entry.page_index
            ):
                entries.pop(position)
                entries.insert(0, entry)
                return None
        victim = None
        if len(entries) >= self.assoc:
            victim = entries.pop()
        entries.insert(0, entry)
        return victim

    # -- invalidation ------------------------------------------------------

    def invalidate_page(self, page_index: int, vsid: Optional[int] = None) -> int:
        """`tlbie`: drop entries whose EA page index matches.

        With ``vsid=None`` this is the architected instruction — it
        invalidates by EA alone (all VSIDs in the indexed set whose page
        index matches), which is why per-page flushes are cheap for the
        TLB but the hash table still needs the expensive search the paper
        complains about.  Passing the owning VSID restricts the kill to
        that context, so flushing one address space cannot evict another
        context's translation of the same page index.
        """
        entries = self._sets[self.set_index(page_index)]
        before = len(entries)
        entries[:] = [
            e
            for e in entries
            if e.page_index != page_index
            or (vsid is not None and e.vsid != vsid)
        ]
        removed = before - len(entries)
        self.invalidate_entry_count += 1
        return removed

    def invalidate_all(self) -> None:
        """`tlbia` / sync of a full flush."""
        for entries in self._sets:
            entries.clear()
        self.invalidate_all_count += 1

    # -- introspection -----------------------------------------------------

    def __len__(self) -> int:
        return sum(len(entries) for entries in self._sets)

    def occupancy(self) -> float:
        """Fraction of TLB slots currently holding a translation."""
        return len(self) / self.entries

    def kernel_entries(self) -> int:
        """How many live entries belong to the kernel (§5.1 footprint)."""
        return sum(
            1
            for entries in self._sets
            for entry in entries
            if entry.is_kernel
        )

    def live_entries(self):
        """Iterate over all live entries (MRU-first within each set)."""
        for entries in self._sets:
            yield from entries

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
        self.invalidate_all_count = 0
        self.invalidate_entry_count = 0
