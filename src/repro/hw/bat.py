"""Block Address Translation (BAT) registers.

§3: "The BAT registers associate virtual blocks of 128K or more with
physical segments.  If a translation via the BAT registers succeeds, the
page table translation is abandoned."

§5.1 uses one data BAT (plus the matching instruction BAT) to map the
kernel's contiguous text+static-data region, removing kernel PTEs from
the TLB and hash table entirely.

A BAT pair is modelled by its architected fields:

* ``bepi`` — block effective page index (high 15 bits of the EA),
* ``bl`` — block length mask (11 bits; 0 selects 128 KB, all-ones 256 MB),
* ``brpn`` — block real page number (high 15 bits of the PA),
* valid bits and WIMG/PP attributes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigError
from repro.params import BAT_MAX_BLOCK, BAT_MIN_BLOCK, NUM_DBATS, NUM_IBATS

#: EAs are compared against BEPI above this bit.
_BEPI_SHIFT = 17
_BL_FIELD_BITS = 11


def block_length_mask(size_bytes: int) -> int:
    """Architected BL encoding for a block size.

    128 KB -> 0b00000000000, 256 KB -> 0b00000000001, ... 256 MB -> all ones.
    Raises ``ConfigError`` for sizes that are not a power-of-two multiple
    of 128 KB within the architected range.
    """
    if size_bytes < BAT_MIN_BLOCK or size_bytes > BAT_MAX_BLOCK:
        raise ConfigError(f"BAT block size out of range: {size_bytes}")
    ratio = size_bytes // BAT_MIN_BLOCK
    if ratio * BAT_MIN_BLOCK != size_bytes or ratio & (ratio - 1):
        raise ConfigError(f"BAT block size must be 128K * 2^n: {size_bytes}")
    return ratio - 1


@dataclass
class BatRegister:
    """One BAT register pair (upper + lower word, modelled as fields)."""

    bepi: int = 0
    bl: int = 0
    brpn: int = 0
    valid: bool = False
    wimg: int = 0
    writable: bool = True

    @classmethod
    def mapping(
        cls,
        ea_base: int,
        pa_base: int,
        size_bytes: int,
        writable: bool = True,
        wimg: int = 0,
    ) -> "BatRegister":
        """Build a BAT pair mapping ``size_bytes`` at ``ea_base``.

        Both bases must be aligned to the block size, as the architecture
        requires (this is exactly the "finding large, contiguous, aligned
        areas" constraint §2 mentions).
        """
        bl = block_length_mask(size_bytes)
        if ea_base % size_bytes or pa_base % size_bytes:
            raise ConfigError(
                f"BAT bases must be aligned to the block size: "
                f"ea={ea_base:#x} pa={pa_base:#x} size={size_bytes:#x}"
            )
        return cls(
            bepi=ea_base >> _BEPI_SHIFT,
            bl=bl,
            brpn=pa_base >> _BEPI_SHIFT,
            valid=True,
            wimg=wimg,
            writable=writable,
        )

    @property
    def size_bytes(self) -> int:
        return (self.bl + 1) * BAT_MIN_BLOCK

    def matches(self, ea: int) -> bool:
        """Architected compare: EA high bits equal BEPI outside the BL mask."""
        if not self.valid:
            return False
        return ((ea >> _BEPI_SHIFT) & ~self.bl) == (self.bepi & ~self.bl)

    def translate(self, ea: int) -> int:
        """Physical address for a matching EA (caller checks ``matches``)."""
        block_offset = ea & ((self.bl << _BEPI_SHIFT) | (_low_mask()))
        return ((self.brpn & ~self.bl) << _BEPI_SHIFT) | block_offset


def _low_mask() -> int:
    return (1 << _BEPI_SHIFT) - 1


class BatArray:
    """The full bank: four instruction BATs and four data BATs."""

    def __init__(self):
        self.ibats = [BatRegister() for _ in range(NUM_IBATS)]
        self.dbats = [BatRegister() for _ in range(NUM_DBATS)]
        self._rebuild()

    def _bank(self, instruction: bool):
        return self.ibats if instruction else self.dbats

    def _rebuild(self) -> None:
        # Valid BATs only, with the architected compare pre-masked: the
        # lookup hot path scans ``(~bl, bepi & ~bl, bat)`` triples and
        # most banks are empty or one entry, so a miss costs almost
        # nothing instead of four method calls.
        self._valid = (
            [(~bat.bl, bat.bepi & ~bat.bl, bat) for bat in self.ibats if bat.valid],
            [(~bat.bl, bat.bepi & ~bat.bl, bat) for bat in self.dbats if bat.valid],
        )

    def set(self, index: int, bat: BatRegister, instruction: bool) -> None:
        bank = self._bank(instruction)
        if not 0 <= index < len(bank):
            raise ConfigError(f"BAT index out of range: {index}")
        bank[index] = bat
        self._rebuild()

    def clear(self, index: int, instruction: bool) -> None:
        self._bank(instruction)[index] = BatRegister()
        self._rebuild()

    def clear_all(self) -> None:
        self.ibats = [BatRegister() for _ in range(NUM_IBATS)]
        self.dbats = [BatRegister() for _ in range(NUM_DBATS)]
        self._rebuild()

    def lookup(self, ea: int, instruction: bool) -> Optional[BatRegister]:
        """First matching valid BAT, or None.

        Overlapping valid BATs are a programming error in real hardware
        (results are undefined); the simulator takes the lowest-numbered
        match, and the kernel layer never programs overlaps.
        """
        block = ea >> _BEPI_SHIFT
        for inv_bl, masked_bepi, bat in self._valid[0 if instruction else 1]:
            if block & inv_bl == masked_bepi:
                return bat
        return None

    def translate(self, ea: int, instruction: bool) -> Optional[int]:
        """Physical address if a BAT covers this EA, else None."""
        bat = self.lookup(ea, instruction)
        if bat is None:
            return None
        return bat.translate(ea)

    def map_both(self, index: int, bat: BatRegister) -> None:
        """Program the same mapping into IBAT[i] and DBAT[i] (kernel map)."""
        self.set(index, bat, instruction=True)
        self.set(
            index,
            BatRegister(**{**bat.__dict__}),
            instruction=False,
        )
