"""Address arithmetic for the PowerPC 32-bit translation datapath.

The paper's Figure 1 splits a 32-bit effective address (EA) into:

* bits 0..3  (the 4 high-order bits): segment register number,
* bits 4..19 (16 bits): page index within the segment,
* bits 20..31 (12 bits): byte offset within the page.

Concatenating the selected segment register's 24-bit VSID with the page
index and offset yields the 52-bit virtual address (VA); the TLB and
hashed page table translate ``(VSID, page index)`` to a 20-bit physical
page number (PPN).

Addresses are plain ``int`` throughout the simulator; the named tuple
types here exist for readable decomposition at API boundaries and in the
Figure-1 demonstration.
"""

from __future__ import annotations

from typing import NamedTuple

from repro.params import (
    PAGE_INDEX_BITS,
    PAGE_INDEX_MASK,
    PAGE_SHIFT,
    PAGE_SIZE,
    SEGMENT_SHIFT,
    VSID_MASK,
)

EA_MASK = 0xFFFFFFFF
OFFSET_MASK = PAGE_SIZE - 1


class EffectiveAddress(NamedTuple):
    """A 32-bit EA decomposed per Figure 1."""

    segment: int  # 4-bit segment register number
    page_index: int  # 16-bit page index within the segment
    offset: int  # 12-bit byte offset

    @property
    def value(self) -> int:
        return (
            (self.segment << SEGMENT_SHIFT)
            | (self.page_index << PAGE_SHIFT)
            | self.offset
        )


class VirtualAddress(NamedTuple):
    """A 52-bit VA: 24-bit VSID ++ 16-bit page index ++ 12-bit offset."""

    vsid: int
    page_index: int
    offset: int

    @property
    def value(self) -> int:
        return (
            (self.vsid << (PAGE_INDEX_BITS + PAGE_SHIFT))
            | (self.page_index << PAGE_SHIFT)
            | self.offset
        )

    @property
    def virtual_page(self) -> int:
        """The 40-bit virtual page number (VSID ++ page index)."""
        return (self.vsid << PAGE_INDEX_BITS) | self.page_index


def ea_segment(ea: int) -> int:
    """Segment register number: the 4 high-order bits of the EA."""
    return (ea >> SEGMENT_SHIFT) & 0xF


def ea_page_index(ea: int) -> int:
    """16-bit page index within the segment."""
    return (ea >> PAGE_SHIFT) & PAGE_INDEX_MASK


def ea_offset(ea: int) -> int:
    """12-bit byte offset within the page."""
    return ea & OFFSET_MASK


def page_of(ea: int) -> int:
    """Full 20-bit effective page number (segment ++ page index)."""
    return (ea & EA_MASK) >> PAGE_SHIFT


def make_ea(segment: int, page_index: int, offset: int = 0) -> int:
    """Compose a 32-bit EA from its Figure-1 fields."""
    if not 0 <= segment < 16:
        raise ValueError(f"segment register number out of range: {segment}")
    if not 0 <= page_index <= PAGE_INDEX_MASK:
        raise ValueError(f"page index out of range: {page_index}")
    if not 0 <= offset < PAGE_SIZE:
        raise ValueError(f"page offset out of range: {offset}")
    return (segment << SEGMENT_SHIFT) | (page_index << PAGE_SHIFT) | offset


def decompose_ea(ea: int) -> EffectiveAddress:
    """Split a 32-bit EA into its Figure-1 fields."""
    return EffectiveAddress(ea_segment(ea), ea_page_index(ea), ea_offset(ea))


def make_virtual_address(vsid: int, ea: int) -> VirtualAddress:
    """Concatenate a VSID with an EA's page index and offset (Figure 1)."""
    if not 0 <= vsid <= VSID_MASK:
        raise ValueError(f"VSID out of range: {vsid}")
    return VirtualAddress(vsid, ea_page_index(ea), ea_offset(ea))


def physical_address(ppn: int, offset: int) -> int:
    """Compose a 32-bit physical address from PPN and byte offset."""
    return (ppn << PAGE_SHIFT) | (offset & OFFSET_MASK)
