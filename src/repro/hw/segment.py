"""The 16 segment registers of the 32-bit PowerPC MMU.

Each register holds a 24-bit VSID; the 4 high-order bits of every
effective address select one.  The lazy-flush optimization of §7 works
entirely through this file's ``load_context``: giving a process fresh
VSIDs makes every stale TLB and hash-table entry unreachable without
touching either structure.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import ConfigError
from repro.hw.addr import ea_segment
from repro.params import NUM_SEGMENT_REGISTERS, VSID_MASK


class SegmentRegisterFile:
    """The per-CPU bank of 16 segment registers."""

    def __init__(self):
        self._vsids = [0] * NUM_SEGMENT_REGISTERS

    def read(self, index: int) -> int:
        """Read the VSID in segment register ``index``."""
        return self._vsids[index]

    def write(self, index: int, vsid: int) -> None:
        """Load one segment register (one ``mtsr`` instruction)."""
        if not 0 <= index < NUM_SEGMENT_REGISTERS:
            raise ConfigError(f"segment register index out of range: {index}")
        if not 0 <= vsid <= VSID_MASK:
            raise ConfigError(f"VSID out of range: {vsid:#x}")
        self._vsids[index] = vsid

    def load_context(self, vsids: Sequence[int]) -> None:
        """Load all 16 registers — the context-switch segment reload."""
        if len(vsids) != NUM_SEGMENT_REGISTERS:
            raise ConfigError(
                f"expected {NUM_SEGMENT_REGISTERS} VSIDs, got {len(vsids)}"
            )
        for index, vsid in enumerate(vsids):
            self.write(index, vsid)

    def vsid_for(self, ea: int) -> int:
        """The VSID the hardware selects for an effective address."""
        return self._vsids[ea_segment(ea)]

    def snapshot(self) -> tuple:
        """Current contents, for assertions and context-switch checks."""
        return tuple(self._vsids)
