"""Access kinds: instruction fetch vs data access.

Separate module (rather than living in :mod:`repro.hw.machine`) so trace
generators and workloads can import it without pulling in the full
machine model.
"""

from __future__ import annotations

import enum


class AccessKind(enum.Enum):
    """Instruction fetch vs data access (separate TLBs and caches)."""

    INSTRUCTION = "instruction"
    DATA = "data"
