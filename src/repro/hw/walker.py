"""The 604's hardware hash-table walk engine.

On a TLB miss the 604 computes the primary hash, probes the PTEG, then
probes the secondary PTEG, entirely in hardware.  §5 measures the found
case at "up to 120 instruction cycles and 16 memory accesses"; a miss in
both buckets raises the hash-table miss interrupt (at least 91 further
cycles just to reach the handler).

The walker charges each PTE probe as a real data-cache access to the
PTEG's physical address; that is how the §8 cache-pollution effect
arises in the model without any special-casing.  Configurations that map
the page tables cache-inhibited simply set ``cache_ptes=False``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.hw.cache import Cache
from repro.hw.hashtable import HashedPageTable
from repro.hw.pte import HashPte
from repro.params import PTES_PER_GROUP

#: Fixed pipeline overhead of engaging the walk engine.  With the worst
#: case of 16 probes at 7 cycles each this reproduces the paper's
#: 120-cycle ceiling (8 + 16 * 7 = 120).
WALK_BASE_CYCLES = 8
WALK_CYCLES_PER_REF = 7

#: Each architected PTE is 8 bytes; a PTEG is 64 bytes.
PTE_BYTES = 8
PTEG_BYTES = PTE_BYTES * PTES_PER_GROUP


@dataclass
class WalkOutcome:
    """Result of one hardware (or software-emulated) hash-table walk."""

    pte: Optional[HashPte]
    cycles: int
    mem_refs: int

    @property
    def found(self) -> bool:
        return self.pte is not None


class HardwareWalker:
    """Walks the HTAB the way 604 silicon does, with cache accounting."""

    def __init__(
        self,
        htab: HashedPageTable,
        dcache: Cache,
        htab_base_pa: int,
        cache_ptes: bool = True,
    ):
        self.htab = htab
        self.dcache = dcache
        self.htab_base_pa = htab_base_pa
        #: §8: whether hash-table probes may allocate into the data cache.
        self.cache_ptes = cache_ptes

    def pte_physical_address(self, group_index: int, slot: int) -> int:
        """Physical address of one PTE slot in the in-memory table."""
        return self.htab_base_pa + group_index * PTEG_BYTES + slot * PTE_BYTES

    def _probe_charger(self, charges: list, write: bool = False):
        def probe(group_index: int, slot: int) -> None:
            charges[0] += WALK_CYCLES_PER_REF
            charges[0] += self.dcache.access(
                self.pte_physical_address(group_index, slot),
                write=write,
                inhibited=not self.cache_ptes,
            )

        return probe

    def walk(self, vsid: int, page_index: int) -> WalkOutcome:
        """Search primary then secondary PTEG; charge cycles per probe."""
        charges = [WALK_BASE_CYCLES]
        result = self.htab.search(
            vsid, page_index, probe=self._probe_charger(charges)
        )
        return WalkOutcome(
            pte=result.pte, cycles=charges[0], mem_refs=result.mem_refs
        )

    def insert(self, pte: HashPte) -> dict:
        """Reload code installing a PTE; returns the htab event + cycles.

        The returned dict carries the hash-table insert event fields plus
        ``"cycles"`` for the charged probe and store costs.
        """
        charges = [0]
        event = self.htab.insert(pte, probe=self._probe_charger(charges))
        # The final PTE store (two words; one line).
        group_index = self.htab.group_index(pte.vsid, pte.page_index, pte.secondary)
        charges[0] += self.dcache.access(
            self.pte_physical_address(group_index, 0),
            write=True,
            inhibited=not self.cache_ptes,
        )
        event["cycles"] = charges[0]
        return event

    def invalidate(self, vsid: int, page_index: int) -> dict:
        """Search-and-invalidate one PTE, charging probes (flush path)."""
        charges = [0]
        event = self.htab.invalidate_entry(
            vsid, page_index, probe=self._probe_charger(charges)
        )
        event["cycles"] = charges[0]
        return event
