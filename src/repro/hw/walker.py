"""The 604's hardware hash-table walk engine.

On a TLB miss the 604 computes the primary hash, probes the PTEG, then
probes the secondary PTEG, entirely in hardware.  §5 measures the found
case at "up to 120 instruction cycles and 16 memory accesses"; a miss in
both buckets raises the hash-table miss interrupt (at least 91 further
cycles just to reach the handler).

The walker charges each PTE probe as a real data-cache access to the
PTEG's physical address; that is how the §8 cache-pollution effect
arises in the model without any special-casing.  Configurations that map
the page tables cache-inhibited simply set ``cache_ptes=False``.

Probe charging is batched per PTEG: the table reports how many
consecutive slots each probed group examined (``search_counted``), and
the charger replays those probes against the data cache line-run by
line-run.  Within one run, only the first slot of each cache line can
miss — the probe loop walks consecutive PTE addresses, so every later
slot on the same line finds it resident and MRU (the immediately
preceding probe put it there).  The batched charge is therefore
cycle-identical and statistics-identical to the old per-slot callback,
at a fraction of the Python cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.hw.cache import Cache
from repro.hw.hashtable import HashedPageTable
from repro.hw.pte import HashPte
from repro.params import PTE_BYTES, PTES_PER_GROUP

#: Bytes per PTEG at the architected default geometry.  Instances use
#: ``self.pteg_bytes``, derived from their table's actual group size.
PTEG_BYTES = PTE_BYTES * PTES_PER_GROUP

#: Fixed pipeline overhead of engaging the walk engine.  With the worst
#: case of 16 probes at 7 cycles each this reproduces the paper's
#: 120-cycle ceiling (8 + 16 * 7 = 120).
WALK_BASE_CYCLES = 8
WALK_CYCLES_PER_REF = 7


@dataclass(slots=True)
class WalkOutcome:
    """Result of one hardware (or software-emulated) hash-table walk."""

    pte: Optional[HashPte]
    cycles: int
    mem_refs: int

    @property
    def found(self) -> bool:
        return self.pte is not None


class HardwareWalker:
    """Walks the HTAB the way 604 silicon does, with cache accounting."""

    def __init__(
        self,
        htab: HashedPageTable,
        dcache: Cache,
        htab_base_pa: int,
        cache_ptes: bool = True,
    ):
        self.htab = htab
        self.dcache = dcache
        self.htab_base_pa = htab_base_pa
        #: §8: whether hash-table probes may allocate into the data cache.
        self.cache_ptes = cache_ptes
        #: Bytes per PTEG at this table's geometry (8-byte PTEs).
        self.pteg_bytes = PTE_BYTES * htab.ptes_per_group

    def pte_physical_address(self, group_index: int, slot: int) -> int:
        """Physical address of one PTE slot in the in-memory table."""
        return self.htab_base_pa + group_index * self.pteg_bytes + slot * PTE_BYTES

    def _probe_charger(self, charges: list, write: bool = False):
        def probe(group_index: int, slot: int) -> None:
            charges[0] += WALK_CYCLES_PER_REF
            charges[0] += self.dcache.access(
                self.pte_physical_address(group_index, slot),
                write=write,
                inhibited=not self.cache_ptes,
            )

        return probe

    def charge_probe_run(
        self, group_index: int, count: int, inhibited: bool
    ) -> int:
        """Cache cost of probing slots ``0 .. count-1`` of one PTEG.

        Equivalent to ``count`` scalar ``dcache.access`` calls at
        consecutive PTE addresses: the first slot of each cache line
        pays a real access, the rest of the line are guaranteed hits.
        """
        dcache = self.dcache
        if inhibited:
            dcache.stats.bypasses += count
            return dcache.word_cycles * count
        line_size = dcache.line_size
        slots_per_line = line_size // PTE_BYTES
        if slots_per_line <= 0 or line_size % PTE_BYTES:
            # Degenerate geometry (lines smaller than a PTE): no two
            # probes share a line, fall back to per-slot accesses.
            base = self.pte_physical_address(group_index, 0)
            return sum(
                dcache.access(base + slot * PTE_BYTES)
                for slot in range(count)
            )
        base = self.pte_physical_address(group_index, 0)
        cycles = 0
        slot = 0
        while slot < count:
            run = min(slots_per_line - (slot % slots_per_line), count - slot)
            cycles += dcache.access_run_same_line(base + slot * PTE_BYTES, run)
            slot += run
        return cycles

    def charge_scan_window(
        self, start: int, count: int, inhibited: bool = False
    ) -> int:
        """Cache cost of streaming ``count`` table slots from ``start``.

        The idle reclaim and on-demand scavenge scans stream PTE tag
        words; one memory access covers a cache line's worth of slots,
        charged at every line-aligned flat slot index the window crosses
        (wrapping at the table size).  Equivalent to the old per-slot
        loop testing ``flat % slots_per_line == 0``, with the geometry
        derived from ``PTE_BYTES`` and the table's actual group size
        rather than hard-coded eights.
        """
        dcache = self.dcache
        slots = self.htab.slots
        slots_per_line = max(dcache.line_size // PTE_BYTES, 1)
        base = self.htab_base_pa
        cycles = 0
        position = start % slots
        remaining = count
        while remaining > 0:
            run = min(remaining, slots - position)
            first = position + (-position) % slots_per_line
            for flat in range(first, position + run, slots_per_line):
                cycles += dcache.access(
                    base + flat * PTE_BYTES, write=False, inhibited=inhibited
                )
            remaining -= run
            position = 0
        return cycles

    def charged_search(
        self,
        vsid: int,
        page_index: int,
        cycles_per_ref: int = WALK_CYCLES_PER_REF,
        inhibited: Optional[bool] = None,
    ):
        """Search the table, charging probes in batched line runs.

        Returns ``(result, cycles)``; behaviourally identical to
        ``htab.search`` with a per-slot probe callback charging
        ``cycles_per_ref`` plus one data-cache access per slot (the 604
        hardware walk, or the 603's software emulation of it with its
        own per-probe instruction cost).
        """
        if inhibited is None:
            inhibited = not self.cache_ptes
        result, probes = self.htab.search_counted(vsid, page_index)
        cycles = cycles_per_ref * result.mem_refs
        for group_index, count in probes:
            cycles += self.charge_probe_run(group_index, count, inhibited)
        return result, cycles

    def walk(self, vsid: int, page_index: int) -> WalkOutcome:
        """Search primary then secondary PTEG; charge cycles per probe."""
        result, cycles = self.charged_search(vsid, page_index)
        return WalkOutcome(
            pte=result.pte,
            cycles=WALK_BASE_CYCLES + cycles,
            mem_refs=result.mem_refs,
        )

    def insert(self, pte: HashPte) -> dict:
        """Reload code installing a PTE; returns the htab event + cycles.

        The returned dict carries the hash-table insert event fields plus
        ``"cycles"`` for the charged probe and store costs.
        """
        inhibited = not self.cache_ptes
        event, probes = self.htab.insert_counted(pte)
        cycles = WALK_CYCLES_PER_REF * event["mem_refs"]
        for group_index, count in probes:
            cycles += self.charge_probe_run(group_index, count, inhibited)
        # The final PTE store (two words; one line).
        group_index = self.htab.group_index(pte.vsid, pte.page_index, pte.secondary)
        cycles += self.dcache.access(
            self.pte_physical_address(group_index, 0),
            write=True,
            inhibited=inhibited,
        )
        event["cycles"] = cycles
        return event

    def invalidate(self, vsid: int, page_index: int) -> dict:
        """Search-and-invalidate one PTE, charging probes (flush path)."""
        inhibited = not self.cache_ptes
        event, probes = self.htab.invalidate_counted(vsid, page_index)
        cycles = WALK_CYCLES_PER_REF * event["mem_refs"]
        for group_index, count in probes:
            cycles += self.charge_probe_run(group_index, count, inhibited)
        event["cycles"] = cycles
        return event
