"""Hashed-page-table PTE model (PowerPC architecture, §3 of the paper).

Each PTE in the hashed page table is two 32-bit words:

word 0 (the "tag" word)::

    V (1) | VSID (24) | H (1) | API (6)

word 1 (the "data" word)::

    RPN (20) | 000 | R (1) | C (1) | WIMG (4) | 0 | PP (2)

``V`` is the valid bit the idle-task zombie reclaim clears; ``H`` records
whether the entry was inserted under the primary (0) or secondary (1)
hash function; ``API`` is the abbreviated page index — the high 6 bits of
the 16-bit page index (the remaining 10 bits participate in the hash, so
tag + bucket position identify the page uniquely).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.params import API_BITS, PAGE_INDEX_BITS, PPN_BITS, PPN_MASK, VSID_MASK

API_SHIFT = PAGE_INDEX_BITS - API_BITS  # low 10 bits feed the hash only
API_MASK = (1 << API_BITS) - 1

#: The RPN occupies the high bits of word 1; the low 12 hold R/C/WIMG/PP.
RPN_SHIFT = 32 - PPN_BITS

#: Page-protection field encodings (PP bits with Ks/Kp folded away; the
#: simulator models supervisor/user via the kernel layer instead).
PP_RW = 0b10
PP_RO = 0b11

#: WIMG attribute bits.
WIMG_WRITE_THROUGH = 0b1000
WIMG_CACHE_INHIBIT = 0b0100
WIMG_COHERENT = 0b0010
WIMG_GUARDED = 0b0001


def pte_api(page_index: int) -> int:
    """Abbreviated page index: the high 6 bits of the 16-bit page index."""
    return (page_index >> API_SHIFT) & API_MASK


@dataclass(slots=True)
class HashPte:
    """One entry of the hashed page table.

    ``page_index`` keeps the full 16-bit index for the simulator's benefit;
    hardware stores only the 6-bit API (the rest is implied by the bucket
    the entry hashes to).  ``pack``/``unpack`` produce the architected
    2-word encoding, which the unit tests check bit-for-bit.
    """

    vsid: int
    page_index: int
    rpn: int
    valid: bool = True
    secondary: bool = False  # the H bit
    referenced: bool = False  # the R bit
    changed: bool = False  # the C bit
    wimg: int = 0
    pp: int = PP_RW

    @property
    def api(self) -> int:
        return pte_api(self.page_index)

    @property
    def cache_inhibited(self) -> bool:
        return bool(self.wimg & WIMG_CACHE_INHIBIT)

    def matches(self, vsid: int, page_index: int, secondary: bool) -> bool:
        """Hardware tag compare: V, VSID, H and API must all match."""
        return (
            self.valid
            and self.vsid == vsid
            and self.secondary == secondary
            and self.api == pte_api(page_index)
            and self.page_index == page_index
        )

    def pack(self) -> tuple:
        """Encode into the architected (word0, word1) pair."""
        word0 = (
            (int(self.valid) << 31)
            | ((self.vsid & VSID_MASK) << 7)
            | (int(self.secondary) << 6)
            | self.api
        )
        word1 = (
            ((self.rpn & PPN_MASK) << RPN_SHIFT)
            | (int(self.referenced) << 8)
            | (int(self.changed) << 7)
            | ((self.wimg & 0xF) << 3)
            | (self.pp & 0x3)
        )
        return word0, word1

    @classmethod
    def unpack(cls, word0: int, word1: int, low_page_bits: int = 0) -> "HashPte":
        """Decode the architected encoding.

        ``low_page_bits`` supplies the 10 page-index bits hardware derives
        from the bucket index; tests pass the original low bits back in.
        """
        api = word0 & API_MASK
        return cls(
            vsid=(word0 >> 7) & VSID_MASK,
            page_index=(api << API_SHIFT) | (low_page_bits & ((1 << API_SHIFT) - 1)),
            rpn=(word1 >> RPN_SHIFT) & PPN_MASK,
            valid=bool(word0 >> 31),
            secondary=bool((word0 >> 6) & 1),
            referenced=bool((word1 >> 8) & 1),
            changed=bool((word1 >> 7) & 1),
            wimg=(word1 >> 3) & 0xF,
            pp=word1 & 0x3,
        )
