"""Functional models of the 32-bit PowerPC memory-management hardware.

The subpackage models the translation datapath of Figure 1 in the paper:
segment registers turn a 32-bit effective address into a 52-bit virtual
address; the TLB and the hashed page table turn the virtual address into a
32-bit physical address; BAT registers provide the parallel block
translation path that bypasses paging entirely.
"""

from repro.hw.addr import (
    EffectiveAddress,
    VirtualAddress,
    ea_offset,
    ea_page_index,
    ea_segment,
    make_ea,
    make_virtual_address,
    page_of,
)
from repro.hw.bat import BatArray, BatRegister
from repro.hw.cache import Cache, CacheStats
from repro.hw.hashtable import HashedPageTable, PtegSearchResult
from repro.hw.machine import AccessKind, MachineModel, TranslationResult
from repro.hw.monitor import HardwareMonitor
from repro.hw.pte import HashPte, pte_api
from repro.hw.segment import SegmentRegisterFile
from repro.hw.tlb import Tlb, TlbEntry
from repro.hw.walker import HardwareWalker, WalkOutcome

__all__ = [
    "AccessKind",
    "BatArray",
    "BatRegister",
    "Cache",
    "CacheStats",
    "EffectiveAddress",
    "HardwareMonitor",
    "HardwareWalker",
    "HashPte",
    "HashedPageTable",
    "MachineModel",
    "PtegSearchResult",
    "SegmentRegisterFile",
    "Tlb",
    "TlbEntry",
    "TranslationResult",
    "VirtualAddress",
    "WalkOutcome",
    "ea_offset",
    "ea_page_index",
    "ea_segment",
    "make_ea",
    "make_virtual_address",
    "page_of",
    "pte_api",
]
