"""Reproduction of "Optimizing the Idle Task and Other MMU Tricks"
(Dougan, Mackerras, Yodaiken — OSDI 1999) as a cycle-accounting
simulation of the PowerPC 603/604 MMU and a Linux/PPC-like kernel.

Quick start::

    from repro import KernelConfig, M604_185, boot

    sim = boot(M604_185, KernelConfig.optimized())
    task = sim.kernel.spawn("demo")

    def body(t):
        yield ("getpid",)
        yield ("touch", 0x10000000, 8, True)

    sim.executive.add(task, body(task))
    sim.run()
    print(sim.elapsed_us(), "us", sim.counters())

See :mod:`repro.workloads.lmbench` for the paper's benchmark points and
:mod:`repro.analysis.specs` for the table/figure reproductions.
"""

from repro.errors import (
    ConfigError,
    KernelPanic,
    OutOfMemoryError,
    ProtectionFault,
    ReproError,
    SegmentFault,
    SyscallError,
    TranslationError,
)
from repro.kernel.config import IdlePageClearPolicy, KernelConfig, VsidPolicy
from repro.params import (
    ALL_MACHINES,
    M603_133,
    M603_180,
    M604_133,
    M604_185,
    M604_200,
    MachineSpec,
    machine_by_name,
)
from repro.sim.simulator import Simulator, boot

__version__ = "1.0.0"

__all__ = [
    "ALL_MACHINES",
    "ConfigError",
    "IdlePageClearPolicy",
    "KernelConfig",
    "KernelPanic",
    "M603_133",
    "M603_180",
    "M604_133",
    "M604_185",
    "M604_200",
    "MachineSpec",
    "OutOfMemoryError",
    "ProtectionFault",
    "ReproError",
    "SegmentFault",
    "Simulator",
    "SyscallError",
    "TranslationError",
    "VsidPolicy",
    "boot",
    "machine_by_name",
    "__version__",
]
