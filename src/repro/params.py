"""Architected constants and calibrated cost-model parameters.

Two kinds of numbers live here:

* **Architected constants** — fixed by the PowerPC 32-bit architecture
  (page size, hash geometry, TLB/BAT/segment-register counts).  These are
  taken from the 603/604 user's manuals and from the paper's §3.

* **Path costs** — cycle counts for the code paths the paper measures.
  Wherever the paper states a number (32-cycle 603 miss invoke, 120-cycle
  604 hardware walk, 91-cycle 604 miss interrupt, 16 memory references per
  flushed PTE, 3 loads for a Linux PTE-tree walk) we use it verbatim.
  The remaining knobs (memory latency, syscall entry, context-switch save
  and restore) are calibrated **once**, here, and held fixed across every
  experiment — no per-experiment tuning.

All times inside the simulator are integer *cycles*; conversion to
microseconds happens only at the reporting edge, using the machine clock.
"""

from __future__ import annotations

from dataclasses import dataclass

# ---------------------------------------------------------------------------
# Architected constants (PowerPC 32-bit, §3 of the paper)
# ---------------------------------------------------------------------------

#: Bytes per page and the shift that produces it.
PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT  # 4096
#: Mask selecting the byte offset within a page (``ea & PAGE_OFFSET_MASK``).
PAGE_OFFSET_MASK = PAGE_SIZE - 1

#: The 4 high-order EA bits select one of 16 segment registers.
NUM_SEGMENT_REGISTERS = 16
SEGMENT_SHIFT = 28
SEGMENT_SIZE = 1 << SEGMENT_SHIFT  # 256 MB

#: Virtual segment identifiers are 24 bits wide.
VSID_BITS = 24
VSID_MASK = (1 << VSID_BITS) - 1

#: Page index: EA bits 4..19 (16 bits) select the page within a segment.
PAGE_INDEX_BITS = 16
PAGE_INDEX_MASK = (1 << PAGE_INDEX_BITS) - 1

#: Physical page numbers are 20 bits (32-bit physical address space).
PPN_BITS = 20
PPN_MASK = (1 << PPN_BITS) - 1

#: Each PTEG (bucket) in the hashed page table holds eight PTEs.
PTES_PER_GROUP = 8

#: Each architected PTE is two 32-bit words: eight bytes.  Distinct from
#: :data:`PTES_PER_GROUP`, which happens to share the value 8 — code that
#: converts between flat slot indices and byte addresses must use this
#: constant, never a bare ``8`` (the two meanings diverge as soon as a
#: test runs a non-default PTEG geometry).
PTE_BYTES = 8

#: Abbreviated page index stored in a hash PTE: top 6 bits of the page index.
API_BITS = 6

#: Block address translation registers: four instruction + four data pairs.
NUM_IBATS = 4
NUM_DBATS = 4

#: Smallest BAT block is 128 KB; sizes go up by powers of two to 256 MB.
BAT_MIN_BLOCK = 128 * 1024
BAT_MAX_BLOCK = 256 * 1024 * 1024

#: Data-cache line size on both the 603 and 604.
CACHE_LINE_SIZE = 32
LINES_PER_PAGE = PAGE_SIZE // CACHE_LINE_SIZE  # 128

# ---------------------------------------------------------------------------
# Paper-stated path costs (cycles / memory references)
# ---------------------------------------------------------------------------

#: §5: "It takes 32 cycles simply to invoke and return from the handler"
#: (603 software TLB-miss interrupt).
C603_MISS_INVOKE_CYCLES = 32

#: §5: 604 hardware hash walk "can take up to 120 instruction cycles and
#: 16 memory accesses" when the PTE is found in the hash table.
C604_HW_WALK_MAX_CYCLES = 120
C604_HW_WALK_MEM_REFS = 16

#: §5: if the hash table misses, the 604 interrupt "adds at least 91 more
#: cycles to just invoke the handler".
C604_HASH_MISS_INVOKE_CYCLES = 91

#: §6.1: searching the Linux PTE tree takes "three loads in the worst case".
LINUX_PTE_TREE_LOADS = 3

#: §7: a hash-table search flush takes "16 memory references ... for each
#: PTE being flushed" (two PTEGs of eight PTEs).
FLUSH_SEARCH_REFS_PER_PTE = 16

#: §7: ranges of 40–110 pages are commonly flushed in one shot.
TYPICAL_FLUSH_RANGE_PAGES = (40, 110)

#: §7: the tuned cutoff — invalidate the whole context beyond 20 pages.
DEFAULT_RANGE_FLUSH_CUTOFF = 20

#: §7: hash table sized at 16384 PTE slots for the 32 MB test machines
#: ("600–700 out of 16384").
HTAB_PTE_SLOTS = 16384
HTAB_GROUPS = HTAB_PTE_SLOTS // PTES_PER_GROUP  # 2048

#: §4: every test machine had 32 MB of RAM.
RAM_BYTES = 32 * 1024 * 1024
RAM_PAGES = RAM_BYTES // PAGE_SIZE  # 8192

#: Linux/PPC kernel virtual base (§5.1).
KERNELBASE = 0xC0000000

# ---------------------------------------------------------------------------
# Calibrated cost knobs (fixed across all experiments)
# ---------------------------------------------------------------------------

#: Main-memory timing for the late-90s PReP/PowerMac parts, in
#: nanoseconds.  A *word* access (single beat — cache-inhibited loads,
#: in-page table probes) pays the access latency; a *line fill* (32-byte
#: burst) pays latency plus the burst beats.  The paper notes the
#: 200 MHz 604 machine had "significantly faster main memory and a
#: better board design"; it gets the FAST timings.
MEM_WORD_NS = 60.0
MEM_LINE_FILL_NS = 280.0
FAST_MEM_WORD_NS = 50.0
FAST_MEM_LINE_FILL_NS = 250.0

#: L1 cache hit cost.
L1_HIT_CYCLES = 1

#: Fixed instruction cost of copying one cache line in a tight kernel loop
#: (eight word loads + eight word stores, scheduled).
LINE_COPY_CYCLES = 16

#: Fixed instruction cost of zeroing one cache line (dcbz-free path, eight
#: word stores).
LINE_CLEAR_CYCLES = 8

#: Optimized syscall entry+exit path (hand-scheduled assembly prologue).
SYSCALL_FAST_CYCLES = 220

#: Unoptimized syscall entry+exit (full state save, C dispatch).
SYSCALL_SLOW_CYCLES = 2200

#: Optimized context-switch core path: register save/restore plus loading
#: the 16 segment registers from the task struct.
CTXSW_FAST_CYCLES = 480

#: Unoptimized context-switch core path (C-heavy, full state save, no
#: hand scheduling).
CTXSW_SLOW_CYCLES = 3000

#: Extra cycles the original C-coded miss handler spends over the 32-cycle
#: interrupt floor: MMU re-enable, full state save, call into C, return.
C_HANDLER_EXTRA_CYCLES = 210

#: Cycles to bump a context's VSIDs: reset the value in the task struct,
#: reload the 16 segment registers, increment the context counter.
VSID_BUMP_CYCLES = 56

#: Cycles for one `tlbie` (TLB invalidate entry) broadcast.
TLBIE_CYCLES = 12

#: Per-page bookkeeping when a range flush walks the Linux PTE tree.
FLUSH_PTE_TREE_CYCLES = 6

#: Check in get_free_page() for a pre-cleared page (lock-free list pop).
PRECLEARED_CHECK_CYCLES = 4

#: Scheduler pick-next cost (short run queues in these benchmarks).
SCHED_PICK_CYCLES = 60

#: User instruction cycles per cache line touched in a workload trace —
#: the ALU work the program does on the data it loads (the simulator
#: otherwise charges only memory-system costs).
USER_COMPUTE_PER_LINE_CYCLES = 22

#: Pipe wakeup: mark reader runnable, requeue.
PIPE_WAKEUP_CYCLES = 90

# -- TLB shootdown (SMP) ----------------------------------------------------
# The IPI cost model for kernel/shootdown.py.  A shootdown round costs
# the initiator a fixed send plus a per-target synchronization wait, and
# costs each target the interrupt delivery plus a tlbie per page.  With
# one CPU there are no targets, so none of these are ever charged.

#: Initiator: write the IPI request block, ring the doorbells.
IPI_SEND_CYCLES = 150

#: Initiator: spin-wait per acknowledging target CPU.
IPI_WAIT_PER_TARGET_CYCLES = 80

#: Target: take the external interrupt, read the request block, return.
IPI_DELIVER_CYCLES = 240

#: Initiator: append one invalidation to a remote CPU's deferred queue
#: (a couple of stores into the per-CPU ring, no interrupt).
SHOOTDOWN_DEFER_PER_PAGE_CYCLES = 5

#: Target: process one deferred invalidation at context-switch drain
#: time (queue pop + tlbie issue, amortized).
SHOOTDOWN_DRAIN_PER_PAGE_CYCLES = 14

# ---------------------------------------------------------------------------
# Machine specifications
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MachineSpec:
    """Static description of one of the paper's test machines.

    The TLB and cache geometries come from the 603/604 user's manuals; the
    paper quotes the totals (603: 128 TLB entries, 604: 256; the 604 has
    "double the size TLB and cache").
    """

    name: str
    clock_mhz: int
    #: True on the 604 family: the hardware walks the hash table on a TLB
    #: miss.  False on the 603: a software interrupt handles every miss.
    hardware_tablewalk: bool
    itlb_entries: int
    dtlb_entries: int
    tlb_assoc: int
    icache_bytes: int
    dcache_bytes: int
    cache_assoc: int
    mem_word_ns: float = MEM_WORD_NS
    mem_line_fill_ns: float = MEM_LINE_FILL_NS
    #: Board-level unified L2 (all the paper's test machines had one).
    l2_bytes: int = 512 * 1024
    l2_hit_ns: float = 100.0

    @property
    def mem_cycles(self) -> int:
        """Cache-line fill cost in CPU cycles at this clock."""
        return max(1, round(self.clock_mhz * self.mem_line_fill_ns / 1000.0))

    @property
    def word_cycles(self) -> int:
        """Single-beat (cache-inhibited) memory access cost in cycles."""
        return max(1, round(self.clock_mhz * self.mem_word_ns / 1000.0))

    @property
    def l2_hit_cycles(self) -> int:
        """L2 hit (line transfer from the board cache) cost in cycles."""
        return max(1, round(self.clock_mhz * self.l2_hit_ns / 1000.0))

    def cycles_to_us(self, cycles: float) -> float:
        """Convert a cycle count to microseconds at this machine's clock."""
        return cycles / self.clock_mhz

    def us_to_cycles(self, us: float) -> int:
        return int(round(us * self.clock_mhz))


def _spec_603(clock_mhz: int) -> MachineSpec:
    return MachineSpec(
        name=f"603 {clock_mhz}MHz",
        clock_mhz=clock_mhz,
        hardware_tablewalk=False,
        itlb_entries=64,
        dtlb_entries=64,
        tlb_assoc=2,
        icache_bytes=16 * 1024,
        dcache_bytes=16 * 1024,
        cache_assoc=4,
        l2_bytes=256 * 1024,
    )


def _spec_604(
    clock_mhz: int,
    mem_word_ns: float = MEM_WORD_NS,
    mem_line_fill_ns: float = MEM_LINE_FILL_NS,
) -> MachineSpec:
    return MachineSpec(
        name=f"604 {clock_mhz}MHz",
        clock_mhz=clock_mhz,
        hardware_tablewalk=True,
        itlb_entries=128,
        dtlb_entries=128,
        tlb_assoc=2,
        icache_bytes=32 * 1024,
        dcache_bytes=32 * 1024,
        cache_assoc=4,
        mem_word_ns=mem_word_ns,
        mem_line_fill_ns=mem_line_fill_ns,
    )


#: The machines the paper benchmarks on.
M603_133 = _spec_603(133)
M603_180 = _spec_603(180)
M604_133 = _spec_604(133)
M604_185 = _spec_604(185)
#: §6.2: the 200 MHz 604 sat on "a machine with significantly faster main
#: memory and a better board design".
M604_200 = _spec_604(
    200,
    mem_word_ns=FAST_MEM_WORD_NS,
    mem_line_fill_ns=FAST_MEM_LINE_FILL_NS,
)

ALL_MACHINES = (M603_133, M603_180, M604_133, M604_185, M604_200)


def machine_by_name(name: str) -> MachineSpec:
    """Look up a machine spec by its display name (e.g. ``"604 185MHz"``)."""
    for spec in ALL_MACHINES:
        if spec.name == name:
            return spec
    raise KeyError(f"unknown machine {name!r}")


# ---------------------------------------------------------------------------
# Trace scaling
# ---------------------------------------------------------------------------

#: The paper's kernel compile produces ~219M TLB misses over ~10 minutes of
#: real time.  We run traces scaled down by this factor and report both the
#: simulated and the rescaled numbers; the factor is fixed, printed by the
#: benches, and identical for every configuration being compared.
KBUILD_TRACE_SCALE = 2000
