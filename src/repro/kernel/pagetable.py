"""Linux's two-level page tables, as used on PPC (§5.2, §6.2).

"The core of Linux memory management is based on the x86 two-level page
tables. ... we were committed to using these page tables as the initial
source of PTEs" — the hash table is only a cache of this tree, and the
§6.2 optimization reloads the TLB straight from here.

A 32-bit EA splits as pgd index (10 bits) / pte index (10 bits) / offset
(12 bits).  Page-table pages are real allocated frames so walks charge
real cache accesses at real physical addresses — that is what makes the
§8 pollution analysis fall out of the model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

from repro.errors import KernelPanic
from repro.params import PAGE_SHIFT, PAGE_SIZE

PGD_SHIFT = 22
PTRS_PER_PGD = 1024
PTRS_PER_PTE = 1024
#: Bytes per PTE in a page-table page (a 32-bit word on PPC Linux).
PTE_ENTRY_BYTES = 4


def pgd_index(ea: int) -> int:
    return (ea >> PGD_SHIFT) & (PTRS_PER_PGD - 1)


def pte_index(ea: int) -> int:
    return (ea >> PAGE_SHIFT) & (PTRS_PER_PTE - 1)


@dataclass
class LinuxPte:
    """One leaf entry of the Linux page-table tree."""

    pfn: int
    present: bool = True
    writable: bool = True
    user: bool = True
    dirty: bool = False
    accessed: bool = False
    cache_inhibited: bool = False


class _PtePage:
    """One page-table page: 1024 PTE slots backed by a physical frame."""

    __slots__ = ("frame_pfn", "entries")

    def __init__(self, frame_pfn: int):
        self.frame_pfn = frame_pfn
        self.entries = {}

    def entry_pa(self, index: int) -> int:
        return (self.frame_pfn << PAGE_SHIFT) + index * PTE_ENTRY_BYTES


@dataclass
class PteLookup:
    """Result of a tree walk: the PTE (if any) and the loads performed.

    ``load_addresses`` lists the physical addresses the walk read — the
    pgd entry and the pte entry — so miss handlers can charge them as
    cache accesses (plus one load for the pgd base in the task struct;
    §6.1's "three loads in the worst case").
    """

    pte: Optional[LinuxPte]
    load_addresses: Tuple[int, ...]


class TwoLevelPageTable:
    """The per-mm Linux page-table tree.

    The tree needs a frame source for its page-table pages; the kernel
    passes its page allocator's ``alloc_frame`` so the pages occupy real
    physical memory.
    """

    def __init__(self, alloc_frame, pgd_frame: Optional[int] = None):
        self._alloc_frame = alloc_frame
        self.pgd_frame = alloc_frame() if pgd_frame is None else pgd_frame
        self._pgd = {}
        #: Frames owned by this tree (pgd + pte pages), for teardown.
        self.table_frames = [self.pgd_frame]

    # -- walks ------------------------------------------------------------------

    def pgd_entry_pa(self, ea: int) -> int:
        return (self.pgd_frame << PAGE_SHIFT) + pgd_index(ea) * PTE_ENTRY_BYTES

    def lookup(self, ea: int) -> PteLookup:
        """Walk the tree for ``ea``; never allocates."""
        pte_page = self._pgd.get(pgd_index(ea))
        if pte_page is None:
            return PteLookup(pte=None, load_addresses=(self.pgd_entry_pa(ea),))
        index = pte_index(ea)
        pte = pte_page.entries.get(index)
        return PteLookup(
            pte=pte,
            load_addresses=(self.pgd_entry_pa(ea), pte_page.entry_pa(index)),
        )

    def set_pte(self, ea: int, pte: LinuxPte) -> None:
        """Install a leaf PTE, allocating the middle page if needed."""
        directory = pgd_index(ea)
        pte_page = self._pgd.get(directory)
        if pte_page is None:
            pte_page = _PtePage(self._alloc_frame())
            self._pgd[directory] = pte_page
            self.table_frames.append(pte_page.frame_pfn)
        pte_page.entries[pte_index(ea)] = pte

    def clear_pte(self, ea: int) -> Optional[LinuxPte]:
        """Remove a leaf PTE; returns it (or None if absent)."""
        pte_page = self._pgd.get(pgd_index(ea))
        if pte_page is None:
            return None
        return pte_page.entries.pop(pte_index(ea), None)

    # -- iteration ---------------------------------------------------------------

    def mapped_pages(self) -> Iterator[Tuple[int, LinuxPte]]:
        """Yield ``(ea_page_base, pte)`` for every present mapping."""
        for directory, pte_page in sorted(self._pgd.items()):
            for index, pte in sorted(pte_page.entries.items()):
                if pte.present:
                    yield (directory << PGD_SHIFT) | (index << PAGE_SHIFT), pte

    def mapped_range(self, start: int, end: int) -> Iterator[Tuple[int, LinuxPte]]:
        """Present mappings whose page base lies in ``[start, end)``."""
        if start >= end:
            return
        first_dir, last_dir = pgd_index(start), pgd_index(end - 1)
        for directory in range(first_dir, last_dir + 1):
            pte_page = self._pgd.get(directory)
            if pte_page is None:
                continue
            base = directory << PGD_SHIFT
            for index, pte in sorted(pte_page.entries.items()):
                ea = base | (index << PAGE_SHIFT)
                if start <= ea < end and pte.present:
                    yield ea, pte

    def count_mapped(self) -> int:
        return sum(1 for _ in self.mapped_pages())

    def release_frames(self, free_frame) -> int:
        """Give every table frame back (process teardown)."""
        released = 0
        for frame in self.table_frames:
            free_frame(frame)
            released += 1
        self.table_frames = []
        self._pgd = {}
        return released


def page_base(ea: int) -> int:
    """Round an EA down to its page base."""
    return ea & ~(PAGE_SIZE - 1)


def pages_spanned(start: int, length: int) -> int:
    """Number of pages a byte range touches."""
    if length <= 0:
        return 0
    first = page_base(start)
    last = page_base(start + length - 1)
    return ((last - first) >> PAGE_SHIFT) + 1


def check_page_aligned(value: int, what: str) -> None:
    if value & (PAGE_SIZE - 1):
        raise KernelPanic(f"{what} not page aligned: {value:#x}")
