"""Hash-table reload: installing a PTE after a miss (§7's replacement study).

The reload code "first looks for an invalid slot ... failing that, chose
an arbitrary PTE to replace".  Every reload and every evict is counted
into the hardware monitor, because the evict-to-reload ratio (>90%
without idle reclaim, ~30% with it) is one of §7's headline results.

This module also implements the design the paper *considered and
rejected*: keeping a zombie list and scavenging the table "when hash
table space became scarce".  With ``on_demand_scavenge`` enabled, a
reload that has to evict first performs a synchronous scan clearing
zombie PTEs — recovering space, but making reload latency spiky, which
is exactly why the authors moved the work into the idle task
("performance would also be inconsistent if we had to occasionally scan
the hash table").
"""

from __future__ import annotations

from repro.hw.pte import HashPte, PP_RO, PP_RW, WIMG_CACHE_INHIBIT
from repro.kernel.pagetable import LinuxPte

#: Slots scanned by one on-demand scavenge burst — just enough to find
#: space, the way the rejected design would have worked; the table
#: therefore stays nearly full and the bursts keep recurring.
SCAVENGE_SLOTS = 512
#: Instruction cycles per slot examined during a scavenge.
SCAVENGE_CYCLES_PER_SLOT = 3


def hash_pte_from_linux(vsid: int, page_index: int, pte: LinuxPte) -> HashPte:
    """Translate a Linux leaf PTE into an architected hash-table PTE."""
    return HashPte(
        vsid=vsid,
        page_index=page_index,
        rpn=pte.pfn,
        valid=True,
        referenced=True,
        changed=pte.dirty,
        wimg=WIMG_CACHE_INHIBIT if pte.cache_inhibited else 0,
        pp=PP_RW if pte.writable else PP_RO,
    )


class HtabReloader:
    """Puts PTEs into the hash table with full event accounting."""

    def __init__(self, kernel):
        self.kernel = kernel
        self.machine = kernel.machine
        self._scavenge_cursor = 0
        self.scavenge_bursts = 0

    def install(self, vsid: int, page_index: int, linux_pte: LinuxPte) -> int:
        """Insert a PTE; returns cycles charged.

        Counts ``htab_reload`` and, when a live PTE had to be replaced,
        ``htab_evict`` on the machine monitor.
        """
        pte = hash_pte_from_linux(vsid, page_index, linux_pte)
        event = self.machine.walker.insert(pte)
        monitor = self.machine.monitor
        monitor.count("htab_reload")
        cycles = event["cycles"]
        if event["evicted"]:
            monitor.count("htab_evict")
            if self.kernel.config.on_demand_scavenge:
                cycles += self._scavenge()
        return cycles

    def _scavenge(self) -> int:
        """The rejected design: synchronously sweep for zombies."""
        machine = self.machine
        htab = machine.htab
        start = self._scavenge_cursor
        cycles = SCAVENGE_CYCLES_PER_SLOT * SCAVENGE_SLOTS
        cycles += machine.walker.charge_scan_window(start, SCAVENGE_SLOTS)
        zombies = htab.zombie_flats(
            start, SCAVENGE_SLOTS, self.kernel.vsid_allocator.is_live
        )
        for flat in zombies:
            htab.invalidate_slot(flat)
            machine.monitor.count("zombie_reclaimed")
            cycles += 2
        self._scavenge_cursor = (start + SCAVENGE_SLOTS) % htab.slots
        self.scavenge_bursts += 1
        machine.monitor.count("scavenge_burst")
        machine.clock.add(cycles, "scavenge")
        if machine.tracer is not None:
            machine.tracer.complete(
                "scavenge-burst", "mmu", cycles,
                {"slots": SCAVENGE_SLOTS},
            )
        return cycles
