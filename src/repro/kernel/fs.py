"""A small file layer with a page cache.

Enough of a filesystem to drive the paper's workloads: the kernel-compile
benchmark's "mix of process creation, file I/O, and computation" (§4),
LmBench's file-reread point, and executable images for exec().

Files are backed by page-cache frames; a cold read costs a disk wait the
scheduler spends in the idle task (which is precisely when §7/§9 idle
work happens), a warm read is a kernel-to-user copy charged line by line
through the cache model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.errors import SyscallError
from repro.params import PAGE_SHIFT, PAGE_SIZE

#: Average disk service time per page in the late-90s parts, amortized
#: over readahead.  Converted to cycles at each machine's clock.
DISK_READ_PAGE_US = 80.0

#: Page-cache lookup plus generic-file-read bookkeeping per page.
FS_PER_PAGE_CYCLES = 120


@dataclass
class File:
    """One file: a name, a size, and its page-cache residency."""

    name: str
    size: int
    #: file page number -> physical frame
    cached: Dict[int, int] = field(default_factory=dict)
    #: Executable images are wired: their frames are never reclaimed and
    #: are mapped shared into processes.
    wired: bool = False

    @property
    def pages(self) -> int:
        return (self.size + PAGE_SIZE - 1) // PAGE_SIZE


class FileSystem:
    """The kernel's file table and page cache."""

    def __init__(self, kernel):
        self.kernel = kernel
        self._files: Dict[str, File] = {}
        self.disk_reads = 0
        self.cache_hits = 0

    # -- namespace -----------------------------------------------------------

    def create(self, name: str, size: int, wired: bool = False) -> File:
        if name in self._files:
            raise SyscallError("create", f"file exists: {name}")
        if size <= 0:
            raise SyscallError("create", f"bad size for {name}: {size}")
        file = File(name=name, size=size, wired=wired)
        self._files[name] = file
        return file

    def lookup(self, name: str) -> File:
        file = self._files.get(name)
        if file is None:
            raise SyscallError("open", f"no such file: {name}")
        return file

    def exists(self, name: str) -> bool:
        return name in self._files

    # -- the page cache ---------------------------------------------------------

    def page_frame(self, file: File, page: int) -> Tuple[int, int]:
        """Frame for one file page: ``(pfn, disk_wait_cycles)``.

        A cold page allocates a frame and reports the disk wait the
        caller must sleep for; a warm page costs nothing here.
        """
        if page >= file.pages:
            raise SyscallError("read", f"read past EOF of {file.name}")
        pfn = file.cached.get(page)
        if pfn is not None:
            self.cache_hits += 1
            return pfn, 0
        pfn = self.kernel.palloc.get_free_page(zeroed=False)
        file.cached[page] = pfn
        self.disk_reads += 1
        wait = self.kernel.machine.spec.us_to_cycles(DISK_READ_PAGE_US)
        return pfn, wait

    def prefault(self, name: str) -> int:
        """Pull a whole file into the page cache (no waits charged).

        Used at boot to stage executable images, mirroring a warm system.
        """
        file = self.lookup(name)
        loaded = 0
        for page in range(file.pages):
            if page not in file.cached:
                file.cached[page] = self.kernel.palloc.get_free_page(zeroed=False)
                loaded += 1
        return loaded

    def evict_file(self, name: str) -> int:
        """Drop a file's cached pages (to force cold reads in tests)."""
        file = self.lookup(name)
        dropped = 0
        for page, pfn in list(file.cached.items()):
            self.kernel.palloc.free_page(pfn)
            del file.cached[page]
            dropped += 1
        return dropped

    # -- read path -----------------------------------------------------------------

    def read(
        self,
        task,
        name: str,
        offset: int,
        length: int,
        user_buffer: Optional[int] = None,
    ) -> Tuple[int, int]:
        """Copy ``length`` bytes to the user; returns ``(bytes, disk_wait)``.

        Charges the per-page bookkeeping and the line-by-line copy through
        the cache model.  ``disk_wait`` is the total cycles the task must
        sleep for cold pages (the scheduler turns it into idle time).
        """
        file = self.lookup(name)
        if offset >= file.size:
            return 0, 0
        length = min(length, file.size - offset)
        kernel = self.kernel
        machine = kernel.machine
        total_wait = 0
        copied = 0
        while copied < length:
            page = (offset + copied) >> PAGE_SHIFT
            in_page = min(
                length - copied, PAGE_SIZE - ((offset + copied) & (PAGE_SIZE - 1))
            )
            pfn, wait = self.page_frame(file, page)
            total_wait += wait
            machine.clock.add(FS_PER_PAGE_CYCLES, "fs")
            kernel.touch_kernel("fs")
            lines = max(1, (in_page + machine.dcache.line_size - 1)
                        // machine.dcache.line_size)
            src_ea = kernel.kernel_ea_for_frame(pfn)
            if user_buffer is None:
                # Reader discards (lmbench-style bandwidth read): kernel
                # still streams the source through the cache.
                kernel.kernel_copy_lines(src_ea, None, lines)
            else:
                kernel.kernel_copy_lines(src_ea, user_buffer + copied, lines)
            copied += in_page
        return copied, total_wait
