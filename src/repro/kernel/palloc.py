"""Physical page allocation, including §9's pre-cleared page list.

``get_free_page(zeroed=True)`` is the path the paper instruments: the
original kernel zeroes the page inline, through the data cache, at
allocation time; the §9 optimization has the idle task pre-clear pages
(cache-inhibited) onto a lock-free list that ``get_free_page`` checks
first ("the only overhead is a check to see if there are any pre-cleared
pages available").

Zeroing costs are charged through the machine's data cache so the
pollution effects are real: an inline clear brings 128 lines of a page
nobody will read into the cache.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.errors import KernelPanic, OutOfMemoryError
from repro.params import (
    LINES_PER_PAGE,
    LINE_CLEAR_CYCLES,
    PAGE_SHIFT,
    PRECLEARED_CHECK_CYCLES,
)


class PageAllocator:
    """Free-list allocator over a contiguous physical frame range."""

    def __init__(self, machine, first_pfn: int, last_pfn: int):
        if first_pfn > last_pfn:
            raise KernelPanic(
                f"empty allocator range: {first_pfn}..{last_pfn}"
            )
        self.machine = machine
        self.first_pfn = first_pfn
        self.last_pfn = last_pfn
        self._free = deque(range(first_pfn, last_pfn + 1))
        self._allocated = set()
        #: §9's lock-free list of pages the idle task already cleared.
        self._precleared = deque()
        self.total_frames = last_pfn - first_pfn + 1
        # Statistics.
        self.allocations = 0
        self.inline_clears = 0
        self.precleared_hits = 0

    # -- core allocation ---------------------------------------------------------

    def alloc_frame(self) -> int:
        """Allocate one frame without zeroing (page-table pages etc.)."""
        pfn = self._pop_free()
        self._allocated.add(pfn)
        self.allocations += 1
        return pfn

    def _pop_free(self) -> int:
        while self._precleared and not self._free:
            # Pre-cleared pages are still free pages; reclaim them when
            # the plain free list runs dry.
            self._free.append(self._precleared.popleft())
        if not self._free:
            raise OutOfMemoryError(
                f"out of physical pages ({self.total_frames} frames)"
            )
        return self._free.popleft()

    def get_free_page(self, zeroed: bool = True) -> int:
        """The kernel's page-allocation entry point (§9's hot path).

        Returns a PFN.  When a zeroed page is requested, a pre-cleared
        page is used if available; otherwise the page is cleared inline
        through the data cache, exactly the cost the idle-task
        optimization removes.
        """
        self.allocations += 1
        self.machine.clock.add(PRECLEARED_CHECK_CYCLES, "palloc")
        if zeroed and self._precleared:
            pfn = self._precleared.popleft()
            self._allocated.add(pfn)
            self.precleared_hits += 1
            self.machine.monitor.count("precleared_page_used")
            if self.machine.sanitizer is not None:
                self.machine.sanitizer.check_precleared_pop(pfn)
            return pfn
        pfn = self._pop_free()
        self._allocated.add(pfn)
        if zeroed:
            self.inline_clears += 1
            self.clear_page(pfn, inhibited=False, category="palloc")
        return pfn

    def free_page(self, pfn: int) -> None:
        if pfn not in self._allocated:
            raise KernelPanic(f"double free of frame {pfn}")
        self._allocated.remove(pfn)
        self._free.append(pfn)

    # -- clearing ----------------------------------------------------------------

    def clear_page(self, pfn: int, inhibited: bool, category: str) -> int:
        """Zero one frame, charging per-line store costs.

        ``inhibited=True`` is the §9 cache-bypassing clear: every store
        costs a memory access but the cache contents survive.
        """
        base = pfn << PAGE_SHIFT
        cache = self.machine.dcache
        cycles = LINES_PER_PAGE * LINE_CLEAR_CYCLES
        access_cycles, _ = cache.access_page_lines(
            base, 0, LINES_PER_PAGE, write=True, inhibited=inhibited
        )
        cycles += access_cycles
        self.machine.clock.add(cycles, category)
        if self.machine.sanitizer is not None:
            self.machine.sanitizer.note_page_cleared(pfn)
        return cycles

    # -- the idle task's side ------------------------------------------------------

    def pop_free_for_preclear(self) -> Optional[int]:
        """Idle task takes a dirty free page to clear (None if none left)."""
        if not self._free:
            return None
        return self._free.popleft()

    def push_precleared(self, pfn: int) -> None:
        if self.machine.sanitizer is not None:
            self.machine.sanitizer.check_precleared_push(pfn)
        self._precleared.append(pfn)
        self.machine.monitor.count("pages_precleared")

    def return_uncleared(self, pfn: int) -> None:
        """Idle task was preempted before finishing; page stays dirty."""
        self._free.appendleft(pfn)

    # -- introspection ---------------------------------------------------------------

    def free_count(self) -> int:
        return len(self._free) + len(self._precleared)

    def precleared_count(self) -> int:
        return len(self._precleared)

    def precleared_pages(self) -> tuple:
        """Snapshot of the pre-cleared list (for the sanitizer)."""
        return tuple(self._precleared)

    def allocated_count(self) -> int:
        return len(self._allocated)

    def is_allocated(self, pfn: int) -> bool:
        return pfn in self._allocated
