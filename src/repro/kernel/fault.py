"""TLB-miss and hash-table-miss handlers (§6).

Three handler generations from the paper, selected by ``KernelConfig``:

* **C handlers** (the original): on every miss the kernel re-enables the
  MMU, saves full state and calls C code — ``C_HANDLER_EXTRA_CYCLES``
  plus real state-save stores through the data cache.

* **Fast assembly handlers** (§6.1): run MMU-off, touch only the four
  swapped registers, hand-scheduled.  Only the architected interrupt
  floor (32 cycles on the 603) plus the actual table probes remain.

* **No-hash-table reload** (§6.2, 603 only): the handler goes straight
  to the Linux PTE tree — "three loads in the worst case" — and never
  touches the hash table at all.

On the 604 the hardware has already searched the hash table before the
handler runs, so the handler's job is always: walk the PTE tree, insert
into the hash table (so the next hardware walk hits), reload the TLB.
"""

from __future__ import annotations

from repro.hw.machine import AccessKind, MachineModel, RefillResult
from repro.hw.tlb import TlbEntry
from repro.params import (
    C_HANDLER_EXTRA_CYCLES,
    KERNELBASE,
)

#: Instruction cycles of the hand-scheduled fast path beyond the
#: architected interrupt floor (register swap is free; a few ALU ops).
FAST_HANDLER_BODY_CYCLES = 10

#: Cache lines of kernel stack the C handler's state save touches.
C_HANDLER_STATE_LINES = 6

#: Software emulation of the hash search costs a couple of instructions
#: per PTE examined on top of the memory access itself.
SW_PROBE_CYCLES = 2


class MissHandlers:
    """Builds the refill handler the machine invokes on misses."""

    def __init__(self, kernel):
        self.kernel = kernel
        self.machine: MachineModel = kernel.machine
        self.config = kernel.config

    # -- cost helpers ------------------------------------------------------------

    def _handler_overhead(self) -> int:
        """Cycles beyond the interrupt floor, per handler generation."""
        if self.config.fast_handlers:
            return FAST_HANDLER_BODY_CYCLES
        # The original C handler: MMU back on, full state save (real
        # stores through the data cache), dispatch.
        cycles = C_HANDLER_EXTRA_CYCLES
        stack_base = self.kernel.kernel_stack_pa
        for line in range(C_HANDLER_STATE_LINES):
            cycles += self.machine.dcache.access(
                stack_base + line * self.machine.dcache.line_size, write=True
            )
        return cycles

    def _charge_pte_tree_walk(self, mm, ea: int):
        """Walk the Linux tree, charging its loads as cache accesses."""
        lookup = mm.page_table.lookup(ea)
        cycles = 0
        inhibited = not self.config.cache_page_tables
        # Load 1: the pgd base out of the task struct.
        cycles += self.machine.dcache.access(
            self.kernel.task_struct_pa, write=False, inhibited=inhibited
        )
        # Loads 2..3: pgd entry, then pte entry.
        for pa in lookup.load_addresses:
            cycles += self.machine.dcache.access(
                pa, write=False, inhibited=inhibited
            )
        return lookup.pte, cycles

    # -- the handler proper ---------------------------------------------------------

    def refill(
        self,
        machine: MachineModel,
        ea: int,
        kind: AccessKind,
        write: bool,
        vsid: int,
        page_index: int,
    ) -> RefillResult:
        """Resolve a miss the hardware could not.

        Invoked on every TLB miss on the 603, and on hash-table misses on
        the 604 (hardware already searched the table).
        """
        cycles = self._handler_overhead()
        mm = self.kernel.mm_for_address(ea)

        # 603 with the hash table retained (§6.2's "before"): emulate the
        # 604 by searching the hash table in software first.
        if not machine.spec.hardware_tablewalk and self.config.use_htab_on_603:
            machine.monitor.count("htab_search")
            result, search_cycles = machine.walker.charged_search(
                vsid,
                page_index,
                cycles_per_ref=SW_PROBE_CYCLES,
                inhibited=not self.config.cache_page_tables,
            )
            cycles += search_cycles
            if result.found:
                machine.monitor.count("htab_hit")
                pte = result.pte
                pte.referenced = True
                if write:
                    pte.changed = True
                self._trace_refill(ea, "htab", cycles)
                return RefillResult(
                    entry=self._tlb_entry(ea, vsid, page_index, pte.rpn,
                                          pte.pp != 0b11, pte.cache_inhibited),
                    cycles=cycles,
                )
            machine.monitor.count("htab_miss")

        # The Linux PTE tree is the source of truth.
        resolution = "tree"
        linux_pte, walk_cycles = self._charge_pte_tree_walk(mm, ea)
        cycles += walk_cycles
        if linux_pte is None or not linux_pte.present:
            linux_pte, fault_cycles = self.kernel.handle_page_fault(ea, write)
            cycles += fault_cycles
            resolution = "fault"
        linux_pte.accessed = True
        if write:
            linux_pte.dirty = True

        # Feed the hash table when this machine/config uses one.
        if self._uses_htab():
            cycles += self.kernel.reloader.install(vsid, page_index, linux_pte)

        self._trace_refill(ea, resolution, cycles)
        return RefillResult(
            entry=self._tlb_entry(
                ea,
                vsid,
                page_index,
                linux_pte.pfn,
                linux_pte.writable,
                linux_pte.cache_inhibited,
            ),
            cycles=cycles,
        )

    def _trace_refill(self, ea: int, resolution: str, cycles: int) -> None:
        if self.machine.tracer is not None:
            self.machine.tracer.complete(
                "sw-refill", "mmu", cycles,
                {"ea": hex(ea), "resolution": resolution},
            )

    def _uses_htab(self) -> bool:
        """604 hardware requires the hash table; the 603 only if configured."""
        if self.machine.spec.hardware_tablewalk:
            return True
        return self.config.use_htab_on_603

    @staticmethod
    def _tlb_entry(ea, vsid, page_index, pfn, writable, cache_inhibited):
        return TlbEntry(
            vsid=vsid,
            page_index=page_index,
            ppn=pfn,
            writable=writable,
            cache_inhibited=cache_inhibited,
            is_kernel=ea >= KERNELBASE,
        )
