"""Run queues and the context-switch path.

The context switch is one of the paper's headline metrics (33% faster
with the §6.1 handlers; 6 µs vs 28 µs optimized-vs-not in Table 3).  Its
cost here is the fixed save/restore path, the 16 segment-register loads
(how an address space is installed on PPC), the kernel-text footprint of
the switch code, and — implicitly — the TLB and cache misses the new
task takes when it resumes, which the machine model charges as they
happen.

SMP: each CPU owns a run queue and a timer heap.  A task's home CPU is
fixed at creation (round-robin placement, no migration), so the set of
tasks a CPU ever runs — and therefore every per-CPU cycle total — is a
pure function of spawn order.  With one CPU this degenerates to the
original single-queue scheduler, charge for charge.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import List, Optional, Tuple

from repro.errors import KernelPanic
from repro.kernel.task import Task, TaskState
from repro.params import SCHED_PICK_CYCLES


class Scheduler:
    """Per-CPU round-robin run queues plus per-CPU timer queues."""

    def __init__(self, kernel):
        self.kernel = kernel
        n_cpus = kernel.machine.n_cpus
        self._queues: List[deque] = [deque() for _ in range(n_cpus)]
        #: Per-CPU min-heaps of (wakeup_cycle, sequence, task) for timed
        #: sleeps (disk completions).
        self._timers: List[List[Tuple[int, int, Task]]] = [
            [] for _ in range(n_cpus)
        ]
        self._timer_seq = 0
        self._next_cpu = 0

    # -- placement -----------------------------------------------------------

    def assign_cpu(self) -> int:
        """Pick the home CPU for a new task (deterministic round-robin)."""
        cpu = self._next_cpu
        self._next_cpu = (self._next_cpu + 1) % len(self._queues)
        return cpu

    # -- run queue -----------------------------------------------------------

    def enqueue(self, task: Task) -> None:
        if task.state is TaskState.EXITED:
            raise KernelPanic(f"enqueue of exited task {task.pid}")
        task.state = TaskState.READY
        self._queues[task.cpu].append(task)

    def dequeue(self, task: Task) -> None:
        try:
            self._queues[task.cpu].remove(task)
        except ValueError:
            pass

    def pick_next(self) -> Optional[Task]:
        """Pop the current CPU's next runnable task, charging the cost."""
        self.kernel.machine.clock.add(SCHED_PICK_CYCLES, "sched")
        queue = self._queues[self.kernel.machine.current_cpu]
        while queue:
            task = queue.popleft()
            if task.state is not TaskState.EXITED:
                return task
        return None

    def runnable_count(self) -> int:
        return sum(
            1
            for queue in self._queues
            for task in queue
            if task.state is not TaskState.EXITED
        )

    # -- timed sleeps (I/O completion) ----------------------------------------

    def sleep_until(self, task: Task, wakeup_cycle: int) -> None:
        task.state = TaskState.SLEEPING
        self._timer_seq += 1
        heapq.heappush(
            self._timers[task.cpu], (wakeup_cycle, self._timer_seq, task)
        )
        tracer = self.kernel.machine.tracer
        if tracer is not None:
            tracer.instant(
                "sleep", "sched",
                {"pid": task.pid, "until_cycle": wakeup_cycle},
            )

    def next_wakeup(self, cpu: Optional[int] = None) -> Optional[int]:
        """Earliest pending deadline on ``cpu`` (default: current CPU)."""
        if cpu is None:
            cpu = self.kernel.machine.current_cpu
        timers = self._timers[cpu]
        while timers and timers[0][2].state is TaskState.EXITED:
            heapq.heappop(timers)
        if not timers:
            return None
        return timers[0][0]

    def expire_timers(self, now: int, cpu: Optional[int] = None) -> List[Task]:
        """Wake every sleeper on ``cpu`` whose deadline has passed."""
        if cpu is None:
            cpu = self.kernel.machine.current_cpu
        timers = self._timers[cpu]
        woken = []
        while timers and timers[0][0] <= now:
            _deadline, _seq, task = heapq.heappop(timers)
            if task.state is TaskState.SLEEPING:
                self.enqueue(task)
                woken.append(task)
        tracer = self.kernel.machine.tracer
        if tracer is not None:
            for task in woken:
                tracer.instant("wakeup", "sched", {"pid": task.pid})
        return woken

    def has_timers(self) -> bool:
        return any(
            self.next_wakeup(cpu) is not None
            for cpu in range(len(self._timers))
        )
