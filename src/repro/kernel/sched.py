"""Run queue and context-switch path.

The context switch is one of the paper's headline metrics (33% faster
with the §6.1 handlers; 6 µs vs 28 µs optimized-vs-not in Table 3).  Its
cost here is the fixed save/restore path, the 16 segment-register loads
(how an address space is installed on PPC), the kernel-text footprint of
the switch code, and — implicitly — the TLB and cache misses the new
task takes when it resumes, which the machine model charges as they
happen.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import List, Optional, Tuple

from repro.errors import KernelPanic
from repro.kernel.task import Task, TaskState
from repro.params import SCHED_PICK_CYCLES


class Scheduler:
    """Round-robin run queue plus a timer/event queue for sleepers."""

    def __init__(self, kernel):
        self.kernel = kernel
        self._queue: deque = deque()
        #: Min-heap of (wakeup_cycle, sequence, task) for timed sleeps
        #: (disk completions).
        self._timers: List[Tuple[int, int, Task]] = []
        self._timer_seq = 0

    # -- run queue -----------------------------------------------------------

    def enqueue(self, task: Task) -> None:
        if task.state is TaskState.EXITED:
            raise KernelPanic(f"enqueue of exited task {task.pid}")
        task.state = TaskState.READY
        self._queue.append(task)

    def dequeue(self, task: Task) -> None:
        try:
            self._queue.remove(task)
        except ValueError:
            pass

    def pick_next(self) -> Optional[Task]:
        """Pop the next runnable task, charging the scheduler's cost."""
        self.kernel.machine.clock.add(SCHED_PICK_CYCLES, "sched")
        while self._queue:
            task = self._queue.popleft()
            if task.state is not TaskState.EXITED:
                return task
        return None

    def runnable_count(self) -> int:
        return sum(
            1 for task in self._queue if task.state is not TaskState.EXITED
        )

    # -- timed sleeps (I/O completion) -------------------------------------------

    def sleep_until(self, task: Task, wakeup_cycle: int) -> None:
        task.state = TaskState.SLEEPING
        self._timer_seq += 1
        heapq.heappush(self._timers, (wakeup_cycle, self._timer_seq, task))
        tracer = self.kernel.machine.tracer
        if tracer is not None:
            tracer.instant(
                "sleep", "sched",
                {"pid": task.pid, "until_cycle": wakeup_cycle},
            )

    def next_wakeup(self) -> Optional[int]:
        while self._timers and self._timers[0][2].state is TaskState.EXITED:
            heapq.heappop(self._timers)
        if not self._timers:
            return None
        return self._timers[0][0]

    def expire_timers(self, now: int) -> List[Task]:
        """Wake every sleeper whose deadline has passed."""
        woken = []
        while self._timers and self._timers[0][0] <= now:
            _deadline, _seq, task = heapq.heappop(self._timers)
            if task.state is TaskState.SLEEPING:
                self.enqueue(task)
                woken.append(task)
        tracer = self.kernel.machine.tracer
        if tracer is not None:
            for task in woken:
                tracer.instant("wakeup", "sched", {"pid": task.pid})
        return woken

    def has_timers(self) -> bool:
        return self.next_wakeup() is not None
