"""Task and address-space structures (task_struct / mm_struct).

The pieces the paper's optimizations touch directly: the per-mm VSID set
the lazy flush swaps out (§7), the VMA list that mmap/munmap edit, and
the page-table tree the miss handlers walk (§6).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

from repro.errors import KernelPanic
from repro.kernel.pagetable import TwoLevelPageTable
from repro.kernel.vsid import NUM_USER_SEGMENTS, kernel_vsids
from repro.params import PAGE_SIZE


class TaskState(enum.Enum):
    RUNNING = "running"
    READY = "ready"
    SLEEPING = "sleeping"
    EXITED = "exited"


@dataclass
class Vma:
    """One virtual memory area: [start, end), page aligned."""

    start: int
    end: int
    writable: bool = True
    #: Name of the backing file, or None for anonymous memory.
    file: Optional[str] = None
    #: File offset of the area's first byte (file-backed areas).
    file_offset: int = 0
    name: str = "anon"
    #: Parked on the mm's mmap-reuse pool (unmapped from the process's
    #: point of view, but translations deliberately left live so a
    #: matching re-mmap can skip the shootdown — arXiv 2409.10946).
    pooled: bool = False

    def __post_init__(self):
        if self.start & (PAGE_SIZE - 1) or self.end & (PAGE_SIZE - 1):
            raise KernelPanic(
                f"VMA not page aligned: {self.start:#x}..{self.end:#x}"
            )
        if self.start >= self.end:
            raise KernelPanic(f"empty VMA: {self.start:#x}..{self.end:#x}")

    def contains(self, ea: int) -> bool:
        return self.start <= ea < self.end

    @property
    def pages(self) -> int:
        return (self.end - self.start) // PAGE_SIZE


class Mm:
    """An address space: page table, VSIDs, VMAs."""

    def __init__(self, page_table: TwoLevelPageTable, user_vsids: List[int]):
        if len(user_vsids) != NUM_USER_SEGMENTS:
            raise KernelPanic(
                f"expected {NUM_USER_SEGMENTS} user VSIDs, got {len(user_vsids)}"
            )
        self.page_table = page_table
        self.user_vsids = list(user_vsids)
        self.vmas: List[Vma] = []
        #: §5.1's per-process framebuffer BAT (set by sys_ioremap_bat).
        self.io_bat = None
        #: Resident page frames owned by this mm: ea_page_base -> pfn.
        self.resident = {}
        #: Frames shared with the page cache (not freed at teardown).
        self.shared_pages = set()
        #: Pooled VMAs awaiting reuse under ShootdownStrategy.MMAP_REUSE
        #: (oldest first; their PTEs and frames are intact on purpose).
        self.reuse_pool: List[Vma] = []

    def segment_vsids(self) -> List[int]:
        """All 16 segment-register values for this address space."""
        return list(self.user_vsids) + kernel_vsids()

    def find_vma(self, ea: int) -> Optional[Vma]:
        for vma in self.vmas:
            if vma.contains(ea):
                return vma
        return None

    def add_vma(self, vma: Vma) -> Vma:
        for existing in self.vmas:
            if vma.start < existing.end and existing.start < vma.end:
                raise KernelPanic(
                    f"overlapping VMAs: new {vma.start:#x}..{vma.end:#x} vs "
                    f"{existing.start:#x}..{existing.end:#x}"
                )
        self.vmas.append(vma)
        self.vmas.sort(key=lambda area: area.start)
        return vma

    def remove_vma(self, vma: Vma) -> None:
        self.vmas.remove(vma)

    @property
    def rss(self) -> int:
        return len(self.resident)


@dataclass
class Task:
    """A schedulable process."""

    pid: int
    name: str
    mm: Mm
    state: TaskState = TaskState.READY
    exit_code: Optional[int] = None
    #: Cycle timestamp of the last dispatch (for accounting only).
    last_scheduled: int = 0
    #: Per-task deterministic RNG seed used by workload trace generators.
    seed: int = 0
    #: Home CPU.  Placement is fixed at spawn/fork (round-robin) — no
    #: migration — which keeps the SMP quantum loop deterministic.
    cpu: int = 0

    def __hash__(self):
        return self.pid

    def __eq__(self, other):
        return isinstance(other, Task) and other.pid == self.pid
