"""Kernel configuration: one switch per paper optimization.

``KernelConfig.unoptimized()`` is the paper's baseline kernel;
``KernelConfig.optimized()`` enables everything the paper ships.  Each
experiment toggles exactly the flags its section discusses.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from repro.errors import ConfigError
from repro.params import DEFAULT_RANGE_FLUSH_CUTOFF


class IdlePageClearPolicy(enum.Enum):
    """§9's three page-clearing experiments plus the baseline."""

    #: No idle clearing; get_free_page() zeroes pages inline, through the
    #: cache (the original kernel).
    OFF = "off"
    #: Idle task clears pages through the cache and feeds the cleared
    #: list — the variant that made the kernel compile ~2x slower.
    CACHED_LIST = "cached_list"
    #: Idle task clears pages with the cache inhibited but does NOT feed
    #: the list — the control experiment that showed no gain or loss.
    UNCACHED_NO_LIST = "uncached_no_list"
    #: Idle task clears pages cache-inhibited and feeds the list — the
    #: winning variant.
    UNCACHED_LIST = "uncached_list"


class ShootdownStrategy(enum.Enum):
    """How a mapping change is made visible to the *other* CPUs' TLBs.

    With one CPU every strategy degenerates to the local flush and
    charges nothing extra.  The hash table is shared, so invalidating a
    PTE there is globally visible at once; only the per-CPU TLBs can go
    stale, and these strategies trade IPI traffic against deferred work
    to fix that.  Kernel-segment pages are eagerly broadcast under every
    strategy — the kernel VSIDs are loaded on all CPUs at all times, so
    deferral would be incoherent.
    """

    #: The naive SMP port: every flush IPIs every other CPU.
    BROADCAST = "broadcast"
    #: mm_cpumask-style: IPI only CPUs currently running the flushed
    #: address space (with fixed task affinity, usually none).
    TARGETED = "targeted"
    #: numaPTE-style lazy remote invalidation (arXiv 2401.15558): CPUs
    #: running the mm get a targeted IPI; every other CPU gets the
    #: invalidation queued and drains it at its next context switch.
    LAZY = "lazy"
    #: Lazy, plus mmap-reuse flush skipping (arXiv 2409.10946): munmap
    #: pools the region instead of flushing, and an mmap that reuses it
    #: revives the still-truthful translations — no flush at all.
    MMAP_REUSE = "mmap_reuse"


class VsidPolicy(enum.Enum):
    """How VSIDs are derived (§5.2 vs §7)."""

    #: VSID = PID * scatter_constant + segment (the original strategy).
    #: Lazy flushing is impossible: a process's VSIDs are fixed for life.
    PID_SCATTER = "pid_scatter"
    #: VSID from a monotonic memory-management context counter — the §7
    #: mechanism that makes VSID bumping (lazy flushes) possible.
    CONTEXT_COUNTER = "context_counter"


@dataclass(frozen=True)
class KernelConfig:
    """Every paper optimization as an independent flag."""

    #: §5.1 — map kernel text+data with a BAT pair instead of PTEs.
    bat_kernel_map: bool = False
    #: §5.1 — also BAT-map the I/O/framebuffer space (found not to help).
    bat_io_map: bool = False
    #: §6.1 — hand-scheduled assembly miss handlers (vs the original C
    #: handlers that re-enable the MMU and save full state).
    fast_handlers: bool = False
    #: §6.2 — on the 603, skip the hash table and reload the TLB straight
    #: from the Linux PTE tree.  Ignored on the 604 (hardware requires
    #: the hash table).
    use_htab_on_603: bool = True
    #: §5.2 / §7 — VSID derivation policy.
    vsid_policy: VsidPolicy = VsidPolicy.PID_SCATTER
    #: §5.2 — the scatter multiplier (tuned via the miss histogram).
    vsid_scatter_constant: int = 16
    #: §7 — lazy flushes: invalidate a whole context by bumping its VSIDs
    #: instead of searching the hash table.  Requires CONTEXT_COUNTER.
    lazy_vsid_flush: bool = False
    #: §7 — range flushes larger than this many pages invalidate the whole
    #: context (only meaningful with lazy_vsid_flush).  ``None`` disables
    #: the cutoff: ranges are always search-flushed page by page.
    range_flush_cutoff: int = DEFAULT_RANGE_FLUSH_CUTOFF
    #: §7 — idle-task reclaim of zombie hash-table entries.
    idle_zombie_reclaim: bool = False
    #: §7's *rejected* design, kept as an ablation: scavenge zombies
    #: synchronously when a reload has to evict ("clear them when hash
    #: table space became scarce") instead of in the idle task.
    on_demand_scavenge: bool = False
    #: §9 — idle-task page clearing policy.
    idle_page_clear: IdlePageClearPolicy = IdlePageClearPolicy.OFF
    #: §9 — cap on the pre-cleared stock.  ``None`` reproduces the paper:
    #: no bound, the idle task clears every free page it can.  A bound
    #: models the SMP-footnote concern about burning bus bandwidth on
    #: pages nobody will allocate soon.
    idle_preclear_target: object = None
    #: §8 — whether page-table memory (hash table + PTE tree) may allocate
    #: into the data cache.  True matches the hardware default the paper
    #: criticizes.
    cache_page_tables: bool = True
    #: §6.1's companion: optimized syscall-entry and context-switch paths
    #: (part of what separates "Linux/PPC" from "Unoptimized Linux/PPC"
    #: in Table 3).
    optimized_entry: bool = False
    #: §10.1 ablation — run the idle task with the cache inhibited.
    idle_uncached: bool = False
    #: §10.2 ablation — issue `dcbt` prefetches for the switch path's
    #: data (task struct, switch footprint) at context-switch entry, so
    #: the fills overlap the register save/restore work.
    cache_preloads: bool = False
    #: SMP — how mapping changes reach remote TLBs (no effect with one
    #: CPU: every strategy charges nothing when there are no remotes).
    shootdown_strategy: ShootdownStrategy = ShootdownStrategy.BROADCAST
    #: SMP — cap on the per-mm mmap-reuse pool (MMAP_REUSE only); the
    #: oldest region is drained when the pool would exceed it.
    mmap_reuse_max_regions: int = 8

    # -- Table 3 comparator cost model ---------------------------------------
    # The Rhapsody/MkLinux/AIX columns are modelled as cost profiles on
    # the same hardware: fixed path costs that replace the Linux ones,
    # plus Mach-style IPC overheads on the pipe path.  All None/zero for
    # the two Linux kernels (whose numbers the simulator *produces*).

    #: Override the syscall entry+exit cost (None -> optimized_entry).
    syscall_entry_cycles: object = None
    #: Override the context-switch core cost (None -> optimized_entry).
    ctxsw_cycles: object = None
    #: Extra cycles per pipe read/write (microkernel port IPC).
    pipe_op_extra_cycles: int = 0
    #: Copy multiplier on pipe data (Mach double-copies via the server).
    pipe_copy_multiplier: int = 1

    def __post_init__(self):
        if self.lazy_vsid_flush and self.vsid_policy is not VsidPolicy.CONTEXT_COUNTER:
            raise ConfigError(
                "lazy VSID flushing requires the context-counter VSID policy"
            )
        if self.vsid_scatter_constant <= 0:
            raise ConfigError("vsid_scatter_constant must be positive")
        if self.range_flush_cutoff is not None and self.range_flush_cutoff < 1:
            raise ConfigError("range_flush_cutoff must be >= 1 or None")
        if self.idle_preclear_target is not None and self.idle_preclear_target < 0:
            raise ConfigError("idle_preclear_target must be >= 0 or None")
        if self.pipe_copy_multiplier < 1:
            raise ConfigError("pipe_copy_multiplier must be >= 1")
        if self.pipe_op_extra_cycles < 0:
            raise ConfigError("pipe_op_extra_cycles must be >= 0")
        if self.mmap_reuse_max_regions < 1:
            raise ConfigError("mmap_reuse_max_regions must be >= 1")

    # -- presets the benchmarks use -------------------------------------------

    @classmethod
    def unoptimized(cls) -> "KernelConfig":
        """The original kernel: C handlers, PID VSIDs, search flushes."""
        return cls()

    @classmethod
    def optimized(cls) -> "KernelConfig":
        """Everything the paper ships enabled (the 'Linux/PPC' column)."""
        return cls(
            bat_kernel_map=True,
            fast_handlers=True,
            use_htab_on_603=False,
            vsid_policy=VsidPolicy.CONTEXT_COUNTER,
            vsid_scatter_constant=37,
            lazy_vsid_flush=True,
            range_flush_cutoff=DEFAULT_RANGE_FLUSH_CUTOFF,
            idle_zombie_reclaim=True,
            idle_page_clear=IdlePageClearPolicy.UNCACHED_LIST,
            optimized_entry=True,
        )

    def with_changes(self, **kwargs) -> "KernelConfig":
        """A modified copy (frozen dataclass helper)."""
        return replace(self, **kwargs)
