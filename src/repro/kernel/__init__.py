"""A Linux/PPC-like memory-management layer over the machine model.

Every optimization the paper studies is a :class:`~repro.kernel.config.KernelConfig`
flag, so benchmarks can reproduce the paper's one-change-at-a-time
methodology (§4): "measurements are relative to the original
(unoptimized) kernel versus only the specific optimization being
discussed".
"""

from repro.kernel.config import IdlePageClearPolicy, KernelConfig
from repro.kernel.kernel import Kernel
from repro.kernel.pagetable import LinuxPte, TwoLevelPageTable
from repro.kernel.palloc import PageAllocator
from repro.kernel.task import Mm, Task, TaskState
from repro.kernel.vsid import ContextCounterVsids, PidScatterVsids

__all__ = [
    "ContextCounterVsids",
    "IdlePageClearPolicy",
    "Kernel",
    "KernelConfig",
    "LinuxPte",
    "Mm",
    "PageAllocator",
    "PidScatterVsids",
    "Task",
    "TaskState",
    "TwoLevelPageTable",
]
