"""System-call entry costs, the kernel-footprint map, and pipes.

§5.1 measured that a third of all TLB entries belonged to the kernel.
That footprint exists because every kernel entry executes real kernel
text and touches real kernel data; this module records *which* kernel
pages each operation touches so the footprint is reproduced mechanically:
with the BAT mapping off, these touches compete for TLB slots with user
pages; with it on, they cost no TLB slots at all.

Pipes are the LmBench communication substrate: a one-page kernel buffer,
data copied in on write and out on read, with reader/writer blocking.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.errors import SyscallError
from repro.params import (
    CACHE_LINE_SIZE,
    PAGE_SIZE,
    SYSCALL_FAST_CYCLES,
    SYSCALL_SLOW_CYCLES,
)

#: (kernel text pages, text lines each, kernel data pages, data lines each)
#: touched by each operation.  Page numbers index the kernel's hot text
#: and hot data regions.  The footprint sizes are chosen so the whole hot
#: kernel set is ~30 text + ~10 data pages — which, PTE-mapped, occupies
#: roughly a third of a 603's TLB, the paper's measured footprint.
KERNEL_FOOTPRINT: Dict[str, Tuple[List[int], int, List[int], int]] = {
    "entry": ([0, 1], 5, [0, 1], 2),
    "getpid": ([2], 2, [0], 1),
    "read": ([3, 4, 5, 6], 5, [2, 3], 3),
    "write": ([7, 8, 9, 10], 5, [4, 5], 3),
    "mmap": ([11, 12, 13], 6, [6, 7], 4),
    "munmap": ([13, 14, 15], 6, [6, 7], 4),
    "brk": ([11], 4, [6], 2),
    "fork": ([16, 17, 18, 19], 8, [8, 9, 10], 5),
    "exec": ([20, 21, 22, 23], 8, [11, 12, 13], 5),
    "exit": ([24, 25], 6, [14], 2),
    "ctxsw": ([26, 27, 28], 6, [15, 16], 4),
    "fault": ([29, 30, 31], 5, [17, 18], 3),
    "pipe": ([32, 33, 34], 5, [19], 4),
    "fs": ([35, 36, 37, 38, 39], 5, [20, 21, 22], 4),
    "idle": ([40], 2, [23], 1),
}

#: Hot-set sizes implied by the table above: ~41 text + 24 data pages.
#: PTE-mapped, that is a third of a 603's 128 TLB slots — the §5.1
#: measured kernel footprint.
KERNEL_HOT_TEXT_PAGES = 41
KERNEL_HOT_DATA_PAGES = 24

#: Base instruction-path cycles per syscall body (beyond entry/exit and
#: beyond the memory traffic charged through the cache model).
SYSCALL_BODY_CYCLES: Dict[str, int] = {
    "getpid": 24,
    #: The fd-layer read/write paths (file table, locking, poll wakeups)
    #: are an order of magnitude heavier than a null syscall.
    "read": 1200,
    "write": 1200,
    #: mmap/munmap carry file lookup, vma allocation and rb-tree edits.
    "mmap": 2400,
    "munmap": 2000,
    "brk": 160,
    "fork": 1600,
    #: exec parses the ELF image and sets up the dynamic linker.
    "exec": 6000,
    "exit": 700,
    "pipe_create": 300,
}


def entry_exit_cycles(optimized: bool) -> int:
    """Syscall entry+exit path cost per kernel generation."""
    return SYSCALL_FAST_CYCLES if optimized else SYSCALL_SLOW_CYCLES


@dataclass
class Pipe:
    """A kernel pipe: one page of buffer, blocking reader/writer."""

    ident: int
    buffer_pfn: int
    capacity: int = PAGE_SIZE
    fill: int = 0
    #: Tasks blocked waiting for data / for space.
    readers_waiting: list = field(default_factory=list)
    writers_waiting: list = field(default_factory=list)
    total_bytes: int = 0

    @property
    def space(self) -> int:
        return self.capacity - self.fill

    def buffer_pa(self) -> int:
        return self.buffer_pfn * PAGE_SIZE

    def lines_for(self, nbytes: int) -> int:
        """Cache lines a copy of ``nbytes`` moves through the buffer."""
        return max(1, (nbytes + CACHE_LINE_SIZE - 1) // CACHE_LINE_SIZE)


class PipeTable:
    """Pipe namespace for the kernel."""

    def __init__(self, kernel):
        self.kernel = kernel
        self._pipes: Dict[int, Pipe] = {}
        self._next_ident = 1

    def create(self) -> Pipe:
        pfn = self.kernel.palloc.get_free_page(zeroed=False)
        pipe = Pipe(ident=self._next_ident, buffer_pfn=pfn)
        self._next_ident += 1
        self._pipes[pipe.ident] = pipe
        tracer = self.kernel.machine.tracer
        if tracer is not None:
            tracer.instant("pipe-create", "ipc", {"pipe": pipe.ident})
        return pipe

    def get(self, ident: int) -> Pipe:
        pipe = self._pipes.get(ident)
        if pipe is None:
            raise SyscallError("pipe", f"no such pipe: {ident}")
        return pipe

    def close(self, ident: int) -> None:
        pipe = self._pipes.pop(ident, None)
        if pipe is not None:
            self.kernel.palloc.free_page(pipe.buffer_pfn)
            tracer = self.kernel.machine.tracer
            if tracer is not None:
                tracer.instant("pipe-close", "ipc", {"pipe": ident})
