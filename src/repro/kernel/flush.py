"""TLB and hash-table flush strategies (§7).

The expensive baseline: invalidating a process's translation means a
hash-table *search* — "in the worst case, the search requires 16 memory
references ... for each PTE being flushed", and "it is not uncommon for
ranges of 40–110 pages to be flushed in one shot".

The lazy strategy: give the context fresh VSIDs ("just involved a reset
of the VSID") and let the stale entries rot as zombies.  The tunable
range-flush cutoff applies the lazy strategy to any range larger than
~20 pages, which is what took mmap latency from 3240 µs to 41 µs.
"""

from __future__ import annotations

from repro.hw.machine import MachineModel
from repro.params import (
    FLUSH_PTE_TREE_CYCLES,
    PAGE_SIZE,
    TLBIE_CYCLES,
    VSID_BUMP_CYCLES,
)


class FlushEngine:
    """Implements flush_page / flush_range / flush_mm per configuration."""

    def __init__(self, kernel):
        self.kernel = kernel
        self.machine: MachineModel = kernel.machine
        self.config = kernel.config

    # -- building blocks ----------------------------------------------------------

    def _uses_htab(self) -> bool:
        if self.machine.spec.hardware_tablewalk:
            return True
        return self.config.use_htab_on_603

    def _search_flush_page(self, mm, ea: int) -> int:
        """Invalidate one page the hard way: hash search + tlbie."""
        machine = self.machine
        page_index = (ea >> 12) & 0xFFFF
        vsid = mm.user_vsids[(ea >> 28) & 0xF] if ea < 0xC0000000 else None
        cycles = FLUSH_PTE_TREE_CYCLES
        if self._uses_htab() and vsid is not None:
            event = machine.walker.invalidate(vsid, page_index)
            cycles += event["cycles"]
        cycles += TLBIE_CYCLES
        machine.itlb.invalidate_page(page_index)
        machine.dtlb.invalidate_page(page_index)
        machine.clock.add(cycles, "flush")
        return cycles

    def _bump_context(self, mm) -> int:
        """The lazy whole-context invalidate: swap the mm onto new VSIDs."""
        kernel = self.kernel
        new_vsids = kernel.vsid_allocator.bump(mm.user_vsids, pid=0)
        mm.user_vsids = list(new_vsids)
        cycles = VSID_BUMP_CYCLES
        if kernel.current_task is not None and kernel.current_task.mm is mm:
            # Reload the live segment registers so the new VSIDs take
            # effect immediately (counted inside the machine call).
            self.machine.context_switch_segments(mm.segment_vsids())
        self.machine.monitor.count("vsid_bump")
        self.machine.monitor.count("flush_range_lazy")
        self.machine.clock.add(cycles, "flush")
        return cycles

    # -- public API ------------------------------------------------------------------

    def flush_page(self, mm, ea: int) -> int:
        """Invalidate a single translation (always the search path)."""
        self.machine.monitor.count("flush_range_search")
        return self._search_flush_page(mm, ea)

    def flush_range(self, mm, start: int, end: int) -> int:
        """Invalidate every translation in ``[start, end)``.

        With lazy flushing enabled and the range beyond the cutoff, the
        whole context is invalidated by a VSID bump instead (§7: "we
        fixed this problem by invalidating the whole memory management
        context of any process needing to invalidate more than a small
        set of pages").
        """
        n_pages = (end - start) >> 12
        if (
            self.config.lazy_vsid_flush
            and self.config.range_flush_cutoff is not None
            and n_pages > self.config.range_flush_cutoff
        ):
            return self._bump_context(mm)
        # The §7 baseline the paper measured at 3240 µs: "the kernel was
        # clearing the range of addresses by searching the hash table for
        # each PTE in turn" — every page of the range pays the search,
        # whether or not anything was ever mapped there.
        self.machine.monitor.count("flush_range_search")
        cycles = 0
        for ea in range(start, end, PAGE_SIZE):
            cycles += self._search_flush_page(mm, ea)
        return cycles

    def flush_mm(self, mm) -> int:
        """Invalidate an entire address space (exec / exit)."""
        if self.config.lazy_vsid_flush:
            return self._bump_context(mm)
        self.machine.monitor.count("flush_range_search")
        cycles = 0
        for ea, _pte in list(mm.page_table.mapped_pages()):
            cycles += self._search_flush_page(mm, ea)
        return cycles

    def flush_everything(self) -> int:
        """Nuclear option: used on VSID-counter wrap."""
        machine = self.machine
        cleared = machine.htab.invalidate_all()
        machine.invalidate_tlbs()
        cycles = max(cleared, 1) * 2 + TLBIE_CYCLES
        machine.clock.add(cycles, "flush")
        if hasattr(self.kernel.vsid_allocator, "reset_after_global_flush"):
            self.kernel.vsid_allocator.reset_after_global_flush()
        return cycles
