"""TLB and hash-table flush strategies (§7).

The expensive baseline: invalidating a process's translation means a
hash-table *search* — "in the worst case, the search requires 16 memory
references ... for each PTE being flushed", and "it is not uncommon for
ranges of 40–110 pages to be flushed in one shot".

The lazy strategy: give the context fresh VSIDs ("just involved a reset
of the VSID") and let the stale entries rot as zombies.  The tunable
range-flush cutoff applies the lazy strategy to any range larger than
~20 pages, which is what took mmap latency from 3240 µs to 41 µs.
"""

from __future__ import annotations

from repro.hw.machine import MachineModel
from repro.kernel.vsid import kernel_vsids
from repro.params import (
    FLUSH_PTE_TREE_CYCLES,
    KERNELBASE,
    NUM_SEGMENT_REGISTERS,
    PAGE_INDEX_MASK,
    PAGE_SHIFT,
    PAGE_SIZE,
    SEGMENT_SHIFT,
    TLBIE_CYCLES,
    VSID_BUMP_CYCLES,
)


class FlushEngine:
    """Implements flush_page / flush_range / flush_mm per configuration."""

    def __init__(self, kernel):
        self.kernel = kernel
        self.machine: MachineModel = kernel.machine
        self.config = kernel.config

    # -- building blocks ----------------------------------------------------------

    def _uses_htab(self) -> bool:
        if self.machine.spec.hardware_tablewalk:
            return True
        return self.config.use_htab_on_603

    def _flush_vsid_for(self, mm, ea: int) -> int:
        """The VSID whose translation of ``ea`` is being invalidated.

        User segments resolve through the mm's VSID set; kernel segments
        12..15 use the fixed kernel VSIDs (``mm`` may be the kernel mm,
        whose ``user_vsids`` list is empty).
        """
        segment = (ea >> SEGMENT_SHIFT) & (NUM_SEGMENT_REGISTERS - 1)
        if ea < KERNELBASE:
            return mm.user_vsids[segment]
        return kernel_vsids()[segment - 12]

    def _search_flush_page(self, mm, ea: int) -> int:
        """Invalidate one page the hard way: hash search + tlbie."""
        machine = self.machine
        page_index = (ea >> PAGE_SHIFT) & PAGE_INDEX_MASK
        vsid = self._flush_vsid_for(mm, ea)
        cycles = FLUSH_PTE_TREE_CYCLES
        if self._uses_htab():
            event = machine.walker.invalidate(vsid, page_index)
            cycles += event["cycles"]
        cycles += TLBIE_CYCLES
        machine.itlb.invalidate_page(page_index, vsid=vsid)
        machine.dtlb.invalidate_page(page_index, vsid=vsid)
        self.kernel.shootdown.page_invalidated(
            vsid, page_index, kernel_page=ea >= KERNELBASE
        )
        machine.clock.add(cycles, "flush")
        if machine.sanitizer is not None:
            machine.sanitizer.after_page_flush(mm, ea, vsid)
        if machine.tracer is not None:
            machine.tracer.complete(
                "flush-page", "flush", cycles, {"ea": hex(ea)}
            )
        return cycles

    def _bump_context(self, mm) -> int:
        """The lazy whole-context invalidate: swap the mm onto new VSIDs."""
        kernel = self.kernel
        old_vsids = list(mm.user_vsids)
        # The allocation may wrap the context counter, which triggers
        # flush_everything + renumbering of every *other* context; this
        # mm is marked in-bump so the wrap protocol leaves its numbering
        # to the allocation already in flight.
        kernel._mm_in_bump = mm
        try:
            new_vsids = kernel.vsid_allocator.bump(old_vsids, pid=0)
        finally:
            kernel._mm_in_bump = None
        mm.user_vsids = list(new_vsids)
        cycles = VSID_BUMP_CYCLES
        if kernel.current_task is not None and kernel.current_task.mm is mm:
            # Reload the live segment registers so the new VSIDs take
            # effect immediately (counted inside the machine call).
            self.machine.context_switch_segments(mm.segment_vsids())
        # Remote CPUs running this mm hold the retired VSIDs in their
        # live segment registers; the shootdown engine reloads them.
        cycles += kernel.shootdown.context_bumped(mm)
        self.machine.monitor.count("vsid_bump")
        self.machine.monitor.count("flush_range_lazy")
        self.machine.clock.add(cycles, "flush")
        if self.machine.sanitizer is not None:
            self.machine.sanitizer.after_context_bump(mm, old_vsids, new_vsids)
        if self.machine.tracer is not None:
            self.machine.tracer.complete(
                "vsid-bump", "flush", cycles, {"lazy": True}
            )
        return cycles

    # -- public API ------------------------------------------------------------------

    def flush_page(self, mm, ea: int) -> int:
        """Invalidate a single translation (always the search path)."""
        self.machine.monitor.count("flush_range_search")
        shootdown = self.kernel.shootdown
        shootdown.begin(mm)
        cycles = self._search_flush_page(mm, ea)
        return cycles + shootdown.commit()

    def flush_range(self, mm, start: int, end: int) -> int:
        """Invalidate every translation in ``[start, end)``.

        With lazy flushing enabled and the range beyond the cutoff, the
        whole context is invalidated by a VSID bump instead (§7: "we
        fixed this problem by invalidating the whole memory management
        context of any process needing to invalidate more than a small
        set of pages").
        """
        n_pages = (end - start) >> PAGE_SHIFT
        if (
            self.config.lazy_vsid_flush
            and self.config.range_flush_cutoff is not None
            and n_pages > self.config.range_flush_cutoff
        ):
            return self._bump_context(mm)
        # The §7 baseline the paper measured at 3240 µs: "the kernel was
        # clearing the range of addresses by searching the hash table for
        # each PTE in turn" — every page of the range pays the search,
        # whether or not anything was ever mapped there.
        self.machine.monitor.count("flush_range_search")
        shootdown = self.kernel.shootdown
        shootdown.begin(mm)
        cycles = 0
        for ea in range(start, end, PAGE_SIZE):
            cycles += self._search_flush_page(mm, ea)
        # One IPI round covers the whole range (batched shootdown).
        cycles += shootdown.commit()
        if self.machine.tracer is not None:
            self.machine.tracer.complete(
                "flush-range", "flush", cycles,
                {"pages": n_pages, "lazy": False},
            )
        return cycles

    def flush_mm(self, mm) -> int:
        """Invalidate an entire address space (exec / exit)."""
        if self.config.lazy_vsid_flush:
            return self._bump_context(mm)
        self.machine.monitor.count("flush_range_search")
        shootdown = self.kernel.shootdown
        shootdown.begin(mm)
        cycles = 0
        pages = 0
        for ea, _pte in list(mm.page_table.mapped_pages()):
            cycles += self._search_flush_page(mm, ea)
            pages += 1
        cycles += shootdown.commit()
        if self.machine.tracer is not None:
            self.machine.tracer.complete(
                "flush-mm", "flush", cycles,
                {"pages": pages, "lazy": False},
            )
        return cycles

    def flush_everything(self) -> int:
        """Nuclear option: drop every translation everywhere.

        Used on VSID-counter wrap, but callable at any time; the kernel's
        :meth:`~repro.kernel.kernel.Kernel.post_global_flush` runs either
        way, so the allocator restart and context renumbering can never
        drift apart from the hardware state (they previously could when
        this was invoked outside the wrap path).
        """
        machine = self.machine
        cleared = machine.htab.invalidate_all()
        machine.invalidate_tlbs()
        cycles = max(cleared, 1) * 2 + TLBIE_CYCLES
        machine.clock.add(cycles, "flush")
        cycles += self.kernel.shootdown.global_flush()
        self.kernel.post_global_flush()
        if machine.sanitizer is not None:
            machine.sanitizer.after_global_flush()
        if machine.tracer is not None:
            machine.tracer.complete(
                "flush-everything", "flush", cycles, {"cleared": cleared}
            )
        return cycles
