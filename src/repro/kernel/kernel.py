"""The kernel facade: boot, system calls, faults, switching, idle.

This is the Linux/PPC-shaped layer the paper instruments.  It owns the
machine, implements the process lifecycle (spawn/fork/exec/exit), memory
system calls (mmap/munmap/brk), pipes and file reads, installs the
TLB/hash miss handlers, and runs the idle task.  Every path charges the
cycle ledger and the hardware monitor the way §4's instrumentation
counted the real system.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import KernelPanic, SegmentFault, SyscallError
from repro.hw.machine import AccessKind, MachineModel
from repro.hw.pte import WIMG_CACHE_INHIBIT
from repro.hw.bat import BatRegister
from repro.kernel.config import KernelConfig, VsidPolicy
from repro.kernel.fault import MissHandlers
from repro.kernel.flush import FlushEngine
from repro.kernel.fs import FileSystem
from repro.kernel.idle import IdleTask
from repro.kernel.pagetable import LinuxPte, TwoLevelPageTable, page_base
from repro.kernel.palloc import PageAllocator
from repro.kernel.reload import HtabReloader
from repro.kernel.sched import Scheduler
from repro.kernel.shootdown import ShootdownEngine
from repro.kernel.syscall import (
    KERNEL_FOOTPRINT,
    PipeTable,
    SYSCALL_BODY_CYCLES,
    entry_exit_cycles,
)
from repro.kernel.task import Mm, Task, TaskState, Vma
from repro.kernel.vsid import (
    ContextCounterVsids,
    PidScatterVsids,
    kernel_vsids,
)
from repro.params import (
    CTXSW_FAST_CYCLES,
    CTXSW_SLOW_CYCLES,
    KERNELBASE,
    LINE_COPY_CYCLES,
    PAGE_SHIFT,
    PAGE_SIZE,
    PIPE_WAKEUP_CYCLES,
)

#: Kernel image: 2 MB of text+static data at the bottom of RAM.
KERNEL_IMAGE_PAGES = 512
#: Offset of the kernel's hot data region within the image.
KERNEL_DATA_OFFSET = 0x100000

#: User address-space layout (all within user segments 0..11).
USER_TEXT_BASE = 0x01000000
USER_DATA_BASE = 0x10000000
USER_MMAP_BASE = 0x40000000
USER_STACK_TOP = 0x70000000

#: I/O (framebuffer) space, in kernel segment 15.
IO_BASE_EA = 0xF8000000
IO_SIZE = 8 * 1024 * 1024

#: User-visible window for per-process ioremap'd BAT mappings (§5.1's
#: "giving each process its own data BAT entry that could be switched
#: during a context switch").  Segment 11, block-aligned.
USER_IO_WINDOW = 0xB0000000
#: The DBAT slot dedicated to the per-process I/O mapping.
USER_IO_BAT_SLOT = 2

#: Generic page-fault path cost (beyond the memory traffic it causes).
PAGE_FAULT_FAST_CYCLES = 260
PAGE_FAULT_SLOW_CYCLES = 900

#: Per-page bookkeeping during fork's address-space copy.
FORK_PER_PAGE_CYCLES = 30

#: Pages the dynamic linker remaps when a dynamically linked process
#: starts (§7: "ranges of 40 — 110 pages ... flushed in one shot").
DYNLINK_REMAP_PAGES = 48

#: Shared C library image.
LIBC_IMAGE = "lib:libc.so"
LIBC_PAGES = 64


class _KernelMm:
    """The kernel's own address space: just the direct-map page table."""

    def __init__(self, page_table: TwoLevelPageTable):
        self.page_table = page_table
        self.user_vsids: List[int] = []


class Kernel:
    """One booted instance of the simulated kernel."""

    def __init__(self, machine: MachineModel, config: KernelConfig):
        self.machine = machine
        self.config = config
        htab_first_pfn = machine.htab_base_pa >> PAGE_SHIFT
        self.palloc = PageAllocator(
            machine,
            first_pfn=KERNEL_IMAGE_PAGES,
            last_pfn=htab_first_pfn - 1,
        )
        self._build_kernel_address_space()
        self._build_vsid_allocator()
        self._program_bats()
        # Fixed kernel anchors the miss handlers touch.
        self.task_struct_pa = KERNEL_DATA_OFFSET + 0x2000
        self.kernel_stack_pa = KERNEL_DATA_OFFSET + 0x4000
        #: One running task slot per CPU (``current_task`` views the
        #: slot of the machine's current CPU).
        self._current_tasks: List[Optional[Task]] = [None] * machine.n_cpus
        self.flush = FlushEngine(self)
        self.shootdown = ShootdownEngine(self)
        self.reloader = HtabReloader(self)
        self.miss_handlers = MissHandlers(self)
        machine.install_refill_handler(self.miss_handlers.refill)
        self.scheduler = Scheduler(self)
        self.fs = FileSystem(self)
        self.pipes = PipeTable(self)
        self.idle_task = IdleTask(self)
        self.tasks: Dict[int, Task] = {}
        self._next_pid = 1
        #: The mm whose VSID bump is in flight (see FlushEngine._bump_context);
        #: a counter wrap during the bump must not renumber it.
        self._mm_in_bump: Optional[Mm] = None
        #: pid -> tasks blocked in waitpid() on that pid.
        self.exit_waiters: Dict[int, List[Task]] = {}
        # Kernel segment registers live for the whole boot, on every CPU.
        for cpu in machine.cpus:
            for index, vsid in zip(range(12, 16), kernel_vsids()):
                cpu.segments.write(index, vsid)
        # The shared C library image every dynamic exec maps.
        self.create_image(LIBC_IMAGE, LIBC_PAGES)

    # -- per-CPU current task ------------------------------------------------------

    @property
    def current_task(self) -> Optional[Task]:
        """The task running on the machine's *current* CPU."""
        return self._current_tasks[self.machine.current_cpu]

    @current_task.setter
    def current_task(self, task: Optional[Task]) -> None:
        self._current_tasks[self.machine.current_cpu] = task

    # -- boot helpers -------------------------------------------------------------

    def _build_kernel_address_space(self) -> None:
        """Direct-map all of RAM at KERNELBASE in the kernel page table."""
        self.kernel_page_table = TwoLevelPageTable(
            alloc_frame=self.palloc.alloc_frame
        )
        ram_pages = self.machine.ram_bytes >> PAGE_SHIFT
        for pfn in range(ram_pages):
            self.kernel_page_table.set_pte(
                KERNELBASE + (pfn << PAGE_SHIFT),
                LinuxPte(pfn=pfn, present=True, writable=True, user=False),
            )
        # I/O space: cache-inhibited identity mappings.
        for page in range(IO_SIZE >> PAGE_SHIFT):
            ea = IO_BASE_EA + (page << PAGE_SHIFT)
            self.kernel_page_table.set_pte(
                ea,
                LinuxPte(
                    pfn=ea >> PAGE_SHIFT,
                    present=True,
                    writable=True,
                    user=False,
                    cache_inhibited=True,
                ),
            )
        self.kernel_mm = _KernelMm(self.kernel_page_table)

    def _build_vsid_allocator(self) -> None:
        config = self.config
        if config.vsid_policy is VsidPolicy.PID_SCATTER:
            self.vsid_allocator = PidScatterVsids(config.vsid_scatter_constant)
        else:
            allocator = ContextCounterVsids(config.vsid_scatter_constant)
            allocator.on_wrap = self._on_vsid_wrap
            self.vsid_allocator = allocator

    def _on_vsid_wrap(self) -> None:
        """Context-counter exhaustion: flush the world, renumber everyone.

        All of the actual work lives in :meth:`post_global_flush`, which
        ``flush_everything`` invokes unconditionally — the wrap path and a
        direct ``flush_everything`` call follow the same protocol.
        """
        self.flush.flush_everything()

    def post_global_flush(self) -> None:
        """The single coherent protocol after a flush-everything event.

        Every translation is gone from the TLBs and hash table, so:

        * zombies are truly gone for either allocator strategy;
        * with the context counter, retired VSID numbers are safe to
          reuse — restart the counter and renumber every live context
          (reloading the live segment registers so the current task's new
          VSIDs take effect immediately).

        An mm whose bump is in flight (``_mm_in_bump``) is skipped: its
        fresh VSIDs come from the allocation that triggered the wrap.
        """
        allocator = self.vsid_allocator
        allocator.reset_after_global_flush()
        if not isinstance(allocator, ContextCounterVsids):
            # PID-derived VSIDs are fixed for the process lifetime;
            # nothing to renumber.
            return
        allocator.hard_reset()
        for task in self.tasks.values():
            if task.mm is self._mm_in_bump:
                continue
            task.mm.user_vsids = allocator.allocate(task.pid)
        # Every CPU's live segment registers hold retired VSID numbers
        # now; reload each one with its current task's fresh set.
        for cpu, task in enumerate(self._current_tasks):
            if task is not None and task.mm is not self._mm_in_bump:
                self.machine.context_switch_segments_on(
                    cpu, task.mm.segment_vsids()
                )

    def _program_bats(self) -> None:
        machine = self.machine
        if self.config.bat_kernel_map:
            # One BAT pair covers the whole 32 MB direct map: kernel
            # text, data, page tables and the hash table all translate
            # without any TLB or hash-table presence (§5.1).  BATs are
            # per-CPU registers, so boot programs every processor.
            bat = BatRegister.mapping(
                ea_base=KERNELBASE,
                pa_base=0,
                size_bytes=machine.ram_bytes,
            )
            for cpu in machine.cpus:
                cpu.bats.map_both(0, bat)
        if self.config.bat_io_map:
            io_bat = BatRegister.mapping(
                ea_base=IO_BASE_EA,
                pa_base=IO_BASE_EA,
                size_bytes=IO_SIZE,
                wimg=WIMG_CACHE_INHIBIT,
            )
            for cpu in machine.cpus:
                cpu.bats.set(1, io_bat, instruction=False)

    # -- addressing helpers -----------------------------------------------------------

    def mm_for_address(self, ea: int):
        if ea >= KERNELBASE or IO_BASE_EA <= ea:
            return self.kernel_mm
        if self.current_task is None:
            raise KernelPanic(f"user address {ea:#x} with no current task")
        return self.current_task.mm

    def kernel_ea_for_frame(self, pfn: int) -> int:
        return KERNELBASE + (pfn << PAGE_SHIFT)

    # -- kernel footprint ----------------------------------------------------------------

    def touch_kernel(self, op: str) -> None:
        """Execute one operation's kernel text/data footprint (§5.1).

        With the BAT map these accesses translate for free; without it
        they occupy TLB entries like any other page.
        """
        footprint = KERNEL_FOOTPRINT.get(op)
        if footprint is None:
            return
        text_pages, text_lines, data_pages, data_lines = footprint
        machine = self.machine
        for page in text_pages:
            machine.access_page(
                KERNELBASE + page * PAGE_SIZE,
                lines=text_lines,
                kind=AccessKind.INSTRUCTION,
                first_line=(page * 37) % 96,
            )
        for page in data_pages:
            machine.access_page(
                KERNELBASE + KERNEL_DATA_OFFSET + page * PAGE_SIZE,
                lines=data_lines,
                write=True,
                first_line=(page * 53) % 96,
            )

    def _syscall_entry(self, name: str) -> None:
        if self.config.syscall_entry_cycles is not None:
            cycles = self.config.syscall_entry_cycles
        else:
            cycles = entry_exit_cycles(self.config.optimized_entry)
        self.machine.clock.add(cycles, "syscall")
        self.machine.monitor.count("syscall")
        if self.machine.tracer is not None:
            self.machine.tracer.instant(f"syscall:{name}", "syscall")
        self.touch_kernel("entry")
        self.touch_kernel(name)
        body = SYSCALL_BODY_CYCLES.get(name)
        if body:
            self.machine.clock.add(body, "syscall")

    # -- copies ---------------------------------------------------------------------------

    def kernel_copy_lines(
        self, src_ea: Optional[int], dst_ea: Optional[int], lines: int
    ) -> int:
        """Copy ``lines`` cache lines; either side may be absent.

        Both addresses translate through the machine (kernel addresses
        use the BAT or kernel PTEs; user addresses the user's TLB
        entries), so copies exercise exactly the translation paths the
        paper's copy-heavy benchmarks (pipe bandwidth, file reread) do.
        """
        machine = self.machine
        cycles = lines * LINE_COPY_CYCLES
        machine.clock.add(cycles, "copy")
        if src_ea is not None:
            machine.access_page(src_ea, lines=lines, write=False)
        if dst_ea is not None:
            machine.access_page(dst_ea, lines=lines, write=True)
        return cycles

    # -- page faults -------------------------------------------------------------------------

    def handle_page_fault(self, ea: int, write: bool) -> Tuple[LinuxPte, int]:
        """Demand-fault one user page; returns (pte, cycles)."""
        if ea >= KERNELBASE:
            raise KernelPanic(f"kernel page missing from direct map: {ea:#x}")
        task = self.current_task
        if task is None:
            raise KernelPanic(f"page fault at {ea:#x} with no current task")
        mm = task.mm
        vma = mm.find_vma(ea)
        if vma is None:
            raise SegmentFault(ea)
        if vma.pooled:
            # Physically still mapped, but unmapped as far as the
            # process is concerned — touching it is a segfault.
            raise SegmentFault(ea, "access to pooled (unmapped) region")
        if write and not vma.writable:
            raise SegmentFault(ea, "write to read-only mapping")
        cycles = (
            PAGE_FAULT_FAST_CYCLES
            if self.config.optimized_entry
            else PAGE_FAULT_SLOW_CYCLES
        )
        self.touch_kernel("fault")
        base = page_base(ea)
        if vma.file is not None:
            file = self.fs.lookup(vma.file)
            page = (base - vma.start + vma.file_offset) >> PAGE_SHIFT
            pfn, wait = self.fs.page_frame(file, page)
            # Executable images are staged into the page cache at
            # creation, so faults on them never wait for the disk.
            cycles += wait
            mm.shared_pages.add(pfn)
        else:
            pfn = self.palloc.get_free_page(zeroed=True)
        pte = LinuxPte(
            pfn=pfn,
            present=True,
            writable=vma.writable and vma.file is None,
            user=True,
        )
        mm.page_table.set_pte(base, pte)
        mm.resident[base] = pfn
        self.machine.monitor.count("page_fault_minor")
        self.machine.clock.add(cycles, "fault")
        if self.machine.tracer is not None:
            self.machine.tracer.complete(
                "page-fault", "vm", cycles,
                {"ea": hex(ea), "write": write},
            )
        return pte, cycles

    # -- user memory access -----------------------------------------------------------------

    def user_access(
        self,
        task: Task,
        ea: int,
        lines: int = 1,
        write: bool = False,
        kind: AccessKind = AccessKind.DATA,
        first_line: int = 0,
    ) -> int:
        """One page-visit by a user task (must be current)."""
        if task is not self.current_task:
            raise KernelPanic(
                f"task {task.pid} accessed memory while not current"
            )
        return self.machine.access_page(
            ea, lines=lines, write=write, kind=kind, first_line=first_line
        )

    # -- context switching -------------------------------------------------------------------

    def switch_to(self, task: Task) -> int:
        """Full context-switch path onto ``task``."""
        if task.state is TaskState.EXITED:
            raise KernelPanic(f"switch to exited task {task.pid}")
        if task is self.current_task:
            task.state = TaskState.RUNNING
            return 0
        machine = self.machine
        if self.config.ctxsw_cycles is not None:
            cycles = self.config.ctxsw_cycles
        else:
            cycles = (
                CTXSW_FAST_CYCLES
                if self.config.optimized_entry
                else CTXSW_SLOW_CYCLES
            )
        if self.config.cache_preloads:
            # §10.2: touch the switch path's data ahead of using it; the
            # fills hide under the register save/restore below.
            from repro.kernel.syscall import KERNEL_FOOTPRINT

            _text, _tl, data_pages, data_lines = KERNEL_FOOTPRINT["ctxsw"]
            for page in data_pages:
                machine.prefetch_page_lines(
                    KERNELBASE + KERNEL_DATA_OFFSET + page * PAGE_SIZE,
                    lines=data_lines,
                    first_line=(page * 53) % 96,
                )
            machine.prefetch_page_lines(
                KERNELBASE + self.task_struct_pa, lines=4
            )
        machine.clock.add(cycles, "context_switch")
        self.touch_kernel("ctxsw")
        previous = self.current_task
        if previous is not None and previous.state is TaskState.RUNNING:
            previous.state = TaskState.READY
        # Scrub this CPU's deferred remote invalidations before the new
        # task's segment registers make their VSIDs reachable again.
        self.shootdown.drain_current_cpu()
        machine.context_switch_segments(task.mm.segment_vsids())
        # §5.1's per-process framebuffer BAT: swap DBAT[2] with the task.
        if task.mm.io_bat is not None:
            machine.bats.set(USER_IO_BAT_SLOT, task.mm.io_bat,
                             instruction=False)
            machine.clock.add(3, "context_switch")
        elif previous is not None and previous.mm.io_bat is not None:
            machine.bats.clear(USER_IO_BAT_SLOT, instruction=False)
            machine.clock.add(3, "context_switch")
        machine.monitor.count("context_switch")
        task.state = TaskState.RUNNING
        task.last_scheduled = machine.clock.total
        self.current_task = task
        if machine.tracer is not None:
            machine.tracer.instant(
                "ctxsw", "sched", {"to": task.name, "pid": task.pid}
            )
        return cycles

    # -- process lifecycle ----------------------------------------------------------------------

    def create_image(self, name: str, pages: int):
        """Register an executable image and stage it in the page cache."""
        if not self.fs.exists(name):
            self.fs.create(name, pages * PAGE_SIZE, wired=True)
            self.fs.prefault(name)
        return self.fs.lookup(name)

    def _new_mm(self, pid: int) -> Mm:
        page_table = TwoLevelPageTable(alloc_frame=self.palloc.alloc_frame)
        vsids = self.vsid_allocator.allocate(pid)
        return Mm(page_table, vsids)

    def spawn(
        self,
        name: str,
        text_pages: int = 16,
        data_pages: int = 8,
        stack_pages: int = 4,
        seed: int = 0,
    ) -> Task:
        """Create a fresh process (boot-time; charges nothing)."""
        pid = self._next_pid
        self._next_pid += 1
        image = f"bin:{name}"
        self.create_image(image, text_pages)
        mm = self._new_mm(pid)
        mm.add_vma(Vma(
            start=USER_TEXT_BASE,
            end=USER_TEXT_BASE + text_pages * PAGE_SIZE,
            writable=False,
            file=image,
            name="text",
        ))
        mm.add_vma(Vma(
            start=USER_DATA_BASE,
            end=USER_DATA_BASE + data_pages * PAGE_SIZE,
            name="data",
        ))
        mm.add_vma(Vma(
            start=USER_STACK_TOP - stack_pages * PAGE_SIZE,
            end=USER_STACK_TOP,
            name="stack",
        ))
        task = Task(pid=pid, name=name, mm=mm, seed=seed,
                    cpu=self.scheduler.assign_cpu())
        self.tasks[pid] = task
        return task

    def sys_fork(self, parent: Task) -> Task:
        """fork(): duplicate the parent's address space."""
        self._syscall_entry("fork")
        # Pooled regions are unmapped from the process's point of view;
        # the child must not inherit them, so make them real first.
        self.shootdown.pool_drain(parent.mm)
        pid = self._next_pid
        self._next_pid += 1
        mm = self._new_mm(pid)
        for vma in parent.mm.vmas:
            mm.add_vma(Vma(
                start=vma.start,
                end=vma.end,
                writable=vma.writable,
                file=vma.file,
                file_offset=vma.file_offset,
                name=vma.name,
            ))
        machine = self.machine
        for base, pfn in parent.mm.resident.items():
            machine.clock.add(FORK_PER_PAGE_CYCLES, "fork")
            vma = mm.find_vma(base)
            if vma is not None and vma.file is not None:
                # Read-only file pages (text) are shared outright.
                mm.resident[base] = pfn
                mm.shared_pages.add(pfn)
                mm.page_table.set_pte(
                    base, LinuxPte(pfn=pfn, present=True, writable=False)
                )
                continue
            new_pfn = self.palloc.get_free_page(zeroed=False)
            self.kernel_copy_lines(
                self.kernel_ea_for_frame(pfn),
                self.kernel_ea_for_frame(new_pfn),
                lines=PAGE_SIZE // machine.dcache.line_size,
            )
            mm.resident[base] = new_pfn
            mm.page_table.set_pte(
                base, LinuxPte(pfn=new_pfn, present=True, writable=True)
            )
        # The write-protect pass of the real (COW) fork invalidates the
        # parent's cached translations; the flush cost is the same.
        self.flush.flush_mm(parent.mm)
        child = Task(pid=pid, name=f"{parent.name}-child", mm=mm,
                     seed=parent.seed + pid, cpu=self.scheduler.assign_cpu())
        self.tasks[pid] = child
        return child

    def sys_exec(
        self,
        task: Task,
        image_name: str,
        text_pages: int = 16,
        data_pages: int = 8,
        stack_pages: int = 4,
        dynamic: bool = True,
    ) -> None:
        """exec(): replace the address space with a new image."""
        self._syscall_entry("exec")
        image = f"bin:{image_name}"
        self.create_image(image, text_pages)
        # flush_mm + the page-release pass below already invalidate and
        # free everything pooled; just drop the pool bookkeeping.
        self.shootdown.pool_forget(task.mm)
        self.flush.flush_mm(task.mm)
        self._drop_user_pages(task.mm)
        task.mm.vmas = []
        task.mm.io_bat = None
        if task is self.current_task:
            self.machine.bats.clear(USER_IO_BAT_SLOT, instruction=False)
        task.name = image_name
        mm = task.mm
        mm.add_vma(Vma(
            start=USER_TEXT_BASE,
            end=USER_TEXT_BASE + text_pages * PAGE_SIZE,
            writable=False,
            file=image,
            name="text",
        ))
        mm.add_vma(Vma(
            start=USER_DATA_BASE,
            end=USER_DATA_BASE + data_pages * PAGE_SIZE,
            name="data",
        ))
        mm.add_vma(Vma(
            start=USER_STACK_TOP - stack_pages * PAGE_SIZE,
            end=USER_STACK_TOP,
            name="stack",
        ))
        if dynamic:
            # "when a dynamically linked Linux process is started, the
            # process must remap its address space to incorporate shared
            # libraries" (§7) — map libc, then the linker's remap flush.
            lib_base = USER_MMAP_BASE
            mm.add_vma(Vma(
                start=lib_base,
                end=lib_base + LIBC_PAGES * PAGE_SIZE,
                writable=False,
                file=LIBC_IMAGE,
                name="libc",
            ))
            self.flush.flush_range(
                mm, lib_base, lib_base + DYNLINK_REMAP_PAGES * PAGE_SIZE
            )

    def _drop_user_pages(self, mm: Mm) -> None:
        for base, pfn in list(mm.resident.items()):
            mm.page_table.clear_pte(base)
            if pfn not in mm.shared_pages:
                self.palloc.free_page(pfn)
        mm.resident.clear()
        mm.shared_pages.clear()

    def sys_exit(self, task: Task, code: int = 0) -> None:
        """exit(): tear the process down."""
        self._syscall_entry("exit")
        self.shootdown.pool_forget(task.mm)
        if not self.config.lazy_vsid_flush:
            # The original kernel scrubbed the dying context's PTEs out
            # of the hash table; the lazy kernel just retires the VSIDs.
            self.flush.flush_mm(task.mm)
        self._drop_user_pages(task.mm)
        task.mm.page_table.release_frames(self.palloc.free_page)
        self.vsid_allocator.retire(task.mm.user_vsids)
        task.state = TaskState.EXITED
        task.exit_code = code
        self.scheduler.dequeue(task)
        for cpu, current in enumerate(self._current_tasks):
            if current is task:
                self._current_tasks[cpu] = None
        del self.tasks[task.pid]
        self._wake_all(self.exit_waiters.pop(task.pid, []))

    # -- memory syscalls ------------------------------------------------------------------------

    def sys_mmap(
        self,
        task: Task,
        length: int,
        file: Optional[str] = None,
        addr: Optional[int] = None,
        writable: bool = True,
    ) -> int:
        """mmap(): map a new region; returns its address."""
        self._syscall_entry("mmap")
        if length <= 0:
            raise SyscallError("mmap", f"bad length {length}")
        pages = (length + PAGE_SIZE - 1) >> PAGE_SHIFT
        if addr is None:
            if file is None:
                # mmap-reuse fast path (arXiv 2409.10946): revive a
                # pooled region of the same shape — its translations
                # were never invalidated, so there is nothing to flush
                # and the first touches will not even fault.
                pooled = self.shootdown.pool_take(
                    task.mm, pages, writable=writable
                )
                if pooled is not None:
                    pooled.name = "mmap"
                    return pooled.start
            addr = self._find_mmap_gap(task.mm, pages)
        else:
            self.shootdown.pool_drop_overlaps(
                task.mm, addr, addr + pages * PAGE_SIZE
            )
        if file is not None:
            self.fs.lookup(file)
        task.mm.add_vma(Vma(
            start=addr,
            end=addr + pages * PAGE_SIZE,
            writable=writable and file is None,
            file=file,
            name="mmap",
        ))
        # Mapping new addresses over a region that may have stale
        # translations requires a flush of that range (§7).
        self.flush.flush_range(task.mm, addr, addr + pages * PAGE_SIZE)
        return addr

    def _find_mmap_gap(self, mm: Mm, pages: int) -> int:
        addr = USER_MMAP_BASE
        span = pages * PAGE_SIZE
        for vma in mm.vmas:
            if vma.end <= addr:
                continue
            if vma.start >= addr + span:
                break
            addr = vma.end
        if addr + span > USER_STACK_TOP:
            raise SyscallError("mmap", "address space exhausted")
        return addr

    def sys_munmap(self, task: Task, addr: int, length: int) -> None:
        """munmap(): unmap a region — §7's expensive path."""
        self._syscall_entry("munmap")
        end = addr + ((length + PAGE_SIZE - 1) & ~(PAGE_SIZE - 1))
        mm = task.mm
        vma = mm.find_vma(addr)
        if vma is None or vma.pooled or vma.start != addr or vma.end != end:
            raise SyscallError(
                "munmap", f"no matching VMA at {addr:#x}+{length:#x}"
            )
        if self.shootdown.pool_munmap(mm, vma):
            # Parked for reuse: PTEs, frames and TLB entries stay live
            # (the flush-skipping this strategy exists to measure).
            return
        self.flush.flush_range(mm, addr, end)
        self.release_user_range(mm, addr, end)
        mm.remove_vma(vma)

    def release_user_range(self, mm: Mm, start: int, end: int) -> None:
        """Release every resident frame and PTE in ``[start, end)``."""
        for base in range(start, end, PAGE_SIZE):
            pfn = mm.resident.pop(base, None)
            if pfn is not None:
                mm.page_table.clear_pte(base)
                if pfn in mm.shared_pages:
                    mm.shared_pages.discard(pfn)
                else:
                    self.palloc.free_page(pfn)

    def sys_brk(self, task: Task, grow_pages: int) -> int:
        """brk(): grow the data segment; returns the new break."""
        self._syscall_entry("brk")
        data = next(v for v in task.mm.vmas if v.name == "data")
        task.mm.remove_vma(data)
        new = Vma(
            start=data.start,
            end=data.end + grow_pages * PAGE_SIZE,
            name="data",
        )
        task.mm.add_vma(new)
        return new.end

    def sys_ioremap_bat(self, task: Task, io_offset: int, size: int) -> int:
        """§5.1's sketched mechanism: map device memory into the process
        through a dedicated, per-process data BAT.

        The mapping costs no TLB entries and no hash-table space — "so
        programs such as X do not compete constantly with other
        applications or the kernel for TLB space".  The BAT is switched
        with the process (see :meth:`switch_to`).  Returns the EA of the
        window.  ``size`` must be a power-of-two multiple of 128 KB, per
        the architecture.
        """
        self._syscall_entry("mmap")
        if io_offset % size or io_offset + size > IO_SIZE:
            raise SyscallError(
                "ioremap", f"bad I/O window: +{io_offset:#x}/{size:#x}"
            )
        bat = BatRegister.mapping(
            ea_base=USER_IO_WINDOW,
            pa_base=IO_BASE_EA + io_offset,
            size_bytes=size,
            wimg=WIMG_CACHE_INHIBIT,
        )
        task.mm.io_bat = bat
        if task is self.current_task:
            self.machine.bats.set(USER_IO_BAT_SLOT, bat, instruction=False)
            self.machine.clock.add(3, "syscall")
        return USER_IO_WINDOW

    # -- trivial and pipe syscalls ---------------------------------------------------------------

    def sys_getpid(self, task: Task) -> int:
        self._syscall_entry("getpid")
        return task.pid

    def sys_pipe(self, task: Task) -> int:
        self._syscall_entry("pipe")
        self.machine.clock.add(SYSCALL_BODY_CYCLES["pipe_create"], "syscall")
        return self.pipes.create().ident

    def sys_pipe_write(
        self, task: Task, ident: int, nbytes: int,
        user_buffer: Optional[int] = None,
        charge_entry: bool = True,
    ) -> Tuple[int, bool]:
        """Write to a pipe: ``(bytes_written, would_block)``.

        ``charge_entry=False`` is the resume-after-sleep path: the task
        blocked *inside* the syscall, so re-entry costs nothing.
        """
        if charge_entry:
            self._syscall_entry("write")
            self.touch_kernel("pipe")
            if self.config.pipe_op_extra_cycles:
                self.machine.clock.add(
                    self.config.pipe_op_extra_cycles, "ipc"
                )
        pipe = self.pipes.get(ident)
        if pipe.space == 0:
            return 0, True
        count = min(nbytes, pipe.space)
        lines = pipe.lines_for(count)
        src = user_buffer
        dst = self.kernel_ea_for_frame(pipe.buffer_pfn)
        for _ in range(self.config.pipe_copy_multiplier):
            self.kernel_copy_lines(src, dst, lines)
        pipe.fill += count
        pipe.total_bytes += count
        self._wake_all(pipe.readers_waiting)
        return count, False

    def sys_pipe_read(
        self, task: Task, ident: int, nbytes: int,
        user_buffer: Optional[int] = None,
        charge_entry: bool = True,
    ) -> Tuple[int, bool]:
        """Read from a pipe: ``(bytes_read, would_block)``.

        See :meth:`sys_pipe_write` for ``charge_entry``.
        """
        if charge_entry:
            self._syscall_entry("read")
            self.touch_kernel("pipe")
            if self.config.pipe_op_extra_cycles:
                self.machine.clock.add(
                    self.config.pipe_op_extra_cycles, "ipc"
                )
        pipe = self.pipes.get(ident)
        if pipe.fill == 0:
            return 0, True
        count = min(nbytes, pipe.fill)
        lines = pipe.lines_for(count)
        src = self.kernel_ea_for_frame(pipe.buffer_pfn)
        for _ in range(self.config.pipe_copy_multiplier):
            self.kernel_copy_lines(src, user_buffer, lines)
        pipe.fill -= count
        self._wake_all(pipe.writers_waiting)
        return count, False

    def _wake_all(self, waiters: List[Task]) -> None:
        for task in waiters:
            if task.state is TaskState.SLEEPING:
                self.scheduler.enqueue(task)
                self.machine.clock.add(PIPE_WAKEUP_CYCLES, "wakeup")
        waiters.clear()

    # -- file syscall ------------------------------------------------------------------------------

    def sys_read_file(
        self,
        task: Task,
        name: str,
        offset: int,
        length: int,
        user_buffer: Optional[int] = None,
    ) -> Tuple[int, int]:
        """read() on a file: ``(bytes, disk_wait_cycles)``."""
        self._syscall_entry("read")
        return self.fs.read(task, name, offset, length, user_buffer)

    # -- idle --------------------------------------------------------------------------------------

    def run_idle(self, window_cycles: int) -> int:
        """Run the idle task for an I/O-wait window; returns consumed."""
        self.touch_kernel("idle")
        consumed = self.idle_task.run(window_cycles)
        if self.machine.tracer is not None:
            self.machine.tracer.complete(
                "idle-window", "idle", consumed,
                {"window": window_cycles},
            )
        return consumed

    # -- diagnostics ---------------------------------------------------------------------------------

    @property
    def sanitizer(self):
        """The attached shadow-MMU sanitizer, if any (see ``repro.check``)."""
        return self.machine.sanitizer

    def live_vsid(self, vsid: int) -> bool:
        return self.vsid_allocator.is_live(vsid)

    def htab_zombie_stats(self) -> Tuple[int, int]:
        """(live, zombie) valid PTE counts in the hash table."""
        return self.machine.htab.live_and_zombie_counts(
            self.vsid_allocator.is_live
        )
