"""TLB shootdown: making mapping changes visible to remote CPUs.

The paper's flush primitives were designed on a uniprocessor, where a
``tlbie`` after the hash-table search ends the story.  On an SMP the
hash table is shared — invalidating a PTE there is globally visible at
once — but each CPU's TLB is private, so every mapping change must also
be made coherent against every *remote* TLB.  This module is that
protocol, as a cost model plus real remote-TLB edits, in four
switchable strategies (:class:`~repro.kernel.config.ShootdownStrategy`):

``BROADCAST``
    The naive SMP port: every flush IPIs every other CPU and scrubs the
    pages from its TLBs synchronously.

``TARGETED``
    ``mm_cpumask`` semantics: a user flush only IPIs CPUs currently
    running the flushed address space.  With this kernel's fixed task
    affinity that set is almost always empty, so user flushes stay
    local — the win the strategy exists to demonstrate.

``LAZY``
    numaPTE-style lazy remote invalidation (arXiv 2401.15558): CPUs
    running the mm still get a synchronous IPI (they could be using the
    translations *now*), but every other CPU just gets the invalidation
    appended to its deferred queue, which it drains — scrubbing its own
    TLBs — at its next context switch, before any task that could
    legally reference those VSIDs is installed.

``MMAP_REUSE``
    ``LAZY`` plus mmap-reuse flush skipping (arXiv 2409.10946): see the
    pooling API at the bottom.  ``munmap`` parks the region — PTEs,
    frames and TLB entries deliberately intact — and a matching same-
    process ``mmap`` revives it with no flush at all.  Safety is the
    intra-process argument from the paper: the stale translations only
    ever point at frames the pool still owns, and only the owning
    process can reach them.

Kernel-segment pages are the exception under every strategy: the kernel
VSIDs are loaded in segments 12–15 of every CPU at all times, so a
remote CPU could translate through a stale kernel entry at any instant.
Those invalidations are always broadcast synchronously.

With ``n_cpus == 1`` there are no remote TLBs: every entry point
returns before charging a cycle or counting an event, which is what
keeps single-CPU runs bit-identical to the pre-SMP simulator.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import KernelPanic
from repro.kernel.config import ShootdownStrategy
from repro.params import (
    IPI_DELIVER_CYCLES,
    IPI_SEND_CYCLES,
    IPI_WAIT_PER_TARGET_CYCLES,
    SHOOTDOWN_DEFER_PER_PAGE_CYCLES,
    SHOOTDOWN_DRAIN_PER_PAGE_CYCLES,
    TLBIE_CYCLES,
)

#: A queued invalidation: (vsid, page_index).
Key = Tuple[int, int]


class ShootdownEngine:
    """Remote-TLB coherence for one booted kernel."""

    def __init__(self, kernel):
        self.kernel = kernel
        self.machine = kernel.machine
        self.strategy = kernel.config.shootdown_strategy
        #: Per-CPU deferred invalidations, insertion-ordered and
        #: deduplicated (dict-as-ordered-set).
        self.deferred: List[Dict[Key, None]] = [
            {} for _ in range(self.machine.n_cpus)
        ]
        self._off = self.machine.n_cpus == 1
        self._batch_depth = 0
        self._batch_mm = None
        self._batch_user: Dict[Key, None] = {}
        self._batch_kernel: Dict[Key, None] = {}

    # -- the flush-side batch protocol ---------------------------------------

    def begin(self, mm) -> None:
        """Open an invalidation batch for one flush operation on ``mm``."""
        if self._off:
            return
        if self._batch_depth == 0:
            self._batch_mm = mm
        elif self._batch_mm is not mm:
            raise KernelPanic("nested shootdown batches for different mms")
        self._batch_depth += 1

    def page_invalidated(self, vsid: int, page_index: int,
                         kernel_page: bool) -> None:
        """Record one locally-invalidated translation into the batch."""
        if self._off:
            return
        if self._batch_depth == 0:
            raise KernelPanic("page_invalidated outside a shootdown batch")
        if kernel_page:
            self._batch_kernel[(vsid, page_index)] = None
        else:
            self._batch_user[(vsid, page_index)] = None

    def commit(self) -> int:
        """Close the batch: one IPI round covers every page in it.

        Returns the cycles charged to the *initiating* CPU; each target
        is charged its delivery and tlbie costs on its own ledger.
        """
        if self._off:
            return 0
        self._batch_depth -= 1
        if self._batch_depth > 0:
            return 0
        user, kern, mm = self._batch_user, self._batch_kernel, self._batch_mm
        self._batch_user, self._batch_kernel = {}, {}
        self._batch_mm = None
        if not user and not kern:
            return 0
        machine = self.machine
        me = machine.current_cpu
        eager: Dict[int, Dict[Key, None]] = {}
        local_cycles = 0
        for cpu in range(machine.n_cpus):
            if cpu == me:
                continue
            keys: Dict[Key, None] = dict(kern)
            if user:
                if self.strategy is ShootdownStrategy.BROADCAST:
                    keys.update(user)
                elif self._cpu_runs_mm(cpu, mm):
                    # The remote CPU could use these translations right
                    # now — every non-broadcast strategy IPIs it.
                    keys.update(user)
                elif self.strategy in (ShootdownStrategy.LAZY,
                                       ShootdownStrategy.MMAP_REUSE):
                    local_cycles += self._defer(cpu, user)
                # TARGETED trusts the affinity tracking: a CPU that is
                # not running the mm holds none of its translations.
            if keys:
                eager[cpu] = keys
        if eager:
            local_cycles += self._ipi_round(eager, pages=len(user) + len(kern))
        return local_cycles

    def _cpu_runs_mm(self, cpu: int, mm) -> bool:
        task = self.kernel._current_tasks[cpu]
        return task is not None and task.mm is mm

    def _ipi_round(self, eager: Dict[int, Dict[Key, None]],
                   pages: int) -> int:
        """Synchronous shootdown: IPI each target, scrub its TLBs."""
        machine = self.machine
        local = machine.cpus[machine.current_cpu]
        send = IPI_SEND_CYCLES + IPI_WAIT_PER_TARGET_CYCLES * len(eager)
        local.clock.add(send, "shootdown")
        local.monitor.count("ipi_sent", len(eager))
        if machine.tracer is not None:
            machine.tracer.instant(
                "ipi", "shootdown",
                {"targets": sorted(eager), "pages": pages},
            )
        for cpu, keys in eager.items():
            target = machine.cpus[cpu]
            target.clock.add(
                IPI_DELIVER_CYCLES + TLBIE_CYCLES * len(keys), "shootdown"
            )
            target.monitor.count("ipi_received")
            for vsid, page_index in keys:
                target.itlb.invalidate_page(page_index, vsid=vsid)
                target.dtlb.invalidate_page(page_index, vsid=vsid)
            if machine.sanitizer is not None:
                machine.sanitizer.after_remote_invalidate(cpu, list(keys))
        return send

    def _defer(self, cpu: int, keys: Dict[Key, None]) -> int:
        """Queue invalidations on a remote CPU's deferred ring."""
        queue = self.deferred[cpu]
        fresh = [key for key in keys if key not in queue]
        if not fresh:
            return 0
        for key in fresh:
            queue[key] = None
        machine = self.machine
        local = machine.cpus[machine.current_cpu]
        cycles = SHOOTDOWN_DEFER_PER_PAGE_CYCLES * len(fresh)
        local.clock.add(cycles, "shootdown")
        local.monitor.count("shootdown_deferred", len(fresh))
        if machine.sanitizer is not None:
            machine.sanitizer.after_shootdown_defer(cpu, fresh)
        return cycles

    # -- the context-switch drain --------------------------------------------

    def drain_current_cpu(self) -> int:
        """Scrub this CPU's deferred invalidations (context-switch time).

        Runs before the incoming task's segment registers are loaded, so
        no task that could legally reference a queued VSID is ever
        installed over a stale TLB entry.
        """
        if self._off:
            return 0
        machine = self.machine
        cpu = machine.current_cpu
        queue = self.deferred[cpu]
        if not queue:
            return 0
        keys = list(queue)
        queue.clear()
        state = machine.cpus[cpu]
        for vsid, page_index in keys:
            state.itlb.invalidate_page(page_index, vsid=vsid)
            state.dtlb.invalidate_page(page_index, vsid=vsid)
        cycles = SHOOTDOWN_DRAIN_PER_PAGE_CYCLES * len(keys)
        state.clock.add(cycles, "shootdown")
        state.monitor.count("shootdown_drained", len(keys))
        if machine.sanitizer is not None:
            machine.sanitizer.after_shootdown_drain(cpu, keys)
        if machine.tracer is not None:
            machine.tracer.complete(
                "shootdown-drain", "shootdown", cycles,
                {"pages": len(keys)},
            )
        return cycles

    # -- whole-context events ------------------------------------------------

    def context_bumped(self, mm) -> int:
        """A VSID bump retired ``mm``'s old VSIDs everywhere.

        Remote CPUs *running* the mm hold the dead VSIDs in their live
        segment registers and must reload them now; every other CPU's
        stale TLB entries are zombies under VSIDs that will never be
        loaded again — exactly the uniprocessor lazy-flush argument, so
        nothing is queued for them.
        """
        if self._off:
            return 0
        machine = self.machine
        me = machine.current_cpu
        targets = [
            cpu for cpu in range(machine.n_cpus)
            if cpu != me and self._cpu_runs_mm(cpu, mm)
        ]
        if not targets:
            return 0
        local = machine.cpus[me]
        send = IPI_SEND_CYCLES + IPI_WAIT_PER_TARGET_CYCLES * len(targets)
        local.clock.add(send, "shootdown")
        local.monitor.count("ipi_sent", len(targets))
        if machine.tracer is not None:
            machine.tracer.instant(
                "ipi", "shootdown", {"targets": targets, "bump": True}
            )
        vsids = mm.segment_vsids()
        for cpu in targets:
            target = machine.cpus[cpu]
            target.clock.add(IPI_DELIVER_CYCLES, "shootdown")
            target.monitor.count("ipi_received")
            machine.context_switch_segments_on(cpu, vsids)
        return send

    def global_flush(self) -> int:
        """flush_everything ran: every TLB on every CPU is already empty
        (the machine invalidates them all); pay the IPI round that told
        the remote CPUs to do it and drop the now-moot deferred queues.
        """
        if self._off:
            return 0
        machine = self.machine
        me = machine.current_cpu
        for queue in self.deferred:
            queue.clear()
        remotes = machine.n_cpus - 1
        local = machine.cpus[me]
        send = IPI_SEND_CYCLES + IPI_WAIT_PER_TARGET_CYCLES * remotes
        local.clock.add(send, "shootdown")
        local.monitor.count("ipi_sent", remotes)
        for cpu in range(machine.n_cpus):
            if cpu == me:
                continue
            target = machine.cpus[cpu]
            target.clock.add(IPI_DELIVER_CYCLES + TLBIE_CYCLES, "shootdown")
            target.monitor.count("ipi_received")
        if machine.tracer is not None:
            machine.tracer.instant(
                "ipi", "shootdown", {"targets": "all", "global": True}
            )
        return send

    # -- mmap-reuse pooling (arXiv 2409.10946) -------------------------------

    @property
    def reuse_enabled(self) -> bool:
        return self.strategy is ShootdownStrategy.MMAP_REUSE

    def pool_munmap(self, mm, vma) -> bool:
        """Try to park an unmapped region instead of flushing it.

        Only anonymous regions pool (file pages belong to the page
        cache).  Returns True if the region was pooled — the caller
        skips the flush *and* the frame release; the region's PTEs,
        frames and any TLB entries stay live on purpose.
        """
        if not self.reuse_enabled or vma.file is not None:
            return False
        vma.pooled = True
        mm.reuse_pool.append(vma)
        self.machine.monitor.count("flush_skipped_reuse")
        while len(mm.reuse_pool) > self.kernel.config.mmap_reuse_max_regions:
            self._drop_pooled(mm, mm.reuse_pool[0])
        return True

    def pool_take(self, mm, pages: int, writable: bool) -> Optional[object]:
        """Revive the oldest pooled region matching (pages, writable)."""
        if not self.reuse_enabled:
            return None
        for vma in mm.reuse_pool:
            if vma.pages == pages and vma.writable == writable:
                mm.reuse_pool.remove(vma)
                vma.pooled = False
                self.machine.monitor.count("reuse_pool_hit")
                return vma
        return None

    def pool_drop_overlaps(self, mm, start: int, end: int) -> None:
        """Drain pooled regions overlapping [start, end) (explicit-addr
        mmap over a pooled hole)."""
        for vma in list(mm.reuse_pool):
            if vma.start < end and start < vma.end:
                self._drop_pooled(mm, vma)

    def pool_drain(self, mm) -> None:
        """Flush and free every pooled region (fork needs the truth)."""
        while mm.reuse_pool:
            self._drop_pooled(mm, mm.reuse_pool[-1])

    def pool_forget(self, mm) -> None:
        """Drop pool bookkeeping without flushing (exit/exec paths,
        where flush_mm + the page-release pass already cover it)."""
        for vma in mm.reuse_pool:
            vma.pooled = False
        mm.reuse_pool.clear()

    def _drop_pooled(self, mm, vma) -> None:
        mm.reuse_pool.remove(vma)
        vma.pooled = False
        kernel = self.kernel
        kernel.flush.flush_range(mm, vma.start, vma.end)
        kernel.release_user_range(mm, vma.start, vma.end)
        mm.remove_vma(vma)
