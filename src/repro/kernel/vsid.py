"""VSID allocation strategies (§5.2 and §7).

The hash function relies on VSIDs for variation ("the logical address
spaces of processes tend to be similar"), so how VSIDs are derived
decides both hash-table spread and whether lazy flushing is possible:

* :class:`PidScatterVsids` — the original strategy: VSID = PID times a
  scatter constant, plus the segment number.  §5.2 tunes the constant
  against the miss histogram; a power-of-two constant creates hot spots
  because the low hash bits lose diversity.  A process's VSIDs are fixed
  for life, so invalidating its translations requires the expensive
  hash-table search.

* :class:`ContextCounterVsids` — §7's mechanism: "keep a counter of
  memory-management contexts so we could provide unique numbers for use
  as VSIDs instead of using the PID".  Bumping a context gives it fresh
  VSIDs; the old ones become *zombies* — still marked valid in the hash
  table and TLB, but unable to match any live process.
"""

from __future__ import annotations

from typing import List, Set

from repro.errors import ConfigError, KernelPanic
from repro.params import NUM_SEGMENT_REGISTERS, VSID_MASK

#: User code/data live in segments 0..11; 12..15 belong to the kernel.
NUM_USER_SEGMENTS = 12

#: Kernel VSIDs sit at the very top of VSID space, out of the way of any
#: counter- or PID-derived user VSID.
KERNEL_VSID_BASE = VSID_MASK - NUM_SEGMENT_REGISTERS


def kernel_vsids() -> List[int]:
    """The four fixed VSIDs for kernel segments 12..15."""
    return [KERNEL_VSID_BASE + index for index in range(12, 16)]


class VsidAllocatorBase:
    """Common live/zombie bookkeeping for both strategies."""

    def __init__(self):
        self._live: Set[int] = set(kernel_vsids())
        self._zombies: Set[int] = set()
        self.bumps = 0

    def is_live(self, vsid: int) -> bool:
        """Whether any current context (or the kernel) owns this VSID."""
        return vsid in self._live

    def is_zombie(self, vsid: int) -> bool:
        return vsid in self._zombies

    def live_count(self) -> int:
        return len(self._live)

    def live_vsids(self) -> frozenset:
        """The live set (for diagnostics and the coherence sanitizer)."""
        return frozenset(self._live)

    def zombie_vsids(self) -> frozenset:
        return frozenset(self._zombies)

    def reset_after_global_flush(self) -> None:
        """After a flush-everything event, zombies are truly gone.

        Both strategies share this much; the context counter additionally
        restarts via :meth:`ContextCounterVsids.hard_reset` (driven by the
        kernel's post-global-flush protocol, which must also renumber
        every live context).
        """
        self._zombies.clear()

    def _make_live(self, vsids: List[int]) -> None:
        for vsid in vsids:
            if vsid in self._live:
                raise KernelPanic(f"VSID {vsid:#x} allocated twice")
            self._live.add(vsid)
            self._zombies.discard(vsid)

    def _retire(self, vsids: List[int]) -> None:
        for vsid in vsids:
            self._live.discard(vsid)
            self._zombies.add(vsid)

    def retire(self, vsids: List[int]) -> None:
        """Context destroyed (exit): its VSIDs become zombies."""
        self._retire(vsids)


class PidScatterVsids(VsidAllocatorBase):
    """VSID = PID * scatter_constant + segment (the original strategy)."""

    def __init__(self, scatter_constant: int):
        super().__init__()
        if scatter_constant < NUM_USER_SEGMENTS:
            # A smaller constant would make neighbouring PIDs share
            # VSIDs — two address spaces aliasing each other.
            raise ConfigError(
                "PID scatter constant must be >= "
                f"{NUM_USER_SEGMENTS} (got {scatter_constant})"
            )
        self.scatter_constant = scatter_constant

    def allocate(self, pid: int) -> List[int]:
        """VSIDs for user segments 0..11 of a new process."""
        vsids = [
            ((pid * self.scatter_constant) + segment) & VSID_MASK
            for segment in range(NUM_USER_SEGMENTS)
        ]
        self._make_live(vsids)
        return vsids

    def bump(self, old_vsids: List[int], pid: int) -> List[int]:
        raise KernelPanic(
            "lazy VSID flush requires the context-counter allocator; "
            "PID-derived VSIDs are fixed for the process lifetime"
        )


class ContextCounterVsids(VsidAllocatorBase):
    """Monotonic context counter, scattered by a non-power-of-two multiplier."""

    def __init__(self, scatter_constant: int = 37, first_context: int = 1):
        super().__init__()
        if scatter_constant <= 0:
            raise ConfigError("scatter constant must be positive")
        self.scatter_constant = scatter_constant
        self._next_context = first_context
        #: Contexts available before user VSIDs would collide with the
        #: reserved kernel VSID block.
        self.max_context = (KERNEL_VSID_BASE // scatter_constant) - 2
        #: Called when the counter wraps; the kernel installs a hook that
        #: flushes everything so retired VSID numbers are safe to reuse.
        self.on_wrap = None

    def _next(self) -> int:
        if self._next_context > self.max_context:
            if self.on_wrap is None:
                raise KernelPanic("VSID context counter wrapped with no handler")
            # The wrap handler must flush all translations, hard-reset
            # this allocator, and renumber every live context.
            self.on_wrap()
            if self._next_context > self.max_context:
                raise KernelPanic("context space exhausted even after wrap")
        context = self._next_context
        self._next_context = context + 1
        return context

    def hard_reset(self) -> None:
        """Restart the counter after a flush-everything event.

        Every translation derived from old VSIDs must already be gone
        from the TLB and hash table; the caller then re-allocates VSIDs
        for each live context.
        """
        self._next_context = 1
        self._live = set(kernel_vsids())
        self._zombies = set()

    def _vsids_for(self, context: int) -> List[int]:
        return [
            ((context * self.scatter_constant) + segment) & VSID_MASK
            for segment in range(NUM_USER_SEGMENTS)
        ]

    def allocate(self, pid: int) -> List[int]:
        """Fresh VSIDs for a new context (``pid`` ignored by design)."""
        vsids = self._vsids_for(self._next())
        self._make_live(vsids)
        return vsids

    def bump(self, old_vsids: List[int], pid: int) -> List[int]:
        """The §7 lazy flush: retire the old VSIDs, hand out new ones.

        Old translations left in the TLB and hash table keep their valid
        bits but "will not match any VSIDs used by any process so
        incorrect matches won't be made".
        """
        self._retire(old_vsids)
        vsids = self._vsids_for(self._next())
        self._make_live(vsids)
        self.bumps += 1
        return vsids
