"""The optimized idle task (§7 zombie reclaim, §9 page clearing).

The idle task runs whenever nothing else is runnable — "the idle task
runs quite often even on a system heavily loaded with users" because of
I/O waits.  Work done here is free as long as the idle task never delays
a task that becomes runnable, so every unit of work is small and the
loop re-checks its cycle window between units ("all data structures ...
are lock free and interrupts are left enabled").

Two jobs, per configuration:

* **Zombie reclaim** — scan the hash table incrementally, clearing the
  valid bit of PTEs whose VSID no longer belongs to any context.  This is
  what took the evict-to-reload ratio from >90% down to ~30% and the
  hash-table hit rate up to 98%.

* **Page clearing** — pre-zero free pages for ``get_free_page``.  §9's
  three variants are preserved: clearing *through* the cache (the
  experiment that doubled kernel-compile time), clearing cache-inhibited
  without keeping the result (the neutral control), and clearing
  cache-inhibited onto the pre-cleared list (the win).
"""

from __future__ import annotations

from repro.kernel.config import IdlePageClearPolicy

#: Hash-table slots examined per unit of idle work.  One chunk is still
#: only a few microseconds, so wakeup latency is unaffected.
RECLAIM_CHUNK_SLOTS = 256

#: Cycles per slot examined: load the tag word, test the VSID.
RECLAIM_CYCLES_PER_SLOT = 3

#: Cycles to spin one unit when there is nothing to do.
SPIN_UNIT_CYCLES = 32


class IdleTask:
    """The idle loop, parameterized by the kernel configuration."""

    def __init__(self, kernel):
        self.kernel = kernel
        self.machine = kernel.machine
        self.config = kernel.config
        self._scan_position = 0
        # Statistics.
        self.reclaim_passes = 0
        self.zombies_reclaimed = 0
        self.pages_cleared = 0
        self.spin_cycles = 0

    # -- one scheduling of the idle task -------------------------------------------

    def run(self, window_cycles: int) -> int:
        """Run idle work for at most ``window_cycles``; returns consumed.

        The window is the I/O-wait gap the scheduler gives us; the loop
        checks the ledger between work units so it never holds the CPU
        once the window closes (the paper's "no possibility of keeping
        control of the processor" property).
        """
        ledger = self.machine.clock
        start = ledger.snapshot()
        while ledger.since(start) < window_cycles:
            did_work = False
            if self.config.idle_zombie_reclaim:
                did_work |= self._reclaim_chunk()
            if self.config.idle_page_clear is not IdlePageClearPolicy.OFF:
                did_work |= self._clear_one_page()
            if not did_work:
                remaining = window_cycles - ledger.since(start)
                spin = min(SPIN_UNIT_CYCLES, max(remaining, 1))
                ledger.add(spin, "idle_spin")
                self.spin_cycles += spin
        return ledger.since(start)

    # -- zombie reclaim ----------------------------------------------------------------

    def _reclaim_chunk(self) -> bool:
        """Scan one chunk of the hash table for zombie PTEs.

        Returns whether any zombie was actually reclaimed, so ``run``
        can fall back to spinning (and account the window as idle time)
        when the scan comes up empty.
        """
        machine = self.machine
        htab = machine.htab
        start = self._scan_position
        cycles = RECLAIM_CYCLES_PER_SLOT * RECLAIM_CHUNK_SLOTS
        # The scan streams the table; one memory access covers a cache
        # line's worth of PTE tag words.
        cycles += machine.walker.charge_scan_window(
            start, RECLAIM_CHUNK_SLOTS, inhibited=self.config.idle_uncached
        )
        zombies = htab.zombie_flats(
            start, RECLAIM_CHUNK_SLOTS, self.kernel.vsid_allocator.is_live
        )
        ppg = htab.ptes_per_group
        sanitizer = machine.sanitizer
        for flat in zombies:
            htab.invalidate_slot(flat)
            machine.monitor.count("zombie_reclaimed")
            cycles += 2  # the store clearing the valid bit
            if sanitizer is not None:
                sanitizer.after_reclaim_slot(flat, htab.pte_at(*divmod(flat, ppg)))
        reclaimed = len(zombies)
        self._scan_position = (start + RECLAIM_CHUNK_SLOTS) % htab.slots
        machine.clock.add(cycles, "idle_reclaim")
        self.reclaim_passes += 1
        self.zombies_reclaimed += reclaimed
        if reclaimed and machine.tracer is not None:
            machine.tracer.complete(
                "reclaim-chunk", "idle", cycles, {"reclaimed": reclaimed}
            )
        return reclaimed > 0

    # -- page clearing -------------------------------------------------------------------

    def _clear_one_page(self) -> bool:
        """Clear one free page according to the §9 policy."""
        palloc = self.kernel.palloc
        policy = self.config.idle_page_clear
        # Stop once the stock reaches the target: unbounded by default
        # (§9 clears whatever free pages exist), or the configured cap —
        # see _preclear_target.
        if policy is not IdlePageClearPolicy.UNCACHED_NO_LIST:
            if palloc.precleared_count() >= self._preclear_target():
                return False
        pfn = palloc.pop_free_for_preclear()
        if pfn is None:
            return False
        inhibited = policy in (
            IdlePageClearPolicy.UNCACHED_NO_LIST,
            IdlePageClearPolicy.UNCACHED_LIST,
        ) or self.config.idle_uncached
        palloc.clear_page(pfn, inhibited=inhibited, category="idle_clear")
        self.pages_cleared += 1
        if self.machine.tracer is not None:
            self.machine.tracer.instant(
                "preclear-page", "idle", {"pfn": pfn}
            )
        if policy is IdlePageClearPolicy.UNCACHED_NO_LIST:
            # The control experiment: the work is thrown away.
            palloc.return_uncleared(pfn)
        else:
            palloc.push_precleared(pfn)
        return True

    def _preclear_target(self) -> int:
        """How many pre-cleared pages to keep in stock.

        §9 puts no bound on the list — the idle task clears whatever free
        pages exist ("all these writes to memory using a great deal of
        the bus"), which is precisely why the cached variant hurt.  That
        unbounded behaviour is the default; ``idle_preclear_target``
        bounds the stock for configurations (e.g. the SMP footnote's bus
        concern) where clearing the whole free list is wasted work.
        """
        if self.config.idle_preclear_target is not None:
            return self.config.idle_preclear_target
        return self.kernel.palloc.total_frames
