"""The top-level simulator: machine + kernel + executive in one object.

This is the object workloads and benchmarks construct: give it a machine
spec and a kernel configuration, get back a booted system with an
executive ready to run process bodies, plus measurement helpers that
convert ledger cycles into the paper's reporting units (µs, MB/s).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro import check, obs
from repro.hw.machine import MachineModel
from repro.kernel.config import KernelConfig
from repro.kernel.kernel import Kernel
from repro.params import HTAB_GROUPS, MachineSpec, PTES_PER_GROUP, RAM_BYTES
from repro.sim.process import Executive


class Simulator:
    """A booted simulated system."""

    def __init__(
        self,
        spec: MachineSpec,
        config: Optional[KernelConfig] = None,
        ram_bytes: int = RAM_BYTES,
        htab_groups: int = HTAB_GROUPS,
        htab_ptes_per_group: int = PTES_PER_GROUP,
        sanitize: bool = False,
        trace: bool = False,
        profile: bool = False,
        sample_every_us: Optional[float] = None,
        n_cpus: int = 1,
    ):
        self.spec = spec
        self.config = config if config is not None else KernelConfig.unoptimized()
        self.machine = MachineModel(
            spec,
            htab_groups=htab_groups,
            htab_ptes_per_group=htab_ptes_per_group,
            ram_bytes=ram_bytes,
            cache_ptes=self.config.cache_page_tables,
            n_cpus=n_cpus,
        )
        self.kernel = Kernel(self.machine, self.config)
        self.executive = Executive(self.kernel)
        self.sanitizer = None
        if sanitize or check.global_check_active():
            self.sanitizer = check.attach_sanitizer(self.kernel)
        self.obs = None
        if trace or profile or sample_every_us is not None:
            self.obs = obs.attach_observability(
                self.kernel,
                trace=trace,
                profile=profile,
                sample_every_us=sample_every_us,
            )
        elif obs.global_obs_active():
            self.obs = obs.attach_observability(self.kernel)

    # -- measurement ------------------------------------------------------------

    @property
    def cycles(self) -> int:
        return self.machine.clock.total

    @property
    def total_cycles(self) -> int:
        """Cycles summed over every CPU (== ``cycles`` with one CPU)."""
        return self.machine.total_cycles_all_cpus()

    def elapsed_us(self) -> float:
        return self.spec.cycles_to_us(self.cycles)

    def cycles_to_us(self, cycles: float) -> float:
        return self.spec.cycles_to_us(cycles)

    def measure_cycles(self, fn: Callable[[], None]) -> int:
        """Run ``fn`` and return the cycles it consumed."""
        start = self.machine.clock.snapshot()
        fn()
        return self.machine.clock.since(start)

    def run(self, **kwargs) -> None:
        """Run the executive until all bodies exit."""
        self.executive.run(**kwargs)

    def counters(self) -> Dict[str, int]:
        return self.machine.monitor.snapshot()

    def breakdown(self) -> Dict[str, int]:
        return self.machine.clock.breakdown()

    def mb_per_s(self, total_bytes: int, cycles: int) -> float:
        """Bandwidth in MB/s given bytes moved in ``cycles``."""
        if cycles <= 0:
            return 0.0
        seconds = cycles / (self.spec.clock_mhz * 1e6)
        return total_bytes / 1e6 / seconds


def boot(
    spec: MachineSpec,
    config: Optional[KernelConfig] = None,
    sanitize: bool = False,
    trace: bool = False,
    profile: bool = False,
    sample_every_us: Optional[float] = None,
    n_cpus: int = 1,
) -> Simulator:
    """Convenience constructor used throughout tests and benchmarks.

    Forwards the observability/checking options to :class:`Simulator`,
    so ``boot(spec, config, trace=True)`` behaves exactly like the full
    constructor (these kwargs used to be dropped silently).
    """
    return Simulator(
        spec,
        config,
        sanitize=sanitize,
        trace=trace,
        profile=profile,
        sample_every_us=sample_every_us,
        n_cpus=n_cpus,
    )
