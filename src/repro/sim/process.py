"""Process bodies and the executive that runs them.

A simulated process is a Python generator that *yields actions* —
syscalls, memory touches, forks — and receives each action's result at
the next resume.  The executive is the dispatch loop: it picks runnable
tasks off the kernel's scheduler, context-switches to them, executes
their actions, blocks them on pipes and disk waits, and runs the idle
task whenever nothing is runnable (which is exactly when the §7/§9 idle
optimizations get their window).

Action vocabulary (tuples):

=====================  =======================================  =============
action                 semantics                                result
=====================  =======================================  =============
("getpid",)            trivial syscall                          pid
("touch", ea, n, w)    touch n cache lines in the page at ea    cycles
("itouch", ea, n)      instruction-fetch n lines at ea          cycles
("work", visits)       run a list of PageVisits                 cycles
("compute", cycles)    pure CPU burn                            None
("pipe",)              create a pipe                            pipe id
("pipe_write", i,n,b)  write n bytes (blocks when full)         bytes written
("pipe_read", i,n,b)   read n bytes (blocks when empty)         bytes read
("mmap", len, f, a)    map a region                             address
("munmap", a, len)     unmap a region                           None
("brk", pages)         grow the data segment                    new break
("read_file", n,o,l,b) read a file (may sleep on disk)          bytes read
("fork", factory)      fork; child runs factory(child_task)     child Task
("exec", name, kw)     replace the address space                None
("waitpid", task)      block until the child exits              exit code
("exit", code)         terminate                                —
("yield",)             round-robin reschedule                   None
("sleep", cycles)      sleep for a fixed time (think time)      None
("sleep_until", c)     sleep to an absolute deadline cycle      None
("mark", label)        record a timestamp for the workload      None
=====================  =======================================  =============

``sleep_until`` is the open-loop arrival primitive: a dispatcher that
must issue requests on a precomputed schedule sleeps to each absolute
deadline, and when the deadline is already past (the system fell
behind the offered load) it continues immediately instead of shifting
the schedule — the coordinated-omission-free behaviour the service
workload's latency accounting depends on.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Dict, Generator, List, Tuple

from repro.errors import KernelPanic, SyscallError
from repro.hw.machine import AccessKind
from repro.kernel.kernel import Kernel
from repro.kernel.task import Task, TaskState
from repro.params import USER_COMPUTE_PER_LINE_CYCLES

Body = Generator[tuple, object, None]
BodyFactory = Callable[[Task], Body]

#: Safety valve against runaway workloads.
DEFAULT_MAX_DISPATCHES = 5_000_000


class Executive:
    """Runs process bodies over a kernel until everything exits."""

    def __init__(self, kernel: Kernel):
        self.kernel = kernel
        self._bodies: Dict[Task, Body] = {}
        self._pending: Dict[Task, tuple] = {}
        self._send_value: Dict[Task, object] = {}
        #: ("mark", label) timestamps, in ledger cycles, per label.
        self.marks: Dict[str, List[int]] = defaultdict(list)
        self.dispatches = 0

    # -- workload construction ---------------------------------------------------

    def add(self, task: Task, body: Body) -> None:
        """Register a body for a task and make it runnable."""
        if task in self._bodies:
            raise KernelPanic(f"task {task.pid} already has a body")
        self._bodies[task] = body
        self.kernel.scheduler.enqueue(task)

    def spawn(self, name: str, factory: BodyFactory, **spawn_kwargs) -> Task:
        """Spawn a task and register ``factory(task)`` as its body."""
        task = self.kernel.spawn(name, **spawn_kwargs)
        self.add(task, factory(task))
        return task

    # -- the main loop --------------------------------------------------------------

    def run(self, max_dispatches: int = DEFAULT_MAX_DISPATCHES) -> None:
        """Run until every body has exited.

        SMP is a deterministic round-robin over the CPUs: each outer
        iteration visits CPU 0..N-1 in order and runs that CPU's next
        runnable task for one quantum (until it blocks, yields, or
        exits).  Task placement is fixed at creation, so the interleaving
        — and therefore every per-CPU ledger — is a pure function of the
        workload.  With one CPU the loop is the original single-queue
        executive, charge for charge.
        """
        kernel = self.kernel
        sched = kernel.scheduler
        machine = kernel.machine
        while self._bodies:
            ran = False
            for cpu in range(machine.n_cpus):
                machine.set_current_cpu(cpu)
                task = sched.pick_next()
                if task is None:
                    continue
                ran = True
                kernel.switch_to(task)
                self._run_task(task, max_dispatches)
            if self._bodies and not ran:
                self._idle_until_wakeup()
        # Leave the boot CPU selected so post-run measurement reads the
        # same state it always did.
        machine.set_current_cpu(0)

    def _idle_until_wakeup(self) -> None:
        """Every CPU is idle: run each one's idle window to its next
        timer wakeup (the §7/§9 idle optimizations get their window
        here, on every processor that has one)."""
        kernel = self.kernel
        sched = kernel.scheduler
        machine = kernel.machine
        wakes = [
            sched.next_wakeup(cpu) for cpu in range(machine.n_cpus)
        ]
        if all(wake is None for wake in wakes):
            blocked = sorted(t.pid for t in self._bodies)
            raise KernelPanic(
                f"deadlock: tasks {blocked} blocked with nothing runnable"
            )
        for cpu, wake in enumerate(wakes):
            if wake is None:
                continue
            machine.set_current_cpu(cpu)
            clock = machine.clock
            window = max(wake - clock.total, 1)
            kernel.run_idle(window)
            if clock.total < wake:
                clock.add(wake - clock.total, "io_wait")
            sched.expire_timers(clock.total, cpu)

    # -- per-task execution ------------------------------------------------------------

    def _run_task(self, task: Task, max_dispatches: int) -> None:
        """Run one task until it blocks, yields, or exits."""
        body = self._bodies[task]
        while True:
            self.dispatches += 1
            if self.dispatches > max_dispatches:
                raise KernelPanic(
                    f"dispatch limit {max_dispatches} exceeded — "
                    "runaway workload?"
                )
            action = self._pending.pop(task, None)
            retried = action is not None
            if action is None:
                try:
                    action = body.send(self._send_value.pop(task, None))
                except StopIteration:
                    self._finish(task)
                    return
            status, value = self._dispatch(task, action, retried)
            if status == "done":
                self._send_value[task] = value
                continue
            if status == "yield":
                self._send_value[task] = None
                self.kernel.scheduler.enqueue(task)
                return
            if status == "sleep":
                # value is (wakeup_cycle, result); result is delivered
                # when the task resumes.
                wakeup, result = value
                self._send_value[task] = result
                self.kernel.scheduler.sleep_until(task, wakeup)
                return
            if status == "block":
                # value is the waiter list to join; the action retries
                # when the task is woken.
                task.state = TaskState.SLEEPING
                value.append(task)
                self._pending[task] = action
                return
            if status == "exit":
                self._finish(task, code=value)
                return
            raise KernelPanic(f"unknown dispatch status {status!r}")

    def _finish(self, task: Task, code: int = 0) -> None:
        if task.state is not TaskState.EXITED:
            self.kernel.sys_exit(task, code)
        self._bodies.pop(task, None)
        self._pending.pop(task, None)
        self._send_value.pop(task, None)

    # -- dispatch ---------------------------------------------------------------------------

    def _dispatch(
        self, task: Task, action: tuple, retried: bool = False
    ) -> Tuple[str, object]:
        kernel = self.kernel
        kind = action[0]
        if kind == "getpid":
            return "done", kernel.sys_getpid(task)
        if kind == "touch":
            _, ea, lines, write = action
            return "done", kernel.user_access(task, ea, lines, write)
        if kind == "itouch":
            _, ea, lines = action
            return "done", kernel.user_access(
                task, ea, lines, write=False, kind=AccessKind.INSTRUCTION
            )
        if kind == "work":
            cycles = 0
            alu = 0
            for visit in action[1]:
                cycles += kernel.user_access(
                    task, visit.ea, visit.lines, visit.write, visit.kind,
                    first_line=visit.first_line,
                )
                alu += visit.lines * USER_COMPUTE_PER_LINE_CYCLES
            kernel.machine.clock.add(alu, "user_compute")
            return "done", cycles + alu
        if kind == "compute":
            kernel.machine.clock.add(action[1], "user_compute")
            return "done", None
        if kind == "pipe":
            return "done", kernel.sys_pipe(task)
        if kind == "pipe_write":
            _, ident, nbytes, buffer = action
            written, would_block = kernel.sys_pipe_write(
                task, ident, nbytes, buffer, charge_entry=not retried
            )
            if would_block:
                return "block", kernel.pipes.get(ident).writers_waiting
            return "done", written
        if kind == "pipe_read":
            _, ident, nbytes, buffer = action
            count, would_block = kernel.sys_pipe_read(
                task, ident, nbytes, buffer, charge_entry=not retried
            )
            if would_block:
                return "block", kernel.pipes.get(ident).readers_waiting
            return "done", count
        if kind == "mmap":
            _, length, file, addr = action
            return "done", kernel.sys_mmap(task, length, file=file, addr=addr)
        if kind == "munmap":
            _, addr, length = action
            kernel.sys_munmap(task, addr, length)
            return "done", None
        if kind == "brk":
            return "done", kernel.sys_brk(task, action[1])
        if kind == "read_file":
            _, name, offset, length, buffer = action
            count, wait = kernel.sys_read_file(task, name, offset, length, buffer)
            if wait:
                wakeup = kernel.machine.clock.total + wait
                return "sleep", (wakeup, count)
            return "done", count
        if kind == "fork":
            child = kernel.sys_fork(task)
            factory = action[1]
            if factory is not None:
                self.add(child, factory(child))
            return "done", child
        if kind == "exec":
            _, image, kwargs = action
            kernel.sys_exec(task, image, **(kwargs or {}))
            return "done", None
        if kind == "waitpid":
            child = action[1]
            if child.state is TaskState.EXITED:
                return "done", child.exit_code
            waiters = kernel.exit_waiters.setdefault(child.pid, [])
            return "block", waiters
        if kind == "exit":
            code = action[1] if len(action) > 1 else 0
            return "exit", code
        if kind == "yield":
            return "yield", None
        if kind == "sleep":
            wakeup = kernel.machine.clock.total + action[1]
            return "sleep", (wakeup, None)
        if kind == "sleep_until":
            # Absolute deadline on this task's home-CPU clock.  A past
            # deadline runs through immediately — the open-loop contract.
            wakeup = action[1]
            if wakeup <= kernel.machine.clock.total:
                return "done", None
            return "sleep", (wakeup, None)
        if kind == "mark":
            self.marks[action[1]].append(kernel.machine.clock.total)
            return "done", None
        raise SyscallError(str(kind), "unknown action")

    # -- measurement helpers --------------------------------------------------------------------

    def mark_deltas(self, start_label: str, end_label: str) -> List[int]:
        """Pairwise cycle deltas between two mark streams."""
        starts = self.marks.get(start_label, [])
        ends = self.marks.get(end_label, [])
        return [end - start for start, end in zip(starts, ends)]
