"""Simulator-facing import path for the cycle ledger.

The ledger itself lives in :mod:`repro.hw.clock` — it is the machine's
clock, and ``hw`` imports nothing above itself (the ``repro lint``
layering rule enforces this).  Simulator code and tests keep importing
it from here.
"""

from __future__ import annotations

from repro.hw.clock import CycleLedger

__all__ = ["CycleLedger"]
