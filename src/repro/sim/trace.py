"""Memory-reference trace generation.

Workloads describe user computation as *page visits*: "touch N cache
lines in page P".  A visit translates once (subsequent references to the
page hit the TLB, which is free) and streams its lines through the cache
model.  This batching is what makes kernel-compile-scale simulation
feasible while preserving the quantities the paper measures — TLB miss
counts, cache miss counts, hash-table behaviour — because those are all
per-page and per-line events, not per-instruction ones.

The working-set generator models the phase behaviour the paper's
benchmarks exhibit: a process has a resident working set it revisits
with high probability and a larger footprint it wanders into, shifting
the hot set slowly ("it's rare to change working sets", §8).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List

from repro.errors import ConfigError
from repro.hw.access import AccessKind
from repro.params import LINES_PER_PAGE, PAGE_SIZE


@dataclass(frozen=True, slots=True)
class PageVisit:
    """One batched visit to a page."""

    ea: int
    lines: int
    write: bool = False
    kind: AccessKind = AccessKind.DATA
    #: Line offset within the page where the visit starts.  Varying this
    #: per page mirrors real data layouts; a constant 0 would alias every
    #: page's touched lines into the same cache sets.
    first_line: int = 0

    def __post_init__(self):
        if not 1 <= self.lines <= LINES_PER_PAGE:
            raise ConfigError(f"lines per visit out of range: {self.lines}")
        if not 0 <= self.first_line < LINES_PER_PAGE:
            raise ConfigError(f"first_line out of range: {self.first_line}")


def sequential_trace(
    base: int,
    pages: int,
    lines: int = LINES_PER_PAGE,
    write: bool = False,
    kind: AccessKind = AccessKind.DATA,
) -> List[PageVisit]:
    """Touch ``pages`` consecutive pages once each (streaming scan)."""
    return [
        PageVisit(ea=base + index * PAGE_SIZE, lines=lines, write=write, kind=kind)
        for index in range(pages)
    ]


def strided_trace(
    base: int,
    pages: int,
    stride_pages: int,
    lines: int = 4,
    write: bool = False,
) -> List[PageVisit]:
    """Touch every ``stride_pages``-th page (TLB-hostile pattern)."""
    if stride_pages <= 0:
        raise ConfigError(f"bad stride: {stride_pages}")
    return [
        PageVisit(ea=base + index * stride_pages * PAGE_SIZE, lines=lines,
                  write=write)
        for index in range(pages)
    ]


class WorkingSetTrace:
    """Phase-structured working-set reference generator.

    Parameters
    ----------
    code_base, code_pages:
        The instruction footprint; visits are instruction fetches.
    data_base, data_pages:
        The data footprint.
    hot_fraction:
        Fraction of the data footprint forming the hot working set.
    write_fraction:
        Probability a data visit is a write.
    drift:
        Probability per visit that the hot window advances one page
        (slow phase change).
    """

    def __init__(
        self,
        code_base: int,
        code_pages: int,
        data_base: int,
        data_pages: int,
        hot_fraction: float = 0.25,
        write_fraction: float = 0.3,
        drift: float = 0.02,
        lines_per_visit: int = 8,
        seed: int = 0,
    ):
        if code_pages <= 0 or data_pages <= 0:
            raise ConfigError("working set must have code and data pages")
        if not 0.0 < hot_fraction <= 1.0:
            raise ConfigError(f"bad hot_fraction: {hot_fraction}")
        self.code_base = code_base
        self.code_pages = code_pages
        self.data_base = data_base
        self.data_pages = data_pages
        self.hot_pages = max(1, int(data_pages * hot_fraction))
        self.write_fraction = write_fraction
        self.drift = drift
        self.lines_per_visit = min(lines_per_visit, LINES_PER_PAGE)
        self._rng = random.Random(seed)
        self._hot_start = 0

    def visits(self, count: int) -> Iterator[PageVisit]:
        """Generate ``count`` page visits (interleaved code + data)."""
        rng = self._rng
        span = max(LINES_PER_PAGE - self.lines_per_visit, 1)
        for index in range(count):
            if index % 3 == 0:
                # Instruction fetch: strong locality over the code pages.
                page = rng.randrange(self.code_pages)
                yield PageVisit(
                    ea=self.code_base + page * PAGE_SIZE,
                    lines=self.lines_per_visit,
                    kind=AccessKind.INSTRUCTION,
                    first_line=(page * 37) % span,
                )
                continue
            if rng.random() < self.drift:
                self._hot_start = (self._hot_start + 1) % self.data_pages
            if rng.random() < 0.85:
                offset = (self._hot_start + rng.randrange(self.hot_pages))
            else:
                offset = rng.randrange(self.data_pages)
            page = offset % self.data_pages
            yield PageVisit(
                ea=self.data_base + page * PAGE_SIZE,
                lines=self.lines_per_visit,
                write=rng.random() < self.write_fraction,
                first_line=(page * 53) % span,
            )

    def visit_list(self, count: int) -> List[PageVisit]:
        return list(self.visits(count))
