"""Simulation engine: cycle ledger, traces, processes, and the simulator.

``Executive``, ``Simulator`` and ``boot`` are provided lazily: they
pull in the experiment-facing machinery, which is heavy and unneeded
for callers that only want the ledger or a trace.
"""

from repro.hw.clock import CycleLedger
from repro.sim.trace import (
    PageVisit,
    WorkingSetTrace,
    sequential_trace,
    strided_trace,
)

__all__ = [
    "CycleLedger",
    "Executive",
    "PageVisit",
    "Simulator",
    "WorkingSetTrace",
    "boot",
    "sequential_trace",
    "strided_trace",
]


def __getattr__(name):
    if name == "Executive":
        from repro.sim.process import Executive

        return Executive
    if name in ("Simulator", "boot"):
        from repro.sim import simulator

        return getattr(simulator, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
