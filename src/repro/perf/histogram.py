"""Histograms for hash-table analysis.

§5.2: "We tuned the VSID generation algorithm by making Linux keep a
hash table miss histogram and adjusting the constant until hot-spots
disappeared."  This module provides that histogram plus hot-spot
metrics: a distribution is hot-spotted when a few buckets absorb a large
share of the load.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List


@dataclass
class Histogram:
    """A fixed-bucket histogram with hot-spot diagnostics."""

    counts: List[int]

    @property
    def total(self) -> int:
        return sum(self.counts)

    @property
    def buckets(self) -> int:
        return len(self.counts)

    def nonzero_fraction(self) -> float:
        """Fraction of buckets with any load."""
        if not self.counts:
            return 0.0
        return sum(1 for count in self.counts if count) / len(self.counts)

    def max_load(self) -> int:
        return max(self.counts) if self.counts else 0

    def hot_spot_ratio(self) -> float:
        """Max bucket load over the mean load (1.0 = perfectly even)."""
        total = self.total
        if not total or not self.counts:
            return 0.0
        mean = total / len(self.counts)
        return self.max_load() / mean

    def top_share(self, fraction: float = 0.01) -> float:
        """Share of total load absorbed by the hottest ``fraction`` buckets."""
        total = self.total
        if not total:
            return 0.0
        top_n = max(1, int(len(self.counts) * fraction))
        hottest = sorted(self.counts, reverse=True)[:top_n]
        return sum(hottest) / total

    def entropy_efficiency(self) -> float:
        """Normalized Shannon entropy of the load (1.0 = perfectly spread)."""
        total = self.total
        if not total or len(self.counts) <= 1:
            return 0.0
        entropy = 0.0
        for count in self.counts:
            if count:
                p = count / total
                entropy -= p * math.log2(p)
        return entropy / math.log2(len(self.counts))


def occupancy_histogram(htab) -> Histogram:
    """Per-bucket valid-PTE histogram from a hashed page table."""
    return Histogram(htab.bucket_load_histogram())


def miss_histogram(htab) -> Histogram:
    """Per-bucket miss histogram (the §5.2 tuning instrument)."""
    return Histogram(list(htab.bucket_miss_histogram))
