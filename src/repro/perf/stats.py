"""Summary statistics for repeated benchmark runs.

§4: "Each of the test results comes from more than 10 of the benchmark
runs averaged.  We ignore benchmark differences that were sporadic."
``summarize`` provides the same discipline: mean, spread, and a
sporadic-run filter that drops outliers beyond a configurable multiple
of the interquartile range.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence


@dataclass
class RunStats:
    """Mean/median/spread of a set of benchmark runs."""

    n: int
    mean: float
    median: float
    stdev: float
    minimum: float
    maximum: float

    @property
    def cv(self) -> float:
        """Coefficient of variation (spread relative to the mean)."""
        return self.stdev / self.mean if self.mean else 0.0


def _median(sorted_values: Sequence[float]) -> float:
    n = len(sorted_values)
    mid = n // 2
    if n % 2:
        return float(sorted_values[mid])
    return (sorted_values[mid - 1] + sorted_values[mid]) / 2.0


def summarize(values: Sequence[float], drop_sporadic: bool = False) -> RunStats:
    """Summarize runs, optionally dropping sporadic outliers (§4)."""
    if not values:
        raise ValueError("no runs to summarize")
    data = sorted(float(v) for v in values)
    if drop_sporadic and len(data) >= 4:
        q1 = _median(data[: len(data) // 2])
        q3 = _median(data[(len(data) + 1) // 2:])
        iqr = q3 - q1
        low, high = q1 - 3.0 * iqr, q3 + 3.0 * iqr
        kept = [v for v in data if low <= v <= high]
        if kept:
            data = kept
    n = len(data)
    mean = sum(data) / n
    variance = sum((v - mean) ** 2 for v in data) / n if n > 1 else 0.0
    return RunStats(
        n=n,
        mean=mean,
        median=_median(data),
        stdev=math.sqrt(variance),
        minimum=data[0],
        maximum=data[-1],
    )


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean (for aggregating speedup ratios)."""
    if not values:
        raise ValueError("no values")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))
