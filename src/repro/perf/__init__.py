"""Performance-analysis helpers: histograms and summary statistics."""

from repro.perf.histogram import Histogram, occupancy_histogram
from repro.perf.stats import RunStats, geometric_mean, summarize

__all__ = [
    "Histogram",
    "RunStats",
    "geometric_mean",
    "occupancy_histogram",
    "summarize",
]
