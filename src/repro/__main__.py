"""Command-line front end: ``python -m repro``.

Subcommands:

* ``list`` — show the experiment registry (DESIGN.md's E1..E14 index).
* ``run E6 E11 ...`` — run experiments and print their reports.
* ``check [E6 ...|--all]`` — run experiments under the shadow-MMU
  coherence sanitizer and report invariant violations.
* ``table1`` / ``table2`` / ``table3`` — shortcuts for the paper's tables.
* ``machines`` — show the modelled machines and their derived timings.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis import experiments
from repro.params import ALL_MACHINES


def _cmd_list(_args) -> int:
    for experiment_id in sorted(
        experiments.REGISTRY, key=experiments._experiment_sort_key
    ):
        runner = experiments.REGISTRY[experiment_id]
        doc = (runner.__doc__ or "").strip().splitlines()[0]
        print(f"  {experiment_id:<4} {doc}")
    return 0


def _cmd_run(args) -> int:
    failed = []
    for experiment_id in args.ids:
        key = experiment_id.upper()
        if key not in experiments.REGISTRY:
            print(f"unknown experiment {experiment_id!r} "
                  f"(try: python -m repro list)", file=sys.stderr)
            return 2
        result = experiments.REGISTRY[key]()
        print(result.report)
        if result.notes:
            print(f"  notes: {result.notes}")
        print(f"  shape_holds: {result.shape_holds}")
        print()
        if not result.shape_holds:
            failed.append(key)
    if failed:
        print(f"paper shape did NOT hold for: {', '.join(failed)}")
        return 1
    return 0


def _cmd_check(args) -> int:
    # Imported here, not at the top: the runner pulls in the experiment
    # registry, which is heavy and unneeded for the other subcommands.
    from repro.check import runner as check_runner

    ids = None if (args.all or not args.ids) else args.ids
    try:
        run = check_runner.run_checked(
            ids=ids,
            sweep_every=args.sweep_every,
            progress=lambda key: print(f"checking {key} ..."),
        )
    except KeyError as exc:
        print(f"unknown experiment {exc.args[0]!r} "
              f"(try: python -m repro list)", file=sys.stderr)
        return 2
    print(run.report())
    return 0 if run.ok else 1


def _cmd_machines(_args) -> int:
    print(f"{'machine':<14}{'walk':<10}{'TLB (I/D)':<12}{'L1 (I/D)':<12}"
          f"{'L2':<8}{'line fill':<12}{'word'}")
    for spec in ALL_MACHINES:
        walk = "hardware" if spec.hardware_tablewalk else "software"
        tlb = f"{spec.itlb_entries}/{spec.dtlb_entries}"
        l1 = f"{spec.icache_bytes // 1024}K/{spec.dcache_bytes // 1024}K"
        print(
            f"{spec.name:<14}{walk:<10}{tlb:<12}{l1:<12}"
            f"{spec.l2_bytes // 1024:>4}K   "
            f"{spec.mem_cycles:>5} cyc   {spec.word_cycles:>4} cyc"
        )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=(
            "Reproduction of 'Optimizing the Idle Task and Other MMU "
            "Tricks' (OSDI 1999)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list the experiment registry")
    run = sub.add_parser("run", help="run experiments by id (e.g. E6 E11)")
    run.add_argument("ids", nargs="+", metavar="EXPERIMENT")
    chk = sub.add_parser(
        "check", help="run experiments under the shadow-MMU sanitizer"
    )
    chk.add_argument("ids", nargs="*", metavar="EXPERIMENT")
    chk.add_argument(
        "--all", action="store_true",
        help="check the full registry (default when no ids given)",
    )
    chk.add_argument(
        "--sweep-every", type=int, default=50_000, metavar="N",
        help="full invariant sweep every N checked translations "
             "(default 50000, 0 disables periodic sweeps)",
    )
    sub.add_parser("table1", help="reproduce Table 1")
    sub.add_parser("table2", help="reproduce Table 2")
    sub.add_parser("table3", help="reproduce Table 3")
    sub.add_parser("machines", help="show the modelled machines")
    args = parser.parse_args(argv)

    if args.command == "list":
        return _cmd_list(args)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "check":
        return _cmd_check(args)
    if args.command == "machines":
        return _cmd_machines(args)
    shortcut = {"table1": "E5", "table2": "E6", "table3": "E11"}
    return _cmd_run(argparse.Namespace(ids=[shortcut[args.command]]))


if __name__ == "__main__":
    sys.exit(main())
