"""Command-line front end: ``python -m repro``.

Subcommands:

* ``list`` — show the experiment registry (DESIGN.md's E1..E16 index).
* ``run E6 E11 ...`` — run experiments and print their reports
  (``--json`` for machine-readable records).  ``--all`` runs the whole
  registry, ``--jobs N`` fans it out across processes (output is
  byte-identical to serial), ``--no-cache``/``--rerun`` control the
  on-disk result cache, ``--matrix NAME`` runs a config-matrix sweep,
  and ``--bench-out FILE`` writes a BENCH_results.json-style artifact
  with per-experiment wall times.
* ``check [E6 ...|--all]`` — run experiments under the shadow-MMU
  coherence sanitizer and report invariant violations.
* ``trace E7 --out e7.trace.json`` — run one experiment under the flight
  recorder and write a Chrome trace (open it in Perfetto).
  ``--folded``/``--speedscope`` additionally export flamegraphs
  (collapsed stacks / speedscope JSON) and print the critical path.
* ``profile E6 ...`` — run experiments and print where the cycles went.
  ``--host`` instead profiles the *host* CPU seconds under cProfile,
  folded onto the simulator's hot kernels.
* ``diff A.json B.json`` / ``diff E7 --variant "no reclaim,idle
  reclaim"`` — structural comparison of two bench artifacts, or of two
  config variants of one experiment run under the recorder.
* ``bench compare BASELINE NEW`` — the regression sentinel: compare a
  fresh bench artifact against the committed baseline under the
  tolerance policy; nonzero exit on regression.
* ``bench append RESULTS`` — append a run (with git provenance and an
  optional sentinel verdict) to the BENCH_history.jsonl ledger.
* ``trend`` — per-PR deltas over the history ledger: exact cycle
  movers, per-category movers, policy-banded wall times
  (``--json`` for the machine-readable trend document).
* ``capacity`` — sweep offered load across flush/shootdown strategies
  with the open-loop service workload and print the throughput-vs-p99
  capacity table (``--json``/``--out`` for the machine-readable
  document).
* ``report --out report.html`` — render the observatory dashboard (a
  deterministic, self-contained HTML file; ``--history`` adds the
  trend section, ``--capacity`` the capacity curves).
* ``lint [paths...]`` — run the domain-aware static analysis over the
  package (``--list-rules`` for the rule catalog).
* ``table1`` / ``table2`` / ``table3`` — shortcuts for the paper's tables.
* ``machines`` — show the modelled machines and their derived timings.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from repro.analysis import specs
from repro.params import ALL_MACHINES


def _cmd_list(_args) -> int:
    for experiment_id in specs.sorted_ids():
        workload = specs.SPECS[experiment_id].workload
        doc = (workload.__doc__ or "").strip().splitlines()[0]
        print(f"  {experiment_id:<4} {doc}")
    print()
    print("config-matrix sweeps (run --matrix NAME):")
    for matrix in specs.MATRICES.values():
        print(f"  {matrix.id:<14} {matrix.title}")
    return 0


def _resolve_ids(args) -> "Optional[list]":
    """Upper-cased, validated experiment ids; None on a bad id."""
    if getattr(args, "all", False):
        return specs.sorted_ids()
    ids = []
    for experiment_id in args.ids:
        key = experiment_id.upper()
        if key not in specs.SPECS:
            print(f"unknown experiment {experiment_id!r} "
                  f"(try: python -m repro list)", file=sys.stderr)
            return None
        ids.append(key)
    return ids


def _cmd_run(args) -> int:
    if args.matrix:
        return _cmd_run_matrix(args)
    ids = _resolve_ids(args)
    if ids is None:
        return 2
    if not ids:
        print("no experiments given (pass ids, --all, or --matrix NAME)",
              file=sys.stderr)
        return 2
    if args.json:
        return _cmd_run_json(args, ids)
    from repro.analysis import engine

    progress = None
    if args.jobs > 1:
        # Progress goes to stderr so stdout stays byte-identical to a
        # serial run (reports print in registry order after the merge).
        progress = lambda key, hit: print(
            f"  {key} {'cached' if hit else 'done'}", file=sys.stderr
        )
    run = engine.run_ids(
        ids,
        jobs=args.jobs,
        use_cache=not args.no_cache,
        rerun=args.rerun,
        progress=progress,
    )
    for result in run.results:
        print(result.report)
        if result.notes:
            print(f"  notes: {result.notes}")
        print(f"  shape_holds: {result.shape_holds}")
        print()
    if args.bench_out:
        _write_bench_artifact(args.bench_out, run)
    if not run.ok:
        print(f"paper shape did NOT hold for: {', '.join(run.failed_ids())}")
        return 1
    return 0


def _write_bench_artifact(out_path, run) -> None:
    from repro.analysis import engine
    from repro.obs import metrics

    doc = metrics.bench_doc(
        [engine.result_record(result) for result in run.results],
        source="python -m repro run --bench-out",
        timings=run.timings,
    )
    metrics.validate_bench_doc(doc)
    with open(out_path, "w") as handle:
        handle.write(metrics.dumps(doc))
    print(f"bench artifact -> {out_path}", file=sys.stderr)


def _cmd_run_matrix(args) -> int:
    for name in args.matrix:
        if name not in specs.MATRICES:
            known = ", ".join(sorted(specs.MATRICES))
            print(f"unknown matrix {name!r} (known: {known})",
                  file=sys.stderr)
            return 2
    for name in args.matrix:
        print(specs.MATRICES[name].run())
        print()
    return 0


def _cmd_run_json(args, ids) -> int:
    from repro.obs import metrics
    from repro.obs import session as obs_session

    records = []
    ok = True
    for key in ids:
        observed = obs_session.run_observed(key)
        records.append(observed.record())
        ok = ok and observed.result.shape_holds
    doc = records[0] if len(records) == 1 else records
    print(metrics.dumps(doc), end="")
    return 0 if ok else 1


def _cmd_check(args) -> int:
    # Imported here, not at the top: the runner pulls in the experiment
    # registry, which is heavy and unneeded for the other subcommands.
    from repro.check import runner as check_runner

    ids = None if (args.all or not args.ids) else args.ids
    progress = None if args.json else (
        lambda key: print(f"checking {key} ...")
    )
    try:
        run = check_runner.run_checked(
            ids=ids,
            sweep_every=args.sweep_every,
            progress=progress,
        )
    except KeyError as exc:
        print(f"unknown experiment {exc.args[0]!r} "
              f"(try: python -m repro list)", file=sys.stderr)
        return 2
    if args.json:
        from repro.obs import metrics

        print(metrics.dumps(run.to_record()), end="")
    else:
        print(run.report())
    return 0 if run.ok else 1


def _cmd_trace(args) -> int:
    import json

    from repro.obs import metrics
    from repro.obs import session as obs_session

    key = args.id.upper()
    if key not in specs.SPECS:
        print(f"unknown experiment {args.id!r} "
              f"(try: python -m repro list)", file=sys.stderr)
        return 2
    observed = obs_session.run_observed(
        key, trace=True, sample_every_us=args.sample_us
    )
    doc = observed.chrome_trace()
    with open(args.out, "w") as handle:
        json.dump(doc, handle, sort_keys=True)
        handle.write("\n")
    events = len(doc["traceEvents"])
    dropped = doc.get("otherData", {}).get("dropped_events", 0)
    print(f"{key}: {events} trace events -> {args.out}"
          + (f" ({dropped} dropped by the ring)" if dropped else ""))
    if args.folded or args.speedscope:
        from repro.obs import flame

        tracers = [
            handle.tracer for handle in observed.observed
            if handle.tracer is not None
        ]
        if args.folded:
            lines = flame.folded(tracers)
            with open(args.folded, "w") as handle:
                handle.write("\n".join(lines) + ("\n" if lines else ""))
            print(f"{key}: {len(lines)} folded stacks -> {args.folded}")
        if args.speedscope:
            scope = flame.speedscope(tracers, name=f"{key} — "
                                     f"{observed.result.title}")
            flame.validate_speedscope(scope)
            with open(args.speedscope, "w") as handle:
                json.dump(scope, handle, sort_keys=True)
                handle.write("\n")
            print(f"{key}: {len(scope['profiles'])} lanes -> "
                  f"{args.speedscope}")
        print()
        print(flame.render_critical_path(flame.critical_path(tracers)),
              end="")
    if args.json:
        print(metrics.dumps(observed.record()), end="")
    return 0


def _cmd_profile(args) -> int:
    from repro.obs import metrics
    from repro.obs import session as obs_session
    from repro.obs.profiler import render_attribution

    if args.host:
        return _cmd_profile_host(args)
    records = []
    for experiment_id in args.ids:
        key = experiment_id.upper()
        if key not in specs.SPECS:
            print(f"unknown experiment {experiment_id!r} "
                  f"(try: python -m repro list)", file=sys.stderr)
            return 2
        observed = obs_session.run_observed(key)
        if args.json:
            records.append(observed.record())
            continue
        title = (f"{key} — {observed.result.title} "
                 f"[{', '.join(observed.machines())}]")
        print(render_attribution(observed.attribution(), title))
        print()
    if args.json:
        doc = records[0] if len(records) == 1 else records
        print(metrics.dumps(doc), end="")
    return 0


def _cmd_profile_host(args) -> int:
    from repro.obs import hostprof, metrics

    ids = []
    for experiment_id in args.ids:
        key = experiment_id.upper()
        if key not in specs.SPECS:
            print(f"unknown experiment {experiment_id!r} "
                  f"(try: python -m repro list)", file=sys.stderr)
            return 2
        ids.append(key)
    doc = hostprof.profile_experiments(ids)
    if args.json:
        print(metrics.dumps(doc), end="")
    else:
        print(hostprof.render_host_profile(doc), end="")
    return 0


def _cmd_diff(args) -> int:
    import json

    from repro.obs import diff as obs_diff
    from repro.obs import metrics

    if args.variant:
        return _cmd_diff_variants(args)
    if args.b is None:
        print("diff needs two artifact paths (or one experiment id with "
              "--variant A,B)", file=sys.stderr)
        return 2
    docs = []
    for path in (args.a, args.b):
        try:
            docs.append(json.loads(open(path).read()))
        except (OSError, ValueError) as exc:
            print(f"diff: {path}: {exc}", file=sys.stderr)
            return 2
    if all(isinstance(doc, dict) and "experiments" in doc for doc in docs):
        for path, doc in zip((args.a, args.b), docs):
            try:
                metrics.validate_bench_doc(doc)
            except ValueError as exc:
                print(f"diff: {path}: {exc}", file=sys.stderr)
                return 2
        per_experiment = obs_diff.diff_docs(docs[0], docs[1])
        if args.json:
            print(metrics.dumps(per_experiment), end="")
            return 0
        for key, entry in per_experiment.items():
            if not (entry["changed"] or entry["only_a"] or entry["only_b"]):
                continue
            print(obs_diff.render_diff(
                entry, f"{args.a}:{key}", f"{args.b}:{key}",
            ))
            print()
        print(f"{len(per_experiment)} experiments compared")
        return 0
    entry = obs_diff.diff_records(docs[0], docs[1])
    if args.json:
        print(metrics.dumps(entry), end="")
        return 0
    print(obs_diff.render_diff(entry, args.a, args.b))
    return 0


def _cmd_diff_variants(args) -> int:
    from repro.obs import diff as obs_diff
    from repro.obs import metrics
    from repro.obs import session as obs_session

    labels = [label.strip() for label in args.variant.split(",")]
    if len(labels) != 2 or not all(labels):
        print(f"--variant needs exactly two comma-separated labels, got "
              f"{args.variant!r}", file=sys.stderr)
        return 2
    key = args.a.upper()
    if key not in specs.SPECS:
        print(f"unknown experiment {args.a!r} "
              f"(try: python -m repro list)", file=sys.stderr)
        return 2
    spec = specs.SPECS[key]
    spec_labels = [variant.label for variant in spec.variants]
    for label in labels:
        if label not in spec_labels:
            print(f"{key} has no variant {label!r} "
                  f"(variants: {', '.join(spec_labels)})", file=sys.stderr)
            return 2
    observed = obs_session.run_observed(
        key, trace=True, sample_every_us=args.sample_us
    )
    try:
        entry = obs_diff.diff_variant_labels(
            spec, observed.observed, labels[0], labels[1]
        )
    except KeyError as exc:
        print(f"diff: {exc.args[0]}", file=sys.stderr)
        return 2
    if args.json:
        print(metrics.dumps(entry), end="")
        return 0
    print(obs_diff.render_diff(
        entry, f"{key} [{labels[0]}]", f"{key} [{labels[1]}]",
    ))
    return 0


def _git_rev(ref: str) -> Optional[str]:
    """Resolve a git ref to a full SHA; None when git/repo is absent.

    The only place the observatory touches git: provenance for the
    history ledger lives in the CLI layer so ``repro.obs`` stays pure.
    """
    import subprocess

    try:
        proc = subprocess.run(
            ["git", "rev-parse", ref],
            capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else None


def _cmd_bench_append(args) -> int:
    import json

    from repro.obs import history, metrics

    try:
        doc = metrics.load_bench_doc(args.results)
    except (OSError, ValueError) as exc:
        print(f"bench append: {exc}", file=sys.stderr)
        return 2
    verdict = None
    if args.verdict:
        try:
            verdict = json.loads(open(args.verdict).read())
        except (OSError, ValueError) as exc:
            print(f"bench append: {args.verdict}: {exc}", file=sys.stderr)
            return 2
    sha = args.sha if args.sha else _git_rev("HEAD")
    parent = args.parent if args.parent else _git_rev("HEAD^")
    try:
        entry = history.entry_from_doc(
            doc, label=args.label, sha=sha, parent=parent, verdict=verdict
        )
        count = history.append_entry(args.history, entry)
    except (OSError, ValueError) as exc:
        print(f"bench append: {exc}", file=sys.stderr)
        return 2
    summary = entry["summary"]
    print(
        f"{args.history}: entry {count} "
        f"(label={entry['label'] or '-'}, sha={(sha or '-')[:12]}, "
        f"{summary['experiments']} experiments, "
        f"{summary['total_cycles']} cycles)"
    )
    return 0


def _cmd_bench(args) -> int:
    from repro.obs import baseline as obs_baseline
    from repro.obs import metrics

    if args.bench_command == "append":
        return _cmd_bench_append(args)
    try:
        policy = obs_baseline.load_policy(args.policy)
        baseline_doc = metrics.load_bench_doc(args.baseline)
        new_doc = metrics.load_bench_doc(args.new)
    except (OSError, ValueError) as exc:
        print(f"bench compare: {exc}", file=sys.stderr)
        return 2
    verdict = obs_baseline.compare_docs(baseline_doc, new_doc, policy)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(metrics.dumps(verdict.to_record()))
        print(f"verdict -> {args.out}", file=sys.stderr)
    if args.json:
        print(metrics.dumps(verdict.to_record()), end="")
    else:
        print(obs_baseline.render_verdict(verdict, args.baseline, args.new))
    return 0 if verdict.ok else 1


def _cmd_trend(args) -> int:
    from repro.obs import baseline as obs_baseline
    from repro.obs import history, metrics, trend

    try:
        policy = obs_baseline.load_policy(args.policy)
        entries = history.load_history(args.history)
        doc = trend.trend_doc(entries, policy)
    except (OSError, ValueError) as exc:
        print(f"trend: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(metrics.dumps(doc), end="")
        return 0
    print(trend.render_trend(doc, limit=args.limit), end="")
    return 0


def _cmd_capacity(args) -> int:
    from repro.analysis import capacity as cap
    from repro.obs import metrics

    try:
        doc = cap.capacity_sweep(
            loads=args.loads or cap.DEFAULT_LOADS,
            strategies=args.strategies or cap.DEFAULT_STRATEGIES,
            n_cpus=args.cpus,
            requests=args.requests,
            seed=args.seed,
            schedule=args.schedule,
        )
        cap.validate_capacity_doc(doc)
    except ValueError as exc:
        print(f"capacity: {exc}", file=sys.stderr)
        return 2
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(metrics.dumps(doc))
        print(f"capacity -> {args.out}", file=sys.stderr)
    if args.json:
        print(metrics.dumps(doc), end="")
    else:
        print(cap.render_capacity(doc), end="")
    return 0


def _cmd_report(args) -> int:
    from repro.obs import metrics
    from repro.obs import report as obs_report

    if args.from_doc:
        try:
            doc = metrics.load_bench_doc(args.from_doc)
        except (OSError, ValueError) as exc:
            print(f"report: {exc}", file=sys.stderr)
            return 2
    else:
        from repro.analysis import engine

        if not args.ids:
            args.all = True
        ids = _resolve_ids(args)
        if ids is None:
            return 2
        progress = None
        if args.jobs > 1:
            progress = lambda key, hit: print(
                f"  {key} {'cached' if hit else 'done'}", file=sys.stderr
            )
        run = engine.run_ids(
            ids,
            jobs=args.jobs,
            use_cache=not args.no_cache,
            rerun=args.rerun,
            progress=progress,
        )
        # No timings section: the report is deterministic by contract
        # (byte-identical across repeated runs and across --jobs).
        doc = metrics.bench_doc(
            [engine.result_record(result) for result in run.results],
            source="python -m repro report",
        )
        metrics.validate_bench_doc(doc)
    trend_doc = None
    if args.history:
        from repro.obs import history, trend

        try:
            entries = history.load_history(args.history)
            trend_doc = trend.trend_doc(entries)
        except (OSError, ValueError) as exc:
            print(f"report: {args.history}: {exc}", file=sys.stderr)
            return 2
    capacity_doc = None
    if args.capacity:
        import json as json_module

        from repro.analysis import capacity as cap

        try:
            with open(args.capacity) as handle:
                capacity_doc = json_module.load(handle)
            cap.validate_capacity_doc(capacity_doc)
        except (OSError, ValueError) as exc:
            print(f"report: {args.capacity}: {exc}", file=sys.stderr)
            return 2
    html = obs_report.render_report(doc, title=args.title, trend=trend_doc,
                                    capacity=capacity_doc)
    with open(args.out, "w") as handle:
        handle.write(html)
    print(f"report -> {args.out} ({len(html)} bytes, "
          f"{len(doc.get('experiments', []))} experiments)", file=sys.stderr)
    return 0


def _cmd_lint(args) -> int:
    # Imported here, not at the top: the lint engine is pure tooling and
    # unneeded for the simulation subcommands.
    from repro.lint import cli as lint_cli

    return lint_cli.run_lint(args)


def _cmd_machines(_args) -> int:
    print(f"{'machine':<14}{'walk':<10}{'TLB (I/D)':<12}{'L1 (I/D)':<12}"
          f"{'L2':<8}{'line fill':<12}{'word'}")
    for spec in ALL_MACHINES:
        walk = "hardware" if spec.hardware_tablewalk else "software"
        tlb = f"{spec.itlb_entries}/{spec.dtlb_entries}"
        l1 = f"{spec.icache_bytes // 1024}K/{spec.dcache_bytes // 1024}K"
        print(
            f"{spec.name:<14}{walk:<10}{tlb:<12}{l1:<12}"
            f"{spec.l2_bytes // 1024:>4}K   "
            f"{spec.mem_cycles:>5} cyc   {spec.word_cycles:>4} cyc"
        )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=(
            "Reproduction of 'Optimizing the Idle Task and Other MMU "
            "Tricks' (OSDI 1999)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list the experiment registry")
    run = sub.add_parser("run", help="run experiments by id (e.g. E6 E11)")
    run.add_argument("ids", nargs="*", metavar="EXPERIMENT")
    run.add_argument(
        "--all", action="store_true",
        help="run the full registry in sorted order",
    )
    run.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="fan experiments out across N worker processes "
             "(default 1; output is byte-identical to serial)",
    )
    run.add_argument(
        "--no-cache", action="store_true",
        help="disable the on-disk result cache (no reads, no writes)",
    )
    run.add_argument(
        "--rerun", action="store_true",
        help="force execution but refresh the cache with the results",
    )
    run.add_argument(
        "--matrix", action="append", default=[], metavar="NAME",
        help="run a config-matrix sweep instead of registry experiments "
             "(vsid-scatter, flush-cutoff; repeatable)",
    )
    run.add_argument(
        "--bench-out", default=None, metavar="FILE",
        help="write a BENCH_results.json-style artifact with "
             "per-experiment wall times",
    )
    run.add_argument(
        "--json", action="store_true",
        help="print machine-readable records instead of prose reports",
    )
    chk = sub.add_parser(
        "check", help="run experiments under the shadow-MMU sanitizer"
    )
    chk.add_argument("ids", nargs="*", metavar="EXPERIMENT")
    chk.add_argument(
        "--all", action="store_true",
        help="check the full registry (default when no ids given)",
    )
    chk.add_argument(
        "--sweep-every", type=int, default=50_000, metavar="N",
        help="full invariant sweep every N checked translations "
             "(default 50000, 0 disables periodic sweeps)",
    )
    chk.add_argument(
        "--json", action="store_true",
        help="print a machine-readable record instead of the prose report",
    )
    trc = sub.add_parser(
        "trace", help="run one experiment under the flight recorder"
    )
    trc.add_argument("id", metavar="EXPERIMENT")
    trc.add_argument(
        "--out", default=None, metavar="FILE",
        help="output Chrome trace path (default <id>.trace.json)",
    )
    trc.add_argument(
        "--sample-us", type=float, default=1000.0, metavar="US",
        help="time-series sample interval in simulated microseconds "
             "(default 1000)",
    )
    trc.add_argument(
        "--folded", default=None, metavar="FILE",
        help="also write collapsed-stack flamegraph lines "
             "(flamegraph.pl input) and print the critical path",
    )
    trc.add_argument(
        "--speedscope", default=None, metavar="FILE",
        help="also write a speedscope evented-profile JSON "
             "and print the critical path",
    )
    trc.add_argument(
        "--json", action="store_true",
        help="also print the experiment's metrics record",
    )
    prf = sub.add_parser(
        "profile", help="run experiments and print the cycle attribution"
    )
    prf.add_argument("ids", nargs="+", metavar="EXPERIMENT")
    prf.add_argument(
        "--host", action="store_true",
        help="profile host CPU seconds (cProfile) instead of simulated "
             "cycles, aggregated onto the simulator's hot kernels",
    )
    prf.add_argument(
        "--json", action="store_true",
        help="print machine-readable records instead of tables",
    )
    dff = sub.add_parser(
        "diff", help="compare two bench artifacts or two config variants"
    )
    dff.add_argument(
        "a", metavar="A",
        help="bench artifact / record JSON, or an experiment id with "
             "--variant",
    )
    dff.add_argument("b", nargs="?", default=None, metavar="B",
                     help="second artifact (omit with --variant)")
    dff.add_argument(
        "--variant", default=None, metavar="LABEL_A,LABEL_B",
        help="diff the derived analytics of two variants of experiment A "
             '(e.g. E7 --variant "no reclaim,idle reclaim")',
    )
    dff.add_argument(
        "--sample-us", type=float, default=1000.0, metavar="US",
        help="time-series sample interval for --variant runs "
             "(default 1000)",
    )
    dff.add_argument(
        "--json", action="store_true",
        help="print the full machine-readable diff",
    )
    bench = sub.add_parser(
        "bench", help="benchmark-trajectory tools (compare, append)"
    )
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)
    app_parser = bench_sub.add_parser(
        "append",
        help="append one run to the longitudinal history ledger",
    )
    app_parser.add_argument(
        "results", metavar="RESULTS",
        help="bench artifact to record (BENCH_results.json)",
    )
    app_parser.add_argument(
        "--history", default="BENCH_history.jsonl", metavar="FILE",
        help="ledger file to append to (default BENCH_history.jsonl)",
    )
    app_parser.add_argument(
        "--label", default=None, metavar="LABEL",
        help="entry label, e.g. the PR name (default: none)",
    )
    app_parser.add_argument(
        "--sha", default=None, metavar="SHA",
        help="git revision the run measured (default: git rev-parse HEAD)",
    )
    app_parser.add_argument(
        "--parent", default=None, metavar="SHA",
        help="parent revision (default: git rev-parse HEAD^)",
    )
    app_parser.add_argument(
        "--verdict", default=None, metavar="FILE",
        help="sentinel verdict record to fold in "
             "(from bench compare --out)",
    )
    cmp_parser = bench_sub.add_parser(
        "compare",
        help="compare a fresh bench artifact against a baseline under "
             "the tolerance policy",
    )
    cmp_parser.add_argument("baseline", metavar="BASELINE",
                            help="baseline artifact (BENCH_baseline.json)")
    cmp_parser.add_argument("new", metavar="NEW",
                            help="freshly generated artifact to gate")
    cmp_parser.add_argument(
        "--policy", default=None, metavar="FILE",
        help="tolerance policy JSON (default: built-in policy — exact "
             "for deterministic values, ratio band for wall times)",
    )
    cmp_parser.add_argument(
        "--json", action="store_true",
        help="print the machine-readable verdict instead of prose",
    )
    cmp_parser.add_argument(
        "--out", default=None, metavar="FILE",
        help="also write the verdict record to FILE (CI artifact)",
    )
    trd = sub.add_parser(
        "trend", help="per-PR deltas over the bench history ledger"
    )
    trd.add_argument(
        "--history", default="BENCH_history.jsonl", metavar="FILE",
        help="ledger file to read (default BENCH_history.jsonl)",
    )
    trd.add_argument(
        "--policy", default=None, metavar="FILE",
        help="tolerance policy for wall-time banding (default: the "
             "built-in sentinel policy)",
    )
    trd.add_argument(
        "--limit", type=int, default=5, metavar="N",
        help="movers shown per step in the prose report (default 5)",
    )
    trd.add_argument(
        "--json", action="store_true",
        help="print the machine-readable trend document",
    )
    cap = sub.add_parser(
        "capacity",
        help="sweep offered load per flush strategy (capacity curves)",
    )
    cap.add_argument(
        "--loads", type=float, nargs="+", metavar="REQ_PER_S",
        default=None,
        help="offered-load ladder in requests per simulated second, "
             "monotone ascending (default: 2000 6000 12000)",
    )
    cap.add_argument(
        "--strategies", nargs="+", metavar="NAME", default=None,
        help="shootdown strategies to sweep (default: broadcast "
             "mmap_reuse)",
    )
    cap.add_argument(
        "--requests", type=int, default=120, metavar="N",
        help="requests per sweep point (default 120)",
    )
    cap.add_argument(
        "--seed", type=int, default=20, metavar="SEED",
        help="arrival-schedule seed (default 20)",
    )
    cap.add_argument(
        "--schedule", default="exponential", metavar="KIND",
        choices=("exponential", "uniform", "burst"),
        help="interarrival schedule kind (default exponential)",
    )
    cap.add_argument(
        "--cpus", type=int, default=2, metavar="N",
        help="CPUs in the simulated machine (default 2)",
    )
    cap.add_argument(
        "--json", action="store_true",
        help="print the machine-readable capacity document",
    )
    cap.add_argument(
        "--out", default=None, metavar="FILE",
        help="also write the capacity document to FILE (feeds "
             "'report --capacity')",
    )
    rpt = sub.add_parser(
        "report", help="render the observatory dashboard HTML"
    )
    rpt.add_argument("ids", nargs="*", metavar="EXPERIMENT",
                     help="experiments to include (default: all)")
    rpt.add_argument("--all", action="store_true",
                     help="include the full registry")
    rpt.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="fan experiments out across N worker processes "
             "(the report is byte-identical regardless)",
    )
    rpt.add_argument("--no-cache", action="store_true",
                     help="disable the on-disk result cache")
    rpt.add_argument("--rerun", action="store_true",
                     help="force execution but refresh the cache")
    rpt.add_argument(
        "--from", dest="from_doc", default=None, metavar="FILE",
        help="render an existing bench artifact instead of running "
             "experiments",
    )
    rpt.add_argument(
        "--history", default=None, metavar="FILE",
        help="history ledger; adds the perf-trajectory section "
             "(sparklines + latest per-PR deltas) to the dashboard",
    )
    rpt.add_argument(
        "--capacity", default=None, metavar="FILE",
        help="capacity document (from 'capacity --out'); adds the "
             "throughput-vs-p99 capacity-curve section",
    )
    rpt.add_argument("--out", default="report.html", metavar="FILE",
                     help="output HTML path (default report.html)")
    rpt.add_argument("--title", default=None, metavar="TITLE",
                     help="dashboard heading")
    lnt = sub.add_parser(
        "lint", help="run the domain-aware static analysis"
    )
    lnt.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="restrict reported findings to these files/subtrees "
             "(relative to the cwd or the package root)",
    )
    lnt.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    lnt.add_argument(
        "--json", action="store_true",
        help="print a machine-readable findings record",
    )
    lnt.add_argument(
        "--root", default=None, metavar="DIR",
        help="package directory to scan (default: the installed repro "
             "package)",
    )
    lnt.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="baseline file (default: lint-baseline.json at the repo "
             "root)",
    )
    lnt.add_argument(
        "--no-baseline", action="store_true",
        help="ignore the committed baseline (report everything)",
    )
    lnt.add_argument(
        "--write-baseline", action="store_true",
        help="snapshot current findings into the baseline file",
    )
    lnt.add_argument(
        "--effects", action="store_true",
        help="also run the interprocedural effect analyzer (the four "
             "effect-* property rules)",
    )
    lnt.add_argument(
        "--effects-json", default=None, metavar="FILE",
        help="write the per-function effect-summary artifact to FILE "
             "(implies --effects; '-' for stdout)",
    )
    lnt.add_argument(
        "--why", default=None, metavar="CALLEE",
        help="explain which property roots reach CALLEE and through "
             "which call chain (implies --effects)",
    )
    lnt.add_argument(
        "--fail-on-warn", action="store_true",
        help="exit non-zero on warn-severity findings too",
    )
    sub.add_parser("table1", help="reproduce Table 1")
    sub.add_parser("table2", help="reproduce Table 2")
    sub.add_parser("table3", help="reproduce Table 3")
    sub.add_parser("machines", help="show the modelled machines")
    args = parser.parse_args(argv)

    if args.command == "list":
        return _cmd_list(args)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "check":
        return _cmd_check(args)
    if args.command == "trace":
        if args.out is None:
            args.out = f"{args.id.upper()}.trace.json"
        return _cmd_trace(args)
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "diff":
        return _cmd_diff(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "trend":
        return _cmd_trend(args)
    if args.command == "capacity":
        return _cmd_capacity(args)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "lint":
        return _cmd_lint(args)
    if args.command == "machines":
        return _cmd_machines(args)
    shortcut = {"table1": "E5", "table2": "E6", "table3": "E11"}
    return _cmd_run(argparse.Namespace(
        ids=[shortcut[args.command]], all=False, jobs=1, no_cache=False,
        rerun=False, matrix=[], bench_out=None, json=False,
    ))


if __name__ == "__main__":
    sys.exit(main())
