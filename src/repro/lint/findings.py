"""Finding records produced by the lint engine.

A finding pins one rule violation to a ``file:line`` location.  The
``fingerprint`` (rule, path, message — deliberately *not* the line
number) is what the baseline file stores, so grandfathered findings
survive unrelated edits that shift lines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class Finding:
    """One rule violation at one location."""

    #: Rule identifier, e.g. ``layering``.
    rule: str
    #: Path relative to the scanned package root, posix-style
    #: (e.g. ``hw/machine.py``).
    path: str
    #: 1-based line of the offending node.
    line: int
    #: 0-based column of the offending node.
    col: int
    #: Human-readable description of the violation.
    message: str
    #: ``error`` findings fail the run; ``warn`` findings fail it only
    #: under ``--fail-on-warn``.  Excluded from the fingerprint so a
    #: severity recalibration does not invalidate baselines.
    severity: str = "error"

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def fingerprint(self) -> Tuple[str, str, str]:
        """Line-independent identity used for baseline matching."""
        return (self.rule, self.path, self.message)

    def to_record(self) -> Dict[str, object]:
        """Machine-readable form for ``repro lint --json``."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "severity": self.severity,
        }

    def render(self, prefix: str = "") -> str:
        """One ``file:line:col: [rule] message`` diagnostic line."""
        location = f"{prefix}{self.path}" if prefix else self.path
        tag = self.rule if self.severity == "error" else (
            f"{self.severity}:{self.rule}"
        )
        return f"{location}:{self.line}:{self.col}: [{tag}] {self.message}"
