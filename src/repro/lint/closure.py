"""The cross-file closure rules.

Five registries anchor runtime guarantees; these passes close them
statically, so deleting a registry entry (or adding an unregistered
publisher) fails lint instead of failing — or worse, silently skewing —
a simulator run:

* every raw cycle category charged to the ledger appears in the
  profiler's ``PATH_CATEGORIES`` taxonomy (what :class:`AttributionError`
  polices at runtime, on the paths a run happens to exercise);
* every event name published into the tracer or counted by the
  hardware monitor appears in the ``EVENT_NAMES`` registry of
  ``obs/events.py``;
* every invariant defined in ``check/invariants.py`` is registered in
  the ``full_sweep`` suite;
* every experiment spec in the ``SPECS`` registry of
  ``analysis/specs.py`` has a benchmark consumer asserting its paper
  shape and a row in the repo's EXPERIMENTS.md table;
* every path category in the profiler taxonomy and every event name in
  the ``EVENT_NAMES`` registry is consumed by at least one derivation
  in ``obs/analytics.py`` — recorded-but-never-analyzed telemetry is
  dead weight the observatory would silently ignore.
"""

from __future__ import annotations

import ast
import pathlib
import re
from typing import Callable, Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.base import (
    FileContext,
    ProjectRule,
    dotted_name,
    receiver_tail,
    str_const,
)

ProjectReport = Callable[[FileContext, ast.AST, str], None]


def _find_context(
    contexts: List[FileContext], rel_suffix: str
) -> Optional[FileContext]:
    for ctx in contexts:
        if ctx.rel.endswith(rel_suffix):
            return ctx
    return None


def _dict_literal_keys(
    tree: ast.Module, name: str
) -> Optional[Dict[str, ast.AST]]:
    """String keys of a module-level ``NAME = {...}`` dict literal."""
    for node in tree.body:
        target: Optional[ast.expr]
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            target, value = node.target, node.value
        else:
            continue
        if not (isinstance(target, ast.Name) and target.id == name):
            continue
        if not isinstance(value, ast.Dict):
            return None
        out: Dict[str, ast.AST] = {}
        for key in value.keys:
            literal = str_const(key) if key is not None else None
            if literal is not None:
                out[literal] = key
        return out
    return None


def _frozenset_literal(
    tree: ast.Module, name: str
) -> Optional[List[Tuple[str, ast.AST]]]:
    """String elements of ``NAME = frozenset({...})`` / ``{...}``."""
    for node in tree.body:
        target: Optional[ast.expr]
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            target, value = node.target, node.value
        else:
            continue
        if not (isinstance(target, ast.Name) and target.id == name):
            continue
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id == "frozenset"
            and len(value.args) == 1
        ):
            value = value.args[0]
        if not isinstance(value, ast.Set):
            return None
        out = []
        for element in value.elts:
            literal = str_const(element)
            if literal is not None:
                out.append((literal, element))
        return out
    return None


def _tuple_literal(
    tree: ast.Module, name: str
) -> Optional[List[Tuple[str, ast.AST]]]:
    """String elements of a module-level ``NAME = (...)`` tuple literal.

    For tuples of tuples (``KERNEL_GROUPS``-style pair tables), the
    *first* string element of each inner tuple is yielded.
    """
    for node in tree.body:
        target: Optional[ast.expr]
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            target, value = node.target, node.value
        else:
            continue
        if not (isinstance(target, ast.Name) and target.id == name):
            continue
        if not isinstance(value, ast.Tuple):
            return None
        out: List[Tuple[str, ast.AST]] = []
        for element in value.elts:
            if isinstance(element, ast.Tuple) and element.elts:
                literal = str_const(element.elts[0])
            else:
                literal = str_const(element)
            if literal is not None:
                out.append((literal, element))
        return out
    return None


# -- ledger taxonomy ---------------------------------------------------------


def _charge_sites(ctx: FileContext) -> Iterator[Tuple[ast.AST, str]]:
    """``(node, category)`` for every literal ledger charge.

    Matches ``<...>.clock.add(x, "cat")`` / ``ledger.add(x, "cat")``
    positionally or via ``category=``, plus a ``category="cat"``
    keyword on any call (the page allocator's ``clear_page`` threads
    the category through).
    """
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        is_ledger_add = (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "add"
            and receiver_tail(node.func.value) in ("clock", "ledger")
        )
        if is_ledger_add and len(node.args) >= 2:
            literal = str_const(node.args[1])
            if literal is not None:
                yield node, literal
                continue
        for keyword in node.keywords:
            if keyword.arg == "category":
                literal = str_const(keyword.value)
                if literal is not None:
                    yield node, literal


class LedgerTaxonomyRule(ProjectRule):
    id = "ledger-taxonomy"
    description = (
        "every cycle category charged to the ledger is covered by the "
        "profiler's PATH_CATEGORIES taxonomy (and vice versa)"
    )

    #: File that owns the taxonomy, relative to the package root.
    REGISTRY = "obs/profiler.py"
    REGISTRY_NAME = "PATH_CATEGORIES"
    #: The profiler's explicit catch-all output category.
    FALLBACK = "other"

    def check_project(
        self, contexts: List[FileContext], report: ProjectReport
    ) -> None:
        sites = [
            (ctx, node, category)
            for ctx in contexts
            for node, category in _charge_sites(ctx)
        ]
        registry_ctx = _find_context(contexts, self.REGISTRY)
        if registry_ctx is None:
            if sites:
                ctx, node, _category = sites[0]
                report(
                    ctx, node,
                    f"cycle categories are charged but no "
                    f"{self.REGISTRY} defines {self.REGISTRY_NAME}",
                )
            return
        keys = _dict_literal_keys(registry_ctx.tree, self.REGISTRY_NAME)
        if keys is None:
            report(
                registry_ctx, registry_ctx.tree,
                f"{self.REGISTRY_NAME} in {self.REGISTRY} must be a "
                "literal dict of raw-category -> path-category strings",
            )
            return
        charged = set()
        for ctx, node, category in sites:
            charged.add(category)
            if category not in keys and category != self.FALLBACK:
                report(
                    ctx, node,
                    f"cycle category {category!r} is not in the "
                    f"profiler taxonomy ({self.REGISTRY_NAME}); the "
                    "attribution would silently lump it into "
                    f"{self.FALLBACK!r}",
                )
        for category, key_node in keys.items():
            if category not in charged:
                report(
                    registry_ctx, key_node,
                    f"taxonomy entry {category!r} is never charged to "
                    "the ledger anywhere; delete it or charge it",
                )


# -- event registry ----------------------------------------------------------


def _publish_sites(
    ctx: FileContext,
) -> Iterator[Tuple[ast.AST, Optional[str], Optional[str]]]:
    """``(node, literal_name, fstring_prefix)`` for event publishers.

    Covers tracer publications (``<...>.tracer.instant/complete/
    counter``) and hardware-monitor counts (``<...>.monitor.count``).
    For f-string names, the literal prefix is returned instead (matched
    against wildcard registry entries).
    """
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        if not isinstance(node.func, ast.Attribute):
            continue
        tail = receiver_tail(node.func.value)
        is_tracer_pub = (
            tail == "tracer"
            and node.func.attr in ("instant", "complete", "counter")
        )
        is_monitor_count = tail == "monitor" and node.func.attr == "count"
        if not (is_tracer_pub or is_monitor_count) or not node.args:
            continue
        name_arg = node.args[0]
        literal = str_const(name_arg)
        if literal is not None:
            yield node, literal, None
        elif isinstance(name_arg, ast.JoinedStr) and name_arg.values:
            prefix = str_const(name_arg.values[0])
            yield node, None, prefix  # prefix may be None: dynamic name
        # Plain variables (e.g. the monitor re-publishing its filtered
        # event stream) are covered at their own literal callsites.


class EventRegistryRule(ProjectRule):
    id = "event-registry"
    description = (
        "every event name published to the tracer or monitor exists "
        "in the EVENT_NAMES registry of obs/events.py"
    )

    REGISTRY = "obs/events.py"
    REGISTRY_NAME = "EVENT_NAMES"
    MONITOR_FILTER = "DEFAULT_MONITOR_EVENTS"

    def check_project(
        self, contexts: List[FileContext], report: ProjectReport
    ) -> None:
        sites = [
            (ctx, node, literal, prefix)
            for ctx in contexts
            for node, literal, prefix in _publish_sites(ctx)
        ]
        registry_ctx = _find_context(contexts, self.REGISTRY)
        if registry_ctx is None:
            if sites:
                ctx, node, _literal, _prefix = sites[0]
                report(
                    ctx, node,
                    f"events are published but no {self.REGISTRY} "
                    f"defines {self.REGISTRY_NAME}",
                )
            return
        keys = _dict_literal_keys(registry_ctx.tree, self.REGISTRY_NAME)
        if keys is None:
            report(
                registry_ctx, registry_ctx.tree,
                f"{self.REGISTRY_NAME} in {self.REGISTRY} must be a "
                "literal dict of event-name -> description strings",
            )
            return
        exact = {key for key in keys if not key.endswith("*")}
        wildcards = [key[:-1] for key in keys if key.endswith("*")]
        for ctx, node, literal, prefix in sites:
            if literal is not None:
                if literal in exact or any(
                    literal.startswith(stem) for stem in wildcards
                ):
                    continue
                report(
                    ctx, node,
                    f"event name {literal!r} is not in the "
                    f"{self.REGISTRY_NAME} registry of {self.REGISTRY}",
                )
            elif prefix is None:
                report(
                    ctx, node,
                    "event name is built dynamically with no literal "
                    "prefix; registry closure cannot cover it",
                )
            elif not any(
                prefix.startswith(stem) or stem.startswith(prefix)
                for stem in wildcards
            ):
                report(
                    ctx, node,
                    f"f-string event name with prefix {prefix!r} has no "
                    f"matching wildcard entry in {self.REGISTRY_NAME} "
                    "(add e.g. "
                    f"'{prefix}*')",
                )
        # The tracer's default monitor-event filter must itself be
        # registered: an entry here that is not an event name is dead.
        filtered = _frozenset_literal(registry_ctx.tree, self.MONITOR_FILTER)
        for name, element in filtered or ():
            if name not in exact:
                report(
                    registry_ctx, element,
                    f"{self.MONITOR_FILTER} lists {name!r}, which is "
                    f"not in {self.REGISTRY_NAME}",
                )


# -- invariant registration --------------------------------------------------


class InvariantRegistrationRule(ProjectRule):
    id = "invariant-registration"
    description = (
        "every check_* invariant defined in check/invariants.py is "
        "called from the full_sweep suite"
    )

    REGISTRY = "check/invariants.py"
    SUITE = "full_sweep"
    PREFIX = "check_"

    def check_project(
        self, contexts: List[FileContext], report: ProjectReport
    ) -> None:
        ctx = _find_context(contexts, self.REGISTRY)
        if ctx is None:
            return
        invariants = [
            node
            for node in ctx.tree.body
            if isinstance(node, ast.FunctionDef)
            and node.name.startswith(self.PREFIX)
        ]
        suite = next(
            (
                node
                for node in ctx.tree.body
                if isinstance(node, ast.FunctionDef)
                and node.name == self.SUITE
            ),
            None,
        )
        if suite is None:
            if invariants:
                report(
                    ctx, invariants[0],
                    f"invariants are defined but {self.REGISTRY} has no "
                    f"{self.SUITE}() suite to register them in",
                )
            return
        called = {
            dotted_name(node.func)
            for node in ast.walk(suite)
            if isinstance(node, ast.Call)
        }
        for invariant in invariants:
            if invariant.name not in called:
                report(
                    ctx, invariant,
                    f"invariant {invariant.name}() is defined but never "
                    f"called from {self.SUITE}(); it would silently "
                    "not run",
                )


# -- experiment registry -----------------------------------------------------


class ExperimentRegistryRule(ProjectRule):
    id = "experiment-registry"
    description = (
        "every experiment spec id in analysis/specs.py has a "
        "benchmarks/test_bench_*.py consumer and an EXPERIMENTS.md row"
    )

    REGISTRY = "analysis/specs.py"
    REGISTRY_NAME = "SPECS"
    BENCH_DIR = "benchmarks"
    BENCH_GLOB = "test_bench_*.py"
    DOC = "EXPERIMENTS.md"
    #: An EXPERIMENTS.md table row whose first cell names an experiment,
    #: e.g. ``| E8 (§7) | ... |``.
    _DOC_ROW = re.compile(r"^\|\s*(E\d+)\b")

    def check_project(
        self, contexts: List[FileContext], report: ProjectReport
    ) -> None:
        registry_ctx = _find_context(contexts, self.REGISTRY)
        if registry_ctx is None:
            return
        keys = _dict_literal_keys(registry_ctx.tree, self.REGISTRY_NAME)
        if keys is None:
            report(
                registry_ctx, registry_ctx.tree,
                f"{self.REGISTRY_NAME} in {self.REGISTRY} must be a "
                "literal dict of experiment-id -> spec entries",
            )
            return
        repo_root = self._repo_root(registry_ctx.path)
        if repo_root is None:
            # Scanned tree is a bare package (the mutation tests lint
            # such copies): with no benchmarks/ + EXPERIMENTS.md beside
            # it there is nothing to close over.
            return
        bench_ids = self._bench_literals(repo_root / self.BENCH_DIR)
        doc_ids = self._documented_ids(repo_root / self.DOC)
        for experiment_id, key_node in keys.items():
            if experiment_id not in bench_ids:
                report(
                    registry_ctx, key_node,
                    f"spec {experiment_id!r} has no "
                    f"{self.BENCH_DIR}/{self.BENCH_GLOB} consumer; "
                    "nothing asserts its paper shape",
                )
            if experiment_id not in doc_ids:
                report(
                    registry_ctx, key_node,
                    f"spec {experiment_id!r} has no row in {self.DOC}; "
                    "the paper-vs-measured table is stale",
                )
        for doc_id in sorted(doc_ids - set(keys)):
            report(
                registry_ctx, registry_ctx.tree,
                f"{self.DOC} documents {doc_id!r}, which is not in the "
                f"{self.REGISTRY_NAME} registry; delete the stale row",
            )

    def _repo_root(self, registry_path: pathlib.Path) -> Optional[pathlib.Path]:
        """Nearest ancestor holding both benchmarks/ and EXPERIMENTS.md."""
        for candidate in registry_path.resolve().parents:
            if (
                (candidate / self.BENCH_DIR).is_dir()
                and (candidate / self.DOC).is_file()
            ):
                return candidate
        return None

    def _bench_literals(self, bench_dir: pathlib.Path) -> Set[str]:
        """Every string literal in the benchmark files.

        The consumer contract is ``run_spec(benchmark, "E8")``, but any
        literal mention counts — the rule polices existence of a
        consumer, not its calling convention.
        """
        literals: Set[str] = set()
        for path in sorted(bench_dir.glob(self.BENCH_GLOB)):
            try:
                tree = ast.parse(path.read_text())
            except SyntaxError:
                continue  # the file-parses rule owns unparsable files
            for node in ast.walk(tree):
                literal = str_const(node)
                if literal is not None:
                    literals.add(literal)
        return literals

    def _documented_ids(self, doc_path: pathlib.Path) -> Set[str]:
        ids: Set[str] = set()
        for line in doc_path.read_text().splitlines():
            match = self._DOC_ROW.match(line)
            if match is not None:
                ids.add(match.group(1))
        return ids


# -- analytics coverage ------------------------------------------------------


def _dict_literal_values(
    tree: ast.Module, name: str
) -> Optional[List[Tuple[str, ast.AST]]]:
    """String *values* of a module-level ``NAME = {...}`` dict literal."""
    for node in tree.body:
        target: Optional[ast.expr]
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            target, value = node.target, node.value
        else:
            continue
        if not (isinstance(target, ast.Name) and target.id == name):
            continue
        if not isinstance(value, ast.Dict):
            return None
        out: List[Tuple[str, ast.AST]] = []
        for element in value.values:
            literal = str_const(element)
            if literal is not None:
                out.append((literal, element))
        return out
    return None


class AnalyticsCoverageRule(ProjectRule):
    id = "analytics-coverage"
    description = (
        "every profiler path category and every EVENT_NAMES entry is "
        "consumed by a derivation in obs/analytics.py"
    )

    TAXONOMY = "obs/profiler.py"
    TAXONOMY_NAME = "PATH_CATEGORIES"
    #: The profiler's catch-all category — part of the output taxonomy
    #: even though it never appears as a dict value.
    FALLBACK = "other"
    EVENTS = "obs/events.py"
    EVENTS_NAME = "EVENT_NAMES"
    CONSUMER = "obs/analytics.py"

    def check_project(
        self, contexts: List[FileContext], report: ProjectReport
    ) -> None:
        taxonomy_ctx = _find_context(contexts, self.TAXONOMY)
        events_ctx = _find_context(contexts, self.EVENTS)
        if taxonomy_ctx is None and events_ctx is None:
            return
        consumer_ctx = _find_context(contexts, self.CONSUMER)
        if consumer_ctx is None:
            ctx = taxonomy_ctx if taxonomy_ctx is not None else events_ctx
            if ctx is not None:
                report(
                    ctx, ctx.tree,
                    f"telemetry registries exist but no {self.CONSUMER} "
                    "derives anything from them",
                )
            return
        consumed = self._consumer_literals(consumer_ctx)
        if taxonomy_ctx is not None:
            self._check_taxonomy(taxonomy_ctx, consumed, report)
        if events_ctx is not None:
            self._check_events(events_ctx, consumed, report)

    def _consumer_literals(self, ctx: FileContext) -> Set[str]:
        """Every string literal in the analytics module.

        Same contract as the experiment-registry pass: any literal
        mention counts — the rule polices that a derivation *exists*,
        not how it computes.
        """
        literals: Set[str] = set()
        for node in ast.walk(ctx.tree):
            literal = str_const(node)
            if literal is not None:
                literals.add(literal)
        return literals

    def _check_taxonomy(
        self, ctx: FileContext, consumed: Set[str], report: ProjectReport
    ) -> None:
        values = _dict_literal_values(ctx.tree, self.TAXONOMY_NAME)
        if values is None:
            return  # the ledger-taxonomy pass owns a malformed registry
        seen: Set[str] = set()
        for category, node in values + [(self.FALLBACK, ctx.tree)]:
            if category in seen:
                continue
            seen.add(category)
            if category not in consumed:
                report(
                    ctx, node,
                    f"path category {category!r} has no derivation in "
                    f"{self.CONSUMER}; its cycles would never surface "
                    "in the observatory",
                )

    def _check_events(
        self, ctx: FileContext, consumed: Set[str], report: ProjectReport
    ) -> None:
        keys = _dict_literal_keys(ctx.tree, self.EVENTS_NAME)
        if keys is None:
            return  # the event-registry pass owns a malformed registry
        for name, node in keys.items():
            if name in consumed:
                continue
            if name.endswith("*"):
                stem = name[:-1]
                if any(
                    literal and literal.startswith(stem)
                    for literal in sorted(consumed)
                ):
                    continue
            report(
                ctx, node,
                f"event {name!r} is recorded but never consumed by a "
                f"derivation in {self.CONSUMER}",
            )


# -- observatory closure -----------------------------------------------------


class ObservatoryClosureRule(ProjectRule):
    id = "observatory-closure"
    description = (
        "the trajectory layer's literal registries stay in sync: ledger "
        "fields with the bench-record schema, trend/flame categories "
        "with the profiler taxonomy and event registry, host-profile "
        "groups with real package paths"
    )

    METRICS = "obs/metrics.py"
    HISTORY = "obs/history.py"
    TREND = "obs/trend.py"
    FLAME = "obs/flame.py"
    HOSTPROF = "obs/hostprof.py"
    TAXONOMY = "obs/profiler.py"
    EVENTS = "obs/events.py"
    REPORT = "obs/report.py"
    CAPACITY = "analysis/capacity.py"
    FALLBACK = "other"

    def check_project(
        self, contexts: List[FileContext], report: ProjectReport
    ) -> None:
        categories = self._registered_categories(contexts)
        event_names = self._registered_events(contexts)
        self._check_history_fields(contexts, report)
        self._check_trend(contexts, categories, report)
        self._check_capacity(contexts, report)
        self._check_flame(contexts, categories, event_names, report)
        self._check_hostprof(contexts, report)

    def _registered_categories(
        self, contexts: List[FileContext]
    ) -> Optional[Set[str]]:
        ctx = _find_context(contexts, self.TAXONOMY)
        if ctx is None:
            return None
        values = _dict_literal_values(ctx.tree, "PATH_CATEGORIES")
        if values is None:
            return None  # the ledger-taxonomy pass owns the malformation
        return {category for category, _node in values} | {self.FALLBACK}

    def _registered_events(
        self, contexts: List[FileContext]
    ) -> Optional[Dict[str, ast.AST]]:
        ctx = _find_context(contexts, self.EVENTS)
        if ctx is None:
            return None
        return _dict_literal_keys(ctx.tree, "EVENT_NAMES")

    def _check_history_fields(
        self, contexts: List[FileContext], report: ProjectReport
    ) -> None:
        history_ctx = _find_context(contexts, self.HISTORY)
        metrics_ctx = _find_context(contexts, self.METRICS)
        if history_ctx is None or metrics_ctx is None:
            return
        required = _tuple_literal(metrics_ctx.tree, "RECORD_REQUIRED")
        fields = _tuple_literal(history_ctx.tree, "RECORD_FIELDS")
        if required is None:
            report(
                metrics_ctx, metrics_ctx.tree,
                "RECORD_REQUIRED in obs/metrics.py must be a literal "
                "tuple of record field names",
            )
            return
        if fields is None:
            report(
                history_ctx, history_ctx.tree,
                "RECORD_FIELDS in obs/history.py must be a literal "
                "tuple of record field names",
            )
            return
        known = {name for name, _node in required}
        for name, node in fields:
            if name not in known:
                report(
                    history_ctx, node,
                    f"ledger field {name!r} is not in RECORD_REQUIRED of "
                    f"{self.METRICS}; entry_from_doc would KeyError on "
                    "the first real record",
                )

    def _check_trend(
        self, contexts: List[FileContext],
        categories: Optional[Set[str]], report: ProjectReport,
    ) -> None:
        trend_ctx = _find_context(contexts, self.TREND)
        if trend_ctx is None:
            return
        movers = _tuple_literal(trend_ctx.tree, "MOVER_CATEGORIES")
        if movers is None:
            report(
                trend_ctx, trend_ctx.tree,
                "MOVER_CATEGORIES in obs/trend.py must be a literal "
                "tuple of path-category names",
            )
        elif categories is not None:
            for name, node in movers:
                if name not in categories:
                    report(
                        trend_ctx, node,
                        f"trend mover category {name!r} is not a "
                        f"registered path category of {self.TAXONOMY}",
                    )
        history_ctx = _find_context(contexts, self.HISTORY)
        columns = _tuple_literal(trend_ctx.tree, "HEADLINE_COLUMNS")
        if columns is None:
            report(
                trend_ctx, trend_ctx.tree,
                "HEADLINE_COLUMNS in obs/trend.py must be a literal "
                "tuple of headline metric names",
            )
            return
        if history_ctx is None:
            return
        fields = _tuple_literal(history_ctx.tree, "HEADLINE_FIELDS")
        if fields is None:
            report(
                history_ctx, history_ctx.tree,
                "HEADLINE_FIELDS in obs/history.py must be a literal "
                "tuple of headline metric names",
            )
            return
        known = {name for name, _node in fields}
        for name, node in columns:
            if name not in known:
                report(
                    trend_ctx, node,
                    f"trend headline column {name!r} is not in "
                    f"HEADLINE_FIELDS of {self.HISTORY}; the ledger "
                    "never records it",
                )

    def _check_capacity(
        self, contexts: List[FileContext], report: ProjectReport
    ) -> None:
        """Dashboard capacity columns ⊆ recorded sweep point fields."""
        report_ctx = _find_context(contexts, self.REPORT)
        if report_ctx is None:
            return
        columns = _tuple_literal(report_ctx.tree, "CAPACITY_COLUMNS")
        if columns is None:
            report(
                report_ctx, report_ctx.tree,
                "CAPACITY_COLUMNS in obs/report.py must be a literal "
                "tuple of capacity column names",
            )
            return
        capacity_ctx = _find_context(contexts, self.CAPACITY)
        if capacity_ctx is None:
            return
        fields = _tuple_literal(capacity_ctx.tree, "CAPACITY_POINT_FIELDS")
        if fields is None:
            report(
                capacity_ctx, capacity_ctx.tree,
                "CAPACITY_POINT_FIELDS in analysis/capacity.py must be "
                "a literal tuple of sweep point field names",
            )
            return
        known = {name for name, _node in fields}
        for name, node in columns:
            if name not in known:
                report(
                    report_ctx, node,
                    f"capacity dashboard column {name!r} is not in "
                    f"CAPACITY_POINT_FIELDS of {self.CAPACITY}; the "
                    "sweep never records it",
                )

    def _check_flame(
        self, contexts: List[FileContext],
        categories: Optional[Set[str]],
        event_names: Optional[Dict[str, ast.AST]],
        report: ProjectReport,
    ) -> None:
        flame_ctx = _find_context(contexts, self.FLAME)
        if flame_ctx is None:
            return
        span_keys = _dict_literal_keys(flame_ctx.tree, "SPAN_CATEGORY")
        span_values = _dict_literal_values(flame_ctx.tree, "SPAN_CATEGORY")
        if span_keys is None or span_values is None:
            report(
                flame_ctx, flame_ctx.tree,
                "SPAN_CATEGORY in obs/flame.py must be a literal dict "
                "of span-event-name -> path-category strings",
            )
            return
        if event_names is not None:
            exact = {k for k in event_names if not k.endswith("*")}
            wildcards = [k[:-1] for k in event_names if k.endswith("*")]
            for name, node in span_keys.items():
                if name in exact or any(
                    name.startswith(stem) for stem in wildcards
                ):
                    continue
                report(
                    flame_ctx, node,
                    f"flamegraph span {name!r} is not in the EVENT_NAMES "
                    f"registry of {self.EVENTS}; no tracer can ever "
                    "publish it",
                )
        if categories is not None:
            for category, node in span_values:
                if category not in categories:
                    report(
                        flame_ctx, node,
                        f"flamegraph category {category!r} is not a "
                        f"registered path category of {self.TAXONOMY}",
                    )

    def _check_hostprof(
        self, contexts: List[FileContext], report: ProjectReport
    ) -> None:
        ctx = _find_context(contexts, self.HOSTPROF)
        if ctx is None:
            return
        groups = _tuple_literal(ctx.tree, "KERNEL_GROUPS")
        if groups is None:
            report(
                ctx, ctx.tree,
                "KERNEL_GROUPS in obs/hostprof.py must be a literal "
                "tuple of (path fragment, group) pairs",
            )
            return
        # hostprof.py sits at <package>/obs/hostprof.py; fragments are
        # rooted one level above the package ("repro/hw/tlb.py").
        package_dir = ctx.path.resolve().parent.parent
        root = package_dir.parent
        for fragment, node in groups:
            target = root / fragment
            if fragment.endswith("/"):
                ok = target.is_dir()
            else:
                ok = target.is_file()
            if not ok:
                report(
                    ctx, node,
                    f"host-profile group path {fragment!r} does not "
                    "exist under the package; the attribution would "
                    "silently stop matching",
                )
