"""The committed baseline of grandfathered findings.

A baseline entry matches findings by (rule, path, message) — no line
numbers, so unrelated edits do not invalidate it.  The workflow:

* ``repro lint --write-baseline`` snapshots today's findings;
* subsequent runs report baselined findings as suppressed and exit 0;
* fixing a finding makes its entry *stale*; ``--write-baseline`` again
  to shrink the file.  The goal state is an empty list.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, List, Set, Tuple

from repro.lint.findings import Finding

#: Default baseline filename, looked up at the repo root.
BASELINE_NAME = "lint-baseline.json"

_Fingerprint = Tuple[str, str, str]


class Baseline:
    """A set of grandfathered finding fingerprints."""

    def __init__(self, fingerprints: Iterable[_Fingerprint] = ()) -> None:
        self.fingerprints: Set[_Fingerprint] = set(fingerprints)

    def __len__(self) -> int:
        return len(self.fingerprints)

    def matches(self, finding: Finding) -> bool:
        return finding.fingerprint() in self.fingerprints

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        if not path.exists():
            return cls()
        doc = json.loads(path.read_text())
        entries = doc.get("findings", []) if isinstance(doc, dict) else doc
        fingerprints = []
        for entry in entries:
            fingerprints.append(
                (str(entry["rule"]), str(entry["path"]),
                 str(entry["message"]))
            )
        return cls(fingerprints)

    @staticmethod
    def write(path: Path, findings: List[Finding]) -> None:
        """Snapshot ``findings`` as the new baseline."""
        entries = sorted(
            {finding.fingerprint() for finding in findings}
        )
        doc = {
            "comment": (
                "Grandfathered repro-lint findings. Fix them and "
                "regenerate with: python -m repro lint --write-baseline"
            ),
            "findings": [
                {"rule": rule, "path": rel_path, "message": message}
                for rule, rel_path, message in entries
            ],
        }
        path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
