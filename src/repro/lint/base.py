"""Rule plumbing: file contexts, the rule base classes, AST helpers.

Every rule sees a :class:`FileContext` — the parsed AST plus the
file's place in the package (its *layer*: ``hw``, ``kernel``, ``sim``,
``obs``, ``check``, ...).  Per-file rules subclass :class:`Rule`;
whole-program rules (the closure passes) subclass :class:`ProjectRule`
and receive every context at once.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional, Set

#: ``report(node, message)`` — rules call this for each violation.
Report = Callable[[ast.AST, str], None]

#: Layers whose code runs *inside* the simulation: nondeterminism here
#: breaks the byte-identical-trace guarantee.  ``obs`` and ``check``
#: observe from outside (their wall-clock use is reporting only).
SIMULATED_LAYERS = frozenset(
    {"hw", "kernel", "sim", "workloads", "analysis", "oscompare", "perf"}
)


@dataclass
class FileContext:
    """One parsed source file plus its location metadata."""

    #: Absolute path on disk.
    path: Path
    #: Posix path relative to the scanned package root, e.g.
    #: ``hw/machine.py``.
    rel: str
    #: First directory under the package root (``""`` for top-level
    #: modules like ``params.py``).
    layer: str
    #: Dotted module name rooted at the package, e.g.
    #: ``repro.hw.machine``.
    module: str
    tree: ast.Module
    #: Source split into lines (1-based access via ``lines[lineno-1]``).
    lines: List[str]
    #: Child node -> parent node, for guard/ancestor walks.
    parents: Dict[int, ast.AST] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self.parents[id(child)] = parent

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """The parent chain of ``node``, innermost first."""
        current: Optional[ast.AST] = self.parents.get(id(node))
        while current is not None:
            yield current
            current = self.parents.get(id(current))


class Rule:
    """A per-file rule; subclasses override :meth:`check_file`."""

    #: Stable rule identifier used in findings, pragmas and baselines.
    id: str = ""
    #: One-line description for ``repro lint --list-rules``.
    description: str = ""
    #: ``error`` (fails the run) or ``warn`` (fails only under
    #: ``--fail-on-warn``).
    severity: str = "error"

    def check_file(self, ctx: FileContext, report: Report) -> None:
        raise NotImplementedError


class ProjectRule(Rule):
    """A whole-program rule; sees every file context at once."""

    def check_file(self, ctx: FileContext, report: Report) -> None:
        """Project rules run from :meth:`check_project` only."""

    def check_project(
        self,
        contexts: List[FileContext],
        report: Callable[[FileContext, ast.AST, str], None],
    ) -> None:
        raise NotImplementedError


# -- AST helpers shared by the rules ----------------------------------------


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = dotted_name(node.value)
        if base is None:
            return None
        return f"{base}.{node.attr}"
    return None


def receiver_tail(node: ast.AST) -> Optional[str]:
    """The last component of a receiver expression.

    ``machine.tracer`` -> ``tracer``; ``tracer`` -> ``tracer``;
    anything else (calls, subscripts) -> ``None``.
    """
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def attr_root(node: ast.AST) -> Optional[ast.AST]:
    """The leftmost expression of an Attribute chain."""
    while isinstance(node, ast.Attribute):
        node = node.value
    return node


def str_const(node: ast.AST) -> Optional[str]:
    """The value of a plain string constant, else ``None``."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def not_none_exprs(test: ast.AST) -> Set[str]:
    """Unparsed expressions asserted ``is not None`` by ``test``.

    Descends through ``and`` chains: ``a and b.c is not None`` yields
    ``{"b.c"}``.
    """
    out: Set[str] = set()
    stack = [test]
    while stack:
        node = stack.pop()
        if isinstance(node, ast.BoolOp) and isinstance(node.op, ast.And):
            stack.extend(node.values)
        elif isinstance(node, ast.Compare) and len(node.ops) == 1:
            comparator = node.comparators[0]
            if (
                isinstance(node.ops[0], ast.IsNot)
                and isinstance(comparator, ast.Constant)
                and comparator.value is None
            ):
                out.add(ast.unparse(node.left))
    return out


def _contains(container: ast.AST, node: ast.AST) -> bool:
    return any(child is node for child in ast.walk(container))


def active_guards(ctx: FileContext, node: ast.AST) -> Set[str]:
    """Expressions known ``is not None`` at ``node``'s position.

    Collects guards from enclosing ``if``/``while`` statements and
    ``if`` expressions (taken-branch only), preceding operands of
    ``and`` chains, and comprehension ``if`` clauses.
    """
    guards: Set[str] = set()
    child: ast.AST = node
    for ancestor in ctx.ancestors(node):
        if isinstance(ancestor, (ast.If, ast.While)):
            if any(stmt is child or _contains(stmt, child)
                   for stmt in ancestor.body):
                guards |= not_none_exprs(ancestor.test)
        elif isinstance(ancestor, ast.IfExp):
            if ancestor.body is child or _contains(ancestor.body, child):
                guards |= not_none_exprs(ancestor.test)
        elif isinstance(ancestor, ast.BoolOp) and isinstance(
            ancestor.op, ast.And
        ):
            for operand in ancestor.values:
                if operand is child or _contains(operand, child):
                    break
                guards |= not_none_exprs(operand)
        elif isinstance(
            ancestor,
            (ast.GeneratorExp, ast.ListComp, ast.SetComp, ast.DictComp),
        ):
            for generator in ancestor.generators:
                for condition in generator.ifs:
                    guards |= not_none_exprs(condition)
        child = ancestor
    return guards
