"""Inline suppression pragmas.

Two forms, both requiring a one-line justification after ``--``::

    x.y = z  # repro-lint: disable=zero-perturbation -- recorder attach point
    # repro-lint: disable-file=layering -- bootstrap shim, see DESIGN.md

``disable=`` suppresses matching findings on its own line; when it
stands on a comment-only line, it applies to the next code line (so a
justification can grow into a comment block above the statement).
``disable-file=`` (at any indentation) suppresses them for the whole
file.  ``disable=all`` suppresses every rule.  A pragma without a
justification, or naming an unknown rule, is itself reported under the
``pragma-hygiene`` pseudo-rule.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Sequence, Set, Tuple

#: The pseudo-rule id pragma problems are reported under.
PRAGMA_RULE = "pragma-hygiene"

_PRAGMA = re.compile(
    r"#\s*repro-lint:\s*(?P<kind>disable|disable-file)\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_,\- ]+?)\s*"
    r"(?:--\s*(?P<why>\S.*))?$"
)


@dataclass
class FilePragmas:
    """Suppressions parsed from one file's source."""

    #: line -> rule ids disabled on that line.
    line_disables: Dict[int, Set[str]] = field(default_factory=dict)
    #: rule ids disabled for the whole file.
    file_disables: Set[str] = field(default_factory=set)
    #: (line, message) pragma-hygiene problems.
    problems: List[Tuple[int, str]] = field(default_factory=list)

    def suppresses(self, rule: str, line: int) -> bool:
        disabled = self.file_disables | self.line_disables.get(line, set())
        return rule in disabled or "all" in disabled


def _comment_tokens(lines: Sequence[str]) -> Iterator[Tuple[int, str]]:
    """``(lineno, text)`` for every comment token in the source.

    Tokenizing (rather than scanning raw lines) keeps docstrings and
    string literals that merely *mention* the pragma syntax — like this
    module — from being parsed as pragmas.
    """
    text = "\n".join(lines) + "\n"
    try:
        for tok in tokenize.generate_tokens(io.StringIO(text).readline):
            if tok.type == tokenize.COMMENT:
                yield tok.start[0], tok.string
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # The engine reports unparseable files separately.
        return


def parse_pragmas(lines: Sequence[str], known_rules: Set[str]) -> FilePragmas:
    """Scan a file's comments for ``repro-lint`` pragmas."""
    out = FilePragmas()
    for lineno, text in _comment_tokens(lines):
        match = _PRAGMA.search(text)
        if match is None:
            if "repro-lint:" in text:
                out.problems.append(
                    (lineno, "unparseable repro-lint pragma")
                )
            continue
        rules = {part.strip() for part in match.group("rules").split(",")}
        rules.discard("")
        unknown = sorted(rules - known_rules - {"all"})
        for rule in unknown:
            out.problems.append(
                (lineno, f"pragma names unknown rule {rule!r}")
            )
        if match.group("why") is None:
            out.problems.append(
                (lineno,
                 "pragma without justification (append ' -- <reason>')")
            )
        rules -= set(unknown)
        if not rules:
            continue
        if match.group("kind") == "disable-file":
            out.file_disables |= rules
        else:
            target = lineno
            source_line = lines[lineno - 1] if lineno <= len(lines) else ""
            if source_line.lstrip().startswith("#"):
                # Comment-only pragma line: scope it to the next code line.
                for offset in range(lineno, len(lines)):
                    candidate = lines[offset].strip()
                    if candidate and not candidate.startswith("#"):
                        target = offset + 1
                        break
            out.line_disables.setdefault(target, set()).update(rules)
    return out
