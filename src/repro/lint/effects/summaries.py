"""Per-function effect summaries and the fixpoint over the call graph.

The lattice is a set of effect bits per function; the partial order is
set inclusion and the transfer function is union, so the fixpoint is a
plain reachability saturation:

    ``effects(f) = direct(f) ∪ ⋃ effects(g) for g called by f``

Direct effects (collected per function body, nested defs excluded —
they are their own nodes):

* ``writes-sim-state`` — any attribute store, attribute-rooted
  subscript store, or container-mutator call on machine state in the
  simulated core (``hw``/``kernel``/``sim``): the machine *is* its
  attributes there;
* ``writes-own-state`` — the same store shapes on ``self`` outside the
  core (an observer appending to its own ring buffer);
* ``writes-foreign-state`` — an ``obs``/``check`` function storing
  through a non-``self`` root (the interprocedural face of the
  per-file zero-perturbation rule);
* ``writes-module-state`` / ``writes-closure`` — stores that escape the
  frame: ``global``-declared names, module-level objects mutated in
  place, ``nonlocal`` rebinding.  These are exactly the writes that are
  invisible to a forked worker's parent — the race hazards;
* ``mints-cycles`` — a store to ``<clock|ledger>.total`` or
  ``._by_category`` anywhere outside ``hw/clock.py``: cycle totals may
  only move through :meth:`CycleLedger.add` charge sites;
* ``charges-ledger`` / ``publishes-event`` — ledger charges and
  tracer/monitor publications (the closure passes own their registry
  checks; here they mark perturbation);
* ``unseeded-rng`` / ``wall-clock`` / ``unordered-iter`` — the
  determinism bits, same site patterns as the per-file rules but
  collected in *every* layer (reachability decides relevance, not the
  directory the file happens to live in).

A site suppressed by a pragma naming the matching per-file rule (or
the effect rule itself) is dropped before propagation: a justified
local exception must not taint every caller.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.lint.base import FileContext, attr_root, dotted_name, receiver_tail
from repro.lint.effects.callgraph import CallGraph, FunctionInfo, _local_walk
from repro.lint.pragmas import FilePragmas, parse_pragmas
from repro.lint.rules import (
    _GLOBAL_RANDOM_FUNCS,
    _WALL_CLOCK_CALLS,
    _is_set_expr,
)

# -- the effect vocabulary ---------------------------------------------------

WRITES_SIM_STATE = "writes-sim-state"
WRITES_OWN_STATE = "writes-own-state"
WRITES_FOREIGN_STATE = "writes-foreign-state"
WRITES_MODULE_STATE = "writes-module-state"
WRITES_CLOSURE = "writes-closure"
MINTS_CYCLES = "mints-cycles"
CHARGES_LEDGER = "charges-ledger"
PUBLISHES_EVENT = "publishes-event"
UNSEEDED_RNG = "unseeded-rng"
WALL_CLOCK = "wall-clock"
UNORDERED_ITER = "unordered-iter"

#: Every effect, in the order summaries serialize them.
ALL_EFFECTS: Tuple[str, ...] = (
    WRITES_SIM_STATE,
    WRITES_OWN_STATE,
    WRITES_FOREIGN_STATE,
    WRITES_MODULE_STATE,
    WRITES_CLOSURE,
    MINTS_CYCLES,
    CHARGES_LEDGER,
    PUBLISHES_EVENT,
    UNSEEDED_RNG,
    WALL_CLOCK,
    UNORDERED_ITER,
)

#: The simulated core: attribute state there is machine state.
CORE_LAYERS: FrozenSet[str] = frozenset({"hw", "kernel", "sim"})

#: In-place container mutators (a call, not a store, but an effect).
_MUTATOR_METHODS: FrozenSet[str] = frozenset({
    "append", "appendleft", "add", "clear", "discard", "extend",
    "insert", "pop", "popitem", "remove", "reverse", "rotate",
    "setdefault", "sort", "update",
})

#: effect -> the per-file rule whose pragma also covers the site.
_PRAGMA_ALIASES: Dict[str, Tuple[str, ...]] = {
    UNSEEDED_RNG: ("unseeded-random",),
    WALL_CLOCK: ("wall-clock",),
    UNORDERED_ITER: ("set-iteration",),
    WRITES_FOREIGN_STATE: ("zero-perturbation",),
}

#: The ledger's own home: the one file allowed to touch its internals.
_LEDGER_HOME = "hw/clock.py"
_LEDGER_INTERNALS = frozenset({"total", "_by_category"})
_LEDGER_RECEIVERS = frozenset({"clock", "ledger"})


@dataclass(frozen=True)
class EffectSite:
    """One direct-effect occurrence, pinned to a location."""

    effect: str
    rel: str
    line: int
    col: int
    detail: str


@dataclass
class FunctionSummary:
    """Direct and transitive effects of one function."""

    qualname: str
    direct: Dict[str, List[EffectSite]] = field(default_factory=dict)
    #: Direct ∪ callee effects, after the fixpoint.
    effects: Set[str] = field(default_factory=set)
    #: effect -> callee qualname the effect arrived through (first
    #: deterministic witness; direct effects have no entry).
    via: Dict[str, str] = field(default_factory=dict)

    def add_site(self, site: EffectSite) -> None:
        self.direct.setdefault(site.effect, []).append(site)
        self.effects.add(site.effect)


class EffectAnalysis:
    """The computed artifact: graph + summaries + site index."""

    def __init__(
        self,
        graph: CallGraph,
        summaries: Dict[str, FunctionSummary],
        pragmas_by_rel: Dict[str, FilePragmas],
    ) -> None:
        self.graph = graph
        self.summaries = summaries
        self.pragmas_by_rel = pragmas_by_rel

    def summary(self, qualname: str) -> Optional[FunctionSummary]:
        return self.summaries.get(qualname)


def analyze(
    contexts: List[FileContext],
    graph: CallGraph,
    known_rule_ids: FrozenSet[str],
) -> EffectAnalysis:
    """Collect direct effects for every function, then saturate."""
    pragmas_by_rel = {
        ctx.rel: parse_pragmas(ctx.lines, set(known_rule_ids))
        for ctx in contexts
    }
    by_rel = {ctx.rel: ctx for ctx in contexts}
    summaries: Dict[str, FunctionSummary] = {}
    for qualname, info in graph.functions.items():
        ctx = by_rel.get(info.rel)
        if ctx is None:
            continue
        collector = _DirectEffects(info, ctx, pragmas_by_rel[info.rel])
        summaries[qualname] = collector.collect()
    _saturate(graph, summaries)
    return EffectAnalysis(graph, summaries, pragmas_by_rel)


def _saturate(
    graph: CallGraph, summaries: Dict[str, FunctionSummary]
) -> None:
    """Propagate effects caller-ward to a fixpoint (worklist)."""
    callers: Dict[str, List[str]] = {}
    for caller, callees in graph.edges.items():
        for callee in callees:
            callers.setdefault(callee, []).append(caller)
    worklist = sorted(summaries)
    pending = set(worklist)
    while worklist:
        current = worklist.pop()
        pending.discard(current)
        summary = summaries.get(current)
        if summary is None:
            continue
        for caller in sorted(callers.get(current, [])):
            caller_summary = summaries.get(caller)
            if caller_summary is None:
                continue
            new = summary.effects - caller_summary.effects
            if not new:
                continue
            for effect in sorted(new):
                caller_summary.effects.add(effect)
                caller_summary.via.setdefault(effect, current)
            if caller not in pending:
                pending.add(caller)
                worklist.append(caller)


# -- direct-effect collection ------------------------------------------------


def _flatten(target: ast.expr) -> Iterator[ast.expr]:
    if isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _flatten(element)
    elif isinstance(target, ast.Starred):
        yield from _flatten(target.value)
    else:
        yield target


def _store_root(node: ast.expr) -> Optional[ast.expr]:
    """The leftmost expression under an Attribute/Subscript chain."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node


class _DirectEffects:
    """Walks one function body and records its direct effect sites."""

    def __init__(
        self, info: FunctionInfo, ctx: FileContext, pragmas: FilePragmas
    ) -> None:
        self.info = info
        self.ctx = ctx
        self.pragmas = pragmas
        self.summary = FunctionSummary(qualname=info.qualname)
        node = info.node
        self.body: List[ast.AST]
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self.body = list(node.body)
        elif isinstance(node, ast.Lambda):
            self.body = [node.body]
        else:
            self.body = []
        self.declared_global: Set[str] = set()
        self.declared_nonlocal: Set[str] = set()
        self.local_names: Set[str] = set()
        self.module_names: Set[str] = self._module_level_names()

    def collect(self) -> FunctionSummary:
        self._scan_scopes()
        for node in _local_walk(self.body):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                self._on_store(node)
            elif isinstance(node, ast.Delete):
                self._on_store(node)
            elif isinstance(node, ast.Call):
                self._on_call(node)
            elif isinstance(node, ast.ImportFrom):
                self._on_import_from(node)
        self._on_set_iteration()
        return self.summary

    # -- bookkeeping ---------------------------------------------------------

    def _module_level_names(self) -> Set[str]:
        """Names bound at module level (assignments, defs, imports)."""
        names: Set[str] = set()
        for stmt in self.ctx.tree.body:
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    for leaf in _flatten(target):
                        if isinstance(leaf, ast.Name):
                            names.add(leaf.id)
            elif isinstance(stmt, ast.AnnAssign):
                if isinstance(stmt.target, ast.Name):
                    names.add(stmt.target.id)
            elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
                for alias in stmt.names:
                    names.add(alias.asname or alias.name.split(".", 1)[0])
        return names

    def _scan_scopes(self) -> None:
        """Locals, params and global/nonlocal declarations up front."""
        node = self.info.node
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            args = node.args
            for arg in (
                args.posonlyargs + args.args + args.kwonlyargs
                + ([args.vararg] if args.vararg else [])
                + ([args.kwarg] if args.kwarg else [])
            ):
                self.local_names.add(arg.arg)
        for sub in _local_walk(self.body):
            if isinstance(sub, ast.Global):
                self.declared_global.update(sub.names)
            elif isinstance(sub, ast.Nonlocal):
                self.declared_nonlocal.update(sub.names)
            elif isinstance(sub, ast.Name) and isinstance(
                sub.ctx, ast.Store
            ):
                self.local_names.add(sub.id)
            elif isinstance(sub, (ast.For, ast.AsyncFor)):
                for leaf in _flatten(sub.target):
                    if isinstance(leaf, ast.Name):
                        self.local_names.add(leaf.id)
        self.local_names -= self.declared_global
        self.local_names -= self.declared_nonlocal

    def _record(
        self, effect: str, node: ast.AST, detail: str
    ) -> None:
        line = getattr(node, "lineno", 1)
        for rule_id in _PRAGMA_ALIASES.get(effect, ()):
            if self.pragmas.suppresses(rule_id, line):
                return
        self.summary.add_site(
            EffectSite(
                effect=effect,
                rel=self.info.rel,
                line=line,
                col=getattr(node, "col_offset", 0),
                detail=detail,
            )
        )

    # -- stores --------------------------------------------------------------

    def _on_store(self, node: ast.stmt) -> None:
        targets: List[ast.expr]
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        elif isinstance(node, ast.Delete):
            targets = list(node.targets)
        else:
            return
        for raw in targets:
            for target in _flatten(raw):
                if isinstance(target, ast.Name):
                    self._on_name_store(node, target)
                elif isinstance(target, ast.Attribute):
                    self._on_attribute_store(node, target)
                elif isinstance(target, ast.Subscript):
                    self._on_subscript_store(node, target)

    def _on_name_store(self, node: ast.stmt, target: ast.Name) -> None:
        if target.id in self.declared_global:
            self._record(
                WRITES_MODULE_STATE, node,
                f"rebinds module global '{target.id}'",
            )
        elif target.id in self.declared_nonlocal:
            self._record(
                WRITES_CLOSURE, node,
                f"rebinds closure variable '{target.id}'",
            )

    def _on_attribute_store(
        self, node: ast.stmt, target: ast.Attribute
    ) -> None:
        spelled = ast.unparse(target)
        if (
            target.attr in _LEDGER_INTERNALS
            and receiver_tail(target.value) in _LEDGER_RECEIVERS
            and self.info.rel != _LEDGER_HOME
        ):
            self._record(
                MINTS_CYCLES, node,
                f"writes ledger internals '{spelled}'",
            )
        root = attr_root(target)
        if (
            isinstance(root, ast.Name)
            and root.id not in ("self", "cls")
            and root.id in self.module_names
            and root.id not in self.local_names
        ):
            self._record(
                WRITES_MODULE_STATE, node,
                f"mutates module-level '{spelled}'",
            )
            if self.info.layer not in CORE_LAYERS:
                return
        if self.info.layer in CORE_LAYERS:
            # Depth-1 self stores inside a constructor initialize a
            # freshly allocated object: nothing pre-existing moves.
            if (
                self.info.name in ("__init__", "__post_init__")
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                self._record(
                    WRITES_OWN_STATE, node, f"stores to '{spelled}'"
                )
            else:
                self._record(
                    WRITES_SIM_STATE, node,
                    f"stores to '{spelled}'",
                )
            return
        if isinstance(root, ast.Name) and root.id in ("self", "cls"):
            self._record(
                WRITES_OWN_STATE, node, f"stores to '{spelled}'"
            )
        elif self.info.layer in ("obs", "check"):
            self._record(
                WRITES_FOREIGN_STATE, node,
                f"assigns foreign attribute '{spelled}'",
            )
        else:
            self._record(
                WRITES_OWN_STATE, node, f"stores to '{spelled}'"
            )

    def _on_subscript_store(
        self, node: ast.stmt, target: ast.Subscript
    ) -> None:
        root = _store_root(target)
        spelled = ast.unparse(target.value)
        attr_rooted = isinstance(target.value, (ast.Attribute, ast.Subscript))
        if isinstance(root, ast.Name):
            if root.id in ("self", "cls"):
                effect = (
                    WRITES_SIM_STATE
                    if self.info.layer in CORE_LAYERS
                    else WRITES_OWN_STATE
                )
                self._record(
                    effect, node, f"stores into '{spelled}[...]'"
                )
                return
            if (
                root.id in self.module_names
                and root.id not in self.local_names
            ):
                self._record(
                    WRITES_MODULE_STATE, node,
                    f"mutates module-level '{spelled}[...]'",
                )
                if self.info.layer in CORE_LAYERS:
                    self._record(
                        WRITES_SIM_STATE, node,
                        f"stores into '{spelled}[...]'",
                    )
                return
            if attr_rooted and self.info.layer in CORE_LAYERS:
                self._record(
                    WRITES_SIM_STATE, node,
                    f"stores into '{spelled}[...]'",
                )

    # -- calls ---------------------------------------------------------------

    def _on_call(self, node: ast.Call) -> None:
        name = dotted_name(node.func)
        self._on_rng_call(node, name)
        self._on_wall_clock_call(node, name)
        self._on_ledger_call(node, name)
        self._on_publish_call(node)
        self._on_mutator_call(node)

    def _on_rng_call(self, node: ast.Call, name: Optional[str]) -> None:
        if name is None:
            return
        if (
            name.startswith("random.")
            and name[len("random."):] in _GLOBAL_RANDOM_FUNCS
        ):
            self._record(
                UNSEEDED_RNG, node, f"calls {name}() (global generator)"
            )
        elif name == "random.Random" and not node.args and not node.keywords:
            self._record(
                UNSEEDED_RNG, node, "constructs random.Random() unseeded"
            )

    def _on_wall_clock_call(
        self, node: ast.Call, name: Optional[str]
    ) -> None:
        if name in _WALL_CLOCK_CALLS:
            self._record(WALL_CLOCK, node, f"calls {name}()")

    def _on_import_from(self, node: ast.ImportFrom) -> None:
        if node.module == "time":
            for alias in node.names:
                if f"time.{alias.name}" in _WALL_CLOCK_CALLS:
                    self._record(
                        WALL_CLOCK, node,
                        f"imports wall-clock source time.{alias.name}",
                    )
        elif node.module == "random":
            for alias in node.names:
                if alias.name != "Random":
                    self._record(
                        UNSEEDED_RNG, node,
                        f"imports random.{alias.name} "
                        "(global generator)",
                    )

    def _on_ledger_call(self, node: ast.Call, name: Optional[str]) -> None:
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "add"
            and receiver_tail(node.func.value) in _LEDGER_RECEIVERS
            and len(node.args) >= 1
        ):
            self._record(
                CHARGES_LEDGER, node,
                f"charges the ledger via "
                f"'{ast.unparse(node.func)}(...)'",
            )
            return
        for keyword in node.keywords:
            if keyword.arg == "category":
                self._record(
                    CHARGES_LEDGER, node,
                    "threads a ledger charge (category=...)",
                )
                return

    def _on_publish_call(self, node: ast.Call) -> None:
        if not isinstance(node.func, ast.Attribute):
            return
        tail = receiver_tail(node.func.value)
        if tail == "tracer" and node.func.attr in (
            "instant", "complete", "counter"
        ):
            self._record(
                PUBLISHES_EVENT, node,
                f"publishes tracer event via .{node.func.attr}(...)",
            )
        elif tail == "monitor" and node.func.attr == "count":
            self._record(
                PUBLISHES_EVENT, node, "bumps a monitor counter"
            )

    def _on_mutator_call(self, node: ast.Call) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        if func.attr not in _MUTATOR_METHODS:
            return
        receiver = func.value
        root = _store_root(receiver)
        spelled = ast.unparse(receiver)
        if isinstance(root, ast.Name):
            if root.id in ("self", "cls"):
                effect = (
                    WRITES_SIM_STATE
                    if self.info.layer in CORE_LAYERS
                    else WRITES_OWN_STATE
                )
                self._record(
                    effect, node, f"mutates '{spelled}' in place"
                )
            elif (
                root.id in self.module_names
                and root.id not in self.local_names
            ):
                self._record(
                    WRITES_MODULE_STATE, node,
                    f"mutates module-level '{spelled}' in place",
                )
                if self.info.layer in CORE_LAYERS:
                    self._record(
                        WRITES_SIM_STATE, node,
                        f"mutates '{spelled}' in place",
                    )
            elif (
                isinstance(receiver, (ast.Attribute, ast.Subscript))
                and self.info.layer in CORE_LAYERS
            ):
                self._record(
                    WRITES_SIM_STATE, node,
                    f"mutates '{spelled}' in place",
                )

    # -- set iteration -------------------------------------------------------

    def _on_set_iteration(self) -> None:
        sites = [
            (node, iterable)
            for node, iterable in _iteration_sites_local(self.body)
        ]
        if not sites:
            return
        set_locals = _known_set_names_local(self.body)
        for node, iterable in sites:
            if _is_set_expr(iterable):
                self._record(
                    UNORDERED_ITER, iterable,
                    "iterates a set expression (unstable order)",
                )
            elif (
                isinstance(iterable, ast.Name)
                and iterable.id in set_locals
            ):
                self._record(
                    UNORDERED_ITER, iterable,
                    f"iterates set-valued local '{iterable.id}'",
                )


def _iteration_sites_local(
    body: List[ast.AST],
) -> Iterator[Tuple[ast.AST, ast.expr]]:
    for node in _local_walk(body):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            yield node, node.iter
        elif isinstance(
            node, (ast.GeneratorExp, ast.ListComp, ast.SetComp, ast.DictComp)
        ):
            for generator in node.generators:
                yield node, generator.iter


def _known_set_names_local(body: List[ast.AST]) -> Set[str]:
    good: Set[str] = set()
    bad: Set[str] = set()
    for node in _local_walk(body):
        if not isinstance(node, ast.Assign):
            continue
        for target in node.targets:
            if isinstance(target, ast.Name):
                if _is_set_expr(node.value):
                    good.add(target.id)
                else:
                    bad.add(target.id)
    return good - bad
