"""Interprocedural effect & determinism analysis (DESIGN.md §12).

The per-file rules prove local discipline; the closure passes prove
registry consistency.  What neither can prove is *reachability*: that
no call path from an observer hook mutates simulator state, that no
path reachable from the experiment engine reads a wall clock three
calls down, that no worker-process function writes state the parent
shares.  This package closes that gap:

* :mod:`~repro.lint.effects.callgraph` builds a project call graph over
  every parsed file (AST-based; method calls resolve via receiver
  hints, class lookup and the layering map);
* :mod:`~repro.lint.effects.summaries` infers a per-function effect
  summary — a small lattice of writes/charges/publishes/nondeterminism
  bits — as a fixpoint over the graph;
* :mod:`~repro.lint.effects.properties` checks the four project-level
  properties against the summaries (zero-perturbation, ledger
  soundness, determinism closure, parallel-runner race freedom);
* :mod:`~repro.lint.effects.explain` renders the ``--effects-json``
  per-function summary artifact and the ``--why CALLEE`` call-chain
  explainer.

Run it with ``python -m repro lint --effects``.  Findings flow through
the ordinary engine machinery — pragmas, baseline, path scoping — under
the rule ids in :data:`EFFECT_RULE_IDS`.
"""

from __future__ import annotations

from repro.lint.effects.properties import (
    EFFECT_RULE_IDS,
    EffectRuleSuite,
)

__all__ = [
    "EFFECT_RULE_IDS",
    "EffectRuleSuite",
]
