"""Rendering: the ``--effects-json`` artifact and the ``--why`` explainer.

``effects_json`` serializes every per-function summary (direct sites,
saturated effect set, the callee each transitive effect arrived
through) plus the discovered root sets — the CI artifact that makes an
effects failure diagnosable without rerunning anything locally.

``explain_why`` answers "why does the analyzer care about CALLEE?":
for a function name (bare, suffix, or fully qualified) it prints the
function's own summary and, for each reachability property, whether a
root reaches it and one shortest call chain that proves it.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.lint.effects.properties import RootSets, _render_chain, _short
from repro.lint.effects.summaries import ALL_EFFECTS, EffectAnalysis


def effects_json(
    analysis: EffectAnalysis, roots: RootSets
) -> Dict[str, object]:
    """The per-function effect-summary artifact, fully deterministic."""
    functions: Dict[str, object] = {}
    for qual in sorted(analysis.summaries):
        summary = analysis.summaries[qual]
        info = analysis.graph.functions.get(qual)
        if info is None:
            continue
        direct = {
            effect: [
                {"line": site.line, "detail": site.detail}
                for site in sorted(
                    summary.direct[effect],
                    key=lambda s: (s.line, s.col, s.detail),
                )
            ]
            for effect in sorted(summary.direct)
        }
        functions[qual] = {
            "rel": info.rel,
            "line": info.line,
            "layer": info.layer,
            "effects": sorted(summary.effects),
            "direct": direct,
            "via": {
                effect: summary.via[effect]
                for effect in sorted(summary.via)
            },
            "calls": analysis.graph.callees(qual),
        }
    effect_counts = {
        effect: sum(
            1 for summary in analysis.summaries.values()
            if effect in summary.effects
        )
        for effect in ALL_EFFECTS
    }
    return {
        "functions": functions,
        "roots": {
            "perturbation": sorted(roots.perturbation),
            "determinism": sorted(roots.determinism),
            "race": sorted(roots.race),
        },
        "totals": {
            "functions": len(functions),
            "edges": sum(
                len(callees)
                for callees in analysis.graph.edges.values()
            ),
            "by_effect": effect_counts,
        },
    }


def _match_functions(analysis: EffectAnalysis, query: str) -> List[str]:
    """Functions matching a bare name, dotted suffix, or qualname."""
    if query in analysis.graph.functions:
        return [query]
    out: Set[str] = set()
    for qual, info in analysis.graph.functions.items():
        if info.name == query or qual.endswith("." + query):
            out.add(qual)
    return sorted(out)


def explain_why(
    analysis: EffectAnalysis, roots: RootSets, query: str
) -> str:
    """Human-readable ``--why CALLEE`` report."""
    matches = _match_functions(analysis, query)
    if not matches:
        return (
            f"--why: no function named {query!r} in the call graph "
            "(use a bare name, dotted suffix, or full qualname)"
        )
    sections: List[str] = []
    named_roots = [
        ("zero-perturbation hooks", roots.perturbation,
         roots.perturbation_why),
        ("determinism closure (analysis/engine.py)", roots.determinism,
         {}),
        ("worker processes (race detector)", roots.race, roots.race_why),
    ]
    for qual in matches:
        summary = analysis.summary(qual)
        info = analysis.graph.functions[qual]
        lines = [f"{_short(qual)}  ({info.rel}:{info.line})"]
        if summary is None or not summary.effects:
            lines.append("  effects: none (transitively pure)")
        else:
            lines.append(
                "  effects: " + ", ".join(sorted(summary.effects))
            )
            for effect in sorted(summary.effects):
                if effect in summary.direct:
                    site = summary.direct[effect][0]
                    lines.append(
                        f"    {effect}: direct — {site.detail} "
                        f"({info.rel}:{site.line})"
                    )
                else:
                    via = summary.via.get(effect)
                    if via is not None:
                        lines.append(
                            f"    {effect}: via {_short(via)}"
                        )
        for label, root_set, root_why in named_roots:
            chain = analysis.graph.shortest_chain(root_set, qual)
            if chain is None:
                lines.append(f"  {label}: not reachable")
            else:
                origin = root_why.get(chain[0], "")
                note = f"  [{origin}]" if origin else ""
                lines.append(
                    f"  {label}: reachable via "
                    f"{_render_chain(chain)}{note}"
                )
        sections.append("\n".join(lines))
    return "\n\n".join(sections)
